/**
 * @file
 * Ablation from Sec. 6 of the paper: "Widening the prediction counter
 * from 3 bits to 4 bits would create other classes of branches with
 * slightly decreasing probability of mispredictions, but ... would not
 * significantly reduce the misprediction rate on the class of
 * saturated counters; moreover widening the prediction counter has a
 * slightly negative impact on the overall misprediction rate."
 *
 * This bench sweeps the tagged counter width over 2/3/4/5 bits
 * (baseline automaton) and reports overall accuracy plus the saturated
 * class statistics.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Ablation: tagged counter width (64Kbit)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 6 discussion",
                       opt);

    TextTable t;
    t.addColumn("ctr bits", TextTable::Align::Left);
    t.addColumn("CBP-1 misp/KI");
    t.addColumn("CBP-2 misp/KI");
    t.addColumn("Stag Pcov (CBP-1)");
    t.addColumn("Stag MPrate MKP (CBP-1)");

    for (const int bits : {2, 3, 4, 5}) {
        TageConfig cfg = TageConfig::medium64K();
        cfg.taggedCtrBits = bits;
        cfg.name = "64K/" + std::to_string(bits) + "b";
        RunConfig rc;
        rc.predictor = cfg;
        const SetResult r1 = runBenchmarkSet(BenchmarkSet::Cbp1, rc,
                                             opt.branchesPerTrace);
        const SetResult r2 = runBenchmarkSet(BenchmarkSet::Cbp2, rc,
                                             opt.branchesPerTrace);
        t.addRow({std::to_string(bits),
                  TextTable::num(r1.meanMpki, 3),
                  TextTable::num(r2.meanMpki, 3),
                  TextTable::frac(
                      r1.aggregate.pcov(PredictionClass::Stag)),
                  TextTable::num(
                      r1.aggregate.mprateMkp(PredictionClass::Stag), 1)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: widening beyond 3 bits does not "
                 "collapse the Stag misprediction rate (unlike the "
                 "probabilistic automaton) and does not improve overall "
                 "accuracy.\n";
    return 0;
}
