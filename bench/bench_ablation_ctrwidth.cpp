/**
 * @file
 * Ablation from Sec. 6 of the paper: "Widening the prediction counter
 * from 3 bits to 4 bits would create other classes of branches with
 * slightly decreasing probability of mispredictions, but ... would not
 * significantly reduce the misprediction rate on the class of
 * saturated counters; moreover widening the prediction counter has a
 * slightly negative impact on the overall misprediction rate."
 *
 * The sweep is declarative: one "tage64k:ctr=N" spec per width over
 * each benchmark set, run by the shared parallel runner (--jobs=N) —
 * the parameterized spec grammar replaces the hand-built TageConfig
 * of the original bench.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("Ablation: tagged counter width (64Kbit)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 6 discussion",
                       opt, /*show_jobs=*/true);

    const std::vector<int> widths = {2, 3, 4, 5};
    std::vector<std::string> specs;
    for (const int bits : widths)
        specs.push_back("tage64k:ctr=" + std::to_string(bits));

    const auto cbp1 = runSweepRows(
        SweepPlan::over(specs, traceNames(BenchmarkSet::Cbp1),
                        opt.branchesPerTrace, opt.seedSalt),
        {opt.jobs});
    const auto cbp2 = runSweepRows(
        SweepPlan::over(specs, traceNames(BenchmarkSet::Cbp2),
                        opt.branchesPerTrace, opt.seedSalt),
        {opt.jobs});

    TextTable t;
    t.addColumn("ctr bits", TextTable::Align::Left);
    t.addColumn("CBP-1 misp/KI");
    t.addColumn("CBP-2 misp/KI");
    t.addColumn("Stag Pcov (CBP-1)");
    t.addColumn("Stag MPrate MKP (CBP-1)");

    for (size_t i = 0; i < widths.size(); ++i) {
        const SweepRow& r1 = cbp1[i];
        const SweepRow& r2 = cbp2[i];
        t.addRow({std::to_string(widths[i]),
                  TextTable::num(r1.meanMpki, 3),
                  TextTable::num(r2.meanMpki, 3),
                  TextTable::frac(
                      r1.aggregate.pcov(PredictionClass::Stag)),
                  TextTable::num(
                      r1.aggregate.mprateMkp(PredictionClass::Stag), 1)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: widening beyond 3 bits does not "
                 "collapse the Stag misprediction rate (unlike the "
                 "probabilistic automaton) and does not improve overall "
                 "accuracy.\n";
    return 0;
}
