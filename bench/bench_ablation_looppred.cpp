/**
 * @file
 * Extension ablation: TAGE vs L-TAGE (TAGE + the loop predictor of
 * reference [12]). The loop predictor captures constant trip counts
 * beyond the history window, which matters most for the small
 * predictor on loop-heavy traces (FP-3's 40-250 iteration loops).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "tage/ltage_predictor.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

double
runLtage(const std::string& trace_name, const TageConfig& cfg,
         uint64_t branches)
{
    SyntheticTrace trace = makeTrace(trace_name, branches);
    LTagePredictor pred(cfg);
    uint64_t miss = 0;
    uint64_t instr = 0;
    BranchRecord rec;
    while (trace.next(rec)) {
        const LTagePrediction p = pred.predict(rec.pc);
        if (p.taken != rec.taken)
            ++miss;
        instr += uint64_t{rec.instructionsBefore} + 1;
        pred.update(rec.pc, p, rec.taken);
    }
    return 1000.0 * static_cast<double>(miss) /
           static_cast<double>(instr);
}

double
runTage(const std::string& trace_name, const TageConfig& cfg,
        uint64_t branches)
{
    RunConfig rc;
    rc.predictor = cfg;
    return runNamedTrace(trace_name, rc, branches).stats.mpki();
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Ablation: TAGE vs L-TAGE (loop predictor)",
                       "Seznec, JILP 2007 (paper reference [12])", opt);

    const std::vector<std::string> traces = {"FP-1", "FP-3", "INT-1",
                                             "164.gzip", "300.twolf"};

    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    t.addColumn("config", TextTable::Align::Left);
    t.addColumn("TAGE misp/KI");
    t.addColumn("L-TAGE misp/KI");
    t.addColumn("delta %");

    for (const TageConfig& cfg :
         {TageConfig::small16K(), TageConfig::medium64K()}) {
        for (const auto& name : traces) {
            const double tage =
                runTage(name, cfg, opt.branchesPerTrace);
            const double ltage =
                runLtage(name, cfg, opt.branchesPerTrace);
            t.addRow({name, cfg.name, TextTable::num(tage, 3),
                      TextTable::num(ltage, 3),
                      TextTable::num(100.0 * (ltage - tage) / tage, 1)});
        }
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: the loop predictor helps most where "
                 "long constant-trip loops exceed the history window "
                 "(FP-3 on the 16K predictor) and is neutral "
                 "elsewhere.\n";
    return 0;
}
