/**
 * @file
 * Extension ablation: TAGE vs L-TAGE (TAGE + the loop predictor of
 * reference [12]). The loop predictor captures constant trip counts
 * beyond the history window, which matters most for the small
 * predictor on loop-heavy traces (FP-3's 40-250 iteration loops).
 *
 * One declarative sweep: {tage, ltage} x {16K, 64K} specs over five
 * representative traces, per-cell results paired into TAGE/L-TAGE
 * rows (--jobs=N).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("Ablation: TAGE vs L-TAGE (loop predictor)",
                       "Seznec, JILP 2007 (paper reference [12])", opt,
                       /*show_jobs=*/true);

    const std::vector<std::string> traces = {"FP-1", "FP-3", "INT-1",
                                             "164.gzip", "300.twolf"};
    // Adjacent (tage, ltage) spec pairs share a storage budget.
    const std::vector<std::pair<std::string, std::string>> sizes = {
        {"16K", "tage16k"},
        {"64K", "tage64k"},
    };
    std::vector<std::string> specs;
    for (const auto& size : sizes) {
        specs.push_back(size.second);
        specs.push_back("l" + size.second);
    }

    const SweepPlan plan = SweepPlan::over(
        specs, traces, opt.branchesPerTrace, opt.seedSalt);
    const auto cells = runSweep(plan, {opt.jobs});

    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    t.addColumn("config", TextTable::Align::Left);
    t.addColumn("TAGE misp/KI");
    t.addColumn("L-TAGE misp/KI");
    t.addColumn("delta %");

    for (size_t s = 0; s < sizes.size(); ++s) {
        for (size_t i = 0; i < traces.size(); ++i) {
            const double tage =
                cells[(2 * s) * traces.size() + i].stats.mpki();
            const double ltage =
                cells[(2 * s + 1) * traces.size() + i].stats.mpki();
            t.addRow({traces[i], sizes[s].first,
                      TextTable::num(tage, 3),
                      TextTable::num(ltage, 3),
                      TextTable::num(100.0 * (ltage - tage) / tage, 1)});
        }
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: the loop predictor helps most where "
                 "long constant-trip loops exceed the history window "
                 "(FP-3 on the 16K predictor) and is neutral "
                 "elsewhere.\n";
    return 0;
}
