/**
 * @file
 * Ablation of the USE_ALT_ON_NA mechanism (Sec. 3.1): the paper notes
 * that using the alternate prediction on weak ("newly allocated")
 * provider entries slightly improves accuracy, and that the Wtag class
 * stays ~30%+ mispredicted even with it. The two configurations are
 * the parameterized specs "tage64k:ualt=1" / "tage64k:ualt=0", run as
 * one declarative sweep per benchmark set (--jobs=N).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("Ablation: USE_ALT_ON_NA on/off (64Kbit)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 3.1", opt,
                       /*show_jobs=*/true);

    const std::vector<std::string> specs = {"tage64k:ualt=1",
                                            "tage64k:ualt=0"};

    const auto cbp1 = runSweepRows(
        SweepPlan::over(specs, traceNames(BenchmarkSet::Cbp1),
                        opt.branchesPerTrace, opt.seedSalt),
        {opt.jobs});
    const auto cbp2 = runSweepRows(
        SweepPlan::over(specs, traceNames(BenchmarkSet::Cbp2),
                        opt.branchesPerTrace, opt.seedSalt),
        {opt.jobs});

    TextTable t;
    t.addColumn("USE_ALT_ON_NA", TextTable::Align::Left);
    t.addColumn("CBP-1 misp/KI");
    t.addColumn("CBP-2 misp/KI");
    t.addColumn("Wtag MPrate MKP (CBP-1)");
    t.addColumn("Wtag MPrate MKP (CBP-2)");

    for (size_t i = 0; i < specs.size(); ++i) {
        const SweepRow& r1 = cbp1[i];
        const SweepRow& r2 = cbp2[i];
        t.addRow({i == 0 ? "enabled" : "disabled",
                  TextTable::num(r1.meanMpki, 3),
                  TextTable::num(r2.meanMpki, 3),
                  TextTable::num(
                      r1.aggregate.mprateMkp(PredictionClass::Wtag), 0),
                  TextTable::num(
                      r2.aggregate.mprateMkp(PredictionClass::Wtag), 0)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: disabling USE_ALT_ON_NA slightly "
                 "degrades overall accuracy; the Wtag class stays in "
                 "the ~300 MKP range either way.\n";
    return 0;
}
