/**
 * @file
 * Ablation of the USE_ALT_ON_NA mechanism (Sec. 3.1): the paper notes
 * that using the alternate prediction on weak ("newly allocated")
 * provider entries slightly improves accuracy, and that the Wtag class
 * stays ~30%+ mispredicted even with it. This bench compares the
 * predictor with and without the mechanism.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Ablation: USE_ALT_ON_NA on/off (64Kbit)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 3.1", opt);

    TextTable t;
    t.addColumn("USE_ALT_ON_NA", TextTable::Align::Left);
    t.addColumn("CBP-1 misp/KI");
    t.addColumn("CBP-2 misp/KI");
    t.addColumn("Wtag MPrate MKP (CBP-1)");
    t.addColumn("Wtag MPrate MKP (CBP-2)");

    for (const bool enabled : {true, false}) {
        TageConfig cfg = TageConfig::medium64K();
        cfg.useAltOnNa = enabled;
        cfg.name = enabled ? "64K/alt-on" : "64K/alt-off";
        RunConfig rc;
        rc.predictor = cfg;
        const SetResult r1 = runBenchmarkSet(BenchmarkSet::Cbp1, rc,
                                             opt.branchesPerTrace);
        const SetResult r2 = runBenchmarkSet(BenchmarkSet::Cbp2, rc,
                                             opt.branchesPerTrace);
        t.addRow({enabled ? "enabled" : "disabled",
                  TextTable::num(r1.meanMpki, 3),
                  TextTable::num(r2.meanMpki, 3),
                  TextTable::num(
                      r1.aggregate.mprateMkp(PredictionClass::Wtag), 0),
                  TextTable::num(
                      r2.aggregate.mprateMkp(PredictionClass::Wtag), 0)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: disabling USE_ALT_ON_NA slightly "
                 "degrades overall accuracy; the Wtag class stays in "
                 "the ~300 MKP range either way.\n";
    return 0;
}
