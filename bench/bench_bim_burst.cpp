/**
 * @file
 * Reproduces the observation behind the medium-conf-bim class
 * (Sec. 5.1.2): "the predictions from the BIM class that occur just
 * after a misprediction also in the BIM class (up to 8 branches in
 * the illustrated experiments) are also quite likely to be
 * mispredicted (in the range of 80-150 MKP for the 16Kbits predictor
 * for CBP1)".
 *
 * This bench measures, for each distance d (in BIM-provided
 * predictions) from the most recent BIM-provided misprediction, the
 * misprediction rate of BIM predictions at that distance — the decay
 * curve that justifies the paper's window of 8.
 */

#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "core/confidence_observer.hpp"
#include "sim/experiment.hpp"
#include "tage/tage_predictor.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

constexpr int kMaxDistance = 16;

struct BurstHistogram {
    // [distance]: BIM predictions and mispredictions at that distance
    // from the last BIM misprediction; the last bucket aggregates
    // everything at distance >= kMaxDistance.
    std::array<uint64_t, kMaxDistance + 1> predictions{};
    std::array<uint64_t, kMaxDistance + 1> mispredictions{};
};

void
collect(BurstHistogram& h, BenchmarkSet set, const TageConfig& cfg,
        uint64_t branches, uint64_t seed_salt)
{
    for (const auto& name : traceNames(set)) {
        SyntheticTrace trace = makeTrace(name, branches, seed_salt);
        TagePredictor predictor(cfg);
        int distance = kMaxDistance; // start "far" from any miss

        BranchRecord rec;
        while (trace.next(rec)) {
            const TagePrediction p = predictor.predict(rec.pc);
            const bool mispredicted = p.taken != rec.taken;
            if (!p.providerIsTagged) {
                const auto d = static_cast<size_t>(
                    distance < kMaxDistance ? distance : kMaxDistance);
                ++h.predictions[d];
                if (mispredicted)
                    ++h.mispredictions[d];
                distance = mispredicted
                               ? 0
                               : (distance < kMaxDistance ? distance + 1
                                                          : distance);
            }
            predictor.update(rec.pc, p, rec.taken);
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("BIM misprediction bursts (basis of "
                       "medium-conf-bim)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 5.1.2", opt);

    BurstHistogram h16;
    collect(h16, BenchmarkSet::Cbp1, TageConfig::small16K(),
            opt.branchesPerTrace, opt.seedSalt);
    BurstHistogram h256;
    collect(h256, BenchmarkSet::Cbp1, TageConfig::large256K(),
            opt.branchesPerTrace, opt.seedSalt);

    TextTable t;
    t.addColumn("BIM preds since last BIM miss", TextTable::Align::Left);
    t.addColumn("16K: Pcov-of-BIM %");
    t.addColumn("16K: MPrate (MKP)");
    t.addColumn("256K: Pcov-of-BIM %");
    t.addColumn("256K: MPrate (MKP)");

    auto total = [](const BurstHistogram& h) {
        uint64_t n = 0;
        for (const auto v : h.predictions)
            n += v;
        return n;
    };
    const double t16 = static_cast<double>(total(h16));
    const double t256 = static_cast<double>(total(h256));

    for (int d = 0; d <= kMaxDistance; ++d) {
        const auto i = static_cast<size_t>(d);
        auto rate = [&](const BurstHistogram& h) {
            return h.predictions[i] == 0
                       ? 0.0
                       : 1000.0 *
                             static_cast<double>(h.mispredictions[i]) /
                             static_cast<double>(h.predictions[i]);
        };
        const std::string label =
            d < kMaxDistance ? std::to_string(d)
                             : (">= " + std::to_string(kMaxDistance));
        t.addRow({label,
                  TextTable::num(100.0 *
                                     static_cast<double>(
                                         h16.predictions[i]) / t16, 2),
                  TextTable::num(rate(h16), 0),
                  TextTable::num(100.0 *
                                     static_cast<double>(
                                         h256.predictions[i]) / t256, 2),
                  TextTable::num(rate(h256), 0)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\npaper anchor: the first ~8 post-miss BIM "
                 "predictions run at 80-150 MKP on the 16K predictor; "
                 "far-from-miss BIM predictions run at ~9 MKP.\n"
                 "expected shape: monotonically decaying rate with a "
                 "knee around the paper's window of 8, at both sizes.\n";
    return 0;
}
