/**
 * @file
 * Reproduces the observation behind the medium-conf-bim class
 * (Sec. 5.1.2): "the predictions from the BIM class that occur just
 * after a misprediction also in the BIM class (up to 8 branches in
 * the illustrated experiments) are also quite likely to be
 * mispredicted (in the range of 80-150 MKP for the 16Kbits predictor
 * for CBP1)".
 *
 * The measurement itself is the BurstObserver (--analysis=burst:...):
 * for each distance d in BIM-provided predictions from the most recent
 * BIM-provided misprediction, the misprediction rate of BIM
 * predictions at that distance — the decay curve that justifies the
 * paper's window of 8. This bench drives it through a (spec x CBP-1)
 * SweepPlan and prints each spec's cross-trace pooled curve, so the
 * numbers are bit-identical at any --jobs.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/reporting.hpp"
#include "sim/sweep.hpp"

using namespace tagecon;

namespace {

constexpr uint64_t kMaxDistance = 16;

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);

    std::vector<std::string> specs = opt.predictors;
    if (specs.empty())
        specs = {"tage16k+sfc", "tage256k+sfc"};

    SweepPlan plan;
    plan.specs = specs;
    std::string error;
    if (!SweepPlan::resolveTraceArgs({"cbp1"}, plan.traces, error))
        fatal(error);
    plan.branchesPerTrace = opt.branchesPerTrace;
    plan.seedSalt = opt.seedSalt;
    plan.analysis = opt.analysis;
    plan.analysis.burst = true;
    plan.analysis.burstMaxDistance = kMaxDistance;
    if (!plan.validate(&error))
        fatal(error);

    const auto rows = runSweepRows(plan, {.jobs = opt.jobs});

    Report report = bench::makeReport(
        "bim_burst",
        "BIM misprediction bursts (basis of medium-conf-bim)",
        "Seznec, RR-7371 / HPCA 2011, Sec. 5.1.2", opt);

    size_t row_idx = 0;
    for (const auto& r : rows) {
        if (row_idx > 0)
            report.addBlank();
        ReportTable rt = burstAnalysisTable(
            *r.pooledBurst, "burst" + std::to_string(row_idx));
        rt.heading = r.spec + " (pooled over CBP-1)";
        report.addTable(std::move(rt));
        ++row_idx;
    }

    report.addBlank();
    report.addText("paper anchor: the first ~8 post-miss BIM "
                   "predictions run at 80-150 MKP on the 16K predictor; "
                   "far-from-miss BIM predictions run at ~9 MKP.");
    report.addText("expected shape: monotonically decaying rate with a "
                   "knee around the paper's window of 8, at both "
                   "sizes.");

    report.emit(opt.format, std::cout);
    return 0;
}
