/**
 * @file
 * Shared plumbing for the experiment binaries: flag parsing and the
 * standard header each bench prints.
 */

#ifndef TAGECON_BENCH_BENCH_COMMON_HPP
#define TAGECON_BENCH_BENCH_COMMON_HPP

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/registry.hpp"
#include "util/cli.hpp"

namespace tagecon::bench {

/** Options every experiment binary accepts. */
struct BenchOptions {
    /** Branches generated per trace (--branches). */
    uint64_t branchesPerTrace = 1000000;

    /** Extra seed salt applied to every trace (--seed). */
    uint64_t seedSalt = 0;

    /** Emit CSV instead of aligned text (--csv). */
    bool csv = false;

    /**
     * Worker threads for sweep-based benches (--jobs=N); 0 means
     * hardware concurrency. Results are bit-identical at any value.
     */
    unsigned jobs = 1;

    /**
     * Registry specs to drive (--predictors=a,b,c). Empty means the
     * bench's built-in default lineup.
     */
    std::vector<std::string> predictors;
};

/** Parse the standard flags. --list-predictors prints specs and exits. */
inline BenchOptions
parseOptions(int argc, char** argv)
{
    CliArgs args(argc, argv);
    if (args.has("list-predictors")) {
        std::cout << "registered predictor bases:\n";
        for (const auto& name : registeredBases())
            std::cout << "  " << name << "\n";
        std::cout << "estimator tokens:\n";
        for (const auto& name : registeredEstimators())
            std::cout << "  " << name << "\n";
        std::cout << "example specs:\n";
        for (const auto& spec : exampleSpecs())
            std::cout << "  " << spec << "\n";
        std::exit(0);
    }
    BenchOptions opt;
    opt.branchesPerTrace = args.getUint("branches", opt.branchesPerTrace);
    opt.seedSalt = args.getUint("seed", 0);
    opt.csv = args.getBool("csv", false);
    // 0 keeps its documented "hardware concurrency" meaning here, but
    // the range check stops 2^32-wrapping values from silently
    // becoming 0 through the narrowing cast.
    opt.jobs = static_cast<unsigned>(
        args.getUintInRange("jobs", opt.jobs, 0, 1024));
    // Rejoin parameterized specs the comma-split cut apart.
    opt.predictors = regroupSpecList(args.getList("predictors"));
    return opt;
}

/**
 * Print the standard experiment banner. @p show_jobs is set by the
 * sweep-driven benches, which actually honor --jobs; the serial
 * benches omit the field so the banner never advertises parallelism
 * that does not exist.
 */
inline void
printHeader(const std::string& experiment, const std::string& paper_ref,
            const BenchOptions& opt, bool show_jobs = false)
{
    std::cout << "=== " << experiment << " ===\n"
              << "reproduces: " << paper_ref << "\n"
              << "branches/trace: " << opt.branchesPerTrace
              << "  seed-salt: " << opt.seedSalt;
    if (show_jobs)
        std::cout << "  jobs: " << opt.jobs;
    std::cout << "\n\n";
}

} // namespace tagecon::bench

#endif // TAGECON_BENCH_BENCH_COMMON_HPP
