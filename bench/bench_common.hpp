/**
 * @file
 * Shared plumbing for the experiment binaries: flag parsing and the
 * standard header each bench prints.
 */

#ifndef TAGECON_BENCH_BENCH_COMMON_HPP
#define TAGECON_BENCH_BENCH_COMMON_HPP

#include <cstdint>
#include <iostream>
#include <string>

#include "util/cli.hpp"

namespace tagecon::bench {

/** Options every experiment binary accepts. */
struct BenchOptions {
    /** Branches generated per trace (--branches). */
    uint64_t branchesPerTrace = 1000000;

    /** Extra seed salt applied to every trace (--seed). */
    uint64_t seedSalt = 0;

    /** Emit CSV instead of aligned text (--csv). */
    bool csv = false;
};

/** Parse the standard flags. */
inline BenchOptions
parseOptions(int argc, char** argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt;
    opt.branchesPerTrace = args.getUint("branches", opt.branchesPerTrace);
    opt.seedSalt = args.getUint("seed", 0);
    opt.csv = args.getBool("csv", false);
    return opt;
}

/** Print the standard experiment banner. */
inline void
printHeader(const std::string& experiment, const std::string& paper_ref,
            const BenchOptions& opt)
{
    std::cout << "=== " << experiment << " ===\n"
              << "reproduces: " << paper_ref << "\n"
              << "branches/trace: " << opt.branchesPerTrace
              << "  seed-salt: " << opt.seedSalt << "\n\n";
}

} // namespace tagecon::bench

#endif // TAGECON_BENCH_BENCH_COMMON_HPP
