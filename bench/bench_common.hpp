/**
 * @file
 * Shared plumbing for the experiment binaries: flag parsing and the
 * standard header each bench prints.
 */

#ifndef TAGECON_BENCH_BENCH_COMMON_HPP
#define TAGECON_BENCH_BENCH_COMMON_HPP

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analysis_config.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace tagecon::bench {

/** Options every experiment binary accepts. */
struct BenchOptions {
    /** Branches generated per trace (--branches). */
    uint64_t branchesPerTrace = 1000000;

    /** Extra seed salt applied to every trace (--seed). */
    uint64_t seedSalt = 0;

    /** Emit CSV instead of aligned text (--csv). */
    bool csv = false;

    /**
     * Output format (--report=text|csv|json); --csv is a legacy alias
     * for --report=csv. Honored by the report-emitting benches.
     */
    ReportFormat format = ReportFormat::Text;

    /**
     * Worker threads for sweep-based benches (--jobs=N); 0 means
     * hardware concurrency. Results are bit-identical at any value.
     */
    unsigned jobs = 1;

    /**
     * Run-analysis observers to attach (--analysis=spec,spec,...),
     * e.g. --analysis=histogram,perbranch:top=8. Empty (default)
     * keeps the bench on the zero-overhead loop and its historical
     * byte-stable output.
     */
    AnalysisConfig analysis;

    /**
     * Registry specs to drive (--predictors=a,b,c). Empty means the
     * bench's built-in default lineup.
     */
    std::vector<std::string> predictors;
};

/**
 * Parse the standard flags. --list-predictors prints specs and exits.
 *
 * @param structured_output True for benches that emit through the
 *        Report layer (figure/table/section/warmup reproductions):
 *        they honor --report=json and --analysis. Benches that still
 *        print directly pass false, and those flags fatal() instead
 *        of being silently ignored (--report=text/csv still work —
 *        they map onto the historical text/--csv output).
 */
inline BenchOptions
parseOptions(int argc, char** argv, bool structured_output = true)
{
    CliArgs args(argc, argv);
    if (args.has("list-predictors")) {
        std::cout << "registered predictor bases:\n";
        for (const auto& name : registeredBases())
            std::cout << "  " << name << "\n";
        std::cout << "estimator tokens:\n";
        for (const auto& name : registeredEstimators())
            std::cout << "  " << name << "\n";
        std::cout << "example specs:\n";
        for (const auto& spec : exampleSpecs())
            std::cout << "  " << spec << "\n";
        std::exit(0);
    }
    BenchOptions opt;
    opt.branchesPerTrace = args.getUint("branches", opt.branchesPerTrace);
    opt.seedSalt = args.getUint("seed", 0);
    opt.csv = args.getBool("csv", false);
    if (opt.csv)
        opt.format = ReportFormat::Csv;
    if (args.has("report")) {
        std::string error;
        if (!parseReportFormat(args.getString("report", "text"),
                               opt.format, error))
            fatal(error);
        if (!structured_output && opt.format == ReportFormat::Json)
            fatal("this bench does not emit structured reports; "
                  "--report=json is only available on the "
                  "figure/table/section/warmup benches");
        opt.csv = opt.format == ReportFormat::Csv;
    }
    // 0 keeps its documented "hardware concurrency" meaning here, but
    // the range check stops 2^32-wrapping values from silently
    // becoming 0 through the narrowing cast.
    opt.jobs = static_cast<unsigned>(
        args.getUintInRange("jobs", opt.jobs, 0, 1024));
    {
        const auto specs = regroupSpecList(args.getList("analysis"));
        if (!structured_output && !specs.empty())
            fatal("this bench does not run analysis observers; "
                  "--analysis is only available on the "
                  "figure/table/section/warmup benches and "
                  "tagecon_sweep");
        std::string error;
        if (!parseAnalysisSpecs(specs, opt.analysis, error))
            fatal(error);
    }
    // Rejoin parameterized specs the comma-split cut apart.
    opt.predictors = regroupSpecList(args.getList("predictors"));
    return opt;
}

/**
 * Start the standard report of a sweep-driven bench: banner title,
 * paper reference and the run-parameter meta line (branches, seed and
 * — since these benches honor --jobs — the worker count when not 1).
 */
inline Report
makeReport(std::string id, std::string title, std::string paper_ref,
           const BenchOptions& opt)
{
    Report r(std::move(id), std::move(title), std::move(paper_ref));
    r.addMeta("branches/trace", std::to_string(opt.branchesPerTrace));
    r.addMeta("seed-salt", std::to_string(opt.seedSalt));
    if (opt.jobs != 1)
        r.addMeta("jobs", std::to_string(opt.jobs));
    return r;
}

/**
 * Print the standard experiment banner. @p show_jobs is set by the
 * sweep-driven benches, which actually honor --jobs; the serial
 * benches omit the field so the banner never advertises parallelism
 * that does not exist.
 */
inline void
printHeader(const std::string& experiment, const std::string& paper_ref,
            const BenchOptions& opt, bool show_jobs = false)
{
    std::cout << "=== " << experiment << " ===\n"
              << "reproduces: " << paper_ref << "\n"
              << "branches/trace: " << opt.branchesPerTrace
              << "  seed-salt: " << opt.seedSalt;
    if (show_jobs)
        std::cout << "  jobs: " << opt.jobs;
    std::cout << "\n\n";
}

} // namespace tagecon::bench

#endif // TAGECON_BENCH_BENCH_COMMON_HPP
