/**
 * @file
 * Reproduces Figure 2 of the paper: for each CBP-1 trace and each of
 * the three predictor sizes, the distribution of predictions over the
 * 7 confidence classes (left panels, printed as coverage %) and the
 * distribution of mispredictions (right panels, printed as per-class
 * misp/KI contributions). Baseline (unmodified) update automaton.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 2: prediction/misprediction distribution, "
                       "CBP-1",
                       "Seznec, RR-7371 / HPCA 2011, Figure 2", opt);

    for (const TageConfig& cfg : TageConfig::paperConfigs()) {
        RunConfig rc;
        rc.predictor = cfg;
        const SetResult result = runBenchmarkSet(BenchmarkSet::Cbp1, rc,
                                                 opt.branchesPerTrace,
                                                 opt.seedSalt);

        std::cout << "--- " << cfg.name
                  << " predictor: prediction coverage per class (%) "
                     "[Fig. 2 left] ---\n";
        auto cov = coverageTable(result);
        if (opt.csv)
            cov.renderCsv(std::cout);
        else
            cov.render(std::cout);

        std::cout << "\n--- " << cfg.name
                  << " predictor: misprediction contribution (misp/KI) "
                     "[Fig. 2 right] ---\n";
        auto mpki = mpkiBreakdownTable(result);
        if (opt.csv)
            mpki.renderCsv(std::cout);
        else
            mpki.render(std::cout);
        std::cout << "\n";
    }

    std::cout << "expected shape: SERV traces are BIM-heavy with large "
                 "medium-conf-bim coverage on the 16K predictor;\n"
                 "low/medium-conf-bim nearly vanish on the 256K "
                 "predictor; Stag covers roughly half the predictions.\n";
    return 0;
}
