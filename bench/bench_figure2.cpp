/**
 * @file
 * Reproduces Figure 2 of the paper: for each CBP-1 trace and each of
 * the three predictor sizes, the distribution of predictions over the
 * 7 confidence classes (left panels, printed as coverage %) and the
 * distribution of mispredictions (right panels, printed as per-class
 * misp/KI contributions). Baseline (unmodified) update automaton.
 *
 * Declarative: one SweepPlan (3 sizes x CBP-1), rendered through the
 * structured report emitters (--report=text|csv|json), with optional
 * run-analysis observers (--analysis=...).
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "figure2",
        "Figure 2: prediction/misprediction distribution, CBP-1",
        "Seznec, RR-7371 / HPCA 2011, Figure 2", opt);

    const auto sizes = bench::paperSizes();
    const auto rows =
        bench::runSetGrid(bench::specsOf(sizes), BenchmarkSet::Cbp1,
                          opt);

    for (size_t i = 0; i < rows.size(); ++i) {
        const std::string& label = sizes[i].label;
        bench::addDistributionPanels(
            r, rows[i], toLower(label),
            label + " predictor: prediction coverage per class (%) "
                    "[Fig. 2 left]",
            label + " predictor: misprediction contribution (misp/KI) "
                    "[Fig. 2 right]",
            opt);
    }

    r.addText("expected shape: SERV traces are BIM-heavy with large "
              "medium-conf-bim coverage on the 16K predictor;\n"
              "low/medium-conf-bim nearly vanish on the 256K "
              "predictor; Stag covers roughly half the predictions.");
    r.emit(opt.format, std::cout);
    return 0;
}
