/**
 * @file
 * Reproduces Figure 3 of the paper: the Figure 2 panels for the CBP-2
 * trace set (prediction coverage and per-class misp/KI contributions
 * for the three predictor sizes, baseline automaton). Declarative:
 * one SweepPlan (3 sizes x CBP-2) + report emitters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "figure3",
        "Figure 3: prediction/misprediction distribution, CBP-2",
        "Seznec, RR-7371 / HPCA 2011, Figure 3", opt);

    const auto sizes = bench::paperSizes();
    const auto rows =
        bench::runSetGrid(bench::specsOf(sizes), BenchmarkSet::Cbp2,
                          opt);

    for (size_t i = 0; i < rows.size(); ++i) {
        const std::string& label = sizes[i].label;
        bench::addDistributionPanels(
            r, rows[i], toLower(label),
            label + " predictor: prediction coverage per class (%) "
                    "[Fig. 3 left]",
            label + " predictor: misprediction contribution (misp/KI) "
                    "[Fig. 3 right]",
            opt);
    }

    r.addText("expected shape: twolf/gzip/vpr carry large tagged-class "
              "misprediction shares; mpegaudio/eon/raytrace are almost "
              "entirely high-conf-bim + Stag.");
    r.emit(opt.format, std::cout);
    return 0;
}
