/**
 * @file
 * Reproduces Figure 3 of the paper: the Figure 2 panels for the CBP-2
 * trace set (prediction coverage and per-class misp/KI contributions
 * for the three predictor sizes, baseline automaton).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 3: prediction/misprediction distribution, "
                       "CBP-2",
                       "Seznec, RR-7371 / HPCA 2011, Figure 3", opt);

    for (const TageConfig& cfg : TageConfig::paperConfigs()) {
        RunConfig rc;
        rc.predictor = cfg;
        const SetResult result = runBenchmarkSet(BenchmarkSet::Cbp2, rc,
                                                 opt.branchesPerTrace,
                                                 opt.seedSalt);

        std::cout << "--- " << cfg.name
                  << " predictor: prediction coverage per class (%) "
                     "[Fig. 3 left] ---\n";
        auto cov = coverageTable(result);
        if (opt.csv)
            cov.renderCsv(std::cout);
        else
            cov.render(std::cout);

        std::cout << "\n--- " << cfg.name
                  << " predictor: misprediction contribution (misp/KI) "
                     "[Fig. 3 right] ---\n";
        auto mpki = mpkiBreakdownTable(result);
        if (opt.csv)
            mpki.renderCsv(std::cout);
        else
            mpki.render(std::cout);
        std::cout << "\n";
    }

    std::cout << "expected shape: twolf/gzip/vpr carry large tagged-class "
                 "misprediction shares; mpegaudio/eon/raytrace are almost "
                 "entirely high-conf-bim + Stag.\n";
    return 0;
}
