/**
 * @file
 * Reproduces Figure 4 of the paper: misprediction rate (in
 * mispredictions per kilo-prediction, MKP) of each of the 7 confidence
 * classes on the first CBP-2 traces (164.gzip .. 197.parser), 64Kbit
 * predictor, baseline automaton.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 4: per-class misprediction rates (MKP), "
                       "64Kbit, CBP-2",
                       "Seznec, RR-7371 / HPCA 2011, Figure 4", opt);

    RunConfig rc;
    rc.predictor = TageConfig::medium64K();
    const SetResult result = runBenchmarkSet(BenchmarkSet::Cbp2, rc,
                                             opt.branchesPerTrace,
                                             opt.seedSalt);

    const std::vector<std::string> figure_traces = {
        "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
        "197.parser",
    };
    auto t = mprateTable(result, figure_traces);
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nset-wide per-class rates (MKP):\n";
    TextTable avg;
    avg.addColumn("class", TextTable::Align::Left);
    avg.addColumn("MPrate (MKP)");
    for (const auto c : kAllPredictionClasses) {
        avg.addRow({predictionClassName(c),
                    TextTable::num(result.aggregate.mprateMkp(c), 0)});
    }
    avg.addRow({"average", TextTable::num(result.aggregate.totalMkp(), 0)});
    avg.render(std::cout);

    std::cout << "\nexpected shape: Wtag > NWtag > NStag >> Stag ~ "
                 "average; low-conf-bim ~300+ MKP; high-conf-bim lowest.\n";
    return 0;
}
