/**
 * @file
 * Reproduces Figure 4 of the paper: misprediction rate (in
 * mispredictions per kilo-prediction, MKP) of each of the 7 confidence
 * classes on the first CBP-2 traces (164.gzip .. 197.parser), 64Kbit
 * predictor, baseline automaton. Declarative: a one-spec SweepPlan
 * over CBP-2 + report emitters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "figure4",
        "Figure 4: per-class misprediction rates (MKP), 64Kbit, CBP-2",
        "Seznec, RR-7371 / HPCA 2011, Figure 4", opt);

    const auto rows =
        bench::runSetGrid({"tage64k"}, BenchmarkSet::Cbp2, opt);
    const SweepRow& row = rows.front();

    const std::vector<std::string> figure_traces = {
        "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
        "197.parser",
    };
    r.addTable(ReportTable{"mprate", "",
                           mprateTable(row.perTrace, figure_traces)});
    r.addBlank();
    r.addText("set-wide per-class rates (MKP):");
    r.addTable(
        ReportTable{"class-rates", "", classRateTable(row.aggregate)});
    r.addBlank();
    if (opt.analysis.enabled()) {
        for (const auto& rr : row.perTrace)
            addAnalysisSections(r, rr, toLower(rr.traceName));
    }

    r.addText("expected shape: Wtag > NWtag > NStag >> Stag ~ "
              "average; low-conf-bim ~300+ MKP; high-conf-bim lowest.");
    r.emit(opt.format, std::cout);
    return 0;
}
