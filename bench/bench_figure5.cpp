/**
 * @file
 * Reproduces Figure 5 of the paper: prediction / misprediction
 * distributions with the modified 3-bit counter automaton (p = 1/128)
 * for the three panels the paper shows: 16Kbit on CBP-1, 64Kbit on
 * CBP-2 and 256Kbit on CBP-1.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"

using namespace tagecon;

namespace {

void
runPanel(const TageConfig& cfg, BenchmarkSet set,
         const tagecon::bench::BenchOptions& opt)
{
    RunConfig rc;
    rc.predictor = cfg.withProbabilisticSaturation(7);
    const SetResult result =
        runBenchmarkSet(set, rc, opt.branchesPerTrace,
                        opt.seedSalt);

    std::cout << "--- " << cfg.name << " predictor, "
              << benchmarkSetName(set)
              << ": prediction coverage per class (%) ---\n";
    auto cov = coverageTable(result);
    if (opt.csv)
        cov.renderCsv(std::cout);
    else
        cov.render(std::cout);

    std::cout << "\n--- " << cfg.name << " predictor, "
              << benchmarkSetName(set)
              << ": misprediction contribution (misp/KI) ---\n";
    auto mpki = mpkiBreakdownTable(result);
    if (opt.csv)
        mpki.renderCsv(std::cout);
    else
        mpki.render(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = tagecon::bench::parseOptions(argc, argv);
    tagecon::bench::printHeader(
        "Figure 5: distributions with the modified automaton (p=1/128)",
        "Seznec, RR-7371 / HPCA 2011, Figure 5", opt);

    runPanel(TageConfig::small16K(), BenchmarkSet::Cbp1, opt);
    runPanel(TageConfig::medium64K(), BenchmarkSet::Cbp2, opt);
    runPanel(TageConfig::large256K(), BenchmarkSet::Cbp1, opt);

    std::cout << "expected shape vs Figure 2/3: Stag shrinks and its "
                 "misprediction contribution nearly vanishes; NStag "
                 "grows and absorbs the medium-rate mispredictions.\n";
    return 0;
}
