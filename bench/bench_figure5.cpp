/**
 * @file
 * Reproduces Figure 5 of the paper: prediction / misprediction
 * distributions with the modified 3-bit counter automaton (p = 1/128)
 * for the three panels the paper shows: 16Kbit on CBP-1, 64Kbit on
 * CBP-2 and 256Kbit on CBP-1. Declarative: one single-spec SweepPlan
 * per panel + report emitters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

namespace {

void
addPanel(Report& r, const std::string& label, const std::string& spec,
         BenchmarkSet set, const tagecon::bench::BenchOptions& opt)
{
    const auto rows = tagecon::bench::runSetGrid({spec}, set, opt);
    const std::string set_name = benchmarkSetName(set);
    tagecon::bench::addDistributionPanels(
        r, rows.front(), toLower(label + "-" + set_name),
        label + " predictor, " + set_name +
            ": prediction coverage per class (%)",
        label + " predictor, " + set_name +
            ": misprediction contribution (misp/KI)",
        opt);
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = tagecon::bench::parseOptions(argc, argv);
    Report r = tagecon::bench::makeReport(
        "figure5",
        "Figure 5: distributions with the modified automaton (p=1/128)",
        "Seznec, RR-7371 / HPCA 2011, Figure 5", opt);

    addPanel(r, "16K", "tage16k+prob7", BenchmarkSet::Cbp1, opt);
    addPanel(r, "64K", "tage64k+prob7", BenchmarkSet::Cbp2, opt);
    addPanel(r, "256K", "tage256k+prob7", BenchmarkSet::Cbp1, opt);

    r.addText("expected shape vs Figure 2/3: Stag shrinks and its "
              "misprediction contribution nearly vanishes; NStag "
              "grows and absorbs the medium-rate mispredictions.");
    r.emit(opt.format, std::cout);
    return 0;
}
