/**
 * @file
 * Reproduces Figure 6 of the paper: per-class misprediction rates
 * (MKP) on the first CBP-2 traces, 64Kbit predictor, with the
 * modified 3-bit counter automaton (p = 1/128).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 6: per-class MKP with modified automaton, "
                       "64Kbit, CBP-2",
                       "Seznec, RR-7371 / HPCA 2011, Figure 6", opt);

    RunConfig rc;
    rc.predictor = TageConfig::medium64K().withProbabilisticSaturation(7);
    const SetResult result = runBenchmarkSet(BenchmarkSet::Cbp2, rc,
                                             opt.branchesPerTrace,
                                             opt.seedSalt);

    const std::vector<std::string> figure_traces = {
        "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
        "197.parser",
    };
    auto t = mprateTable(result, figure_traces);
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nset-wide per-class rates (MKP):\n";
    TextTable avg;
    avg.addColumn("class", TextTable::Align::Left);
    avg.addColumn("MPrate (MKP)");
    for (const auto c : kAllPredictionClasses) {
        avg.addRow({predictionClassName(c),
                    TextTable::num(result.aggregate.mprateMkp(c), 0)});
    }
    avg.addRow({"average", TextTable::num(result.aggregate.totalMkp(), 0)});
    avg.render(std::cout);

    std::cout << "\nexpected shape vs Figure 4: MPrate(Stag) collapses "
                 "to the 1-5 MKP range; NStag drops toward the 50-100 "
                 "MKP range.\n";
    return 0;
}
