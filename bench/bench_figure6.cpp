/**
 * @file
 * Reproduces Figure 6 of the paper: per-class misprediction rates
 * (MKP) on the first CBP-2 traces, 64Kbit predictor, with the
 * modified 3-bit counter automaton (p = 1/128). Declarative: a
 * one-spec SweepPlan over CBP-2 + report emitters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "figure6",
        "Figure 6: per-class MKP with modified automaton, 64Kbit, "
        "CBP-2",
        "Seznec, RR-7371 / HPCA 2011, Figure 6", opt);

    const auto rows =
        bench::runSetGrid({"tage64k+prob7"}, BenchmarkSet::Cbp2, opt);
    const SweepRow& row = rows.front();

    const std::vector<std::string> figure_traces = {
        "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
        "197.parser",
    };
    r.addTable(ReportTable{"mprate", "",
                           mprateTable(row.perTrace, figure_traces)});
    r.addBlank();
    r.addText("set-wide per-class rates (MKP):");
    r.addTable(
        ReportTable{"class-rates", "", classRateTable(row.aggregate)});
    r.addBlank();
    if (opt.analysis.enabled()) {
        for (const auto& rr : row.perTrace)
            addAnalysisSections(r, rr, toLower(rr.traceName));
    }

    r.addText("expected shape vs Figure 4: MPrate(Stag) collapses "
              "to the 1-5 MKP range; NStag drops toward the 50-100 "
              "MKP range.");
    r.emit(opt.format, std::cout);
    return 0;
}
