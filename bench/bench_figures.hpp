/**
 * @file
 * Shared building blocks of the figure/table reproduction benches,
 * which are all declarative now: a SweepPlan names the (spec x trace)
 * grid, runSweepRows() executes it (in parallel under --jobs, with
 * any --analysis observers attached per cell), and the results are
 * rendered through the structured Report emitters. No bench owns a
 * simulation loop or a printf anymore.
 */

#ifndef TAGECON_BENCH_BENCH_FIGURES_HPP
#define TAGECON_BENCH_BENCH_FIGURES_HPP

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/reporting.hpp"
#include "sim/sweep.hpp"
#include "util/text.hpp"

namespace tagecon::bench {

/** One paper predictor size: display label + registry spec. */
struct SizeSpec {
    std::string label; ///< paper name ("16K", "64K", "256K")
    std::string spec;  ///< registry spec that reproduces it
};

/**
 * The three Table 1 sizes, optionally with the Sec. 6 modified
 * automaton (p = 1/128) and the Sec. 6.2 adaptive controller.
 */
inline std::vector<SizeSpec>
paperSizes(bool prob7 = false, bool adaptive = false)
{
    std::string suffix;
    if (prob7)
        suffix += "+prob7";
    if (adaptive)
        suffix += "+adaptive";
    return {{"16K", "tage16k" + suffix},
            {"64K", "tage64k" + suffix},
            {"256K", "tage256k" + suffix}};
}

/** The registry specs of a lineup, in order. */
inline std::vector<std::string>
specsOf(const std::vector<SizeSpec>& sizes)
{
    std::vector<std::string> specs;
    specs.reserve(sizes.size());
    for (const auto& s : sizes)
        specs.push_back(s.spec);
    return specs;
}

/**
 * Build and run the bench's grid: @p specs x the traces of @p set,
 * with the run parameters and analysis observers of @p opt. One
 * pooled row per spec, bit-identical at any --jobs.
 */
inline std::vector<SweepRow>
runSetGrid(const std::vector<std::string>& specs, BenchmarkSet set,
           const BenchOptions& opt)
{
    SweepPlan plan = SweepPlan::over(specs, traceNames(set),
                                     opt.branchesPerTrace, opt.seedSalt);
    plan.analysis = opt.analysis;
    return runSweepRows(plan, SweepOptions{opt.jobs, {}});
}

/** Like runSetGrid() but over the concatenated traces of two sets. */
inline std::vector<SweepRow>
runTwoSetGrid(const std::vector<std::string>& specs, BenchmarkSet a,
              BenchmarkSet b, const BenchOptions& opt)
{
    std::vector<std::string> traces = traceNames(a);
    const auto& second = traceNames(b);
    traces.insert(traces.end(), second.begin(), second.end());
    SweepPlan plan = SweepPlan::over(specs, traces,
                                     opt.branchesPerTrace, opt.seedSalt);
    plan.analysis = opt.analysis;
    return runSweepRows(plan, SweepOptions{opt.jobs, {}});
}

/**
 * Append the Figure 2/3/5 panel pair for one row — prediction
 * coverage and per-class misp/KI contribution — followed by any
 * attached analysis sections.
 */
inline void
addDistributionPanels(Report& r, const SweepRow& row,
                      const std::string& id_suffix,
                      const std::string& cov_heading,
                      const std::string& mpki_heading,
                      const BenchOptions& opt)
{
    r.addTable(ReportTable{"coverage-" + id_suffix, cov_heading,
                           coverageTable(row.perTrace, row.aggregate)});
    r.addBlank();
    r.addTable(
        ReportTable{"mpki-" + id_suffix, mpki_heading,
                    mpkiBreakdownTable(row.perTrace, row.aggregate)});
    r.addBlank();
    if (opt.analysis.enabled()) {
        for (const auto& rr : row.perTrace)
            addAnalysisSections(
                r, rr, id_suffix + "-" + toLower(rr.traceName));
    }
}

/**
 * Pooled per-set statistics of one row of a two-set grid: merge the
 * slice of perTrace cells belonging to the first (when @p first) or
 * second set, and the mean of their per-trace MPKIs — exactly the
 * fold runBenchmarkSet() historically produced.
 */
struct SetSlice {
    ClassStats aggregate;
    double meanMpki = 0.0;
};

inline SetSlice
sliceSet(const SweepRow& row, size_t first_set_traces, bool first)
{
    SetSlice slice;
    const size_t begin = first ? 0 : first_set_traces;
    const size_t end = first ? first_set_traces : row.perTrace.size();
    double mpki_sum = 0.0;
    for (size_t i = begin; i < end; ++i) {
        slice.aggregate.merge(row.perTrace[i].stats);
        mpki_sum += row.perTrace[i].stats.mpki();
    }
    if (end > begin)
        slice.meanMpki = mpki_sum / static_cast<double>(end - begin);
    return slice;
}

} // namespace tagecon::bench

#endif // TAGECON_BENCH_BENCH_FIGURES_HPP
