/**
 * @file
 * google-benchmark microbenchmarks: simulation throughput of the TAGE
 * predictor (predict + update per branch) for the three paper sizes,
 * the incremental cost of confidence classification, and the synthetic
 * trace generator's own throughput.
 */

#include <benchmark/benchmark.h>

#include "core/confidence_observer.hpp"
#include "tage/tage_predictor.hpp"
#include "trace/profiles.hpp"

using namespace tagecon;

namespace {

constexpr uint64_t kTraceLength = 1u << 18;

/** Pre-materialized branch stream so generation cost is excluded. */
const VectorTrace&
sharedTrace()
{
    static const VectorTrace trace = [] {
        SyntheticTrace src = makeTrace("INT-1", kTraceLength);
        return materialize(src, kTraceLength);
    }();
    return trace;
}

TageConfig
configByIndex(int64_t idx)
{
    switch (idx) {
      case 0:
        return TageConfig::small16K();
      case 1:
        return TageConfig::medium64K();
      default:
        return TageConfig::large256K();
    }
}

void
BM_TagePredictUpdate(benchmark::State& state)
{
    const auto& records = sharedTrace().records();
    TagePredictor predictor(configByIndex(state.range(0)));
    size_t i = 0;
    for (auto _ : state) {
        const BranchRecord& rec = records[i];
        TagePrediction p = predictor.predict(rec.pc);
        benchmark::DoNotOptimize(p.taken);
        predictor.update(rec.pc, p, rec.taken);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_TagePredictUpdateClassify(benchmark::State& state)
{
    const auto& records = sharedTrace().records();
    TagePredictor predictor(configByIndex(state.range(0)));
    ConfidenceObserver observer;
    uint64_t class_histogram[kNumPredictionClasses] = {};
    size_t i = 0;
    for (auto _ : state) {
        const BranchRecord& rec = records[i];
        TagePrediction p = predictor.predict(rec.pc);
        const PredictionClass cls = observer.classify(p);
        ++class_histogram[classIndex(cls)];
        observer.onResolve(p, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
        i = (i + 1) % records.size();
    }
    benchmark::DoNotOptimize(class_histogram);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_SyntheticTraceGeneration(benchmark::State& state)
{
    SyntheticTrace trace = makeTrace("SERV-1", ~uint64_t{0});
    BranchRecord rec;
    for (auto _ : state) {
        if (!trace.next(rec))
            trace.reset();
        benchmark::DoNotOptimize(rec.taken);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_TagePredictUpdate)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_TagePredictUpdateClassify)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_SyntheticTraceGeneration);

} // namespace

BENCHMARK_MAIN();
