/**
 * @file
 * google-benchmark microbenchmarks: simulation throughput of the TAGE
 * predictor for the three paper sizes, split by phase so storage-
 * layout work is attributable:
 *
 *  - BM_TagePredictUpdate: the full per-branch loop (the sweep
 *    engine's unit of work),
 *  - BM_TagePredictUpdateBatched: the same work through the fused
 *    predictMany() step at batch 16 / 64 / 512 (second Arg). One
 *    state iteration processes a whole batch; compare per-branch
 *    costs via items_per_second,
 *  - BM_TagePredictOnly: the lookup path alone on warmed tables,
 *  - BM_TageUpdateOnly: the training path alone, replaying a recorded
 *    prediction stream,
 *  - BM_TageAllocationStorm: cold-table behaviour — a random stream
 *    that mispredicts constantly, so the allocation scan and u-decay
 *    paths dominate,
 *  - BM_TagePredictUpdateClassify: incremental cost of confidence
 *    classification,
 *  - BM_SyntheticTraceGeneration: the trace generator's own cost.
 *  - BM_FailpointUnarmed / BM_FailpointArmed: cost of a fault-
 *    injection site check. Unarmed must stay a branch on one relaxed
 *    atomic load (~1 ns) — the sites sit on trace-read and checkpoint
 *    paths, so this is the price every production run pays.
 *  - BM_MetricsDisabled / BM_MetricsEnabled / BM_TimingHistogramRecord
 *    / BM_SpanDisabled: cost of an observability site. Disabled sites
 *    (the default) must stay one relaxed atomic load, same discipline
 *    as an unarmed failpoint; enabled counters are one relaxed
 *    fetch_add and a histogram record is a short binary search plus
 *    two fetch_adds. Committed in BENCH_obs.json.
 *
 * Run with --benchmark_out=BENCH_micro.json --benchmark_out_format=json
 * to extend the committed perf trajectory (see README, "Performance").
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "core/confidence_observer.hpp"
#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"
#include "tage/tage_predictor.hpp"
#include "trace/profiles.hpp"
#include "util/failpoint.hpp"
#include "util/random.hpp"

using namespace tagecon;

namespace {

constexpr uint64_t kTraceLength = 1u << 18;

/** Pre-materialized branch stream so generation cost is excluded. */
const VectorTrace&
sharedTrace()
{
    static const VectorTrace trace = [] {
        SyntheticTrace src = makeTrace("INT-1", kTraceLength);
        return materialize(src, kTraceLength);
    }();
    return trace;
}

TageConfig
configByIndex(int64_t idx)
{
    switch (idx) {
      case 0:
        return TageConfig::small16K();
      case 1:
        return TageConfig::medium64K();
      default:
        return TageConfig::large256K();
    }
}

void
BM_TagePredictUpdate(benchmark::State& state)
{
    const auto& records = sharedTrace().records();
    TagePredictor predictor(configByIndex(state.range(0)));
    size_t i = 0;
    for (auto _ : state) {
        const BranchRecord& rec = records[i];
        TagePrediction p = predictor.predict(rec.pc);
        benchmark::DoNotOptimize(p.taken);
        predictor.update(rec.pc, p, rec.taken);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_TagePredictUpdateBatched(benchmark::State& state)
{
    const auto& records = sharedTrace().records();
    const size_t batch = static_cast<size_t>(state.range(1));
    TagePredictor predictor(configByIndex(state.range(0)));
    std::vector<uint64_t> pcs(batch);
    std::vector<uint8_t> taken(batch);
    std::vector<TagePrediction> out(batch);
    size_t i = 0;
    for (auto _ : state) {
        // The fill loop is part of the measured cost on purpose: it is
        // the same buffering runTrace() and the serving engine do.
        for (size_t k = 0; k < batch; ++k) {
            const BranchRecord& rec = records[i];
            pcs[k] = rec.pc;
            taken[k] = rec.taken ? 1 : 0;
            i = (i + 1) % records.size();
        }
        predictor.predictMany(pcs, taken, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(batch));
}

void
BM_TagePredictOnly(benchmark::State& state)
{
    const auto& records = sharedTrace().records();
    TagePredictor predictor(configByIndex(state.range(0)));
    // Warm the tables with one full pass so the measured lookups see
    // steady-state occupancy, then measure the lookup path alone
    // (predict() is const: history stays fixed, tables stay warm).
    for (const BranchRecord& rec : records) {
        const TagePrediction p = predictor.predict(rec.pc);
        predictor.update(rec.pc, p, rec.taken);
    }
    size_t i = 0;
    for (auto _ : state) {
        const TagePrediction p = predictor.predict(records[i].pc);
        benchmark::DoNotOptimize(p.taken);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_TageUpdateOnly(benchmark::State& state)
{
    // Record a prediction stream from a fresh predictor, then replay
    // only the update() half against an identical predictor. Replayed
    // updates are bit-identical to the recorded run, so the training
    // path sees exactly the state it would in the fused loop.
    constexpr size_t kReplayWindow = size_t{1} << 16;
    const auto& records = sharedTrace().records();

    struct Step {
        uint64_t pc;
        bool taken;
        TagePrediction p;
    };
    std::vector<Step> replay(kReplayWindow);
    {
        TagePredictor recorder(configByIndex(state.range(0)));
        for (size_t i = 0; i < kReplayWindow; ++i) {
            const BranchRecord& rec = records[i % records.size()];
            replay[i] = {rec.pc, rec.taken, recorder.predict(rec.pc)};
            recorder.update(rec.pc, replay[i].p, rec.taken);
        }
    }

    TagePredictor predictor(configByIndex(state.range(0)));
    size_t i = 0;
    for (auto _ : state) {
        if (i == kReplayWindow) {
            state.PauseTiming();
            predictor = TagePredictor(configByIndex(state.range(0)));
            i = 0;
            state.ResumeTiming();
        }
        const Step& s = replay[i];
        predictor.update(s.pc, s.p, s.taken);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_TageAllocationStorm(benchmark::State& state)
{
    // Cold-table stress: a wide random PC stream with random outcomes
    // never trains, so nearly every branch mispredicts and the
    // allocation scan / useful-counter decay dominate the profile.
    TagePredictor predictor(configByIndex(state.range(0)));
    XorShift128Plus rng(0xA110CA7E);
    for (auto _ : state) {
        const uint64_t r = rng.next();
        const uint64_t pc = (r >> 16) & 0x3FFFFC;
        const TagePrediction p = predictor.predict(pc);
        benchmark::DoNotOptimize(p.taken);
        predictor.update(pc, p, (r & 1) != 0);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["allocs_per_branch"] = benchmark::Counter(
        static_cast<double>(predictor.allocations()) /
        static_cast<double>(predictor.updates()));
}

void
BM_TagePredictUpdateClassify(benchmark::State& state)
{
    const auto& records = sharedTrace().records();
    TagePredictor predictor(configByIndex(state.range(0)));
    ConfidenceObserver observer;
    uint64_t class_histogram[kNumPredictionClasses] = {};
    size_t i = 0;
    for (auto _ : state) {
        const BranchRecord& rec = records[i];
        TagePrediction p = predictor.predict(rec.pc);
        const PredictionClass cls = observer.classify(p);
        ++class_histogram[classIndex(cls)];
        observer.onResolve(p, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
        i = (i + 1) % records.size();
    }
    benchmark::DoNotOptimize(class_histogram);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_SyntheticTraceGeneration(benchmark::State& state)
{
    SyntheticTrace trace = makeTrace("SERV-1", ~uint64_t{0});
    BranchRecord rec;
    for (auto _ : state) {
        if (!trace.next(rec))
            trace.reset();
        benchmark::DoNotOptimize(rec.taken);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_FailpointUnarmed(benchmark::State& state)
{
    failpoints::disarm();
    for (auto _ : state) {
        if (failpoints::anyArmed()) {
            auto e = failpoints::check("trace.read");
            benchmark::DoNotOptimize(e);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_FailpointArmed(benchmark::State& state)
{
    // A rule that never fires (key targets a stream that never runs):
    // measures the armed bookkeeping cost, not error construction.
    failpoints::ScopedFaults faults("trace.read:key=999999999");
    failpoints::KeyScope scope(7);
    for (auto _ : state) {
        if (failpoints::anyArmed()) {
            auto e = failpoints::check("trace.read");
            benchmark::DoNotOptimize(e);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_MetricsDisabled(benchmark::State& state)
{
    obs::setMetricsEnabled(false);
    obs::Counter& c = obs::counter("bench.metrics.disabled");
    for (auto _ : state) {
        c.add();
        benchmark::DoNotOptimize(&c);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_MetricsEnabled(benchmark::State& state)
{
    obs::setMetricsEnabled(true);
    obs::Counter& c = obs::counter("bench.metrics.enabled");
    for (auto _ : state) {
        c.add();
        benchmark::DoNotOptimize(&c);
    }
    obs::setMetricsEnabled(false);
    c.reset();
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_TimingHistogramRecord(benchmark::State& state)
{
    obs::setMetricsEnabled(true);
    obs::TimingHistogram& h =
        obs::timingHistogram("bench.metrics.histogram");
    // Vary the sample so the bucket binary search sees the spread a
    // real latency distribution would.
    uint64_t v = 50;
    for (auto _ : state) {
        h.record(v);
        v = (v * 13) % 2000003;
    }
    obs::setMetricsEnabled(false);
    h.reset();
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_SpanDisabled(benchmark::State& state)
{
    // With tracing off a SpanScope never reads the clock or touches the
    // thread-local buffer — one relaxed load decides. (No enabled
    // variant: live spans buffer until drained, so a benchmark loop
    // would measure allocator growth, not the span itself.)
    for (auto _ : state) {
        TAGECON_SPAN("bench.span.disabled");
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_TagePredictUpdate)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_TagePredictUpdateBatched)
    ->ArgsProduct({{0, 1, 2}, {16, 64, 512}});
BENCHMARK(BM_TagePredictOnly)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_TageUpdateOnly)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_TageAllocationStorm)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_TagePredictUpdateClassify)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_SyntheticTraceGeneration);
BENCHMARK(BM_FailpointUnarmed);
BENCHMARK(BM_FailpointArmed);
BENCHMARK(BM_MetricsDisabled);
BENCHMARK(BM_MetricsEnabled);
BENCHMARK(BM_TimingHistogramRecord);
BENCHMARK(BM_SpanDisabled);

} // namespace

BENCHMARK_MAIN();
