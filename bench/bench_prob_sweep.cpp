/**
 * @file
 * Reproduces the Sec. 6.2 trade-off discussion: sweeping the
 * saturation probability p over {1, 1/4, 1/16, 1/128, 1/1024} on the
 * 16Kbit predictor / CBP-1 set, and reporting coverage, misprediction
 * coverage and misprediction rate of the high-confidence class, plus
 * the overall accuracy cost of the automaton change.
 *
 * Paper anchor (16Kbit, CBP-1): with p = 1/16 the high-confidence
 * class reaches 79% coverage at 10 MKP / 22.3% misprediction
 * coverage, against 69% at 7 MKP / 12.8% with p = 1/128; the overall
 * accuracy cost of the automaton stays under 0.02 misp/KI.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Sec. 6.2: saturation probability sweep "
                       "(16Kbit, CBP-1)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 6.2", opt);

    // Baseline automaton for the accuracy-cost comparison.
    RunConfig base;
    base.predictor = TageConfig::small16K();
    const SetResult baseline = runBenchmarkSet(BenchmarkSet::Cbp1, base,
                                               opt.branchesPerTrace);

    TextTable t;
    t.addColumn("p", TextTable::Align::Left);
    t.addColumn("high Pcov");
    t.addColumn("high MPcov");
    t.addColumn("high MPrate (MKP)");
    t.addColumn("misp/KI");
    t.addColumn("delta vs baseline");

    for (const unsigned log2p : {0u, 2u, 4u, 7u, 10u}) {
        RunConfig rc;
        rc.predictor =
            TageConfig::small16K().withProbabilisticSaturation(log2p);
        const SetResult r = runBenchmarkSet(BenchmarkSet::Cbp1, rc,
                                            opt.branchesPerTrace);
        t.addRow({"1/" + std::to_string(1u << log2p),
                  TextTable::frac(r.aggregate.pcov(ConfidenceLevel::High)),
                  TextTable::frac(
                      r.aggregate.mpcov(ConfidenceLevel::High)),
                  TextTable::num(
                      r.aggregate.mprateMkp(ConfidenceLevel::High), 1),
                  TextTable::num(r.meanMpki, 3),
                  TextTable::num(r.meanMpki - baseline.meanMpki, 3)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nbaseline automaton misp/KI: "
              << TextTable::num(baseline.meanMpki, 3)
              << "\nexpected shape: smaller p shrinks high-confidence "
                 "coverage but cleans its misprediction rate; the "
                 "accuracy cost of any p stays marginal.\n";
    return 0;
}
