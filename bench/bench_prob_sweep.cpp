/**
 * @file
 * Reproduces the Sec. 6.2 trade-off discussion: sweeping the
 * saturation probability p over {1, 1/4, 1/16, 1/128, 1/1024} on the
 * 16Kbit predictor / CBP-1 set, and reporting coverage, misprediction
 * coverage and misprediction rate of the high-confidence class, plus
 * the overall accuracy cost of the automaton change.
 *
 * The sweep is one declarative SweepPlan — the baseline automaton
 * ("tage16k") plus one "tage16k+probN" spec per probability — over
 * the shared parallel runner (--jobs=N).
 *
 * Paper anchor (16Kbit, CBP-1): with p = 1/16 the high-confidence
 * class reaches 79% coverage at 10 MKP / 22.3% misprediction
 * coverage, against 69% at 7 MKP / 12.8% with p = 1/128; the overall
 * accuracy cost of the automaton stays under 0.02 misp/KI.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("Sec. 6.2: saturation probability sweep "
                       "(16Kbit, CBP-1)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 6.2", opt,
                       /*show_jobs=*/true);

    // Row 0 is the baseline automaton; the rest sweep log2(1/p).
    const std::vector<unsigned> log2ps = {0u, 2u, 4u, 7u, 10u};
    std::vector<std::string> specs = {"tage16k"};
    for (const unsigned log2p : log2ps)
        specs.push_back("tage16k+prob" + std::to_string(log2p));

    const SweepPlan plan =
        SweepPlan::over(specs, traceNames(BenchmarkSet::Cbp1),
                        opt.branchesPerTrace, opt.seedSalt);
    const auto rows = runSweepRows(plan, {opt.jobs});
    const SweepRow& baseline = rows.front();

    TextTable t;
    t.addColumn("p", TextTable::Align::Left);
    t.addColumn("high Pcov");
    t.addColumn("high MPcov");
    t.addColumn("high MPrate (MKP)");
    t.addColumn("misp/KI");
    t.addColumn("delta vs baseline");

    for (size_t i = 0; i < log2ps.size(); ++i) {
        const SweepRow& r = rows[i + 1];
        t.addRow({"1/" + std::to_string(1u << log2ps[i]),
                  TextTable::frac(r.aggregate.pcov(ConfidenceLevel::High)),
                  TextTable::frac(
                      r.aggregate.mpcov(ConfidenceLevel::High)),
                  TextTable::num(
                      r.aggregate.mprateMkp(ConfidenceLevel::High), 1),
                  TextTable::num(r.meanMpki, 3),
                  TextTable::num(r.meanMpki - baseline.meanMpki, 3)});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nbaseline automaton misp/KI: "
              << TextTable::num(baseline.meanMpki, 3)
              << "\nexpected shape: smaller p shrinks high-confidence "
                 "coverage but cleans its misprediction rate; the "
                 "accuracy cost of any p stays marginal.\n";
    return 0;
}
