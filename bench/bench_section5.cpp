/**
 * @file
 * Reproduces the aggregate numbers quoted in the text of Sec. 5.1 and
 * Sec. 5.2 of the paper (CBP-1 set, 16Kbit and 256Kbit predictors,
 * baseline automaton):
 *  - BIM class share of predictions / mispredictions and its MPrate;
 *  - within-BIM split into low/medium/high-conf-bim (share of BIM
 *    predictions, share of BIM mispredictions, MPrate);
 *  - per-class MPrate of the tagged classes Wtag/NWtag/NStag/Stag and
 *    coverage of the non-saturated tagged classes.
 * Declarative: one SweepPlan (16K + 256K x CBP-1) + report emitters,
 * every ratio through the shared cell formatters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

namespace {

void
addAggregateSections(Report& r, const std::string& label,
                     const SweepRow& row,
                     const tagecon::bench::BenchOptions& opt)
{
    const ClassStats& s = row.aggregate;

    const auto bim_classes = {PredictionClass::HighConfBim,
                              PredictionClass::MediumConfBim,
                              PredictionClass::LowConfBim};
    const BimSplit bim = bimSplit(s);

    r.addText("=== " + label + " predictor, CBP-1 aggregate ===");
    r.addText("overall misprediction rate: " +
              TextTable::num(s.totalMkp(), 0) + " MKP");
    r.addText("BIM class: " +
              pctCell(bim.predictions, s.totalPredictions(), 0) +
              " % of predictions, " +
              pctCell(bim.mispredictions, s.totalMispredictions(), 0) +
              " % of mispredictions, " +
              ratePerKiloCell(bim.mispredictions, bim.predictions, 0) +
              " MKP");
    r.addBlank();

    TextTable bim_table;
    bim_table.addColumn("BIM subclass", TextTable::Align::Left);
    bim_table.addColumn("% of BIM preds");
    bim_table.addColumn("% of BIM misses");
    bim_table.addColumn("MPrate (MKP)");
    for (const auto c : bim_classes) {
        bim_table.addRow({predictionClassName(c),
                          pctCell(s.predictions(c), bim.predictions, 1),
                          pctCell(s.mispredictions(c),
                                  bim.mispredictions, 1),
                          TextTable::num(s.mprateMkp(c), 0)});
    }
    r.addTable(ReportTable{"bim-split-" + toLower(label), "",
                           std::move(bim_table)});
    r.addBlank();

    TextTable tag;
    tag.addColumn("tagged class", TextTable::Align::Left);
    tag.addColumn("Pcov %");
    tag.addColumn("MPcov %");
    tag.addColumn("MPrate (MKP)");
    for (const auto c : {PredictionClass::Wtag, PredictionClass::NWtag,
                         PredictionClass::NStag, PredictionClass::Stag}) {
        tag.addRow({predictionClassName(c),
                    TextTable::num(s.pcov(c) * 100.0, 1),
                    TextTable::num(s.mpcov(c) * 100.0, 1),
                    TextTable::num(s.mprateMkp(c), 0)});
    }
    r.addTable(ReportTable{"tagged-split-" + toLower(label), "",
                           std::move(tag)});
    r.addBlank();

    if (opt.analysis.enabled()) {
        for (const auto& rr : row.perTrace)
            addAnalysisSections(
                r, rr, toLower(label) + "-" + toLower(rr.traceName));
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "section5", "Section 5 text numbers (CBP-1, 16K & 256K)",
        "Seznec, RR-7371 / HPCA 2011, Sec. 5.1-5.2", opt);

    const std::vector<bench::SizeSpec> sizes = {{"16K", "tage16k"},
                                                {"256K", "tage256k"}};
    const auto rows = bench::runSetGrid(bench::specsOf(sizes),
                                        BenchmarkSet::Cbp1, opt);
    for (size_t i = 0; i < rows.size(); ++i)
        addAggregateSections(r, sizes[i].label, rows[i], opt);

    r.addText(
        "paper reference (CBP-1): 16K BIM = 50% preds / 35% misses / "
        "29 MKP; 256K BIM = 45% / 7% / 3 MKP.\n"
        "16K within-BIM: low-conf-bim 3% preds, 32% misses, 317 MKP; "
        "medium-conf-bim 12%, 39%, 87 MKP; high-conf-bim 85%, 29%, "
        "9 MKP.\n"
        "tagged rates 16K: Wtag 340, NWtag 313, NStag 213, Stag 29 "
        "MKP (256K: 325/312/225/17).");
    r.emit(opt.format, std::cout);
    return 0;
}
