/**
 * @file
 * Reproduces the aggregate numbers quoted in the text of Sec. 5.1 and
 * Sec. 5.2 of the paper (CBP-1 set, 16Kbit and 256Kbit predictors,
 * baseline automaton):
 *  - BIM class share of predictions / mispredictions and its MPrate;
 *  - within-BIM split into low/medium/high-conf-bim (share of BIM
 *    predictions, share of BIM mispredictions, MPrate);
 *  - per-class MPrate of the tagged classes Wtag/NWtag/NStag/Stag and
 *    coverage of the non-saturated tagged classes.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

double
safePct(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
                          static_cast<double>(den);
}

void
report(const TageConfig& cfg, const tagecon::bench::BenchOptions& opt)
{
    RunConfig rc;
    rc.predictor = cfg;
    const SetResult r = runBenchmarkSet(BenchmarkSet::Cbp1, rc,
                                        opt.branchesPerTrace,
                                        opt.seedSalt);
    const ClassStats& s = r.aggregate;

    const auto bim_classes = {PredictionClass::HighConfBim,
                              PredictionClass::MediumConfBim,
                              PredictionClass::LowConfBim};
    uint64_t bim_pred = 0;
    uint64_t bim_miss = 0;
    for (const auto c : bim_classes) {
        bim_pred += s.predictions(c);
        bim_miss += s.mispredictions(c);
    }

    std::cout << "=== " << cfg.name << " predictor, CBP-1 aggregate ===\n";
    std::cout << "overall misprediction rate: "
              << TextTable::num(s.totalMkp(), 0) << " MKP\n";
    std::cout << "BIM class: " << TextTable::num(
                     safePct(bim_pred, s.totalPredictions()), 0)
              << " % of predictions, "
              << TextTable::num(safePct(bim_miss,
                                        s.totalMispredictions()), 0)
              << " % of mispredictions, "
              << TextTable::num(bim_pred ? 1000.0 *
                                    static_cast<double>(bim_miss) /
                                    static_cast<double>(bim_pred)
                                         : 0.0, 0)
              << " MKP\n\n";

    TextTable bim;
    bim.addColumn("BIM subclass", TextTable::Align::Left);
    bim.addColumn("% of BIM preds");
    bim.addColumn("% of BIM misses");
    bim.addColumn("MPrate (MKP)");
    for (const auto c : bim_classes) {
        bim.addRow({predictionClassName(c),
                    TextTable::num(safePct(s.predictions(c), bim_pred), 1),
                    TextTable::num(safePct(s.mispredictions(c), bim_miss),
                                   1),
                    TextTable::num(s.mprateMkp(c), 0)});
    }
    bim.render(std::cout);

    std::cout << "\n";
    TextTable tag;
    tag.addColumn("tagged class", TextTable::Align::Left);
    tag.addColumn("Pcov %");
    tag.addColumn("MPcov %");
    tag.addColumn("MPrate (MKP)");
    for (const auto c : {PredictionClass::Wtag, PredictionClass::NWtag,
                         PredictionClass::NStag, PredictionClass::Stag}) {
        tag.addRow({predictionClassName(c),
                    TextTable::num(s.pcov(c) * 100.0, 1),
                    TextTable::num(s.mpcov(c) * 100.0, 1),
                    TextTable::num(s.mprateMkp(c), 0)});
    }
    tag.render(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Section 5 text numbers (CBP-1, 16K & 256K)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 5.1-5.2", opt);

    report(TageConfig::small16K(), opt);
    report(TageConfig::large256K(), opt);

    std::cout
        << "paper reference (CBP-1): 16K BIM = 50% preds / 35% misses / "
           "29 MKP; 256K BIM = 45% / 7% / 3 MKP.\n"
           "16K within-BIM: low-conf-bim 3% preds, 32% misses, 317 MKP; "
           "medium-conf-bim 12%, 39%, 87 MKP; high-conf-bim 85%, 29%, "
           "9 MKP.\n"
           "tagged rates 16K: Wtag 340, NWtag 313, NStag 213, Stag 29 "
           "MKP (256K: 325/312/225/17).\n";
    return 0;
}
