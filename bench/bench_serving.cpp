/**
 * @file
 * Multi-stream serving throughput bench: drives the ServingEngine
 * (src/serve/) over a large stream population — thousands of simulated
 * "users", each with its own trace position and predictor state — and
 * reports wall-clock throughput (streams/sec, predictions/sec) and
 * per-prediction latency percentiles at several worker counts.
 *
 * The committed BENCH_serving.json at the repo root is this bench's
 * --report=json output. Accuracy columns are deterministic (identical
 * across every row — the engine's bit-identity property); timing
 * columns are wall clock and vary by host.
 *
 * Flags: --streams=N (default 10000), --branches=N per stream
 * (default 2000), --spec=..., --pool=N, --batch=N, --jobs=a,b,c
 * (worker counts to sweep; default "1,0" where 0 = hardware
 * concurrency), --report=text|csv|json, --csv.
 */

#include <iostream>
#include <thread>

#include "serve/serving_engine.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const CliArgs args(argc, argv);

    const uint64_t num_streams =
        args.getUintInRange("streams", 10000, 1, 10000000);
    const uint64_t branches = args.getUint("branches", 2000);
    const std::string spec = args.getString("spec", "tage64k+sfc");
    const unsigned pool = static_cast<unsigned>(
        args.getUintInRange("pool", 8, 0, 1u << 20));
    const unsigned batch = static_cast<unsigned>(
        args.getUintInRange("batch", 512, 1, 1u << 24));

    ReportFormat format = ReportFormat::Text;
    std::string error;
    if (args.getBool("csv", false))
        format = ReportFormat::Csv;
    if (args.has("report") &&
        !parseReportFormat(args.getString("report", "text"), format,
                           error))
        fatal(error);

    std::vector<unsigned> job_counts;
    for (const auto& item : args.getList("jobs", {"1", "0"})) {
        const unsigned j =
            static_cast<unsigned>(std::stoul(item));
        job_counts.push_back(
            j != 0 ? j : std::max(1u, std::thread::hardware_concurrency()));
    }

    std::vector<std::string> traces;
    if (!SweepPlan::resolveTraceArgs(args.getList("traces", {"cbp1"}),
                                     traces, error))
        fatal(error);

    const auto streams =
        StreamSet::roundRobin(num_streams, traces, branches, 0);

    Report report("serving",
                  "multi-stream serving throughput (" +
                      std::to_string(num_streams) + " streams x " +
                      std::to_string(branches) + " branches)",
                  "");
    report.addMeta("streams", std::to_string(num_streams));
    report.addMeta("branches/stream", std::to_string(branches));
    report.addMeta("spec", spec);
    report.addMeta("pool/shard", std::to_string(pool));
    report.addMeta("batch", std::to_string(batch));

    TextTable t;
    t.addColumn("jobs");
    t.addColumn("wall (s)");
    t.addColumn("streams/s");
    t.addColumn("predictions/s");
    t.addColumn("p50 lat (ns/pred)");
    t.addColumn("p99 lat (ns/pred)");
    t.addColumn("misp/KI");
    t.addColumn("MKP");

    for (const unsigned jobs : job_counts) {
        ServeOptions opts;
        opts.spec = spec;
        opts.jobs = jobs;
        opts.poolPerShard = pool;
        opts.batch = batch;
        ServingEngine engine(opts);
        ServeResult result;
        if (!engine.serve(streams, result, error))
            fatal(error);
        t.addRow({std::to_string(jobs),
                  TextTable::num(result.timing.wallSeconds, 3),
                  TextTable::num(result.timing.streamsPerSec, 1),
                  TextTable::num(result.timing.predictionsPerSec, 0),
                  TextTable::num(result.timing.p50LatencyNs, 1),
                  TextTable::num(result.timing.p99LatencyNs, 1),
                  TextTable::num(result.aggregate.mpki(), 3),
                  TextTable::num(result.aggregate.totalMkp(), 1)});
    }

    report.addTable(ReportTable{"throughput", "", std::move(t)});
    report.addBlank();
    report.addText("accuracy columns (misp/KI, MKP) are deterministic "
                   "and identical across rows — the engine's "
                   "bit-identity property; timing columns are wall "
                   "clock.");
    report.emit(format, std::cout);
    return 0;
}
