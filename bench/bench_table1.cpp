/**
 * @file
 * Reproduces Table 1 of the paper: the three simulated TAGE
 * configurations and their misprediction rates (misp/KI) on the CBP-1
 * and CBP-2 benchmark sets, with the baseline (unmodified) update
 * automaton. Declarative: one SweepPlan (3 sizes x both sets) +
 * report emitters; the configuration rows come straight from the
 * TageConfig geometry.
 */

#include <iostream>

#include "bench_figures.hpp"
#include "tage/tage_config.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport("table1",
                                 "Table 1: simulated configurations",
                                 "Seznec, RR-7371 / HPCA 2011, Table 1",
                                 opt);

    TextTable t;
    t.addColumn("", TextTable::Align::Left);
    t.addColumn("Small");
    t.addColumn("Medium");
    t.addColumn("Large");

    const std::vector<TageConfig> configs = TageConfig::paperConfigs();

    std::vector<std::string> storage{"Storage budget (Kbits)"};
    std::vector<std::string> tables{"Number of tables"};
    std::vector<std::string> minh{"Min Hist length"};
    std::vector<std::string> maxh{"Max Hist Length"};
    for (const auto& cfg : configs) {
        storage.push_back(TextTable::num(
            static_cast<double>(cfg.storageBits()) / 1024.0, 1));
        tables.push_back("1 + " + std::to_string(cfg.numTaggedTables()));
        minh.push_back(std::to_string(cfg.tagged.front().historyLength));
        maxh.push_back(std::to_string(cfg.tagged.back().historyLength));
    }
    t.addRow(storage);
    t.addRow(tables);
    t.addRow(minh);
    t.addRow(maxh);

    const auto rows =
        bench::runTwoSetGrid(bench::specsOf(bench::paperSizes()),
                             BenchmarkSet::Cbp1, BenchmarkSet::Cbp2,
                             opt);
    const size_t cbp1_traces = traceNames(BenchmarkSet::Cbp1).size();

    std::vector<std::string> cbp1_row{"CBP-1 misp/KI"};
    std::vector<std::string> cbp2_row{"CBP-2 misp/KI"};
    for (const auto& row : rows) {
        cbp1_row.push_back(TextTable::num(
            bench::sliceSet(row, cbp1_traces, true).meanMpki, 2));
        cbp2_row.push_back(TextTable::num(
            bench::sliceSet(row, cbp1_traces, false).meanMpki, 2));
    }
    t.addSeparator();
    t.addRow(cbp1_row);
    t.addRow(cbp2_row);

    r.addTable(ReportTable{"table1", "", std::move(t)});

    r.addBlank();
    r.addText("paper reference (Table 1): CBP-1 4.21 / 2.54 / 2.18,"
              " CBP-2 4.61 / 3.87 / 3.47 misp/KI\n"
              "expected shape: misp/KI decreases with size; CBP-2 is"
              " the harder set on the medium/large predictors");
    r.emit(opt.format, std::cout);
    return 0;
}
