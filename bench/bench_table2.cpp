/**
 * @file
 * Reproduces Table 2 of the paper: prediction coverage, misprediction
 * coverage and misprediction rate (MKP) of the high / medium / low
 * confidence classes, for the three predictor sizes and both
 * benchmark sets, with the modified automaton at p = 1/128.
 * Declarative: one SweepPlan (3 prob7 sizes x both sets) + report
 * emitters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "table2", "Table 2: three-level confidence split (p=1/128)",
        "Seznec, RR-7371 / HPCA 2011, Table 2", opt);

    const auto sizes = bench::paperSizes(/*prob7=*/true);
    const auto rows =
        bench::runTwoSetGrid(bench::specsOf(sizes), BenchmarkSet::Cbp1,
                             BenchmarkSet::Cbp2, opt);
    const size_t cbp1_traces = traceNames(BenchmarkSet::Cbp1).size();

    TextTable t = threeClassTable();
    for (size_t i = 0; i < rows.size(); ++i) {
        for (const BenchmarkSet set :
             {BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}) {
            const auto slice =
                bench::sliceSet(rows[i], cbp1_traces,
                                set == BenchmarkSet::Cbp1);
            t.addRow(threeClassRow(sizes[i].label + " " +
                                       benchmarkSetName(set),
                                   slice.aggregate));
        }
    }
    r.addTable(ReportTable{"table2", "", std::move(t)});

    r.addBlank();
    r.addText("paper reference (Pcov-MPcov (MPrate)):\n"
              "16K  CBP1 0.690-0.128 (7)   0.254-0.455 (72)  "
              "0.056-0.416 (306)\n"
              "16K  CBP2 0.790-0.078 (3)   0.163-0.478 (98)  "
              "0.046-0.443 (328)\n"
              "64K  CBP1 0.781-0.096 (3)   0.180-0.434 (59)  "
              "0.038-0.470 (304)\n"
              "64K  CBP2 0.818-0.056 (2)   0.095-0.466 (82)  "
              "0.042-0.478 (328)\n"
              "256K CBP1 0.802-0.060 (2)   0.162-0.442 (57)  "
              "0.034-0.498 (302)\n"
              "256K CBP2 0.826-0.040 (1)   0.135-0.469 (88)  "
              "0.038-0.491 (325)\n"
              "expected shape: high covers the vast majority at "
              "single-digit MKP; medium and low each cover roughly "
              "half of the mispredictions at ~5-15% and >30% rates.");
    r.emit(opt.format, std::cout);
    return 0;
}
