/**
 * @file
 * Reproduces Table 3 of the paper: the three-level confidence split
 * when the saturation probability is driven at run time by the
 * adaptive controller of Sec. 6.2 (p in {1/1024 .. 1}, x/÷2 steps),
 * which maximizes high-confidence coverage while holding the measured
 * high-confidence misprediction rate under 10 MKP. Declarative: one
 * SweepPlan (3 prob7+adaptive sizes x both sets) + report emitters.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "table3", "Table 3: three-level split, adaptive probability",
        "Seznec, RR-7371 / HPCA 2011, Table 3", opt);

    const auto sizes =
        bench::paperSizes(/*prob7=*/true, /*adaptive=*/true);
    const auto rows =
        bench::runTwoSetGrid(bench::specsOf(sizes), BenchmarkSet::Cbp1,
                             BenchmarkSet::Cbp2, opt);
    const size_t cbp1_traces = traceNames(BenchmarkSet::Cbp1).size();

    TextTable t = threeClassTable();
    for (size_t i = 0; i < rows.size(); ++i) {
        for (const BenchmarkSet set :
             {BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}) {
            const auto slice =
                bench::sliceSet(rows[i], cbp1_traces,
                                set == BenchmarkSet::Cbp1);
            t.addRow(threeClassRow(sizes[i].label + " " +
                                       benchmarkSetName(set),
                                   slice.aggregate));
        }
    }
    r.addTable(ReportTable{"table3", "", std::move(t)});

    r.addBlank();
    r.addText("paper reference (Pcov-MPcov (MPrate)):\n"
              "16K  CBP1 0.758-0.167 (8)   0.187-0.423 (92)   "
              "0.053-0.409 (311)\n"
              "16K  CBP2 0.816-0.112 (5)   0.139-0.452 (109)  "
              "0.044-0.436 (332)\n"
              "64K  CBP1 0.855-0.156 (5)   0.109-0.387 (88)   "
              "0.036-0.456 (309)\n"
              "64K  CBP2 0.848-0.100 (3)   0.112-0.432 (110)  "
              "0.040-0.468 (331)\n"
              "256K CBP1 0.882-0.140 (3)   0.085-0.381 (93)   "
              "0.033-0.479 (306)\n"
              "256K CBP2 0.870-0.105 (3)   0.092-0.419 (115)  "
              "0.037-0.476 (331)\n"
              "expected shape: vs Table 2, high-confidence coverage "
              "grows while its MPrate stays at or under ~10 MKP.");
    r.emit(opt.format, std::cout);
    return 0;
}
