/**
 * @file
 * Head-to-head comparison the paper's title implies: the storage-free
 * TAGE confidence estimate against the classic storage-based JRS
 * estimator (Jacobsen/Rotenberg/Smith, MICRO 1996) and Grunwald et
 * al.'s prediction-indexed refinement, attached to the same 64Kbit
 * TAGE predictor, evaluated with Grunwald's binary metrics
 * (SENS / PVP / SPEC / PVN).
 *
 * The storage-free estimator grades "high confidence" as
 * {high-conf-bim, Stag} under the modified automaton (p = 1/128); JRS
 * grades by its resetting counter table (4-bit counters, threshold 15).
 */

#include <iostream>
#include <memory>

#include "baseline/jrs_estimator.hpp"
#include "bench_common.hpp"
#include "core/binary_metrics.hpp"
#include "core/confidence_observer.hpp"
#include "sim/experiment.hpp"
#include "tage/tage_predictor.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

struct Row {
    std::string name;
    BinaryConfidenceMetrics metrics;
    uint64_t extraStorageBits = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Storage-free vs JRS confidence (64Kbit TAGE, "
                       "both benchmark sets)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 2.2 context",
                       opt);

    const TageConfig cfg =
        TageConfig::medium64K().withProbabilisticSaturation(7);

    JrsConfidenceEstimator::Config jrs_cfg;
    jrs_cfg.logEntries = 12;
    jrs_cfg.ctrBits = 4;
    jrs_cfg.threshold = 15;
    JrsConfidenceEstimator::Config jrsg_cfg = jrs_cfg;
    jrsg_cfg.indexWithPrediction = true;

    Row storage_free{"storage-free (this paper)", {}, 0};
    Row jrs{"JRS 16Kbit", {}, 0};
    Row jrsg{"JRS+pred-index 16Kbit (Grunwald)", {}, 0};

    for (const BenchmarkSet set :
         {BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}) {
        for (const auto& name : traceNames(set)) {
            SyntheticTrace trace = makeTrace(name, opt.branchesPerTrace);
            TagePredictor predictor(cfg);
            ConfidenceObserver observer;
            JrsConfidenceEstimator jrs_est(jrs_cfg);
            JrsConfidenceEstimator jrsg_est(jrsg_cfg);
            jrs.extraStorageBits = jrs_est.storageBits();
            jrsg.extraStorageBits = jrsg_est.storageBits();

            BranchRecord rec;
            while (trace.next(rec)) {
                const TagePrediction p = predictor.predict(rec.pc);
                const bool correct = p.taken == rec.taken;

                const bool free_high =
                    observer.classifyLevel(p) == ConfidenceLevel::High;
                storage_free.metrics.record(free_high, correct);

                jrs.metrics.record(jrs_est.query(rec.pc, p.taken),
                                   correct);
                jrsg.metrics.record(jrsg_est.query(rec.pc, p.taken),
                                    correct);

                observer.onResolve(p, rec.taken);
                jrs_est.record(rec.pc, p.taken, correct, rec.taken);
                jrsg_est.record(rec.pc, p.taken, correct, rec.taken);
                predictor.update(rec.pc, p, rec.taken);
            }
        }
    }

    TextTable t;
    t.addColumn("estimator", TextTable::Align::Left);
    t.addColumn("extra storage");
    t.addColumn("high cov");
    t.addColumn("SENS");
    t.addColumn("PVP");
    t.addColumn("SPEC");
    t.addColumn("PVN");
    for (const Row* row : {&storage_free, &jrs, &jrsg}) {
        t.addRow({row->name,
                  std::to_string(row->extraStorageBits / 1024) + " Kbit",
                  TextTable::frac(row->metrics.highCoverage()),
                  TextTable::frac(row->metrics.sens()),
                  TextTable::frac(row->metrics.pvp()),
                  TextTable::frac(row->metrics.spec()),
                  TextTable::frac(row->metrics.pvn())});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: the storage-free estimator matches "
                 "or beats the 16Kbit JRS tables on PVP/SPEC at zero "
                 "storage cost (the paper's core claim).\n";
    return 0;
}
