/**
 * @file
 * Head-to-head comparison the paper's title implies: the storage-free
 * TAGE confidence estimate against the classic storage-based JRS
 * estimator (Jacobsen/Rotenberg/Smith, MICRO 1996) and Grunwald et
 * al.'s prediction-indexed refinement, attached to the same 64Kbit
 * TAGE predictor, evaluated with Grunwald's binary metrics
 * (SENS / PVP / SPEC / PVN).
 *
 * Every row is one registry spec driven through the shared generic
 * loop (runSets): the storage-free estimator is "tage64k+prob7+sfc",
 * the JRS variants decorate the same predictor via "+jrs" / "+jrsg".
 * Override the lineup with --predictors=spec1,spec2,...
 *
 * Each row simulates its own host predictor (unlike the original
 * bespoke loop, which shared one host across estimators): traces and
 * predictors are deterministic, so identically-specced hosts see
 * identical prediction streams and the numbers are unchanged — the
 * extra host work is the price of rows being arbitrary specs.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Storage-free vs JRS confidence (64Kbit TAGE, "
                       "both benchmark sets)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 2.2 context",
                       opt);

    std::vector<std::string> specs = opt.predictors;
    if (specs.empty())
        specs = {"tage64k+prob7+sfc", "tage64k+prob7+jrs",
                 "tage64k+prob7+jrsg"};

    TextTable t;
    t.addColumn("estimator", TextTable::Align::Left);
    t.addColumn("extra storage");
    t.addColumn("high cov");
    t.addColumn("SENS");
    t.addColumn("PVP");
    t.addColumn("SPEC");
    t.addColumn("PVN");
    for (const auto& spec : specs) {
        // Storage the estimator costs on top of its own host.
        const auto probe = makePredictor(spec);
        uint64_t extra_bits = 0;
        if (const auto* est =
                dynamic_cast<const EstimatedPredictor*>(probe.get()))
            extra_bits = est->estimator().storageBits();

        const RunResult r =
            runSets({BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}, spec,
                    opt.branchesPerTrace);
        t.addRow({r.configName,
                  std::to_string(extra_bits / 1024) + " Kbit",
                  TextTable::frac(r.confusion.highCoverage()),
                  TextTable::frac(r.confusion.sens()),
                  TextTable::frac(r.confusion.pvp()),
                  TextTable::frac(r.confusion.spec()),
                  TextTable::frac(r.confusion.pvn())});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: the storage-free estimator matches "
                 "or beats the 16Kbit JRS tables on PVP/SPEC at zero "
                 "storage cost (the paper's core claim).\n";
    return 0;
}
