/**
 * @file
 * Head-to-head comparison the paper's title implies: the storage-free
 * TAGE confidence estimate against the classic storage-based JRS
 * estimator (Jacobsen/Rotenberg/Smith, MICRO 1996) and Grunwald et
 * al.'s prediction-indexed refinement, attached to the same 64Kbit
 * TAGE predictor, evaluated with Grunwald's binary metrics
 * (SENS / PVP / SPEC / PVN).
 *
 * The whole experiment is one declarative SweepPlan — rows are
 * registry specs, columns are all 40 traces of both benchmark sets —
 * executed by the shared parallel sweep runner (--jobs=N; results are
 * bit-identical at any thread count). Override the lineup with
 * --predictors=spec1,spec2,...
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/estimators.hpp"
#include "sim/sweep.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("Storage-free vs JRS confidence (64Kbit TAGE, "
                       "both benchmark sets)",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 2.2 context",
                       opt, /*show_jobs=*/true);

    std::vector<std::string> specs = opt.predictors;
    if (specs.empty())
        specs = {"tage64k+prob7+sfc", "tage64k+prob7+jrs",
                 "tage64k+prob7+jrsg"};

    const SweepPlan plan = SweepPlan::over(
        specs, allTraceNames(), opt.branchesPerTrace, opt.seedSalt);
    const auto rows = runSweepRows(plan, {opt.jobs});

    TextTable t;
    t.addColumn("estimator", TextTable::Align::Left);
    t.addColumn("extra storage");
    t.addColumn("high cov");
    t.addColumn("SENS");
    t.addColumn("PVP");
    t.addColumn("SPEC");
    t.addColumn("PVN");
    for (const auto& row : rows) {
        // Storage the estimator costs on top of its own host.
        const auto probe = makePredictor(row.spec);
        uint64_t extra_bits = 0;
        if (const auto* est =
                dynamic_cast<const EstimatedPredictor*>(probe.get()))
            extra_bits = est->estimator().storageBits();

        t.addRow({row.spec,
                  std::to_string(extra_bits / 1024) + " Kbit",
                  TextTable::frac(row.confusion.highCoverage()),
                  TextTable::frac(row.confusion.sens()),
                  TextTable::frac(row.confusion.pvp()),
                  TextTable::frac(row.confusion.spec()),
                  TextTable::frac(row.confusion.pvn())});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\nexpected shape: the storage-free estimator matches "
                 "or beats the 16Kbit JRS tables on PVP/SPEC at zero "
                 "storage cost (the paper's core claim).\n";
    return 0;
}
