/**
 * @file
 * Reproduces the Sec. 2.2 related-work claims about *self-confidence*
 * on neural/GEHL-style predictors, against the TAGE storage-free
 * scheme:
 *
 *   "This confidence estimation for the O-GEHL predictor exhibits a
 *    quite good PVN: about one third of the low confidence predictions
 *    are in practice mispredicted. But on the other hand, it exhibits
 *    only a limited SPEC: only half of the mispredicted branches are
 *    effectively classified as low confidence."
 *
 * Each predictor is evaluated with its own confidence scheme on its
 * own predictions (self-confidence is inseparable from its host), so
 * the comparison covers both accuracy and confidence quality. The
 * experiment is one declarative SweepPlan over the shared parallel
 * runner (--jobs=N); override the lineup with
 * --predictors=spec1,spec2,...
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv, /*structured_output=*/false);
    bench::printHeader("Self-confidence comparison: TAGE storage-free "
                       "vs O-GEHL vs perceptron",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 2.2", opt,
                       /*show_jobs=*/true);

    std::vector<std::string> specs = opt.predictors;
    if (specs.empty())
        specs = {"tage64k+prob7+sfc", "ogehl+self", "perceptron+self"};

    const SweepPlan plan = SweepPlan::over(
        specs, allTraceNames(), opt.branchesPerTrace, opt.seedSalt);
    const auto rows = runSweepRows(plan, {opt.jobs});

    TextTable t;
    t.addColumn("predictor + confidence", TextTable::Align::Left);
    t.addColumn("storage (Kbit)");
    t.addColumn("misp rate (MKP)");
    t.addColumn("high cov");
    t.addColumn("SENS");
    t.addColumn("PVP");
    t.addColumn("SPEC");
    t.addColumn("PVN");
    for (const auto& row : rows) {
        t.addRow({row.spec,
                  TextTable::num(
                      static_cast<double>(row.storageBits) / 1024.0, 0),
                  TextTable::num(row.aggregate.totalMkp(), 1),
                  TextTable::frac(row.confusion.highCoverage()),
                  TextTable::frac(row.confusion.sens()),
                  TextTable::frac(row.confusion.pvp()),
                  TextTable::frac(row.confusion.spec()),
                  TextTable::frac(row.confusion.pvn())});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\npaper anchors (Sec. 2.2): O-GEHL self-confidence "
                 "PVN ~ 1/3, SPEC ~ 1/2.\n"
                 "expected shape: the TAGE storage-free scheme clearly "
                 "exceeds the self-confidence SPEC while TAGE is also "
                 "the most accurate predictor.\n";
    return 0;
}
