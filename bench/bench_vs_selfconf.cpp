/**
 * @file
 * Reproduces the Sec. 2.2 related-work claims about *self-confidence*
 * on neural/GEHL-style predictors, against the TAGE storage-free
 * scheme:
 *
 *   "This confidence estimation for the O-GEHL predictor exhibits a
 *    quite good PVN: about one third of the low confidence predictions
 *    are in practice mispredicted. But on the other hand, it exhibits
 *    only a limited SPEC: only half of the mispredicted branches are
 *    effectively classified as low confidence."
 *
 * Each predictor is evaluated with its own confidence scheme on its
 * own predictions (self-confidence is inseparable from its host), so
 * the comparison covers both accuracy and confidence quality. Every
 * row is one registry spec driven through the shared generic loop;
 * override the lineup with --predictors=spec1,spec2,...
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Self-confidence comparison: TAGE storage-free "
                       "vs O-GEHL vs perceptron",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 2.2", opt);

    std::vector<std::string> specs = opt.predictors;
    if (specs.empty())
        specs = {"tage64k+prob7+sfc", "ogehl+self", "perceptron+self"};

    TextTable t;
    t.addColumn("predictor + confidence", TextTable::Align::Left);
    t.addColumn("storage (Kbit)");
    t.addColumn("misp rate (MKP)");
    t.addColumn("high cov");
    t.addColumn("SENS");
    t.addColumn("PVP");
    t.addColumn("SPEC");
    t.addColumn("PVN");
    for (const auto& spec : specs) {
        const RunResult r =
            runSets({BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}, spec,
                    opt.branchesPerTrace);
        t.addRow({r.configName,
                  TextTable::num(
                      static_cast<double>(r.storageBits) / 1024.0, 0),
                  TextTable::num(r.stats.totalMkp(), 1),
                  TextTable::frac(r.confusion.highCoverage()),
                  TextTable::frac(r.confusion.sens()),
                  TextTable::frac(r.confusion.pvp()),
                  TextTable::frac(r.confusion.spec()),
                  TextTable::frac(r.confusion.pvn())});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\npaper anchors (Sec. 2.2): O-GEHL self-confidence "
                 "PVN ~ 1/3, SPEC ~ 1/2.\n"
                 "expected shape: the TAGE storage-free scheme clearly "
                 "exceeds the self-confidence SPEC while TAGE is also "
                 "the most accurate predictor.\n";
    return 0;
}
