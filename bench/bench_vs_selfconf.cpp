/**
 * @file
 * Reproduces the Sec. 2.2 related-work claims about *self-confidence*
 * on neural/GEHL-style predictors, against the TAGE storage-free
 * scheme:
 *
 *   "This confidence estimation for the O-GEHL predictor exhibits a
 *    quite good PVN: about one third of the low confidence predictions
 *    are in practice mispredicted. But on the other hand, it exhibits
 *    only a limited SPEC: only half of the mispredicted branches are
 *    effectively classified as low confidence."
 *
 * Each predictor is evaluated with its own confidence scheme on its
 * own predictions (self-confidence is inseparable from its host), so
 * the comparison covers both accuracy and confidence quality.
 */

#include <iostream>

#include "baseline/ogehl_predictor.hpp"
#include "baseline/perceptron_predictor.hpp"
#include "bench_common.hpp"
#include "core/binary_metrics.hpp"
#include "core/confidence_observer.hpp"
#include "sim/experiment.hpp"
#include "tage/tage_predictor.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

struct Row {
    std::string name;
    uint64_t storageBits = 0;
    uint64_t predictions = 0;
    uint64_t mispredictions = 0;
    BinaryConfidenceMetrics metrics;
};

void
driveTage(Row& row, const TageConfig& cfg, uint64_t branches)
{
    for (const BenchmarkSet set :
         {BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}) {
        for (const auto& name : traceNames(set)) {
            SyntheticTrace trace = makeTrace(name, branches);
            TagePredictor predictor(cfg);
            ConfidenceObserver observer;
            row.storageBits = predictor.storageBits();
            BranchRecord rec;
            while (trace.next(rec)) {
                const TagePrediction p = predictor.predict(rec.pc);
                const bool correct = p.taken == rec.taken;
                const bool high = observer.classifyLevel(p) ==
                                  ConfidenceLevel::High;
                row.metrics.record(high, correct);
                ++row.predictions;
                row.mispredictions += correct ? 0 : 1;
                observer.onResolve(p, rec.taken);
                predictor.update(rec.pc, p, rec.taken);
            }
        }
    }
}

template <typename Predictor>
void
driveSelfConf(Row& row, uint64_t branches)
{
    for (const BenchmarkSet set :
         {BenchmarkSet::Cbp1, BenchmarkSet::Cbp2}) {
        for (const auto& name : traceNames(set)) {
            SyntheticTrace trace = makeTrace(name, branches);
            Predictor predictor;
            row.storageBits = predictor.storageBits();
            BranchRecord rec;
            while (trace.next(rec)) {
                const bool taken = predictor.predict(rec.pc);
                const bool correct = taken == rec.taken;
                row.metrics.record(predictor.lastHighConfidence(),
                                   correct);
                ++row.predictions;
                row.mispredictions += correct ? 0 : 1;
                predictor.update(rec.pc, rec.taken);
            }
        }
    }
}

/** Perceptron with a default geometry comparable to 64 Kbit. */
struct DefaultPerceptron : PerceptronPredictor {
    DefaultPerceptron()
        : PerceptronPredictor(9, 32)
    {
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Self-confidence comparison: TAGE storage-free "
                       "vs O-GEHL vs perceptron",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 2.2", opt);

    Row tage_row;
    tage_row.name = "TAGE 64K + storage-free (p=1/128)";
    driveTage(tage_row,
              TageConfig::medium64K().withProbabilisticSaturation(7),
              opt.branchesPerTrace);

    Row ogehl_row;
    ogehl_row.name = "O-GEHL 64K + |sum|>=theta";
    driveSelfConf<OgehlPredictor>(ogehl_row, opt.branchesPerTrace);

    Row perceptron_row;
    perceptron_row.name = "perceptron + |sum|>=theta";
    driveSelfConf<DefaultPerceptron>(perceptron_row,
                                     opt.branchesPerTrace);

    TextTable t;
    t.addColumn("predictor + confidence", TextTable::Align::Left);
    t.addColumn("storage (Kbit)");
    t.addColumn("misp rate (MKP)");
    t.addColumn("high cov");
    t.addColumn("SENS");
    t.addColumn("PVP");
    t.addColumn("SPEC");
    t.addColumn("PVN");
    for (const Row* row : {&tage_row, &ogehl_row, &perceptron_row}) {
        t.addRow({row->name,
                  TextTable::num(static_cast<double>(row->storageBits) /
                                     1024.0, 0),
                  TextTable::num(
                      1000.0 * static_cast<double>(row->mispredictions) /
                          static_cast<double>(row->predictions), 1),
                  TextTable::frac(row->metrics.highCoverage()),
                  TextTable::frac(row->metrics.sens()),
                  TextTable::frac(row->metrics.pvp()),
                  TextTable::frac(row->metrics.spec()),
                  TextTable::frac(row->metrics.pvn())});
    }
    if (opt.csv)
        t.renderCsv(std::cout);
    else
        t.render(std::cout);

    std::cout << "\npaper anchors (Sec. 2.2): O-GEHL self-confidence "
                 "PVN ~ 1/3, SPEC ~ 1/2.\n"
                 "expected shape: the TAGE storage-free scheme clearly "
                 "exceeds the self-confidence SPEC while TAGE is also "
                 "the most accurate predictor.\n";
    return 0;
}
