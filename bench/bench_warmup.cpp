/**
 * @file
 * Warming-phase analysis supporting Sec. 5.1: "on a very large
 * predictor, a misprediction with the bimodal component as provider
 * component should occur only during the warming phase of the
 * predictor". This bench tracks the BIM-class misprediction rate and
 * the medium-conf-bim coverage over consecutive intervals of the
 * stream, on a phased trace (SERV-2) and a stationary one (FP-1).
 *
 * Expected: BIM-class MKP spikes in the first interval(s) and after
 * working-set rotations (SERV-2), and decays to a small steady state;
 * medium-conf-bim coverage tracks those spikes — it is the burst
 * detector.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/confidence_observer.hpp"
#include "sim/interval_stats.hpp"
#include "tage/tage_predictor.hpp"
#include "trace/profiles.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

void
analyze(const std::string& trace_name, const TageConfig& cfg,
        uint64_t branches, uint64_t interval, uint64_t seed_salt)
{
    SyntheticTrace trace = makeTrace(trace_name, branches, seed_salt);
    TagePredictor predictor(cfg);
    ConfidenceObserver observer;
    IntervalRecorder recorder(interval);

    BranchRecord rec;
    while (trace.next(rec)) {
        const TagePrediction p = predictor.predict(rec.pc);
        recorder.record(observer.classify(p), p.taken != rec.taken,
                        uint64_t{rec.instructionsBefore} + 1);
        observer.onResolve(p, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
    }

    std::cout << "--- " << trace_name << " on " << cfg.name
              << ", interval = " << interval << " branches ---\n";
    TextTable t;
    t.addColumn("interval", TextTable::Align::Left);
    t.addColumn("total MKP");
    t.addColumn("BIM MKP");
    t.addColumn("medium-conf-bim Pcov %");
    t.addColumn("low+med-bim MPcov %");

    size_t idx = 0;
    for (const ClassStats& s : recorder.intervals()) {
        const uint64_t bim_pred =
            s.predictions(PredictionClass::HighConfBim) +
            s.predictions(PredictionClass::MediumConfBim) +
            s.predictions(PredictionClass::LowConfBim);
        const uint64_t bim_miss =
            s.mispredictions(PredictionClass::HighConfBim) +
            s.mispredictions(PredictionClass::MediumConfBim) +
            s.mispredictions(PredictionClass::LowConfBim);
        const double bim_mkp =
            bim_pred == 0 ? 0.0
                          : 1000.0 * static_cast<double>(bim_miss) /
                                static_cast<double>(bim_pred);
        t.addRow({std::to_string(idx),
                  TextTable::num(s.totalMkp(), 1),
                  TextTable::num(bim_mkp, 1),
                  TextTable::num(
                      s.pcov(PredictionClass::MediumConfBim) * 100.0, 1),
                  TextTable::num(
                      (s.mpcov(PredictionClass::MediumConfBim) +
                       s.mpcov(PredictionClass::LowConfBim)) * 100.0,
                      1)});
        ++idx;
    }
    t.render(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    bench::printHeader("Warming / phase-change analysis of the BIM "
                       "classes",
                       "Seznec, RR-7371 / HPCA 2011, Sec. 5.1", opt);

    const uint64_t interval = opt.branchesPerTrace / 10 == 0
                                  ? 1
                                  : opt.branchesPerTrace / 10;
    analyze("SERV-2", TageConfig::small16K(), opt.branchesPerTrace,
            interval, opt.seedSalt);
    analyze("FP-1", TageConfig::large256K(), opt.branchesPerTrace,
            interval, opt.seedSalt);

    std::cout << "expected shape: interval 0 carries the warming spike "
                 "(highest BIM MKP); the phased SERV trace keeps "
                 "re-spiking at working-set rotations while the "
                 "stationary FP trace decays to a near-zero floor.\n";
    return 0;
}
