/**
 * @file
 * Warming-phase analysis supporting Sec. 5.1: "on a very large
 * predictor, a misprediction with the bimodal component as provider
 * component should occur only during the warming phase of the
 * predictor". This bench tracks the BIM-class misprediction rate and
 * the medium-conf-bim coverage over consecutive intervals of the
 * stream, on a phased trace (SERV-2) and a stationary one (FP-1).
 *
 * Declarative: each panel is a one-cell SweepPlan with the
 * IntervalObserver attached; the table is rendered from the run's
 * RunAnalysis::intervals — the bench owns no simulation loop.
 *
 * Expected: BIM-class MKP spikes in the first interval(s) and after
 * working-set rotations (SERV-2), and decays to a small steady state;
 * medium-conf-bim coverage tracks those spikes — it is the burst
 * detector.
 */

#include <iostream>

#include "bench_figures.hpp"

using namespace tagecon;

namespace {

void
analyze(Report& r, const std::string& trace_name,
        const std::string& label, const std::string& spec,
        uint64_t default_interval,
        const tagecon::bench::BenchOptions& opt)
{
    SweepPlan plan = SweepPlan::over({spec}, {trace_name},
                                     opt.branchesPerTrace, opt.seedSalt);
    plan.analysis = opt.analysis;
    // The bench needs the interval view; install it with its default
    // window, but an explicit --analysis=intervals:len=N wins.
    if (!plan.analysis.intervals) {
        plan.analysis.intervals = true;
        plan.analysis.intervalLength = default_interval;
    }
    const uint64_t interval = plan.analysis.intervalLength;
    auto results = runSweep(plan, SweepOptions{opt.jobs, {}});
    RunResult& rr = results.front();
    const IntervalAnalysis& ia = *rr.analysis.intervals;

    TextTable t;
    t.addColumn("interval", TextTable::Align::Left);
    t.addColumn("total MKP");
    t.addColumn("BIM MKP");
    t.addColumn("medium-conf-bim Pcov %");
    t.addColumn("low+med-bim MPcov %");

    for (size_t idx = 0; idx < ia.completeIntervals; ++idx) {
        const ClassStats& s = ia.intervals[idx];
        const BimSplit bim = bimSplit(s);
        t.addRow({std::to_string(idx),
                  TextTable::num(s.totalMkp(), 1),
                  ratePerKiloCell(bim.mispredictions, bim.predictions,
                                  1),
                  TextTable::num(
                      s.pcov(PredictionClass::MediumConfBim) * 100.0, 1),
                  TextTable::num(
                      (s.mpcov(PredictionClass::MediumConfBim) +
                       s.mpcov(PredictionClass::LowConfBim)) * 100.0,
                      1)});
    }
    r.addTable(ReportTable{"intervals-" + toLower(trace_name),
                           trace_name + " on " + label +
                               ", interval = " +
                               std::to_string(interval) + " branches",
                           std::move(t)});
    r.addBlank();

    // Any further observers the user attached (e.g. --analysis=warmup)
    // report through the standard analysis sections; the interval view
    // is already printed above in its historical shape, so its slot is
    // dropped (in place — the run result is not reused afterwards).
    if (opt.analysis.enabled()) {
        rr.analysis.intervals.reset();
        addAnalysisSections(r, rr, toLower(trace_name));
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = bench::parseOptions(argc, argv);
    Report r = bench::makeReport(
        "warmup",
        "Warming / phase-change analysis of the BIM classes",
        "Seznec, RR-7371 / HPCA 2011, Sec. 5.1", opt);

    const uint64_t interval = opt.branchesPerTrace / 10 == 0
                                  ? 1
                                  : opt.branchesPerTrace / 10;
    analyze(r, "SERV-2", "16K", "tage16k", interval, opt);
    analyze(r, "FP-1", "256K", "tage256k", interval, opt);

    r.addText("expected shape: interval 0 carries the warming spike "
              "(highest BIM MKP); the phased SERV trace keeps "
              "re-spiking at working-set rotations while the "
              "stationary FP trace decays to a near-zero floor.");
    r.emit(opt.format, std::cout);
    return 0;
}
