file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctrwidth.dir/bench/bench_ablation_ctrwidth.cpp.o"
  "CMakeFiles/bench_ablation_ctrwidth.dir/bench/bench_ablation_ctrwidth.cpp.o.d"
  "bench_ablation_ctrwidth"
  "bench_ablation_ctrwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctrwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
