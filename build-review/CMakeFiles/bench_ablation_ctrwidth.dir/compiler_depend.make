# Empty compiler generated dependencies file for bench_ablation_ctrwidth.
# This may be replaced when dependencies are built.
