file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_looppred.dir/bench/bench_ablation_looppred.cpp.o"
  "CMakeFiles/bench_ablation_looppred.dir/bench/bench_ablation_looppred.cpp.o.d"
  "bench_ablation_looppred"
  "bench_ablation_looppred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_looppred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
