# Empty dependencies file for bench_ablation_looppred.
# This may be replaced when dependencies are built.
