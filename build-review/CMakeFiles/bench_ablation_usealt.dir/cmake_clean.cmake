file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_usealt.dir/bench/bench_ablation_usealt.cpp.o"
  "CMakeFiles/bench_ablation_usealt.dir/bench/bench_ablation_usealt.cpp.o.d"
  "bench_ablation_usealt"
  "bench_ablation_usealt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_usealt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
