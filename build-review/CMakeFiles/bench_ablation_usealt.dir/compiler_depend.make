# Empty compiler generated dependencies file for bench_ablation_usealt.
# This may be replaced when dependencies are built.
