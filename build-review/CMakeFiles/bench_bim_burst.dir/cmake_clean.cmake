file(REMOVE_RECURSE
  "CMakeFiles/bench_bim_burst.dir/bench/bench_bim_burst.cpp.o"
  "CMakeFiles/bench_bim_burst.dir/bench/bench_bim_burst.cpp.o.d"
  "bench_bim_burst"
  "bench_bim_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bim_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
