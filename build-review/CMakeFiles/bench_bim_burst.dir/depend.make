# Empty dependencies file for bench_bim_burst.
# This may be replaced when dependencies are built.
