file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5.dir/bench/bench_figure5.cpp.o"
  "CMakeFiles/bench_figure5.dir/bench/bench_figure5.cpp.o.d"
  "bench_figure5"
  "bench_figure5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
