# Empty compiler generated dependencies file for bench_figure5.
# This may be replaced when dependencies are built.
