file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6.dir/bench/bench_figure6.cpp.o"
  "CMakeFiles/bench_figure6.dir/bench/bench_figure6.cpp.o.d"
  "bench_figure6"
  "bench_figure6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
