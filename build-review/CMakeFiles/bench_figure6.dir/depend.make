# Empty dependencies file for bench_figure6.
# This may be replaced when dependencies are built.
