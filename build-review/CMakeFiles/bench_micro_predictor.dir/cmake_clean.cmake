file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_predictor.dir/bench/bench_micro_predictor.cpp.o"
  "CMakeFiles/bench_micro_predictor.dir/bench/bench_micro_predictor.cpp.o.d"
  "bench_micro_predictor"
  "bench_micro_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
