# Empty dependencies file for bench_micro_predictor.
# This may be replaced when dependencies are built.
