file(REMOVE_RECURSE
  "CMakeFiles/bench_prob_sweep.dir/bench/bench_prob_sweep.cpp.o"
  "CMakeFiles/bench_prob_sweep.dir/bench/bench_prob_sweep.cpp.o.d"
  "bench_prob_sweep"
  "bench_prob_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prob_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
