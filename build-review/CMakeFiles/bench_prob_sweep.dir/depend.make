# Empty dependencies file for bench_prob_sweep.
# This may be replaced when dependencies are built.
