file(REMOVE_RECURSE
  "CMakeFiles/bench_section5.dir/bench/bench_section5.cpp.o"
  "CMakeFiles/bench_section5.dir/bench/bench_section5.cpp.o.d"
  "bench_section5"
  "bench_section5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
