# Empty dependencies file for bench_section5.
# This may be replaced when dependencies are built.
