file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_jrs.dir/bench/bench_vs_jrs.cpp.o"
  "CMakeFiles/bench_vs_jrs.dir/bench/bench_vs_jrs.cpp.o.d"
  "bench_vs_jrs"
  "bench_vs_jrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_jrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
