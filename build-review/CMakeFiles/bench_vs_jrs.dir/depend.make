# Empty dependencies file for bench_vs_jrs.
# This may be replaced when dependencies are built.
