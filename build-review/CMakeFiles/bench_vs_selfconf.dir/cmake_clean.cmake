file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_selfconf.dir/bench/bench_vs_selfconf.cpp.o"
  "CMakeFiles/bench_vs_selfconf.dir/bench/bench_vs_selfconf.cpp.o.d"
  "bench_vs_selfconf"
  "bench_vs_selfconf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_selfconf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
