# Empty dependencies file for bench_vs_selfconf.
# This may be replaced when dependencies are built.
