file(REMOVE_RECURSE
  "CMakeFiles/example_confidence_explorer.dir/examples/confidence_explorer.cpp.o"
  "CMakeFiles/example_confidence_explorer.dir/examples/confidence_explorer.cpp.o.d"
  "example_confidence_explorer"
  "example_confidence_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_confidence_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
