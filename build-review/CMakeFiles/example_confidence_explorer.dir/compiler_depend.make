# Empty compiler generated dependencies file for example_confidence_explorer.
# This may be replaced when dependencies are built.
