file(REMOVE_RECURSE
  "CMakeFiles/example_fetch_gating.dir/examples/fetch_gating.cpp.o"
  "CMakeFiles/example_fetch_gating.dir/examples/fetch_gating.cpp.o.d"
  "example_fetch_gating"
  "example_fetch_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fetch_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
