# Empty compiler generated dependencies file for example_fetch_gating.
# This may be replaced when dependencies are built.
