file(REMOVE_RECURSE
  "CMakeFiles/example_make_traces.dir/examples/make_traces.cpp.o"
  "CMakeFiles/example_make_traces.dir/examples/make_traces.cpp.o.d"
  "example_make_traces"
  "example_make_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_make_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
