# Empty dependencies file for example_make_traces.
# This may be replaced when dependencies are built.
