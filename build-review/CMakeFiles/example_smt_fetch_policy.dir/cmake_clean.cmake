file(REMOVE_RECURSE
  "CMakeFiles/example_smt_fetch_policy.dir/examples/smt_fetch_policy.cpp.o"
  "CMakeFiles/example_smt_fetch_policy.dir/examples/smt_fetch_policy.cpp.o.d"
  "example_smt_fetch_policy"
  "example_smt_fetch_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smt_fetch_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
