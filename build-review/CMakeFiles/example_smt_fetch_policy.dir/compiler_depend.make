# Empty compiler generated dependencies file for example_smt_fetch_policy.
# This may be replaced when dependencies are built.
