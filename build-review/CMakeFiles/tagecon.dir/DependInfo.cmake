
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analysis_config.cpp" "CMakeFiles/tagecon.dir/src/analysis/analysis_config.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/analysis/analysis_config.cpp.o.d"
  "/root/repo/src/analysis/observers.cpp" "CMakeFiles/tagecon.dir/src/analysis/observers.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/analysis/observers.cpp.o.d"
  "/root/repo/src/baseline/bimodal_predictor.cpp" "CMakeFiles/tagecon.dir/src/baseline/bimodal_predictor.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/baseline/bimodal_predictor.cpp.o.d"
  "/root/repo/src/baseline/graded_baselines.cpp" "CMakeFiles/tagecon.dir/src/baseline/graded_baselines.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/baseline/graded_baselines.cpp.o.d"
  "/root/repo/src/baseline/gshare_predictor.cpp" "CMakeFiles/tagecon.dir/src/baseline/gshare_predictor.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/baseline/gshare_predictor.cpp.o.d"
  "/root/repo/src/baseline/jrs_estimator.cpp" "CMakeFiles/tagecon.dir/src/baseline/jrs_estimator.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/baseline/jrs_estimator.cpp.o.d"
  "/root/repo/src/baseline/ogehl_predictor.cpp" "CMakeFiles/tagecon.dir/src/baseline/ogehl_predictor.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/baseline/ogehl_predictor.cpp.o.d"
  "/root/repo/src/baseline/perceptron_predictor.cpp" "CMakeFiles/tagecon.dir/src/baseline/perceptron_predictor.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/baseline/perceptron_predictor.cpp.o.d"
  "/root/repo/src/core/adaptive_probability.cpp" "CMakeFiles/tagecon.dir/src/core/adaptive_probability.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/core/adaptive_probability.cpp.o.d"
  "/root/repo/src/core/class_stats.cpp" "CMakeFiles/tagecon.dir/src/core/class_stats.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/core/class_stats.cpp.o.d"
  "/root/repo/src/core/prediction_class.cpp" "CMakeFiles/tagecon.dir/src/core/prediction_class.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/core/prediction_class.cpp.o.d"
  "/root/repo/src/lint/lint.cpp" "CMakeFiles/tagecon.dir/src/lint/lint.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/lint/lint.cpp.o.d"
  "/root/repo/src/serve/checkpoint.cpp" "CMakeFiles/tagecon.dir/src/serve/checkpoint.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/serve/checkpoint.cpp.o.d"
  "/root/repo/src/serve/serving_engine.cpp" "CMakeFiles/tagecon.dir/src/serve/serving_engine.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/serve/serving_engine.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "CMakeFiles/tagecon.dir/src/sim/experiment.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/interval_stats.cpp" "CMakeFiles/tagecon.dir/src/sim/interval_stats.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/interval_stats.cpp.o.d"
  "/root/repo/src/sim/registry.cpp" "CMakeFiles/tagecon.dir/src/sim/registry.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/registry.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "CMakeFiles/tagecon.dir/src/sim/report.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/report.cpp.o.d"
  "/root/repo/src/sim/reporting.cpp" "CMakeFiles/tagecon.dir/src/sim/reporting.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/reporting.cpp.o.d"
  "/root/repo/src/sim/spec_params.cpp" "CMakeFiles/tagecon.dir/src/sim/spec_params.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/spec_params.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "CMakeFiles/tagecon.dir/src/sim/sweep.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/trace_registry.cpp" "CMakeFiles/tagecon.dir/src/sim/trace_registry.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/sim/trace_registry.cpp.o.d"
  "/root/repo/src/tage/graded_tage.cpp" "CMakeFiles/tagecon.dir/src/tage/graded_tage.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/tage/graded_tage.cpp.o.d"
  "/root/repo/src/tage/loop_predictor.cpp" "CMakeFiles/tagecon.dir/src/tage/loop_predictor.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/tage/loop_predictor.cpp.o.d"
  "/root/repo/src/tage/tage_config.cpp" "CMakeFiles/tagecon.dir/src/tage/tage_config.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/tage/tage_config.cpp.o.d"
  "/root/repo/src/tage/tage_predictor.cpp" "CMakeFiles/tagecon.dir/src/tage/tage_predictor.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/tage/tage_predictor.cpp.o.d"
  "/root/repo/src/trace/behavior.cpp" "CMakeFiles/tagecon.dir/src/trace/behavior.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/trace/behavior.cpp.o.d"
  "/root/repo/src/trace/cbp_ascii.cpp" "CMakeFiles/tagecon.dir/src/trace/cbp_ascii.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/trace/cbp_ascii.cpp.o.d"
  "/root/repo/src/trace/profiles.cpp" "CMakeFiles/tagecon.dir/src/trace/profiles.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/trace/profiles.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "CMakeFiles/tagecon.dir/src/trace/trace_io.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/trace_source.cpp" "CMakeFiles/tagecon.dir/src/trace/trace_source.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/trace/trace_source.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "CMakeFiles/tagecon.dir/src/trace/workload.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/trace/workload.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/tagecon.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/errors.cpp" "CMakeFiles/tagecon.dir/src/util/errors.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/errors.cpp.o.d"
  "/root/repo/src/util/failpoint.cpp" "CMakeFiles/tagecon.dir/src/util/failpoint.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/failpoint.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/tagecon.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/random.cpp" "CMakeFiles/tagecon.dir/src/util/random.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/random.cpp.o.d"
  "/root/repo/src/util/state_io.cpp" "CMakeFiles/tagecon.dir/src/util/state_io.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/state_io.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/tagecon.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/strict_parse.cpp" "CMakeFiles/tagecon.dir/src/util/strict_parse.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/strict_parse.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "CMakeFiles/tagecon.dir/src/util/table_printer.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/table_printer.cpp.o.d"
  "/root/repo/src/util/wall_clock.cpp" "CMakeFiles/tagecon.dir/src/util/wall_clock.cpp.o" "gcc" "CMakeFiles/tagecon.dir/src/util/wall_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
