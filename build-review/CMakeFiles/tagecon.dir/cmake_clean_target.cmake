file(REMOVE_RECURSE
  "libtagecon.a"
)
