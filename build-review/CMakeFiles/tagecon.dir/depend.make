# Empty dependencies file for tagecon.
# This may be replaced when dependencies are built.
