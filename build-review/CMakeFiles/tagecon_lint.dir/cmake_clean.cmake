file(REMOVE_RECURSE
  "CMakeFiles/tagecon_lint.dir/tools/tagecon_lint.cpp.o"
  "CMakeFiles/tagecon_lint.dir/tools/tagecon_lint.cpp.o.d"
  "tagecon_lint"
  "tagecon_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagecon_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
