# Empty compiler generated dependencies file for tagecon_lint.
# This may be replaced when dependencies are built.
