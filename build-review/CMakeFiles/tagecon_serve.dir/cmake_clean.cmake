file(REMOVE_RECURSE
  "CMakeFiles/tagecon_serve.dir/tools/tagecon_serve.cpp.o"
  "CMakeFiles/tagecon_serve.dir/tools/tagecon_serve.cpp.o.d"
  "tagecon_serve"
  "tagecon_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagecon_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
