# Empty dependencies file for tagecon_serve.
# This may be replaced when dependencies are built.
