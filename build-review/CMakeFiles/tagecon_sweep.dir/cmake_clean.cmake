file(REMOVE_RECURSE
  "CMakeFiles/tagecon_sweep.dir/tools/tagecon_sweep.cpp.o"
  "CMakeFiles/tagecon_sweep.dir/tools/tagecon_sweep.cpp.o.d"
  "tagecon_sweep"
  "tagecon_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagecon_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
