# Empty dependencies file for tagecon_sweep.
# This may be replaced when dependencies are built.
