file(REMOVE_RECURSE
  "CMakeFiles/tagecon_trace.dir/tools/tagecon_trace.cpp.o"
  "CMakeFiles/tagecon_trace.dir/tools/tagecon_trace.cpp.o.d"
  "tagecon_trace"
  "tagecon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagecon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
