# Empty dependencies file for tagecon_trace.
# This may be replaced when dependencies are built.
