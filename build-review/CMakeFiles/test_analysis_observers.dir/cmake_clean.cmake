file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_observers.dir/tests/test_analysis_observers.cpp.o"
  "CMakeFiles/test_analysis_observers.dir/tests/test_analysis_observers.cpp.o.d"
  "test_analysis_observers"
  "test_analysis_observers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_observers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
