# Empty compiler generated dependencies file for test_analysis_observers.
# This may be replaced when dependencies are built.
