file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_predictors.dir/tests/test_baseline_predictors.cpp.o"
  "CMakeFiles/test_baseline_predictors.dir/tests/test_baseline_predictors.cpp.o.d"
  "test_baseline_predictors"
  "test_baseline_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
