# Empty dependencies file for test_baseline_predictors.
# This may be replaced when dependencies are built.
