file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_sweeps.dir/tests/test_baseline_sweeps.cpp.o"
  "CMakeFiles/test_baseline_sweeps.dir/tests/test_baseline_sweeps.cpp.o.d"
  "test_baseline_sweeps"
  "test_baseline_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
