# Empty dependencies file for test_baseline_sweeps.
# This may be replaced when dependencies are built.
