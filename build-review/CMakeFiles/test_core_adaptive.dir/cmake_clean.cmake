file(REMOVE_RECURSE
  "CMakeFiles/test_core_adaptive.dir/tests/test_core_adaptive.cpp.o"
  "CMakeFiles/test_core_adaptive.dir/tests/test_core_adaptive.cpp.o.d"
  "test_core_adaptive"
  "test_core_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
