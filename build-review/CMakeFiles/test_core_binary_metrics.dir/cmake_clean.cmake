file(REMOVE_RECURSE
  "CMakeFiles/test_core_binary_metrics.dir/tests/test_core_binary_metrics.cpp.o"
  "CMakeFiles/test_core_binary_metrics.dir/tests/test_core_binary_metrics.cpp.o.d"
  "test_core_binary_metrics"
  "test_core_binary_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_binary_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
