# Empty dependencies file for test_core_binary_metrics.
# This may be replaced when dependencies are built.
