file(REMOVE_RECURSE
  "CMakeFiles/test_core_class_stats.dir/tests/test_core_class_stats.cpp.o"
  "CMakeFiles/test_core_class_stats.dir/tests/test_core_class_stats.cpp.o.d"
  "test_core_class_stats"
  "test_core_class_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_class_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
