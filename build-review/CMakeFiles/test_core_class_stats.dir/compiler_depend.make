# Empty compiler generated dependencies file for test_core_class_stats.
# This may be replaced when dependencies are built.
