file(REMOVE_RECURSE
  "CMakeFiles/test_core_classes.dir/tests/test_core_classes.cpp.o"
  "CMakeFiles/test_core_classes.dir/tests/test_core_classes.cpp.o.d"
  "test_core_classes"
  "test_core_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
