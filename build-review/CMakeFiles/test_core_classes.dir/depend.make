# Empty dependencies file for test_core_classes.
# This may be replaced when dependencies are built.
