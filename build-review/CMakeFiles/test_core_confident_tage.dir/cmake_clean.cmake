file(REMOVE_RECURSE
  "CMakeFiles/test_core_confident_tage.dir/tests/test_core_confident_tage.cpp.o"
  "CMakeFiles/test_core_confident_tage.dir/tests/test_core_confident_tage.cpp.o.d"
  "test_core_confident_tage"
  "test_core_confident_tage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_confident_tage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
