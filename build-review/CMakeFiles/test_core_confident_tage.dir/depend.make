# Empty dependencies file for test_core_confident_tage.
# This may be replaced when dependencies are built.
