file(REMOVE_RECURSE
  "CMakeFiles/test_failpoint.dir/tests/test_failpoint.cpp.o"
  "CMakeFiles/test_failpoint.dir/tests/test_failpoint.cpp.o.d"
  "test_failpoint"
  "test_failpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
