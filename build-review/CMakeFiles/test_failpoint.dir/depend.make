# Empty dependencies file for test_failpoint.
# This may be replaced when dependencies are built.
