file(REMOVE_RECURSE
  "CMakeFiles/test_graded_predictor.dir/tests/test_graded_predictor.cpp.o"
  "CMakeFiles/test_graded_predictor.dir/tests/test_graded_predictor.cpp.o.d"
  "test_graded_predictor"
  "test_graded_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graded_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
