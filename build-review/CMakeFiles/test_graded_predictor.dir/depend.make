# Empty dependencies file for test_graded_predictor.
# This may be replaced when dependencies are built.
