file(REMOVE_RECURSE
  "CMakeFiles/test_lint_rules.dir/tests/test_lint_rules.cpp.o"
  "CMakeFiles/test_lint_rules.dir/tests/test_lint_rules.cpp.o.d"
  "test_lint_rules"
  "test_lint_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lint_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
