# Empty compiler generated dependencies file for test_lint_rules.
# This may be replaced when dependencies are built.
