file(REMOVE_RECURSE
  "CMakeFiles/test_loop_predictor.dir/tests/test_loop_predictor.cpp.o"
  "CMakeFiles/test_loop_predictor.dir/tests/test_loop_predictor.cpp.o.d"
  "test_loop_predictor"
  "test_loop_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
