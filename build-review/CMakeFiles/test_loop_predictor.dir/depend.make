# Empty dependencies file for test_loop_predictor.
# This may be replaced when dependencies are built.
