file(REMOVE_RECURSE
  "CMakeFiles/test_ogehl_predictor.dir/tests/test_ogehl_predictor.cpp.o"
  "CMakeFiles/test_ogehl_predictor.dir/tests/test_ogehl_predictor.cpp.o.d"
  "test_ogehl_predictor"
  "test_ogehl_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ogehl_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
