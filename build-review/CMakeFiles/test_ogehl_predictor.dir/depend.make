# Empty dependencies file for test_ogehl_predictor.
# This may be replaced when dependencies are built.
