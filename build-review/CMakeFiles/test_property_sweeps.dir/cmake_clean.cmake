file(REMOVE_RECURSE
  "CMakeFiles/test_property_sweeps.dir/tests/test_property_sweeps.cpp.o"
  "CMakeFiles/test_property_sweeps.dir/tests/test_property_sweeps.cpp.o.d"
  "test_property_sweeps"
  "test_property_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
