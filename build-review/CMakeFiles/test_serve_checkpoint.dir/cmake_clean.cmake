file(REMOVE_RECURSE
  "CMakeFiles/test_serve_checkpoint.dir/tests/test_serve_checkpoint.cpp.o"
  "CMakeFiles/test_serve_checkpoint.dir/tests/test_serve_checkpoint.cpp.o.d"
  "test_serve_checkpoint"
  "test_serve_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
