file(REMOVE_RECURSE
  "CMakeFiles/test_serve_engine.dir/tests/test_serve_engine.cpp.o"
  "CMakeFiles/test_serve_engine.dir/tests/test_serve_engine.cpp.o.d"
  "test_serve_engine"
  "test_serve_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
