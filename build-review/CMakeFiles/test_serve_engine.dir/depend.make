# Empty dependencies file for test_serve_engine.
# This may be replaced when dependencies are built.
