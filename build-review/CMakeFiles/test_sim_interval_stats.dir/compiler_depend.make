# Empty compiler generated dependencies file for test_sim_interval_stats.
# This may be replaced when dependencies are built.
