file(REMOVE_RECURSE
  "CMakeFiles/test_sim_report.dir/tests/test_sim_report.cpp.o"
  "CMakeFiles/test_sim_report.dir/tests/test_sim_report.cpp.o.d"
  "test_sim_report"
  "test_sim_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
