file(REMOVE_RECURSE
  "CMakeFiles/test_sim_reporting.dir/tests/test_sim_reporting.cpp.o"
  "CMakeFiles/test_sim_reporting.dir/tests/test_sim_reporting.cpp.o.d"
  "test_sim_reporting"
  "test_sim_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
