# Empty compiler generated dependencies file for test_sim_reporting.
# This may be replaced when dependencies are built.
