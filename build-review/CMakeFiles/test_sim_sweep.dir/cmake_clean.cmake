file(REMOVE_RECURSE
  "CMakeFiles/test_sim_sweep.dir/tests/test_sim_sweep.cpp.o"
  "CMakeFiles/test_sim_sweep.dir/tests/test_sim_sweep.cpp.o.d"
  "test_sim_sweep"
  "test_sim_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
