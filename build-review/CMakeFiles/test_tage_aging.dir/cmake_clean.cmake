file(REMOVE_RECURSE
  "CMakeFiles/test_tage_aging.dir/tests/test_tage_aging.cpp.o"
  "CMakeFiles/test_tage_aging.dir/tests/test_tage_aging.cpp.o.d"
  "test_tage_aging"
  "test_tage_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
