# Empty compiler generated dependencies file for test_tage_aging.
# This may be replaced when dependencies are built.
