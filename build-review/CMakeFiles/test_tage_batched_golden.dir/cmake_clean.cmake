file(REMOVE_RECURSE
  "CMakeFiles/test_tage_batched_golden.dir/tests/test_tage_batched_golden.cpp.o"
  "CMakeFiles/test_tage_batched_golden.dir/tests/test_tage_batched_golden.cpp.o.d"
  "test_tage_batched_golden"
  "test_tage_batched_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage_batched_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
