# Empty dependencies file for test_tage_batched_golden.
# This may be replaced when dependencies are built.
