file(REMOVE_RECURSE
  "CMakeFiles/test_tage_config.dir/tests/test_tage_config.cpp.o"
  "CMakeFiles/test_tage_config.dir/tests/test_tage_config.cpp.o.d"
  "test_tage_config"
  "test_tage_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
