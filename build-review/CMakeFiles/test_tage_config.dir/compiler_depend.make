# Empty compiler generated dependencies file for test_tage_config.
# This may be replaced when dependencies are built.
