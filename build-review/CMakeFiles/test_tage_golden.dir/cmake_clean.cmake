file(REMOVE_RECURSE
  "CMakeFiles/test_tage_golden.dir/tests/test_tage_golden.cpp.o"
  "CMakeFiles/test_tage_golden.dir/tests/test_tage_golden.cpp.o.d"
  "test_tage_golden"
  "test_tage_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
