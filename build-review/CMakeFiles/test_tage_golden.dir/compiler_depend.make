# Empty compiler generated dependencies file for test_tage_golden.
# This may be replaced when dependencies are built.
