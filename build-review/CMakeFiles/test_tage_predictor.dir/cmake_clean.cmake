file(REMOVE_RECURSE
  "CMakeFiles/test_tage_predictor.dir/tests/test_tage_predictor.cpp.o"
  "CMakeFiles/test_tage_predictor.dir/tests/test_tage_predictor.cpp.o.d"
  "test_tage_predictor"
  "test_tage_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
