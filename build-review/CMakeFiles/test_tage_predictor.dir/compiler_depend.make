# Empty compiler generated dependencies file for test_tage_predictor.
# This may be replaced when dependencies are built.
