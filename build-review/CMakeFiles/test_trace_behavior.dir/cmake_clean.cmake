file(REMOVE_RECURSE
  "CMakeFiles/test_trace_behavior.dir/tests/test_trace_behavior.cpp.o"
  "CMakeFiles/test_trace_behavior.dir/tests/test_trace_behavior.cpp.o.d"
  "test_trace_behavior"
  "test_trace_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
