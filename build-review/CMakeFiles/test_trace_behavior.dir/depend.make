# Empty dependencies file for test_trace_behavior.
# This may be replaced when dependencies are built.
