file(REMOVE_RECURSE
  "CMakeFiles/test_trace_loop_bodies.dir/tests/test_trace_loop_bodies.cpp.o"
  "CMakeFiles/test_trace_loop_bodies.dir/tests/test_trace_loop_bodies.cpp.o.d"
  "test_trace_loop_bodies"
  "test_trace_loop_bodies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_loop_bodies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
