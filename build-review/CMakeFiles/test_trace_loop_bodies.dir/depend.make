# Empty dependencies file for test_trace_loop_bodies.
# This may be replaced when dependencies are built.
