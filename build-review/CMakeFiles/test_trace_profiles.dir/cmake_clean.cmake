file(REMOVE_RECURSE
  "CMakeFiles/test_trace_profiles.dir/tests/test_trace_profiles.cpp.o"
  "CMakeFiles/test_trace_profiles.dir/tests/test_trace_profiles.cpp.o.d"
  "test_trace_profiles"
  "test_trace_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
