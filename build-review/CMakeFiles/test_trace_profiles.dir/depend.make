# Empty dependencies file for test_trace_profiles.
# This may be replaced when dependencies are built.
