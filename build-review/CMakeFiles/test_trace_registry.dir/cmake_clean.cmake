file(REMOVE_RECURSE
  "CMakeFiles/test_trace_registry.dir/tests/test_trace_registry.cpp.o"
  "CMakeFiles/test_trace_registry.dir/tests/test_trace_registry.cpp.o.d"
  "test_trace_registry"
  "test_trace_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
