# Empty compiler generated dependencies file for test_trace_registry.
# This may be replaced when dependencies are built.
