file(REMOVE_RECURSE
  "CMakeFiles/test_trace_workload.dir/tests/test_trace_workload.cpp.o"
  "CMakeFiles/test_trace_workload.dir/tests/test_trace_workload.cpp.o.d"
  "test_trace_workload"
  "test_trace_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
