file(REMOVE_RECURSE
  "CMakeFiles/test_util_bits.dir/tests/test_util_bits.cpp.o"
  "CMakeFiles/test_util_bits.dir/tests/test_util_bits.cpp.o.d"
  "test_util_bits"
  "test_util_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
