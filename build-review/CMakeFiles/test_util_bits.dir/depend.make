# Empty dependencies file for test_util_bits.
# This may be replaced when dependencies are built.
