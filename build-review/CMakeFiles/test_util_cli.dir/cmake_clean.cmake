file(REMOVE_RECURSE
  "CMakeFiles/test_util_cli.dir/tests/test_util_cli.cpp.o"
  "CMakeFiles/test_util_cli.dir/tests/test_util_cli.cpp.o.d"
  "test_util_cli"
  "test_util_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
