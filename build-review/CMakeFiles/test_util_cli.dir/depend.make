# Empty dependencies file for test_util_cli.
# This may be replaced when dependencies are built.
