file(REMOVE_RECURSE
  "CMakeFiles/test_util_counters.dir/tests/test_util_counters.cpp.o"
  "CMakeFiles/test_util_counters.dir/tests/test_util_counters.cpp.o.d"
  "test_util_counters"
  "test_util_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
