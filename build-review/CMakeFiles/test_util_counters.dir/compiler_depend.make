# Empty compiler generated dependencies file for test_util_counters.
# This may be replaced when dependencies are built.
