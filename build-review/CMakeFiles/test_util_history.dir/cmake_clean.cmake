file(REMOVE_RECURSE
  "CMakeFiles/test_util_history.dir/tests/test_util_history.cpp.o"
  "CMakeFiles/test_util_history.dir/tests/test_util_history.cpp.o.d"
  "test_util_history"
  "test_util_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
