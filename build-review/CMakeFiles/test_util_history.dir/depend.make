# Empty dependencies file for test_util_history.
# This may be replaced when dependencies are built.
