file(REMOVE_RECURSE
  "CMakeFiles/test_util_logging.dir/tests/test_util_logging.cpp.o"
  "CMakeFiles/test_util_logging.dir/tests/test_util_logging.cpp.o.d"
  "test_util_logging"
  "test_util_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
