file(REMOVE_RECURSE
  "CMakeFiles/test_util_random.dir/tests/test_util_random.cpp.o"
  "CMakeFiles/test_util_random.dir/tests/test_util_random.cpp.o.d"
  "test_util_random"
  "test_util_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
