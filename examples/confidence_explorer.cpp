/**
 * @file
 * Confidence explorer: sweep every trace of a benchmark set under a
 * chosen predictor size / automaton and print per-trace MPKI plus the
 * per-class coverage and misprediction-rate breakdown — the tool you
 * use to see the paper's Figures 2-6 data for any configuration.
 *
 * Flags:
 *   --set=cbp1|cbp2      benchmark set (default cbp1)
 *   --config=16K|64K|256K  predictor size (default 64K)
 *   --modified           use the Sec. 6 probabilistic automaton
 *   --prob=N             log2(1/p) for the modified automaton (default 7)
 *   --branches=N         branches per trace (default 1M)
 */

#include <iostream>

#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    const std::string set_name = args.getString("set", "cbp1");
    const std::string config_name = args.getString("config", "64K");
    const bool modified = args.getBool("modified", false);
    const auto log2_prob =
        static_cast<unsigned>(args.getUint("prob", 7));
    const uint64_t branches = args.getUint("branches", 1000000);

    const BenchmarkSet set = set_name == "cbp2" ? BenchmarkSet::Cbp2
                                                : BenchmarkSet::Cbp1;

    TageConfig cfg;
    if (config_name == "16K")
        cfg = TageConfig::small16K();
    else if (config_name == "64K")
        cfg = TageConfig::medium64K();
    else if (config_name == "256K")
        cfg = TageConfig::large256K();
    else
        fatal("unknown --config (use 16K, 64K or 256K)");
    if (modified)
        cfg = cfg.withProbabilisticSaturation(log2_prob);

    RunConfig rc;
    rc.predictor = cfg;
    const SetResult result = runBenchmarkSet(set, rc, branches);

    std::cout << "benchmark set: " << benchmarkSetName(set)
              << "   predictor: " << cfg.name << " ("
              << cfg.storageBits() / 1024 << " Kbit)   automaton: "
              << (modified ? "modified (p=1/" +
                                 std::to_string(1u << log2_prob) + ")"
                           : "baseline")
              << "\n\nPrediction coverage per class (%):\n";
    coverageTable(result).render(std::cout);

    std::cout << "\nMisprediction contribution per class (misp/KI):\n";
    mpkiBreakdownTable(result).render(std::cout);

    std::cout << "\nMisprediction rate per class (MKP):\n";
    mprateTable(result, traceNames(set)).render(std::cout);

    std::cout << "\nThree-level split (Sec. 6.1):\n";
    TextTable three = threeClassTable();
    three.addRow(threeClassRow(cfg.name + " " + benchmarkSetName(set),
                               result.aggregate));
    three.render(std::cout);

    std::cout << "\nmean MPKI: " << TextTable::num(result.meanMpki, 2)
              << "\n";
    return 0;
}
