/**
 * @file
 * Confidence explorer: sweep every trace of a benchmark set under a
 * chosen predictor size / automaton and print per-trace MPKI plus the
 * per-class coverage and misprediction-rate breakdown — the tool you
 * use to see the paper's Figures 2-6 data for any configuration.
 *
 * Flags:
 *   --set=cbp1|cbp2      benchmark set (default cbp1)
 *   --predictor=SPEC     any registry spec (overrides the flags below)
 *   --config=16K|64K|256K  predictor size (default 64K)
 *   --modified           use the Sec. 6 probabilistic automaton
 *   --prob=N             log2(1/p) for the modified automaton (default 7)
 *   --branches=N         branches per trace (default 1M)
 */

#include <iostream>

#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "sim/reporting.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    const std::string set_name = args.getString("set", "cbp1");
    const std::string config_name = args.getString("config", "64K");
    const bool modified = args.getBool("modified", false);
    const auto log2_prob =
        static_cast<unsigned>(args.getUint("prob", 7));
    const uint64_t branches = args.getUint("branches", 1000000);

    const BenchmarkSet set = set_name == "cbp2" ? BenchmarkSet::Cbp2
                                                : BenchmarkSet::Cbp1;

    // Everything is a registry spec; the legacy size/automaton flags
    // are translated into one when --predictor is not given.
    std::string spec = args.getString("predictor", "");
    if (spec.empty()) {
        spec = tageBaseForSize(config_name);
        if (spec.empty())
            fatal("unknown --config (use 16K, 64K or 256K)");
        if (modified)
            spec += "+prob" + std::to_string(log2_prob);
        spec += "+sfc";
    }
    auto probe = makePredictor(spec);

    const SetResult result = runBenchmarkSet(set, spec, branches);

    std::cout << "benchmark set: " << benchmarkSetName(set)
              << "   predictor: " << probe->name() << " ("
              << probe->storageBits() / 1024 << " Kbit)"
              << "\n\nPrediction coverage per class (%):\n";
    coverageTable(result).render(std::cout);

    std::cout << "\nMisprediction contribution per class (misp/KI):\n";
    mpkiBreakdownTable(result).render(std::cout);

    std::cout << "\nMisprediction rate per class (MKP):\n";
    mprateTable(result, traceNames(set)).render(std::cout);

    std::cout << "\nThree-level split (Sec. 6.1):\n";
    TextTable three = threeClassTable();
    three.addRow(threeClassRow(probe->name() + " " +
                                   benchmarkSetName(set),
                               result.aggregate));
    three.render(std::cout);

    std::cout << "\nmean MPKI: " << TextTable::num(result.meanMpki, 2)
              << "\n";
    return 0;
}
