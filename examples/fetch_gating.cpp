/**
 * @file
 * Fetch gating driven by storage-free confidence — the usage the paper
 * motivates first (Sec. 2.1, after Manne et al.): when the front end
 * has fetched past too many unresolved low-confidence branches, it is
 * probably on the wrong path, so stop fetching and save the energy.
 *
 * The model is a branch-granularity abstraction of an out-of-order
 * front end:
 *  - branches resolve @c resolveDelay branches after they are fetched;
 *  - every instruction fetched after a mispredicted, not-yet-resolved
 *    branch is wrong-path work (wasted energy);
 *  - a gating policy may stall fetch while "too many" unresolved
 *    low/medium-confidence predictions are in flight; stalled slots
 *    are the performance cost of gating.
 *
 * Three policies are compared on the same trace and predictor:
 *  - no gating (baseline),
 *  - gate on low-confidence predictions only,
 *  - gate on low-confidence, throttle on medium-confidence (the
 *    two-threshold structure that the 3-class split of Sec. 6.1
 *    enables, as suggested by Akkary et al. / Malik et al.).
 *
 * The predictor is any registry spec (--predictor): the storage-free
 * TAGE scheme by default, but gating works with any graded predictor
 * ("gshare+jrs", "perceptron+self", ...).
 *
 * Flags: --trace=NAME --predictor=SPEC --branches=N
 *        --delay=N (resolve delay, default 24 branches)
 *        --config=16K|64K|256K (legacy TAGE size, translated to a
 *        spec when --predictor is not given)
 */

#include <deque>
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

/** Gating policy parameters. */
struct Policy {
    std::string name;
    /** Stall fetch when this many unresolved low-conf branches. */
    int lowLimit = 1 << 30;
    /** Stall fetch when this many unresolved medium-conf branches. */
    int mediumLimit = 1 << 30;
};

/** Outcome of simulating one policy. */
struct GatingResult {
    uint64_t rightPathInstructions = 0;
    uint64_t wrongPathInstructions = 0;
    uint64_t stallSlots = 0;
    uint64_t mispredictions = 0;
};

/** One in-flight branch. */
struct InFlight {
    ConfidenceLevel level;
    bool mispredicted;
    int age = 0;
};

GatingResult
simulate(const std::string& trace_name, const std::string& spec,
         uint64_t branches, int resolve_delay, const Policy& policy)
{
    SyntheticTrace trace = makeTrace(trace_name, branches);
    auto predictor = makePredictor(spec);
    GatingResult result;

    std::deque<InFlight> window;
    int low_inflight = 0;
    int medium_inflight = 0;

    // Cycle-based front end: each cycle either fetches one branch
    // bundle or stalls on the gate. In-flight branches resolve
    // resolve_delay *cycles* after fetch, so a closed gate reopens by
    // itself as the risky branches resolve.
    bool trace_done = false;
    while (!trace_done || !window.empty()) {
        for (auto& b : window)
            ++b.age;
        while (!window.empty() && window.front().age >= resolve_delay) {
            const InFlight& done = window.front();
            if (done.level == ConfidenceLevel::Low)
                --low_inflight;
            if (done.level == ConfidenceLevel::Medium)
                --medium_inflight;
            window.pop_front();
        }
        if (trace_done)
            continue;

        const bool gated = low_inflight >= policy.lowLimit ||
                           medium_inflight >= policy.mediumLimit;
        if (gated) {
            ++result.stallSlots;
            continue; // fetch pauses this cycle
        }

        BranchRecord rec;
        if (!trace.next(rec)) {
            trace_done = true;
            continue;
        }

        const Prediction p = predictor->predict(rec.pc);
        const ConfidenceLevel level = p.confidence;
        const bool mispredicted = p.taken != rec.taken;

        // Every trace instruction eventually commits (right-path
        // total is policy-invariant); work fetched while an unresolved
        // older branch is mispredicted is *additionally* squashed and
        // refetched — that squashed work is the energy waste gating
        // tries to avoid.
        bool on_wrong_path = false;
        for (const auto& b : window)
            on_wrong_path = on_wrong_path || b.mispredicted;
        const uint64_t instr = uint64_t{rec.instructionsBefore} + 1;
        result.rightPathInstructions += instr;
        if (on_wrong_path)
            result.wrongPathInstructions += instr;

        if (mispredicted)
            ++result.mispredictions;

        window.push_back(InFlight{level, mispredicted, 0});
        if (level == ConfidenceLevel::Low)
            ++low_inflight;
        if (level == ConfidenceLevel::Medium)
            ++medium_inflight;

        predictor->update(rec.pc, p, rec.taken);
    }
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    const std::string trace = args.getString("trace", "300.twolf");
    std::string spec = args.getString("predictor", "");
    if (spec.empty()) {
        // Legacy size flag, translated to the equivalent spec.
        spec = tageBaseForSize(args.getString("config", "64K"));
        if (spec.empty())
            fatal("unknown --config (use 16K, 64K, 256K or "
                  "--predictor=SPEC)");
        spec += "+prob7+sfc";
    }
    const uint64_t branches = args.getUint("branches", 500000);
    const int delay = static_cast<int>(args.getInt("delay", 24));

    const Policy policies[] = {
        {"no gating", 1 << 30, 1 << 30},
        {"gate on 2 low-conf", 2, 1 << 30},
        {"gate on 2 low or 6 medium", 2, 6},
    };

    std::cout << "fetch gating on " << trace << ", predictor " << spec
              << ", resolve delay " << delay << " cycles\n\n";

    TextTable t;
    t.addColumn("policy", TextTable::Align::Left);
    t.addColumn("right-path instr");
    t.addColumn("wrong-path instr");
    t.addColumn("waste %");
    t.addColumn("stall cycles");
    t.addColumn("stall % of cycles");

    for (const Policy& policy : policies) {
        const GatingResult r =
            simulate(trace, spec, branches, delay, policy);
        const double waste =
            100.0 * static_cast<double>(r.wrongPathInstructions) /
            static_cast<double>(r.rightPathInstructions);
        const double stall =
            100.0 * static_cast<double>(r.stallSlots) /
            static_cast<double>(branches + r.stallSlots);
        t.addRow({policy.name, std::to_string(r.rightPathInstructions),
                  std::to_string(r.wrongPathInstructions),
                  TextTable::num(waste, 1),
                  std::to_string(r.stallSlots),
                  TextTable::num(stall, 1)});
    }
    t.render(std::cout);

    std::cout << "\nthe confidence-gated policies trade bounded stall "
                 "time for a large cut in wrong-path (wasted) fetch "
                 "work; on predictable traces (try --trace=252.eon) "
                 "the gate almost never closes.\n";
    return 0;
}
