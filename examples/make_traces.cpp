/**
 * @file
 * Materialize the synthetic CBP-1/CBP-2 stand-in benchmark suites to
 * binary trace files, so experiments can replay the exact same branch
 * streams (the role the championship trace downloads played for the
 * paper), then verify a round trip.
 *
 * Flags: --out=DIR (default ./traces) --branches=N (default 1M)
 *        --set=cbp1|cbp2|all (default all)
 */

#include <filesystem>
#include <iostream>

#include "trace/profiles.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    const std::string out_dir = args.getString("out", "traces");
    const uint64_t branches = args.getUint("branches", 1000000);
    const std::string set = args.getString("set", "all");

    std::vector<std::string> names;
    if (set == "cbp1") {
        names = traceNames(BenchmarkSet::Cbp1);
    } else if (set == "cbp2") {
        names = traceNames(BenchmarkSet::Cbp2);
    } else if (set == "all") {
        names = allTraceNames();
    } else {
        fatal("--set must be cbp1, cbp2 or all");
    }

    std::filesystem::create_directories(out_dir);

    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    t.addColumn("branches");
    t.addColumn("instructions");
    t.addColumn("taken %");
    t.addColumn("file");

    for (const auto& name : names) {
        SyntheticTrace src = makeTrace(name, branches);
        const std::string path = out_dir + "/" + name + ".trace";

        uint64_t instructions = 0;
        uint64_t taken = 0;
        {
            TraceWriter writer(path, name);
            BranchRecord rec;
            while (src.next(rec)) {
                writer.write(rec);
                instructions += uint64_t{rec.instructionsBefore} + 1;
                taken += rec.taken ? 1 : 0;
            }
        }

        // Round-trip check: the file replays bit-identically.
        src.reset();
        TraceReader reader(path);
        BranchRecord expected;
        BranchRecord actual;
        while (src.next(expected)) {
            if (!reader.next(actual) || actual.pc != expected.pc ||
                actual.taken != expected.taken ||
                actual.instructionsBefore !=
                    expected.instructionsBefore) {
                fatal("round-trip mismatch in " + path);
            }
        }

        t.addRow({name, std::to_string(branches),
                  std::to_string(instructions),
                  TextTable::num(100.0 * static_cast<double>(taken) /
                                     static_cast<double>(branches),
                                 1),
                  path});
    }

    t.render(std::cout);
    std::cout << "\nwrote " << names.size() << " traces to " << out_dir
              << "/ (replay with TraceReader, see README)\n";
    return 0;
}
