/**
 * @file
 * Quickstart: build a TAGE predictor, run it over a synthetic trace,
 * grade every prediction with the storage-free confidence observer,
 * and print the per-class breakdown.
 *
 * This is the whole public API surface in ~40 lines of user code:
 * TageConfig/TagePredictor, ConfidenceObserver, ClassStats, and the
 * trace generator.
 */

#include <iostream>

#include "core/class_stats.hpp"
#include "core/confidence_observer.hpp"
#include "tage/tage_predictor.hpp"
#include "trace/profiles.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main()
{
    // The paper's 64Kbit configuration with the Sec. 6 modified
    // automaton (p = 1/128) — the setting of Table 2.
    const TageConfig config =
        TageConfig::medium64K().withProbabilisticSaturation(7);
    TagePredictor predictor(config);
    ConfidenceObserver observer; // 8-branch BIM burst window
    ClassStats stats;

    std::cout << "TAGE " << config.name << " ("
              << config.storageBits() / 1024 << " Kbit), "
              << "1 + " << config.numTaggedTables() << " tables\n\n";

    // Any TraceSource works here; we generate the gzip-like profile.
    SyntheticTrace trace = makeTrace("164.gzip", 500000);

    BranchRecord rec;
    while (trace.next(rec)) {
        const TagePrediction p = predictor.predict(rec.pc);

        // The storage-free grade: derived purely from predictor outputs.
        const PredictionClass cls = observer.classify(p);

        const bool mispredicted = p.taken != rec.taken;
        stats.record(cls, mispredicted,
                     uint64_t{rec.instructionsBefore} + 1);

        observer.onResolve(p, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
    }

    TextTable t;
    t.addColumn("class", TextTable::Align::Left);
    t.addColumn("level", TextTable::Align::Left);
    t.addColumn("Pcov %");
    t.addColumn("MPcov %");
    t.addColumn("MPrate (MKP)");
    for (const auto c : kAllPredictionClasses) {
        t.addRow({predictionClassName(c),
                  confidenceLevelName(confidenceLevel(c)),
                  TextTable::num(stats.pcov(c) * 100.0, 1),
                  TextTable::num(stats.mpcov(c) * 100.0, 1),
                  TextTable::num(stats.mprateMkp(c), 1)});
    }
    t.addSeparator();
    t.addRow({"total", "", "100.0", "100.0",
              TextTable::num(stats.totalMkp(), 1)});
    t.render(std::cout);

    std::cout << "\noverall: " << TextTable::num(stats.mpki(), 2)
              << " MPKI over " << stats.totalPredictions()
              << " branches\n";
    return 0;
}
