/**
 * @file
 * Quickstart: build a graded predictor from a registry spec, run it
 * over a synthetic trace through the generic drive loop, and print the
 * per-class breakdown.
 *
 * This is the whole public API surface in ~30 lines of user code:
 * makePredictor(spec), runTrace(), and the ClassStats the run returns.
 * Try other specs: --predictor=gshare+jrs, ltage64k+sfc,
 * perceptron+self, tage64k+prob7+adaptive+sfc ...
 */

#include <iostream>

#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    // The paper's 64Kbit configuration with the Sec. 6 modified
    // automaton (p = 1/128) and the storage-free estimator — the
    // setting of Table 2.
    const std::string spec =
        args.getString("predictor", "tage64k+prob7+sfc");
    const uint64_t branches = args.getUint("branches", 500000);

    auto predictor = makePredictor(spec);
    std::cout << predictor->name() << " ("
              << predictor->storageBits() / 1024 << " Kbit)\n\n";

    // Any TraceSource works here; we generate the gzip-like profile.
    SyntheticTrace trace = makeTrace("164.gzip", branches);
    const RunResult result = runTrace(trace, *predictor);
    const ClassStats& stats = result.stats;

    TextTable t;
    t.addColumn("class", TextTable::Align::Left);
    t.addColumn("level", TextTable::Align::Left);
    t.addColumn("Pcov %");
    t.addColumn("MPcov %");
    t.addColumn("MPrate (MKP)");
    for (const auto c : kAllPredictionClasses) {
        t.addRow({predictionClassName(c),
                  confidenceLevelName(confidenceLevel(c)),
                  TextTable::num(stats.pcov(c) * 100.0, 1),
                  TextTable::num(stats.mpcov(c) * 100.0, 1),
                  TextTable::num(stats.mprateMkp(c), 1)});
    }
    t.addSeparator();
    t.addRow({"total", "", "100.0", "100.0",
              TextTable::num(stats.totalMkp(), 1)});
    t.render(std::cout);

    std::cout << "\noverall: " << TextTable::num(stats.mpki(), 2)
              << " MPKI over " << stats.totalPredictions()
              << " branches; high-confidence coverage "
              << TextTable::frac(result.confusion.highCoverage())
              << " at PVP "
              << TextTable::frac(result.confusion.pvp()) << "\n";
    return 0;
}
