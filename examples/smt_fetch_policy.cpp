/**
 * @file
 * SMT fetch arbitration driven by storage-free confidence — the second
 * usage family the paper cites (Sec. 2.1, after Luo et al.): in a
 * 2-thread SMT front end, prefer fetching from the thread whose
 * in-flight branches are more trustworthy, so fewer shared-queue slots
 * are wasted on wrong-path work.
 *
 * Model: two threads run different traces; each cycle the arbiter
 * picks one thread and fetches one branch (plus its preceding
 * instructions) from it. Branches resolve a fixed number of cycles
 * later; instructions fetched while an unresolved mispredicted branch
 * of the same thread is in flight are wrong-path waste.
 *
 * Policies:
 *  - round-robin (confidence-blind baseline),
 *  - confidence-count: pick the thread with the fewer in-flight
 *    low+medium-confidence predictions (ties: round-robin).
 *
 * The per-thread predictor is any registry spec (--predictor).
 *
 * Flags: --traceA=NAME --traceB=NAME --predictor=SPEC --branches=N
 *        --delay=N
 */

#include <array>
#include <deque>
#include <iostream>
#include <memory>

#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

using namespace tagecon;

namespace {

struct InFlight {
    ConfidenceLevel level;
    bool mispredicted;
    int age = 0;
};

/** One SMT hardware thread: its own trace and graded predictor. */
struct Thread {
    std::unique_ptr<SyntheticTrace> trace;
    std::unique_ptr<GradedPredictor> predictor;
    std::deque<InFlight> window;
    int riskyInFlight = 0; // low + medium confidence, unresolved
    uint64_t rightPath = 0;
    uint64_t wrongPath = 0;
    bool exhausted = false;

    void
    tick(int resolve_delay)
    {
        for (auto& b : window)
            ++b.age;
        while (!window.empty() && window.front().age >= resolve_delay) {
            if (window.front().level != ConfidenceLevel::High)
                --riskyInFlight;
            window.pop_front();
        }
    }

    void
    fetchOne()
    {
        BranchRecord rec;
        if (!trace->next(rec)) {
            exhausted = true;
            return;
        }
        const Prediction p = predictor->predict(rec.pc);
        const ConfidenceLevel level = p.confidence;
        const bool mispredicted = p.taken != rec.taken;

        bool on_wrong_path = false;
        for (const auto& b : window)
            on_wrong_path = on_wrong_path || b.mispredicted;
        const uint64_t instr = uint64_t{rec.instructionsBefore} + 1;
        if (on_wrong_path)
            wrongPath += instr;
        else
            rightPath += instr;

        window.push_back(InFlight{level, mispredicted, 0});
        if (level != ConfidenceLevel::High)
            ++riskyInFlight;

        predictor->update(rec.pc, p, rec.taken);
    }
};

struct SmtResult {
    uint64_t rightPath = 0;
    uint64_t wrongPath = 0;
};

SmtResult
simulate(const std::string& trace_a, const std::string& trace_b,
         const std::string& spec, uint64_t branches, int resolve_delay,
         bool confidence_aware)
{
    std::array<Thread, 2> threads;
    // Generous per-thread streams: the measurement window is a fixed
    // number of fetch cycles, so neither trace may run dry (what
    // matters for an SMT fetch policy is how much useful work fits in
    // a fixed amount of front-end bandwidth).
    threads[0].trace = std::make_unique<SyntheticTrace>(
        makeTrace(trace_a, 2 * branches));
    threads[1].trace = std::make_unique<SyntheticTrace>(
        makeTrace(trace_b, 2 * branches));
    for (auto& th : threads)
        th.predictor = makePredictor(spec);

    int rr = 0;
    for (uint64_t cycle = 0; cycle < branches; ++cycle) {
        threads[0].tick(resolve_delay);
        threads[1].tick(resolve_delay);

        int pick;
        if (threads[0].exhausted) {
            pick = 1;
        } else if (threads[1].exhausted) {
            pick = 0;
        } else if (confidence_aware &&
                   threads[0].riskyInFlight != threads[1].riskyInFlight) {
            pick = threads[0].riskyInFlight < threads[1].riskyInFlight
                       ? 0
                       : 1;
        } else {
            pick = rr;
            rr ^= 1;
        }
        threads[static_cast<size_t>(pick)].fetchOne();
    }

    SmtResult r;
    for (const auto& th : threads) {
        r.rightPath += th.rightPath;
        r.wrongPath += th.wrongPath;
    }
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    const std::string trace_a = args.getString("traceA", "252.eon");
    const std::string trace_b = args.getString("traceB", "300.twolf");
    const std::string spec =
        args.getString("predictor", "tage64k+prob7+sfc");
    const uint64_t branches = args.getUint("branches", 400000);
    const int delay = static_cast<int>(args.getInt("delay", 24));

    std::cout << "2-thread SMT fetch: " << trace_a << " + " << trace_b
              << ", predictor " << spec << "\n\n";

    std::cout << "fixed front-end window: " << branches
              << " fetch cycles\n\n";

    TextTable t;
    t.addColumn("fetch policy", TextTable::Align::Left);
    t.addColumn("right-path instr (throughput)");
    t.addColumn("wrong-path instr");
    t.addColumn("waste %");

    for (const bool aware : {false, true}) {
        const SmtResult r =
            simulate(trace_a, trace_b, spec, branches, delay, aware);
        t.addRow({aware ? "confidence-count (this paper)"
                        : "round-robin",
                  std::to_string(r.rightPath),
                  std::to_string(r.wrongPath),
                  TextTable::num(100.0 * static_cast<double>(r.wrongPath) /
                                     static_cast<double>(r.rightPath),
                                 1)});
    }
    t.render(std::cout);

    std::cout << "\nin a fixed fetch-bandwidth window, prioritizing the "
                 "thread with fewer risky in-flight branches converts "
                 "wrong-path slots into useful throughput.\n";
    return 0;
}
