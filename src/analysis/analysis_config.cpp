#include "analysis/analysis_config.hpp"

#include <algorithm>
#include <map>

#include "analysis/observers.hpp"
#include "util/logging.hpp"
#include "util/text.hpp"

namespace tagecon {

namespace {

const char* const kBuiltinNames[] = {"burst", "histogram", "intervals",
                                     "perbranch", "warmup"};

bool
isBuiltin(const std::string& name)
{
    for (const char* b : kBuiltinNames) {
        if (name == b)
            return true;
    }
    return false;
}

std::map<std::string, RunObserverFactory>&
observerRegistry()
{
    static std::map<std::string, RunObserverFactory> registry;
    return registry;
}

/** Split "name[:params]" and parse the parameter list. */
bool
splitObserverSpec(const std::string& item, std::string& name,
                  SpecParams& params, std::string& error)
{
    const std::string lowered = toLower(item);
    const size_t colon = lowered.find(':');
    name = lowered.substr(0, colon);
    if (name.empty()) {
        error = "malformed analysis spec '" + item + "': empty name";
        return false;
    }
    if (colon == std::string::npos)
        return true;
    const std::string param_text = lowered.substr(colon + 1);
    if (!SpecParams::parse(param_text, params, error)) {
        error = "analysis spec '" + item + "': " + error;
        return false;
    }
    return true;
}

/** Reject unread keys / malformed values after a factory consumed @p p. */
bool
checkConsumed(const std::string& item, const SpecParams& p,
              std::string& error)
{
    if (!p.error().empty()) {
        error = "analysis spec '" + item + "': " + p.error();
        return false;
    }
    const auto unknown = p.unrecognizedKeys();
    if (!unknown.empty()) {
        error = "analysis spec '" + item + "': unknown parameter '" +
                unknown.front() + "'";
        return false;
    }
    return true;
}

} // namespace

bool
parseAnalysisSpecs(const std::vector<std::string>& items,
                   AnalysisConfig& out, std::string& error)
{
    for (const auto& item : items) {
        std::string name;
        SpecParams params;
        if (!splitObserverSpec(item, name, params, error))
            return false;

        if (name == "intervals") {
            out.intervals = true;
            out.intervalLength = static_cast<uint64_t>(params.getInt(
                "len", static_cast<int64_t>(out.intervalLength), 1,
                int64_t{1} << 40));
        } else if (name == "histogram") {
            out.histogram = true;
        } else if (name == "burst") {
            out.burst = true;
            out.burstMaxDistance = static_cast<uint64_t>(params.getInt(
                "max", static_cast<int64_t>(out.burstMaxDistance), 1,
                1 << 20));
        } else if (name == "perbranch") {
            out.perBranch = true;
            out.perBranchTopN = static_cast<uint64_t>(params.getInt(
                "top", static_cast<int64_t>(out.perBranchTopN), 1,
                1 << 20));
        } else if (name == "warmup") {
            out.warmup = true;
            out.warmupIntervalLength = static_cast<uint64_t>(
                params.getInt(
                    "len",
                    static_cast<int64_t>(out.warmupIntervalLength), 1,
                    int64_t{1} << 40));
            out.warmupThresholdMkp = static_cast<double>(params.getInt(
                "mkp",
                static_cast<int64_t>(out.warmupThresholdMkp), 1,
                1000));
        } else {
            const auto it = observerRegistry().find(name);
            if (it == observerRegistry().end()) {
                error = "unknown analysis observer '" + name +
                        "' (known: ";
                bool first = true;
                for (const auto& known : registeredRunObservers()) {
                    error += (first ? "" : ", ") + known;
                    first = false;
                }
                error += ")";
                return false;
            }
            // Probe-construct so a sweep worker can't hit a bad
            // observer spec mid-grid (mirrors predictor validation).
            std::string factory_error;
            auto probe = it->second(params, factory_error);
            if (!probe) {
                error = "analysis spec '" + item + "': " +
                        (factory_error.empty() ? "observer construction failed"
                                               : factory_error);
                return false;
            }
            if (!checkConsumed(item, params, error))
                return false;
            out.custom.push_back(toLower(item));
            continue;
        }
        if (!checkConsumed(item, params, error))
            return false;
    }
    return true;
}

ObserverList
buildObservers(const AnalysisConfig& config)
{
    ObserverList observers;
    if (config.intervals)
        observers.push_back(
            std::make_unique<IntervalObserver>(config.intervalLength));
    if (config.histogram)
        observers.push_back(
            std::make_unique<ConfidenceHistogramObserver>());
    if (config.burst)
        observers.push_back(
            std::make_unique<BurstObserver>(config.burstMaxDistance));
    if (config.perBranch)
        observers.push_back(
            std::make_unique<PerBranchObserver>(config.perBranchTopN));
    if (config.warmup)
        observers.push_back(std::make_unique<WarmupObserver>(
            config.warmupIntervalLength, config.warmupThresholdMkp));

    for (const auto& item : config.custom) {
        std::string name;
        SpecParams params;
        std::string error;
        if (!splitObserverSpec(item, name, params, error))
            fatal("buildObservers: " + error);
        const auto it = observerRegistry().find(name);
        if (it == observerRegistry().end())
            fatal("buildObservers: observer '" + name +
                  "' is no longer registered");
        auto observer = it->second(params, error);
        if (!observer)
            fatal("buildObservers: " + error);
        observers.push_back(std::move(observer));
    }
    return observers;
}

void
registerRunObserver(const std::string& name, RunObserverFactory factory)
{
    const std::string key = toLower(name);
    TAGECON_ASSERT(!isBuiltin(key),
                   "cannot replace a built-in observer");
    observerRegistry()[key] = std::move(factory);
}

std::vector<std::string>
registeredRunObservers()
{
    std::vector<std::string> names(std::begin(kBuiltinNames),
                                   std::end(kBuiltinNames));
    for (const auto& [name, factory] : observerRegistry())
        names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace tagecon
