/**
 * @file
 * Declarative selection of run-analysis observers, mirroring the
 * predictor and trace registries: a comma-separated list of observer
 * specs — "intervals:len=100000,histogram,perbranch:top=32,
 * warmup:len=10000,mkp=20" — parses into a plain-data AnalysisConfig,
 * and buildObservers() constructs a fresh pipeline from it per run.
 *
 * Because the config is pure data (no live observer state), a
 * SweepPlan can carry it into every cell and each worker builds its
 * own independent observers — parallel sweeps with analysis attached
 * stay bit-identical to serial ones.
 *
 * Out-of-tree observers plug in through registerRunObserver(): a
 * registered name becomes a valid spec token whose factory receives
 * the token's "key=value" parameters.
 */

#ifndef TAGECON_ANALYSIS_ANALYSIS_CONFIG_HPP
#define TAGECON_ANALYSIS_ANALYSIS_CONFIG_HPP

#include <functional>
#include <string>
#include <vector>

#include "analysis/run_observer.hpp"
#include "sim/spec_params.hpp"

namespace tagecon {

/** Which observers a run attaches, with their parameters. */
struct AnalysisConfig {
    /** IntervalObserver ("intervals", param len). */
    bool intervals = false;
    uint64_t intervalLength = 100000;

    /** ConfidenceHistogramObserver ("histogram"). */
    bool histogram = false;

    /** BurstObserver ("burst", param max). */
    bool burst = false;
    uint64_t burstMaxDistance = 16;

    /** PerBranchObserver ("perbranch", param top). */
    bool perBranch = false;
    uint64_t perBranchTopN = 16;

    /** WarmupObserver ("warmup", params len and mkp). */
    bool warmup = false;
    uint64_t warmupIntervalLength = 10000;
    double warmupThresholdMkp = 20.0;

    /** Registered out-of-tree observer specs, in attach order. */
    std::vector<std::string> custom;

    /** True when any observer is selected. */
    bool
    enabled() const
    {
        return intervals || histogram || burst || perBranch || warmup ||
               !custom.empty();
    }
};

/**
 * Parse observer spec items (each "name[:key=value,...]") into
 * @p out, accumulating built-in selections and registered custom
 * names. Returns false on an unknown observer, malformed parameter
 * list, unknown key or out-of-range value, with the reason in
 * @p error. Items typically come from a comma-split --analysis flag
 * run through regroupSpecList() so parameterized tokens survive.
 */
bool parseAnalysisSpecs(const std::vector<std::string>& items,
                        AnalysisConfig& out, std::string& error);

/** Construct a fresh observer pipeline described by @p config. */
ObserverList buildObservers(const AnalysisConfig& config);

/**
 * Factory for a registered observer. @p params is the spec token's
 * "key=value" list (read supported keys through the typed getters;
 * unread keys reject the spec). Return nullptr with @p error set to
 * reject construction.
 */
using RunObserverFactory = std::function<std::unique_ptr<RunObserver>(
    const SpecParams& params, std::string& error)>;

/**
 * Register (or replace) an observer under @p name, making it valid in
 * analysis spec lists. The built-in names (intervals, histogram,
 * perbranch, warmup) cannot be replaced.
 */
void registerRunObserver(const std::string& name,
                         RunObserverFactory factory);

/** All selectable observer names (built-ins + registered), sorted. */
std::vector<std::string> registeredRunObservers();

} // namespace tagecon

#endif // TAGECON_ANALYSIS_ANALYSIS_CONFIG_HPP
