#include "analysis/observers.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tagecon {

void
IntervalObserver::finish(RunAnalysis& out)
{
    IntervalAnalysis ia;
    ia.intervalLength = recorder_.intervalLength();
    ia.intervals = recorder_.intervals();
    ia.completeIntervals = ia.intervals.size();
    if (recorder_.current().totalPredictions() > 0)
        ia.intervals.push_back(recorder_.current());
    out.intervals = std::move(ia);
}

void
ConfidenceHistogramObserver::finish(RunAnalysis& out)
{
    out.histogram = histogram_;
}

BurstObserver::BurstObserver(uint64_t max_distance)
    : maxDistance_(max_distance), distance_(max_distance)
{
    TAGECON_ASSERT(max_distance > 0,
                   "burst max distance must be positive");
    histogram_.maxDistance = max_distance;
    histogram_.predictions.assign(
        static_cast<size_t>(max_distance) + 1, 0);
    histogram_.mispredictions.assign(
        static_cast<size_t>(max_distance) + 1, 0);
}

void
BurstObserver::finish(RunAnalysis& out)
{
    out.burst = histogram_;
}

void
PerBranchObserver::finish(RunAnalysis& out)
{
    PerBranchAnalysis pa;
    pa.distinctBranches = branches_.size();
    pa.requestedTopN = topN_;

    std::vector<BranchProfile> all;
    all.reserve(branches_.size());
    for (const auto& [pc, c] : branches_)
        all.push_back(BranchProfile{pc, c.predictions, c.mispredictions});

    // Total order: most mispredictions first; equal mispredictions over
    // fewer predictions (higher rate) first; the PC breaks exact ties,
    // so the table is identical whatever the hash-map iteration order.
    auto harder = [](const BranchProfile& a, const BranchProfile& b) {
        if (a.mispredictions != b.mispredictions)
            return a.mispredictions > b.mispredictions;
        if (a.predictions != b.predictions)
            return a.predictions < b.predictions;
        return a.pc < b.pc;
    };
    const size_t keep =
        std::min<size_t>(topN_, all.size());
    std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                      harder);
    all.resize(keep);
    pa.top = std::move(all);
    out.perBranch = std::move(pa);
}

WarmupObserver::WarmupObserver(uint64_t interval_length,
                               double threshold_mkp)
    : length_(interval_length), thresholdMkp_(threshold_mkp)
{
    TAGECON_ASSERT(interval_length > 0,
                   "warmup interval length must be positive");
}

void
WarmupObserver::onPrediction(const ObservedPrediction& o)
{
    ++inCurrent_;
    if (o.mispredicted)
        ++currentMisses_;
    if (inCurrent_ == length_)
        closeInterval();
}

void
WarmupObserver::closeInterval()
{
    const double mkp = 1000.0 * static_cast<double>(currentMisses_) /
                       static_cast<double>(length_);
    if (completed_ == 0)
        firstIntervalMkp_ = mkp;
    if (!converged_ && mkp < thresholdMkp_) {
        converged_ = true;
        warmupIntervals_ = completed_;
        convergedIntervalMkp_ = mkp;
    }
    ++completed_;
    inCurrent_ = 0;
    currentMisses_ = 0;
}

void
WarmupObserver::finish(RunAnalysis& out)
{
    WarmupAnalysis wa;
    wa.intervalLength = length_;
    wa.thresholdMkp = thresholdMkp_;
    wa.converged = converged_;
    wa.warmupIntervals = warmupIntervals_;
    wa.warmupBranches = warmupIntervals_ * length_;
    wa.firstIntervalMkp = firstIntervalMkp_;
    wa.convergedIntervalMkp = convergedIntervalMkp_;
    out.warmup = wa;
}

} // namespace tagecon
