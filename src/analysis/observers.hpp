/**
 * @file
 * The built-in run-analysis observers:
 *
 *  - IntervalObserver            windowed per-class statistics (wraps
 *                                sim's IntervalRecorder) — the
 *                                time-local view of Sec. 5.1
 *  - ConfidenceHistogramObserver per-class / per-level counter and
 *                                taken-direction distributions
 *  - PerBranchObserver           per-PC accuracy profiles with a
 *                                bounded hard-to-predict top-N table
 *  - WarmupObserver              first-interval-below-threshold
 *                                warming-phase detection
 *
 * Construct them directly, or declaratively through AnalysisConfig /
 * buildObservers() (analysis/analysis_config.hpp).
 */

#ifndef TAGECON_ANALYSIS_OBSERVERS_HPP
#define TAGECON_ANALYSIS_OBSERVERS_HPP

#include <algorithm>
#include <unordered_map>

#include "analysis/run_observer.hpp"
#include "sim/interval_stats.hpp"

namespace tagecon {

/**
 * Splits the stream into fixed-length windows and keeps a ClassStats
 * per window (IntervalRecorder behind the observer interface). The
 * partial tail window, when any, is appended after the complete ones.
 */
class IntervalObserver : public RunObserver
{
  public:
    /** @param interval_length Predictions per interval; must be > 0. */
    explicit IntervalObserver(uint64_t interval_length)
        : recorder_(interval_length)
    {
    }

    std::string name() const override { return "intervals"; }

    void
    onPrediction(const ObservedPrediction& o) override
    {
        recorder_.record(o.prediction.cls, o.mispredicted,
                         o.instructions);
    }

    void finish(RunAnalysis& out) override;

    /** The wrapped recorder (read-only, for incremental inspection). */
    const IntervalRecorder& recorder() const { return recorder_; }

  private:
    IntervalRecorder recorder_;
};

/**
 * Per-class and per-level prediction / misprediction counters with the
 * predicted-taken split. Class and level totals are the run's
 * ClassStats totals by construction.
 */
class ConfidenceHistogramObserver : public RunObserver
{
  public:
    std::string name() const override { return "histogram"; }

    void
    onPrediction(const ObservedPrediction& o) override
    {
        const size_t ci = classIndex(o.prediction.cls);
        const size_t li = levelIndex(o.prediction.confidence);
        ++histogram_.predictions[ci];
        ++histogram_.levelPredictions[li];
        if (o.prediction.taken)
            ++histogram_.takenPredictions[ci];
        if (o.mispredicted) {
            ++histogram_.mispredictions[ci];
            ++histogram_.levelMispredictions[li];
            if (o.prediction.taken)
                ++histogram_.takenMispredictions[ci];
        }
    }

    void finish(RunAnalysis& out) override;

    /** The histogram accumulated so far. */
    const ConfidenceHistogram& histogram() const { return histogram_; }

  private:
    ConfidenceHistogram histogram_;
};

/**
 * BIM misprediction-distance histogram (Sec. 5.1.2): tracks, for each
 * BIM-provided prediction, how many BIM predictions have passed since
 * the most recent BIM-provided misprediction, and accumulates
 * predictions/mispredictions per distance. Distances at or beyond
 * max_distance share the overflow bucket. Tagged-provider predictions
 * neither count as distance steps nor reset the counter — the distance
 * is measured in BIM predictions, as in the paper's burst window.
 */
class BurstObserver : public RunObserver
{
  public:
    /** @param max_distance Last distinct bucket; must be > 0. */
    explicit BurstObserver(uint64_t max_distance = 16);

    std::string name() const override { return "burst"; }

    void
    onPrediction(const ObservedPrediction& o) override
    {
        const PredictionClass c = o.prediction.cls;
        const bool bim_provided = c == PredictionClass::HighConfBim ||
                                  c == PredictionClass::LowConfBim ||
                                  c == PredictionClass::MediumConfBim;
        if (!bim_provided)
            return;
        const size_t d = static_cast<size_t>(
            std::min<uint64_t>(distance_, maxDistance_));
        ++histogram_.predictions[d];
        if (o.mispredicted) {
            ++histogram_.mispredictions[d];
            distance_ = 0;
        } else if (distance_ < maxDistance_) {
            ++distance_;
        }
    }

    void finish(RunAnalysis& out) override;

    /** The histogram accumulated so far. */
    const BurstAnalysis& histogram() const { return histogram_; }

  private:
    uint64_t maxDistance_;
    uint64_t distance_; // starts "far" from any miss
    BurstAnalysis histogram_;
};

/**
 * Per-static-branch accuracy profiles. The full per-PC map is kept
 * during the run; finish() distills it into the bounded top-N
 * hard-to-predict table ordered by (mispredictions desc, predictions
 * asc, pc asc) — a total order, so output is deterministic whatever
 * the hash-map iteration order.
 */
class PerBranchObserver : public RunObserver
{
  public:
    /** @param top_n Rows kept in the hard-to-predict table. */
    explicit PerBranchObserver(uint64_t top_n = 16) : topN_(top_n) {}

    std::string name() const override { return "perbranch"; }

    void
    onPrediction(const ObservedPrediction& o) override
    {
        Counts& c = branches_[o.pc];
        ++c.predictions;
        if (o.mispredicted)
            ++c.mispredictions;
    }

    void finish(RunAnalysis& out) override;

    /** Distinct PCs seen so far. */
    uint64_t distinctBranches() const { return branches_.size(); }

  private:
    struct Counts {
        uint64_t predictions = 0;
        uint64_t mispredictions = 0;
    };

    uint64_t topN_;
    std::unordered_map<uint64_t, Counts> branches_;
};

/**
 * Warming-phase detector: watches the misprediction rate of
 * fixed-length intervals and reports the first complete interval whose
 * rate falls below the threshold — the storage-free proxy for "the
 * predictor has warmed" that Sec. 5.1 attributes the early BIM-class
 * mispredictions to.
 */
class WarmupObserver : public RunObserver
{
  public:
    /**
     * @param interval_length Predictions per detection interval (> 0).
     * @param threshold_mkp   Warm threshold in misp/kilo-prediction.
     */
    WarmupObserver(uint64_t interval_length, double threshold_mkp);

    std::string name() const override { return "warmup"; }

    void onPrediction(const ObservedPrediction& o) override;

    void finish(RunAnalysis& out) override;

  private:
    void closeInterval();

    uint64_t length_;
    double thresholdMkp_;

    uint64_t inCurrent_ = 0;
    uint64_t currentMisses_ = 0;
    uint64_t completed_ = 0;

    bool converged_ = false;
    uint64_t warmupIntervals_ = 0;
    double firstIntervalMkp_ = 0.0;
    double convergedIntervalMkp_ = 0.0;
};

} // namespace tagecon

#endif // TAGECON_ANALYSIS_OBSERVERS_HPP
