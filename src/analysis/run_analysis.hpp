/**
 * @file
 * Typed result bag the run-analysis observers fill: every observer
 * attached to a run writes its slice into the RunResult's RunAnalysis,
 * so time-local (interval), class-local (histogram), branch-local
 * (per-PC) and phase-local (warmup) views ride back through runTrace /
 * runSweep next to the whole-trace ClassStats — bit-identically at any
 * thread count, because observers are built fresh per cell and fed in
 * stream order.
 *
 * Extensibility: built-in observers own a typed slot; out-of-tree
 * observers (registerRunObserver, analysis/analysis_config.hpp) write
 * scalar metrics into the `custom` map under "observer/metric" keys.
 */

#ifndef TAGECON_ANALYSIS_RUN_ANALYSIS_HPP
#define TAGECON_ANALYSIS_RUN_ANALYSIS_HPP

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/class_stats.hpp"
#include "core/prediction_class.hpp"

namespace tagecon {

/** Windowed per-class statistics (IntervalObserver). */
struct IntervalAnalysis {
    /** Predictions per interval. */
    uint64_t intervalLength = 0;

    /**
     * Per-interval statistics in stream order. When the stream length
     * is not a multiple of intervalLength the last entry is the
     * partial tail interval (see completeIntervals).
     */
    std::vector<ClassStats> intervals;

    /** Number of full-length intervals at the front of intervals. */
    size_t completeIntervals = 0;

    /** True when a partial tail interval was appended. */
    bool
    hasPartialTail() const
    {
        return intervals.size() > completeIntervals;
    }
};

/**
 * Per-class / per-level counter distributions with the taken split
 * (ConfidenceHistogramObserver). Class- and level-indexed totals are
 * exactly the run's ClassStats totals.
 */
struct ConfidenceHistogram {
    /** Predictions graded into each of the 7 classes. */
    std::array<uint64_t, kNumPredictionClasses> predictions{};

    /** Mispredictions per class. */
    std::array<uint64_t, kNumPredictionClasses> mispredictions{};

    /** Predicted-taken predictions per class. */
    std::array<uint64_t, kNumPredictionClasses> takenPredictions{};

    /** Predicted-taken mispredictions per class. */
    std::array<uint64_t, kNumPredictionClasses> takenMispredictions{};

    /** Predictions per 3-way confidence level (High/Medium/Low). */
    std::array<uint64_t, 3> levelPredictions{};

    /** Mispredictions per confidence level. */
    std::array<uint64_t, 3> levelMispredictions{};

    /** Total predictions over all classes. */
    uint64_t
    totalPredictions() const
    {
        uint64_t n = 0;
        for (const auto v : predictions)
            n += v;
        return n;
    }

    /** Total mispredictions over all classes. */
    uint64_t
    totalMispredictions() const
    {
        uint64_t n = 0;
        for (const auto v : mispredictions)
            n += v;
        return n;
    }

    /** Sum both histograms (pooling across traces). */
    void
    merge(const ConfidenceHistogram& o)
    {
        for (size_t i = 0; i < kNumPredictionClasses; ++i) {
            predictions[i] += o.predictions[i];
            mispredictions[i] += o.mispredictions[i];
            takenPredictions[i] += o.takenPredictions[i];
            takenMispredictions[i] += o.takenMispredictions[i];
        }
        for (size_t i = 0; i < 3; ++i) {
            levelPredictions[i] += o.levelPredictions[i];
            levelMispredictions[i] += o.levelMispredictions[i];
        }
    }
};

/** One static branch's accuracy profile (PerBranchObserver). */
struct BranchProfile {
    uint64_t pc = 0;
    uint64_t predictions = 0;
    uint64_t mispredictions = 0;

    /** Misprediction rate in mispredictions per kilo-prediction. */
    double
    mprateMkp() const
    {
        return predictions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(mispredictions) /
                         static_cast<double>(predictions);
    }
};

/** Per-static-branch view with a bounded hard-to-predict top table. */
struct PerBranchAnalysis {
    /** Distinct branch PCs seen in the stream. */
    uint64_t distinctBranches = 0;

    /** The top-N cap the table was built with. */
    uint64_t requestedTopN = 0;

    /**
     * The (up to) N branches with the most mispredictions, ordered by
     * (mispredictions desc, predictions asc, pc asc) — a total,
     * deterministic order, so parallel sweeps stay bit-identical.
     */
    std::vector<BranchProfile> top;
};

/**
 * BIM misprediction-distance histogram (BurstObserver): for each
 * distance d (in BIM-provided predictions) from the most recent
 * BIM-provided misprediction, the BIM predictions and mispredictions
 * at that distance — the Sec. 5.1.2 decay curve behind the
 * medium-conf-bim class. The last bucket aggregates every distance
 * >= maxDistance.
 */
struct BurstAnalysis {
    /** Bucket count is maxDistance + 1 (the overflow bucket). */
    uint64_t maxDistance = 16;

    /** BIM predictions at each distance, indexed 0..maxDistance. */
    std::vector<uint64_t> predictions;

    /** BIM mispredictions at each distance. */
    std::vector<uint64_t> mispredictions;

    /** Total BIM predictions over all distances. */
    uint64_t
    totalPredictions() const
    {
        uint64_t n = 0;
        for (const auto v : predictions)
            n += v;
        return n;
    }

    /** Sum both histograms (pooling across traces; same maxDistance). */
    void
    merge(const BurstAnalysis& o)
    {
        if (predictions.empty()) {
            *this = o;
            return;
        }
        for (size_t i = 0;
             i < predictions.size() && i < o.predictions.size(); ++i) {
            predictions[i] += o.predictions[i];
            mispredictions[i] += o.mispredictions[i];
        }
    }
};

/** Warming-phase summary (WarmupObserver). */
struct WarmupAnalysis {
    /** Predictions per detection interval. */
    uint64_t intervalLength = 0;

    /** Threshold in mispredictions per kilo-prediction. */
    double thresholdMkp = 0.0;

    /** True when some complete interval ran below the threshold. */
    bool converged = false;

    /** Index of the first below-threshold interval (when converged). */
    uint64_t warmupIntervals = 0;

    /** Branches consumed before that interval started. */
    uint64_t warmupBranches = 0;

    /** MKP of the stream's first complete interval (the cold spike). */
    double firstIntervalMkp = 0.0;

    /** MKP of the first below-threshold interval (when converged). */
    double convergedIntervalMkp = 0.0;
};

/**
 * The extensible analysis bag carried by RunResult. Absent observers
 * leave their slot disengaged; empty() is true for plain runs, which
 * stay on the original zero-overhead loop.
 */
struct RunAnalysis {
    std::optional<IntervalAnalysis> intervals;
    std::optional<ConfidenceHistogram> histogram;
    std::optional<BurstAnalysis> burst;
    std::optional<PerBranchAnalysis> perBranch;
    std::optional<WarmupAnalysis> warmup;

    /**
     * Scalar metrics from registered out-of-tree observers, keyed
     * "observer/metric". std::map so iteration order (and any emitted
     * report) is deterministic.
     */
    std::map<std::string, double> custom;

    bool
    empty() const
    {
        return !intervals && !histogram && !burst && !perBranch &&
               !warmup && custom.empty();
    }
};

} // namespace tagecon

#endif // TAGECON_ANALYSIS_RUN_ANALYSIS_HPP
