/**
 * @file
 * The run-analysis observer interface. runTrace() feeds every graded,
 * resolved prediction to the observers attached to the run; each
 * observer accumulates its own view and writes it into the run's
 * RunAnalysis bag when the trace ends.
 *
 * Observers see the stream *after* grading but *before* the
 * predictor's update for that branch — the same point the run's
 * ClassStats are recorded at — so every observer total is consistent
 * with the whole-trace statistics by construction.
 *
 * Built-in observers live in analysis/observers.hpp; selection and
 * construction go through AnalysisConfig (analysis/analysis_config.hpp)
 * so a sweep cell can build a fresh, independent pipeline per run —
 * the property that keeps parallel sweeps bit-identical to serial.
 */

#ifndef TAGECON_ANALYSIS_RUN_OBSERVER_HPP
#define TAGECON_ANALYSIS_RUN_OBSERVER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/run_analysis.hpp"
#include "core/graded_predictor.hpp"

namespace tagecon {

/** One graded, resolved prediction as delivered to observers. */
struct ObservedPrediction {
    /** Branch address. */
    uint64_t pc = 0;

    /** The grade the predictor produced at predict time. */
    Prediction prediction;

    /** Resolved direction. */
    bool taken = false;

    /** prediction.taken != taken. */
    bool mispredicted = false;

    /** Instructions retired by this record (non-branch preds + 1). */
    uint64_t instructions = 0;

    /** 0-based position in the branch stream. */
    uint64_t index = 0;
};

/**
 * A pluggable consumer of the graded prediction stream. Implementations
 * must be deterministic functions of the stream alone (no clocks, no
 * global state): one observer instance observes exactly one run.
 */
class RunObserver
{
  public:
    virtual ~RunObserver() = default;

    /** Observer name (the token it is selected by). */
    virtual std::string name() const = 0;

    /** Observe one graded, resolved prediction, in stream order. */
    virtual void onPrediction(const ObservedPrediction& o) = 0;

    /**
     * The trace ended: write this observer's results into @p out.
     * Called exactly once, after the last onPrediction().
     */
    virtual void finish(RunAnalysis& out) = 0;
};

/** An observer pipeline: fed in order, finished in order. */
using ObserverList = std::vector<std::unique_ptr<RunObserver>>;

} // namespace tagecon

#endif // TAGECON_ANALYSIS_RUN_OBSERVER_HPP
