#include "baseline/bimodal_predictor.hpp"

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

BimodalPredictor::BimodalPredictor(int log_entries, int ctr_bits)
    : logEntries_(log_entries), ctrBits_(ctr_bits)
{
    if (log_entries < 1 || log_entries > 24)
        fatal("bimodal: bad table size");
    if (ctr_bits < 1 || ctr_bits > 8)
        fatal("bimodal: bad counter width");
    table_.assign(size_t{1} << log_entries,
                  static_cast<uint8_t>(1u << (ctr_bits - 1)));
}

uint32_t
BimodalPredictor::indexFor(uint64_t pc) const
{
    return static_cast<uint32_t>(pc & maskBits(logEntries_));
}

bool
BimodalPredictor::predict(uint64_t pc)
{
    return packed::unsignedTaken(table_[indexFor(pc)], ctrBits_);
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    uint8_t& ctr = table_[indexFor(pc)];
    ctr = static_cast<uint8_t>(packed::unsignedUpdate(ctr, ctrBits_, taken));
}

uint64_t
BimodalPredictor::storageBits() const
{
    return (uint64_t{1} << logEntries_) * static_cast<uint64_t>(ctrBits_);
}

bool
BimodalPredictor::highConfidence(uint64_t pc) const
{
    return !packed::unsignedWeak(table_[indexFor(pc)], ctrBits_);
}

UnsignedSatCounter
BimodalPredictor::counterFor(uint64_t pc) const
{
    return UnsignedSatCounter(ctrBits_, table_[indexFor(pc)]);
}

void
BimodalPredictor::saveState(StateWriter& out) const
{
    out.u8(static_cast<uint8_t>(logEntries_));
    out.u8(static_cast<uint8_t>(ctrBits_));
    out.bytes(table_.data(), table_.size());
}

bool
BimodalPredictor::loadState(StateReader& in, std::string& error)
{
    if (in.u8() != static_cast<uint8_t>(logEntries_) ||
        in.u8() != static_cast<uint8_t>(ctrBits_)) {
        error = in.ok() ? "bimodal state was written with a different "
                          "geometry"
                        : "bimodal state is truncated";
        return false;
    }
    std::vector<uint8_t> table(table_.size());
    if (!in.bytes(table.data(), table.size())) {
        error = "bimodal state is truncated";
        return false;
    }
    table_ = std::move(table);
    return true;
}

} // namespace tagecon
