#include "baseline/bimodal_predictor.hpp"

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

BimodalPredictor::BimodalPredictor(int log_entries, int ctr_bits)
    : logEntries_(log_entries), ctrBits_(ctr_bits)
{
    if (log_entries < 1 || log_entries > 24)
        fatal("bimodal: bad table size");
    table_.assign(size_t{1} << log_entries,
                  UnsignedSatCounter(ctr_bits,
                                     1u << (ctr_bits - 1)));
}

uint32_t
BimodalPredictor::indexFor(uint64_t pc) const
{
    return static_cast<uint32_t>(pc & maskBits(logEntries_));
}

bool
BimodalPredictor::predict(uint64_t pc)
{
    return table_[indexFor(pc)].taken();
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    table_[indexFor(pc)].update(taken);
}

uint64_t
BimodalPredictor::storageBits() const
{
    return (uint64_t{1} << logEntries_) * static_cast<uint64_t>(ctrBits_);
}

bool
BimodalPredictor::highConfidence(uint64_t pc) const
{
    return !table_[indexFor(pc)].weak();
}

const UnsignedSatCounter&
BimodalPredictor::counterFor(uint64_t pc) const
{
    return table_[indexFor(pc)];
}

} // namespace tagecon
