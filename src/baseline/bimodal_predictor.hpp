/**
 * @file
 * Smith's bimodal predictor (ISCA 1981): a PC-indexed table of 2-bit
 * saturating counters. Also the historical origin of storage-free
 * confidence: a weak counter means an unreliable prediction — the same
 * observation the paper applies to TAGE's base component.
 */

#ifndef TAGECON_BASELINE_BIMODAL_PREDICTOR_HPP
#define TAGECON_BASELINE_BIMODAL_PREDICTOR_HPP

#include <vector>

#include "baseline/predictor.hpp"
#include "util/saturating_counter.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/** Stand-alone bimodal predictor with Smith-style self-confidence. */
class BimodalPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param log_entries log2 of the table size.
     * @param ctr_bits Counter width (2 in the classic design).
     */
    explicit BimodalPredictor(int log_entries, int ctr_bits = 2);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "bimodal"; }
    uint64_t storageBits() const override;

    /**
     * Smith self-confidence for the branch at @p pc: high confidence
     * iff the counter is not weak.
     */
    bool highConfidence(uint64_t pc) const;

    /** Snapshot of the counter backing @p pc (tests / introspection). */
    UnsignedSatCounter counterFor(uint64_t pc) const;

    /** Serialize geometry fingerprint + counter table. */
    void saveState(StateWriter& out) const;

    /**
     * Restore state written by saveState() on an identical geometry.
     * Returns false with the reason in @p error on mismatch/underrun.
     */
    bool loadState(StateReader& in, std::string& error);

  private:
    uint32_t indexFor(uint64_t pc) const;

    /** Packed counters: one byte per entry, width held in ctrBits_. */
    std::vector<uint8_t> table_;
    int logEntries_;
    int ctrBits_;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_BIMODAL_PREDICTOR_HPP
