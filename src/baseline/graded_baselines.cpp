#include "baseline/graded_baselines.hpp"

namespace tagecon {

namespace {

/** Fill the level/class pair of a two-way (high/low) grade. */
void
setBinaryGrade(Prediction& p, bool high)
{
    p.confidence = high ? ConfidenceLevel::High : ConfidenceLevel::Low;
    p.cls = representativeClass(p.confidence);
}

} // namespace

// ---------------------------------------------------------- GradedGshare

GradedGshare::GradedGshare(int log_entries, int history_bits,
                           int ctr_bits)
    : inner_(log_entries, history_bits, ctr_bits),
      logEntries_(log_entries), historyBits_(history_bits),
      ctrBits_(ctr_bits)
{
}

Prediction
GradedGshare::predict(uint64_t pc)
{
    Prediction p;
    p.taken = inner_.predict(pc);
    setBinaryGrade(p, /*high=*/true); // confidence-blind
    return p;
}

void
GradedGshare::update(uint64_t pc, const Prediction& /*p*/, bool taken)
{
    inner_.update(pc, taken);
}

uint64_t
GradedGshare::storageBits() const
{
    return inner_.storageBits();
}

void
GradedGshare::reset()
{
    inner_ = GsharePredictor(logEntries_, historyBits_, ctrBits_);
}

bool
GradedGshare::snapshot(StateWriter& out, std::string& error) const
{
    (void)error;
    inner_.saveState(out);
    return true;
}

bool
GradedGshare::restore(StateReader& in, std::string& error)
{
    if (!inner_.loadState(in, error)) {
        reset();
        return false;
    }
    return true;
}

// --------------------------------------------------------- GradedBimodal

GradedBimodal::GradedBimodal(int log_entries, int ctr_bits)
    : inner_(log_entries, ctr_bits), logEntries_(log_entries),
      ctrBits_(ctr_bits)
{
}

Prediction
GradedBimodal::predict(uint64_t pc)
{
    Prediction p;
    p.taken = inner_.predict(pc);
    setBinaryGrade(p, inner_.highConfidence(pc));
    return p;
}

void
GradedBimodal::update(uint64_t pc, const Prediction& /*p*/, bool taken)
{
    inner_.update(pc, taken);
}

uint64_t
GradedBimodal::storageBits() const
{
    return inner_.storageBits();
}

void
GradedBimodal::reset()
{
    inner_ = BimodalPredictor(logEntries_, ctrBits_);
}

bool
GradedBimodal::snapshot(StateWriter& out, std::string& error) const
{
    (void)error;
    inner_.saveState(out);
    return true;
}

bool
GradedBimodal::restore(StateReader& in, std::string& error)
{
    if (!inner_.loadState(in, error)) {
        reset();
        return false;
    }
    return true;
}

// ------------------------------------------------------ GradedPerceptron

GradedPerceptron::GradedPerceptron(int log_perceptrons, int history_bits)
    : inner_(log_perceptrons, history_bits),
      logPerceptrons_(log_perceptrons), historyBits_(history_bits)
{
}

Prediction
GradedPerceptron::predict(uint64_t pc)
{
    Prediction p;
    p.taken = inner_.predict(pc);
    setBinaryGrade(p, inner_.lastHighConfidence());
    return p;
}

void
GradedPerceptron::update(uint64_t pc, const Prediction& /*p*/,
                         bool taken)
{
    inner_.update(pc, taken);
}

uint64_t
GradedPerceptron::storageBits() const
{
    return inner_.storageBits();
}

void
GradedPerceptron::reset()
{
    inner_ = PerceptronPredictor(logPerceptrons_, historyBits_);
}

bool
GradedPerceptron::snapshot(StateWriter& out, std::string& error) const
{
    (void)error;
    inner_.saveState(out);
    return true;
}

bool
GradedPerceptron::restore(StateReader& in, std::string& error)
{
    if (!inner_.loadState(in, error)) {
        reset();
        return false;
    }
    return true;
}

// ----------------------------------------------------------- GradedOgehl

GradedOgehl::GradedOgehl(OgehlPredictor::Config cfg)
    : inner_(cfg)
{
}

Prediction
GradedOgehl::predict(uint64_t pc)
{
    Prediction p;
    p.taken = inner_.predict(pc);
    setBinaryGrade(p, inner_.lastHighConfidence());
    return p;
}

void
GradedOgehl::update(uint64_t pc, const Prediction& /*p*/, bool taken)
{
    inner_.update(pc, taken);
}

uint64_t
GradedOgehl::storageBits() const
{
    return inner_.storageBits();
}

void
GradedOgehl::reset()
{
    inner_ = OgehlPredictor(inner_.config());
}

bool
GradedOgehl::snapshot(StateWriter& out, std::string& error) const
{
    (void)error;
    inner_.saveState(out);
    return true;
}

bool
GradedOgehl::restore(StateReader& in, std::string& error)
{
    if (!inner_.loadState(in, error)) {
        reset();
        return false;
    }
    return true;
}

} // namespace tagecon
