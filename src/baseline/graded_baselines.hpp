/**
 * @file
 * GradedPredictor adapters for the baseline predictor families:
 * gshare, bimodal, perceptron and O-GEHL.
 *
 * Each adapter grades with the family's natural storage-free signal
 * where one exists — Smith counter strength for bimodal, |sum| >=
 * theta self-confidence for perceptron and O-GEHL (Sec. 2.2 of the
 * paper). gshare has no intrinsic confidence signal; its predictions
 * default to high confidence and hasIntrinsicConfidence() is false, so
 * the registry rejects "gshare+sfc" and a storage-based estimator
 * (JRS) must be attached instead.
 */

#ifndef TAGECON_BASELINE_GRADED_BASELINES_HPP
#define TAGECON_BASELINE_GRADED_BASELINES_HPP

#include "baseline/bimodal_predictor.hpp"
#include "baseline/gshare_predictor.hpp"
#include "baseline/ogehl_predictor.hpp"
#include "baseline/perceptron_predictor.hpp"
#include "core/graded_predictor.hpp"

namespace tagecon {

/**
 * gshare behind the GradedPredictor interface. Confidence-blind: every
 * prediction is graded high until an estimator decorates it.
 */
class GradedGshare : public GradedPredictor
{
  public:
    /** Defaults give a 64Kbit table, comparable to the 64K TAGE. */
    explicit GradedGshare(int log_entries = 15, int history_bits = 15,
                          int ctr_bits = 2);

    Prediction predict(uint64_t pc) override;
    void update(uint64_t pc, const Prediction& p, bool taken) override;
    uint64_t storageBits() const override;
    void reset() override;
    bool snapshot(StateWriter& out, std::string& error) const override;
    bool restore(StateReader& in, std::string& error) override;

    /** The wrapped predictor (read-only). */
    const GsharePredictor& inner() const { return inner_; }

  protected:
    std::string defaultName() const override { return "gshare"; }

  private:
    GsharePredictor inner_;
    int logEntries_, historyBits_, ctrBits_;
};

/**
 * Bimodal behind the GradedPredictor interface, graded with Smith
 * self-confidence: weak counter -> low confidence.
 */
class GradedBimodal : public GradedPredictor
{
  public:
    /** Defaults give a 64Kbit table. */
    explicit GradedBimodal(int log_entries = 15, int ctr_bits = 2);

    Prediction predict(uint64_t pc) override;
    void update(uint64_t pc, const Prediction& p, bool taken) override;
    uint64_t storageBits() const override;
    void reset() override;
    bool hasIntrinsicConfidence() const override { return true; }
    bool snapshot(StateWriter& out, std::string& error) const override;
    bool restore(StateReader& in, std::string& error) override;

    /** The wrapped predictor (read-only). */
    const BimodalPredictor& inner() const { return inner_; }

  protected:
    std::string defaultName() const override { return "bimodal"; }

  private:
    BimodalPredictor inner_;
    int logEntries_, ctrBits_;
};

/**
 * Perceptron behind the GradedPredictor interface, graded with its
 * |sum| >= theta self-confidence.
 */
class GradedPerceptron : public GradedPredictor
{
  public:
    /** Defaults match the bench geometry comparable to 64Kbit. */
    explicit GradedPerceptron(int log_perceptrons = 9,
                              int history_bits = 32);

    Prediction predict(uint64_t pc) override;
    void update(uint64_t pc, const Prediction& p, bool taken) override;
    uint64_t storageBits() const override;
    void reset() override;
    bool hasIntrinsicConfidence() const override { return true; }
    bool snapshot(StateWriter& out, std::string& error) const override;
    bool restore(StateReader& in, std::string& error) override;

    /** The wrapped predictor (read-only). */
    const PerceptronPredictor& inner() const { return inner_; }

  protected:
    std::string defaultName() const override { return "perceptron"; }

  private:
    PerceptronPredictor inner_;
    int logPerceptrons_, historyBits_;
};

/**
 * O-GEHL behind the GradedPredictor interface, graded with its
 * |sum| >= theta self-confidence (the Sec. 2.2 reference point).
 */
class GradedOgehl : public GradedPredictor
{
  public:
    explicit GradedOgehl(OgehlPredictor::Config cfg = {});

    Prediction predict(uint64_t pc) override;
    void update(uint64_t pc, const Prediction& p, bool taken) override;
    uint64_t storageBits() const override;
    void reset() override;
    bool hasIntrinsicConfidence() const override { return true; }
    bool snapshot(StateWriter& out, std::string& error) const override;
    bool restore(StateReader& in, std::string& error) override;

    /** The wrapped predictor (read-only). */
    const OgehlPredictor& inner() const { return inner_; }

  protected:
    std::string defaultName() const override { return "ogehl"; }

  private:
    OgehlPredictor inner_;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_GRADED_BASELINES_HPP
