#include "baseline/gshare_predictor.hpp"

#include <algorithm>

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

GsharePredictor::GsharePredictor(int log_entries, int history_bits,
                                 int ctr_bits)
    : logEntries_(log_entries), historyBits_(history_bits),
      ctrBits_(ctr_bits)
{
    if (log_entries < 1 || log_entries > 24)
        fatal("gshare: bad table size");
    if (history_bits < 1)
        fatal("gshare: bad history length");
    if (ctr_bits < 1 || ctr_bits > 8)
        fatal("gshare: bad counter width");
    table_.assign(size_t{1} << log_entries,
                  static_cast<uint8_t>(1u << (ctr_bits - 1)));
}

uint32_t
GsharePredictor::indexFor(uint64_t pc) const
{
    // Histories longer than the index are folded in log_entries-bit
    // chunks; for history_bits <= log_entries this is the plain XOR.
    const uint64_t folded =
        xorFold(history_ & maskBits(historyBits_), logEntries_);
    return static_cast<uint32_t>((pc ^ folded) & maskBits(logEntries_));
}

bool
GsharePredictor::predict(uint64_t pc)
{
    return packed::unsignedTaken(table_[indexFor(pc)], ctrBits_);
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    uint8_t& ctr = table_[indexFor(pc)];
    ctr = static_cast<uint8_t>(packed::unsignedUpdate(ctr, ctrBits_, taken));
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               maskBits(historyBits_);
}

uint64_t
GsharePredictor::storageBits() const
{
    return (uint64_t{1} << logEntries_) * static_cast<uint64_t>(ctrBits_);
}

void
GsharePredictor::saveState(StateWriter& out) const
{
    out.u8(static_cast<uint8_t>(logEntries_));
    out.u32(static_cast<uint32_t>(historyBits_));
    out.u8(static_cast<uint8_t>(ctrBits_));
    out.u64(history_);
    out.bytes(table_.data(), table_.size());
}

bool
GsharePredictor::loadState(StateReader& in, std::string& error)
{
    if (in.u8() != static_cast<uint8_t>(logEntries_) ||
        in.u32() != static_cast<uint32_t>(historyBits_) ||
        in.u8() != static_cast<uint8_t>(ctrBits_)) {
        error = in.ok() ? "gshare state was written with a different "
                          "geometry"
                        : "gshare state is truncated";
        return false;
    }
    const uint64_t history = in.u64();
    std::vector<uint8_t> table(table_.size());
    if (!in.bytes(table.data(), table.size())) {
        error = "gshare state is truncated";
        return false;
    }
    history_ = history & maskBits(historyBits_);
    table_ = std::move(table);
    return true;
}

} // namespace tagecon
