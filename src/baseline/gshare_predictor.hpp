/**
 * @file
 * McFarling's gshare predictor (DEC WRL TN-36, 1993): a table of 2-bit
 * counters indexed by PC XOR global history. Serves as the host
 * predictor the JRS confidence estimator was originally evaluated
 * with, and as an accuracy baseline for TAGE.
 */

#ifndef TAGECON_BASELINE_GSHARE_PREDICTOR_HPP
#define TAGECON_BASELINE_GSHARE_PREDICTOR_HPP

#include <vector>

#include "baseline/predictor.hpp"
#include "util/saturating_counter.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/** Classic gshare predictor. */
class GsharePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param log_entries log2 of the counter table size.
     * @param history_bits Global history bits mixed into the index;
     *        histories longer than log_entries are folded in
     *        log_entries-bit chunks (so the parameter is honored, not
     *        clamped).
     * @param ctr_bits Counter width.
     */
    GsharePredictor(int log_entries, int history_bits, int ctr_bits = 2);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "gshare"; }
    uint64_t storageBits() const override;

    /** Current global history register value. */
    uint64_t history() const { return history_; }

    /** Index used for @p pc with the current history (tests). */
    uint32_t indexFor(uint64_t pc) const;

    /** Serialize geometry fingerprint + counter table + history. */
    void saveState(StateWriter& out) const;

    /**
     * Restore state written by saveState() on an identical geometry.
     * Returns false with the reason in @p error on mismatch/underrun.
     */
    bool loadState(StateReader& in, std::string& error);

  private:
    /** Packed counters: one byte per entry, width held in ctrBits_. */
    std::vector<uint8_t> table_;
    uint64_t history_ = 0;
    int logEntries_;
    int historyBits_;
    int ctrBits_;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_GSHARE_PREDICTOR_HPP
