#include "baseline/jrs_estimator.hpp"

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

JrsConfidenceEstimator::JrsConfidenceEstimator()
    : JrsConfidenceEstimator(Config{})
{
}

JrsConfidenceEstimator::JrsConfidenceEstimator(Config cfg)
    : cfg_(cfg)
{
    if (cfg_.logEntries < 1 || cfg_.logEntries > 24)
        fatal("JRS: bad table size");
    if (cfg_.ctrBits < 1 || cfg_.ctrBits > 16)
        fatal("JRS: bad counter width");
    if (cfg_.threshold > ((1u << cfg_.ctrBits) - 1))
        fatal("JRS: threshold exceeds counter range");
    if (cfg_.historyBits < 1 || cfg_.historyBits > 32)
        fatal("JRS: bad history length");
    table_.assign(size_t{1} << cfg_.logEntries, 0);
}

uint32_t
JrsConfidenceEstimator::indexFor(uint64_t pc, bool predicted_taken) const
{
    uint64_t idx = pc ^ (history_ & maskBits(cfg_.historyBits));
    if (cfg_.indexWithPrediction)
        idx = (idx << 1) | (predicted_taken ? 1 : 0);
    return static_cast<uint32_t>(idx & maskBits(cfg_.logEntries));
}

bool
JrsConfidenceEstimator::query(uint64_t pc, bool predicted_taken) const
{
    return table_[indexFor(pc, predicted_taken)] >= cfg_.threshold;
}

unsigned
JrsConfidenceEstimator::counterValue(uint64_t pc,
                                     bool predicted_taken) const
{
    return table_[indexFor(pc, predicted_taken)];
}

void
JrsConfidenceEstimator::record(uint64_t pc, bool predicted_taken,
                               bool correct, bool taken)
{
    uint16_t& ctr = table_[indexFor(pc, predicted_taken)];
    // Resetting counter: saturating increment when correct, zero on a
    // misprediction.
    ctr = correct ? static_cast<uint16_t>(
                        packed::unsignedInc(ctr, cfg_.ctrBits))
                  : uint16_t{0};
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

uint64_t
JrsConfidenceEstimator::storageBits() const
{
    return (uint64_t{1} << cfg_.logEntries) *
           static_cast<uint64_t>(cfg_.ctrBits);
}

} // namespace tagecon
