/**
 * @file
 * The JRS confidence estimator (Jacobsen, Rotenberg & Smith, MICRO
 * 1996) and Grunwald et al.'s prediction-indexed refinement (ISCA
 * 1998) — the storage-based estimators the paper's storage-free scheme
 * is contrasted with (Sec. 2.2).
 *
 * A gshare-indexed table of resetting counters: incremented on a
 * correct prediction, reset to zero on a misprediction. A prediction
 * is high confidence when its counter is at or above a threshold
 * (4-bit counters with threshold 15 in the classic configuration).
 */

#ifndef TAGECON_BASELINE_JRS_ESTIMATOR_HPP
#define TAGECON_BASELINE_JRS_ESTIMATOR_HPP

#include <vector>

#include "util/saturating_counter.hpp"

namespace tagecon {

/**
 * Storage-based confidence estimator attachable to any branch
 * predictor. The estimator keeps its own global-history register so it
 * is host-agnostic; drive it with query()/record() per branch.
 */
class JrsConfidenceEstimator
{
  public:
    struct Config {
        /** log2 of the counter table size. */
        int logEntries = 12;

        /** Counter width; 4 bits in the classic configuration. */
        int ctrBits = 4;

        /** High confidence iff counter >= threshold (15 classically). */
        unsigned threshold = 15;

        /** Global history bits XORed into the index. */
        int historyBits = 12;

        /**
         * Grunwald et al. refinement: include the predicted direction
         * in the table index, so taken/not-taken predictions of the
         * same (PC, history) get separate confidence.
         */
        bool indexWithPrediction = false;
    };

    /** Build with the classic 4-bit / threshold-15 configuration. */
    JrsConfidenceEstimator();

    explicit JrsConfidenceEstimator(Config cfg);

    /**
     * Confidence of the upcoming prediction @p predicted_taken for the
     * branch at @p pc under the current history.
     * @retval true High confidence.
     */
    bool query(uint64_t pc, bool predicted_taken) const;

    /** Raw counter value that query() consulted. */
    unsigned counterValue(uint64_t pc, bool predicted_taken) const;

    /**
     * Train with the resolved branch: increment on a correct
     * prediction, reset on a misprediction, then advance the history.
     */
    void record(uint64_t pc, bool predicted_taken, bool correct,
                bool taken);

    /** Estimator storage cost in bits. */
    uint64_t storageBits() const;

    /** The configuration in use. */
    const Config& config() const { return cfg_; }

  private:
    uint32_t indexFor(uint64_t pc, bool predicted_taken) const;

    Config cfg_;

    /** Packed resetting counters (width in cfg_.ctrBits, up to 16). */
    std::vector<uint16_t> table_;
    uint64_t history_ = 0;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_JRS_ESTIMATOR_HPP
