#include "baseline/ogehl_predictor.hpp"

#include <cstdlib>

#include "tage/tage_config.hpp"
#include "util/bit_utils.hpp"
#include "util/logging.hpp"
#include "util/saturating_counter.hpp"

namespace tagecon {

OgehlPredictor::OgehlPredictor()
    : OgehlPredictor(Config{})
{
}

OgehlPredictor::OgehlPredictor(Config cfg)
    : cfg_(cfg),
      history_(static_cast<size_t>(cfg.maxHistory) + 2),
      theta_(cfg.initialTheta),
      ctrMax_((1 << (cfg.ctrBits - 1)) - 1),
      ctrMin_(-(1 << (cfg.ctrBits - 1)))
{
    if (cfg_.numTables < 2 || cfg_.numTables > 16)
        fatal("O-GEHL: bad table count");
    if (cfg_.logEntries < 4 || cfg_.logEntries > 20)
        fatal("O-GEHL: bad table size");
    if (cfg_.ctrBits < 2 || cfg_.ctrBits > 8)
        fatal("O-GEHL: bad counter width");
    if (cfg_.minHistory < 1 || cfg_.maxHistory < cfg_.minHistory)
        fatal("O-GEHL: bad history bounds");

    tables_.assign(static_cast<size_t>(cfg_.numTables)
                       << cfg_.logEntries,
                   0);

    // Geometric history series for tables 1..M-1; table 0 is
    // PC-indexed (history length 0).
    const auto lengths = TageConfig::geometricHistories(
        cfg_.minHistory, cfg_.maxHistory, cfg_.numTables - 1);
    folds_.resize(static_cast<size_t>(cfg_.numTables));
    for (int t = 1; t < cfg_.numTables; ++t) {
        folds_[static_cast<size_t>(t)] = FoldedHistory(
            lengths[static_cast<size_t>(t - 1)], cfg_.logEntries);
    }
}

uint32_t
OgehlPredictor::indexFor(uint64_t pc, int table) const
{
    const uint64_t mask = maskBits(cfg_.logEntries);
    if (table == 0)
        return static_cast<uint32_t>(pc & mask);
    const uint64_t mixed =
        pc ^ (pc >> (table + 1)) ^
        folds_[static_cast<size_t>(table)].value();
    return static_cast<uint32_t>(mixed & mask);
}

int
OgehlPredictor::computeSum(uint64_t pc) const
{
    // The adder-tree bias: summing M ctr values plus M/2 centers the
    // decision like the original (counters encode [-2^(b-1), 2^(b-1))
    // around -0.5).
    int sum = cfg_.numTables / 2;
    for (int t = 0; t < cfg_.numTables; ++t)
        sum += tables_[(static_cast<size_t>(t) << cfg_.logEntries) +
                       indexFor(pc, t)];
    return sum;
}

bool
OgehlPredictor::predict(uint64_t pc)
{
    lastSum_ = computeSum(pc);
    lastAbsSum_ = std::abs(lastSum_);
    return lastSum_ >= 0;
}

void
OgehlPredictor::update(uint64_t pc, bool taken)
{
    const int sum = computeSum(pc);
    const bool predicted = sum >= 0;
    const bool mispredicted = predicted != taken;
    const bool low_confidence = std::abs(sum) < theta_;

    // Train on a misprediction or a low-confidence correct prediction.
    if (mispredicted || low_confidence) {
        for (int t = 0; t < cfg_.numTables; ++t) {
            int8_t& ctr =
                tables_[(static_cast<size_t>(t) << cfg_.logEntries) +
                        indexFor(pc, t)];
            ctr = static_cast<int8_t>(
                packed::signedUpdate(ctr, cfg_.ctrBits, taken));
        }
    }

    // Adaptive threshold (ISCA 2005): mispredictions push theta up,
    // low-confidence-but-correct updates push it down, through a
    // saturating counter.
    const int tc_max = (1 << (cfg_.thresholdCtrBits - 1)) - 1;
    const int tc_min = -(1 << (cfg_.thresholdCtrBits - 1));
    if (mispredicted) {
        if (++thresholdCounter_ >= tc_max) {
            thresholdCounter_ = 0;
            ++theta_;
        }
    } else if (low_confidence) {
        if (--thresholdCounter_ <= tc_min) {
            thresholdCounter_ = 0;
            if (theta_ > 1)
                --theta_;
        }
    }

    // Advance the global history and all folds.
    history_.push(taken);
    for (int t = 1; t < cfg_.numTables; ++t)
        folds_[static_cast<size_t>(t)].update(history_);
}

uint64_t
OgehlPredictor::storageBits() const
{
    return static_cast<uint64_t>(cfg_.numTables) *
           (uint64_t{1} << cfg_.logEntries) *
           static_cast<uint64_t>(cfg_.ctrBits);
}

void
OgehlPredictor::saveState(StateWriter& out) const
{
    // Geometry fingerprint: everything loadState() must agree on for
    // the arena size, hash functions and threshold dynamics to line
    // up.
    out.u8(static_cast<uint8_t>(cfg_.numTables));
    out.u8(static_cast<uint8_t>(cfg_.logEntries));
    out.u8(static_cast<uint8_t>(cfg_.ctrBits));
    out.u32(static_cast<uint32_t>(cfg_.minHistory));
    out.u32(static_cast<uint32_t>(cfg_.maxHistory));
    out.u32(static_cast<uint32_t>(cfg_.initialTheta));
    out.u8(static_cast<uint8_t>(cfg_.thresholdCtrBits));

    // Dynamic state.
    out.bytes(reinterpret_cast<const uint8_t*>(tables_.data()),
              tables_.size());

    // History ring, relative to the head (index 0 = newest), packed 8
    // outcomes per byte; replaying oldest-first into a cleared ring
    // restores every addressable h[i].
    const size_t outcomes = history_.capacity() + 1;
    out.u32(static_cast<uint32_t>(outcomes));
    out.packedBits(outcomes, [&](size_t i) {
        return history_[outcomes - 1 - i] != 0;
    });
    for (int t = 1; t < cfg_.numTables; ++t)
        out.u32(folds_[static_cast<size_t>(t)].value());

    out.i64(theta_);
    out.i64(thresholdCounter_);
}

bool
OgehlPredictor::loadState(StateReader& in, std::string& error)
{
    const bool geometry_ok =
        in.u8() == static_cast<uint8_t>(cfg_.numTables) &&
        in.u8() == static_cast<uint8_t>(cfg_.logEntries) &&
        in.u8() == static_cast<uint8_t>(cfg_.ctrBits) &&
        in.u32() == static_cast<uint32_t>(cfg_.minHistory) &&
        in.u32() == static_cast<uint32_t>(cfg_.maxHistory) &&
        in.u32() == static_cast<uint32_t>(cfg_.initialTheta) &&
        in.u8() == static_cast<uint8_t>(cfg_.thresholdCtrBits);
    if (!in.ok() || !geometry_ok) {
        error = in.ok() ? "O-GEHL state was written by a predictor "
                          "with a different geometry"
                        : "O-GEHL state is truncated";
        return false;
    }

    // Decode everything before committing so a truncated blob leaves
    // the predictor untouched.
    std::vector<int8_t> tables(tables_.size());
    in.bytes(reinterpret_cast<uint8_t*>(tables.data()), tables.size());

    const size_t outcomes = history_.capacity() + 1;
    if (in.u32() != static_cast<uint32_t>(outcomes)) {
        error = in.ok() ? "O-GEHL state carries a history ring of a "
                          "different capacity"
                        : "O-GEHL state is truncated";
        return false;
    }
    std::vector<uint8_t> ring(outcomes, 0);
    in.packedBits(outcomes,
                  [&](size_t i, bool bit) { ring[i] = bit ? 1 : 0; });
    std::vector<uint32_t> fold_state(
        static_cast<size_t>(cfg_.numTables), 0);
    for (int t = 1; t < cfg_.numTables; ++t)
        fold_state[static_cast<size_t>(t)] = in.u32();
    const int64_t theta = in.i64();
    const int64_t threshold_counter = in.i64();
    if (!in.ok()) {
        error = "O-GEHL state is truncated";
        return false;
    }

    tables_ = std::move(tables);
    // ring[0] is the oldest outcome; pushing oldest-first rebuilds
    // every head-relative index.
    history_.clear();
    for (const uint8_t bit : ring)
        history_.push(bit != 0);
    for (int t = 1; t < cfg_.numTables; ++t)
        folds_[static_cast<size_t>(t)].restore(
            fold_state[static_cast<size_t>(t)]);
    theta_ = static_cast<int>(theta);
    thresholdCounter_ = static_cast<int>(threshold_counter);
    lastSum_ = 0;
    lastAbsSum_ = 0;
    return true;
}

} // namespace tagecon
