#include "baseline/ogehl_predictor.hpp"

#include <cstdlib>

#include "tage/tage_config.hpp"
#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

OgehlPredictor::OgehlPredictor()
    : OgehlPredictor(Config{})
{
}

OgehlPredictor::OgehlPredictor(Config cfg)
    : cfg_(cfg),
      history_(static_cast<size_t>(cfg.maxHistory) + 2),
      theta_(cfg.initialTheta),
      ctrMax_((1 << (cfg.ctrBits - 1)) - 1),
      ctrMin_(-(1 << (cfg.ctrBits - 1)))
{
    if (cfg_.numTables < 2 || cfg_.numTables > 16)
        fatal("O-GEHL: bad table count");
    if (cfg_.logEntries < 4 || cfg_.logEntries > 20)
        fatal("O-GEHL: bad table size");
    if (cfg_.ctrBits < 2 || cfg_.ctrBits > 8)
        fatal("O-GEHL: bad counter width");
    if (cfg_.minHistory < 1 || cfg_.maxHistory < cfg_.minHistory)
        fatal("O-GEHL: bad history bounds");

    tables_.assign(static_cast<size_t>(cfg_.numTables),
                   std::vector<int8_t>(size_t{1} << cfg_.logEntries, 0));

    // Geometric history series for tables 1..M-1; table 0 is
    // PC-indexed (history length 0).
    const auto lengths = TageConfig::geometricHistories(
        cfg_.minHistory, cfg_.maxHistory, cfg_.numTables - 1);
    folds_.resize(static_cast<size_t>(cfg_.numTables));
    for (int t = 1; t < cfg_.numTables; ++t) {
        folds_[static_cast<size_t>(t)] = FoldedHistory(
            lengths[static_cast<size_t>(t - 1)], cfg_.logEntries);
    }
}

uint32_t
OgehlPredictor::indexFor(uint64_t pc, int table) const
{
    const uint64_t mask = maskBits(cfg_.logEntries);
    if (table == 0)
        return static_cast<uint32_t>(pc & mask);
    const uint64_t mixed =
        pc ^ (pc >> (table + 1)) ^
        folds_[static_cast<size_t>(table)].value();
    return static_cast<uint32_t>(mixed & mask);
}

int
OgehlPredictor::computeSum(uint64_t pc) const
{
    // The adder-tree bias: summing M ctr values plus M/2 centers the
    // decision like the original (counters encode [-2^(b-1), 2^(b-1))
    // around -0.5).
    int sum = cfg_.numTables / 2;
    for (int t = 0; t < cfg_.numTables; ++t)
        sum += tables_[static_cast<size_t>(t)][indexFor(pc, t)];
    return sum;
}

bool
OgehlPredictor::predict(uint64_t pc)
{
    lastSum_ = computeSum(pc);
    lastAbsSum_ = std::abs(lastSum_);
    return lastSum_ >= 0;
}

void
OgehlPredictor::update(uint64_t pc, bool taken)
{
    const int sum = computeSum(pc);
    const bool predicted = sum >= 0;
    const bool mispredicted = predicted != taken;
    const bool low_confidence = std::abs(sum) < theta_;

    // Train on a misprediction or a low-confidence correct prediction.
    if (mispredicted || low_confidence) {
        for (int t = 0; t < cfg_.numTables; ++t) {
            int8_t& ctr =
                tables_[static_cast<size_t>(t)][indexFor(pc, t)];
            if (taken && ctr < ctrMax_)
                ++ctr;
            else if (!taken && ctr > ctrMin_)
                --ctr;
        }
    }

    // Adaptive threshold (ISCA 2005): mispredictions push theta up,
    // low-confidence-but-correct updates push it down, through a
    // saturating counter.
    const int tc_max = (1 << (cfg_.thresholdCtrBits - 1)) - 1;
    const int tc_min = -(1 << (cfg_.thresholdCtrBits - 1));
    if (mispredicted) {
        if (++thresholdCounter_ >= tc_max) {
            thresholdCounter_ = 0;
            ++theta_;
        }
    } else if (low_confidence) {
        if (--thresholdCounter_ <= tc_min) {
            thresholdCounter_ = 0;
            if (theta_ > 1)
                --theta_;
        }
    }

    // Advance the global history and all folds.
    history_.push(taken);
    for (int t = 1; t < cfg_.numTables; ++t)
        folds_[static_cast<size_t>(t)].update(history_);
}

uint64_t
OgehlPredictor::storageBits() const
{
    return static_cast<uint64_t>(cfg_.numTables) *
           (uint64_t{1} << cfg_.logEntries) *
           static_cast<uint64_t>(cfg_.ctrBits);
}

} // namespace tagecon
