/**
 * @file
 * The O-GEHL predictor (Seznec, ISCA 2005) with its storage-free
 * self-confidence estimate. Sec. 2.2 of the paper uses it as the
 * pre-TAGE reference point for storage-free confidence: a prediction
 * is high confidence when the absolute value of the prediction sum is
 * at or above the update threshold. The paper quotes its quality as
 * "quite good PVN (about one third of low-confidence predictions
 * mispredicted) but limited SPEC (only half of the mispredicted
 * branches classified low confidence)" — the bench_vs_selfconf binary
 * checks exactly that.
 */

#ifndef TAGECON_BASELINE_OGEHL_PREDICTOR_HPP
#define TAGECON_BASELINE_OGEHL_PREDICTOR_HPP

#include <string>
#include <vector>

#include "baseline/predictor.hpp"
#include "util/global_history.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/**
 * GEometric History Length predictor with adder tree and adaptive
 * update threshold. Tables of signed counters are indexed with
 * geometrically increasing history lengths; the prediction is the
 * sign of the counter sum.
 */
class OgehlPredictor : public ConditionalPredictor
{
  public:
    struct Config {
        /** Number of component tables (T0 is PC-indexed). */
        int numTables = 8;

        /** log2 of entries per table. */
        int logEntries = 11;

        /** Counter width in bits (4 in the ISCA 2005 design). */
        int ctrBits = 4;

        /** Shortest non-zero history length (table T1). */
        int minHistory = 2;

        /** Longest history length (table T_{M-1}). */
        int maxHistory = 200;

        /** Initial update threshold; adapts at run time. */
        int initialTheta = 8;

        /** Width of the threshold-adaptation counter. */
        int thresholdCtrBits = 7;
    };

    OgehlPredictor();
    explicit OgehlPredictor(Config cfg);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "ogehl"; }
    uint64_t storageBits() const override;

    /**
     * Self-confidence of the last predict(): high iff |sum| >= theta
     * (the storage-free scheme of Sec. 2.2).
     */
    bool lastHighConfidence() const { return lastAbsSum_ >= theta_; }

    /** Prediction sum of the last predict(). */
    int lastSum() const { return lastSum_; }

    /** Current (adaptive) update threshold. */
    int theta() const { return theta_; }

    /** The configuration in use. */
    const Config& config() const { return cfg_; }

    /**
     * Serialize the architectural state — counter arena, history ring,
     * fold registers, adaptive threshold — behind a geometry
     * fingerprint. The last-sum introspection values are
     * predict-transient and not part of the state.
     */
    void saveState(StateWriter& out) const;

    /**
     * Restore state written by saveState(). Returns false with the
     * reason in @p error (leaving the predictor untouched) on
     * truncation or geometry mismatch.
     */
    bool loadState(StateReader& in, std::string& error);

  private:
    uint32_t indexFor(uint64_t pc, int table) const;
    int computeSum(uint64_t pc) const;

    Config cfg_;

    /**
     * Flat counter arena: table t owns the (1 << logEntries) int8
     * counters starting at t << logEntries. One byte per counter via
     * the packed::signedUpdate transition at ctrBits.
     */
    std::vector<int8_t> tables_;
    GlobalHistory history_;
    std::vector<FoldedHistory> folds_; // [table], table 0 unused

    int theta_;
    int thresholdCounter_ = 0; // saturating, drives theta adaptation
    int lastSum_ = 0;
    int lastAbsSum_ = 0;
    int ctrMax_;
    int ctrMin_;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_OGEHL_PREDICTOR_HPP
