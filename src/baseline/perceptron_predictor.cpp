#include "baseline/perceptron_predictor.hpp"

#include <cmath>
#include <cstdlib>

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

PerceptronPredictor::PerceptronPredictor(int log_perceptrons,
                                         int history_bits)
    : logPerceptrons_(log_perceptrons), historyBits_(history_bits),
      theta_(static_cast<int>(1.93 * history_bits + 14))
{
    if (log_perceptrons < 1 || log_perceptrons > 20)
        fatal("perceptron: bad table size");
    if (history_bits < 1 || history_bits > 64)
        fatal("perceptron: bad history length");
    weights_.assign(size_t{1} << log_perceptrons,
                    std::vector<int16_t>(
                        static_cast<size_t>(history_bits) + 1, 0));
}

uint32_t
PerceptronPredictor::indexFor(uint64_t pc) const
{
    return static_cast<uint32_t>(xorFold(pc, logPerceptrons_) &
                                 maskBits(logPerceptrons_));
}

int
PerceptronPredictor::computeSum(uint64_t pc) const
{
    const auto& w = weights_[indexFor(pc)];
    int sum = w[0]; // bias weight: input is the constant 1
    for (int i = 0; i < historyBits_; ++i) {
        const bool bit = ((history_ >> i) & 1) != 0;
        sum += bit ? w[static_cast<size_t>(i) + 1]
                   : -w[static_cast<size_t>(i) + 1];
    }
    return sum;
}

bool
PerceptronPredictor::predict(uint64_t pc)
{
    lastSum_ = computeSum(pc);
    lastAbsSum_ = std::abs(lastSum_);
    return lastSum_ >= 0;
}

void
PerceptronPredictor::update(uint64_t pc, bool taken)
{
    const int sum = computeSum(pc);
    const bool predicted = sum >= 0;

    // Train on a misprediction or when the output is not confident.
    if (predicted != taken || std::abs(sum) <= theta_) {
        auto& w = weights_[indexFor(pc)];
        const int t = taken ? 1 : -1;
        auto bump = [t](int16_t& weight, int input) {
            const int next = weight + t * input;
            if (next <= kWeightMax && next >= kWeightMin)
                weight = static_cast<int16_t>(next);
        };
        bump(w[0], 1);
        for (int i = 0; i < historyBits_; ++i) {
            const int input = ((history_ >> i) & 1) != 0 ? 1 : -1;
            bump(w[static_cast<size_t>(i) + 1], input);
        }
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
}

uint64_t
PerceptronPredictor::storageBits() const
{
    // 8-bit weights, (h + 1) weights per perceptron.
    return (uint64_t{1} << logPerceptrons_) *
           static_cast<uint64_t>(historyBits_ + 1) * 8;
}

} // namespace tagecon
