#include "baseline/perceptron_predictor.hpp"

#include <cmath>
#include <cstdlib>

#include "util/bit_utils.hpp"
#include "util/logging.hpp"
#include "util/saturating_counter.hpp"

namespace tagecon {

PerceptronPredictor::PerceptronPredictor(int log_perceptrons,
                                         int history_bits)
    : logPerceptrons_(log_perceptrons), historyBits_(history_bits),
      theta_(static_cast<int>(1.93 * history_bits + 14))
{
    if (log_perceptrons < 1 || log_perceptrons > 20)
        fatal("perceptron: bad table size");
    if (history_bits < 1 || history_bits > 64)
        fatal("perceptron: bad history length");
    weights_.assign((size_t{1} << log_perceptrons) *
                        (static_cast<size_t>(history_bits) + 1),
                    0);
}

uint32_t
PerceptronPredictor::indexFor(uint64_t pc) const
{
    return static_cast<uint32_t>(xorFold(pc, logPerceptrons_) &
                                 maskBits(logPerceptrons_));
}

int
PerceptronPredictor::computeSum(uint64_t pc) const
{
    const size_t stride = static_cast<size_t>(historyBits_) + 1;
    const int8_t* w = weights_.data() + indexFor(pc) * stride;
    int sum = w[0]; // bias weight: input is the constant 1
    for (int i = 0; i < historyBits_; ++i) {
        const bool bit = ((history_ >> i) & 1) != 0;
        sum += bit ? w[i + 1] : -w[i + 1];
    }
    return sum;
}

bool
PerceptronPredictor::predict(uint64_t pc)
{
    lastSum_ = computeSum(pc);
    lastAbsSum_ = std::abs(lastSum_);
    return lastSum_ >= 0;
}

void
PerceptronPredictor::update(uint64_t pc, bool taken)
{
    const int sum = computeSum(pc);
    const bool predicted = sum >= 0;

    // Train on a misprediction or when the output is not confident.
    if (predicted != taken || std::abs(sum) <= theta_) {
        const size_t stride = static_cast<size_t>(historyBits_) + 1;
        int8_t* w = weights_.data() + indexFor(pc) * stride;
        // Each weight moves one step toward agreement between the
        // outcome and its input; signedUpdate at 8 bits saturates at
        // the same [-128, 127] rails as the classic clamp.
        auto bump = [taken](int8_t& weight, bool input_taken) {
            weight = static_cast<int8_t>(
                packed::signedUpdate(weight, 8, taken == input_taken));
        };
        bump(w[0], true);
        for (int i = 0; i < historyBits_; ++i)
            bump(w[i + 1], ((history_ >> i) & 1) != 0);
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
}

uint64_t
PerceptronPredictor::storageBits() const
{
    // 8-bit weights, (h + 1) weights per perceptron.
    return (uint64_t{1} << logPerceptrons_) *
           static_cast<uint64_t>(historyBits_ + 1) * 8;
}

void
PerceptronPredictor::saveState(StateWriter& out) const
{
    out.u8(static_cast<uint8_t>(logPerceptrons_));
    out.u8(static_cast<uint8_t>(historyBits_));
    out.bytes(reinterpret_cast<const uint8_t*>(weights_.data()),
              weights_.size());
    out.u64(history_);
}

bool
PerceptronPredictor::loadState(StateReader& in, std::string& error)
{
    const bool geometry_ok =
        in.u8() == static_cast<uint8_t>(logPerceptrons_) &&
        in.u8() == static_cast<uint8_t>(historyBits_);
    if (!in.ok() || !geometry_ok) {
        error = in.ok() ? "perceptron state was written by a predictor "
                          "with a different geometry"
                        : "perceptron state is truncated";
        return false;
    }
    std::vector<int8_t> weights(weights_.size());
    in.bytes(reinterpret_cast<uint8_t*>(weights.data()),
             weights.size());
    const uint64_t history = in.u64();
    if (!in.ok()) {
        error = "perceptron state is truncated";
        return false;
    }
    weights_ = std::move(weights);
    history_ = history;
    lastSum_ = 0;
    lastAbsSum_ = 0;
    return true;
}

} // namespace tagecon
