/**
 * @file
 * The perceptron branch predictor (Jimenez & Lin, HPCA 2001) with its
 * natural self-confidence estimate: a prediction is high confidence
 * when |output sum| exceeds the training threshold (Sec. 2.2 cites
 * this as the storage-free confidence scheme for neural predictors;
 * the same idea was used for O-GEHL).
 */

#ifndef TAGECON_BASELINE_PERCEPTRON_PREDICTOR_HPP
#define TAGECON_BASELINE_PERCEPTRON_PREDICTOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/predictor.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/** Global-history perceptron predictor with self-confidence. */
class PerceptronPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param log_perceptrons log2 of the number of perceptrons.
     * @param history_bits Global history length (weights per
     *        perceptron, excluding the bias weight).
     */
    PerceptronPredictor(int log_perceptrons, int history_bits);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "perceptron"; }
    uint64_t storageBits() const override;

    /**
     * Self-confidence of the last predict(): high when |sum| is above
     * the training threshold theta.
     */
    bool lastHighConfidence() const { return lastAbsSum_ >= theta_; }

    /** Output sum of the last predict() (introspection). */
    int lastSum() const { return lastSum_; }

    /** Training threshold theta = floor(1.93 * h + 14). */
    int theta() const { return theta_; }

    /**
     * Serialize the architectural state (weight arena + history)
     * behind a geometry fingerprint. The last-sum introspection values
     * are predict-transient and not part of the state.
     */
    void saveState(StateWriter& out) const;

    /**
     * Restore state written by saveState(). Returns false with the
     * reason in @p error (leaving the predictor untouched) on
     * truncation or geometry mismatch.
     */
    bool loadState(StateReader& in, std::string& error);

  private:
    uint32_t indexFor(uint64_t pc) const;
    int computeSum(uint64_t pc) const;

    /**
     * Flat weight arena: perceptron p owns the (historyBits_ + 1)
     * int8 weights starting at p * stride, bias first. One byte per
     * weight via the packed::signedUpdate transition at 8 bits —
     * identical saturation behavior to the classic clamp.
     */
    std::vector<int8_t> weights_;
    uint64_t history_ = 0;
    int logPerceptrons_;
    int historyBits_;
    int theta_;
    int lastSum_ = 0;
    int lastAbsSum_ = 0;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_PERCEPTRON_PREDICTOR_HPP
