/**
 * @file
 * The perceptron branch predictor (Jimenez & Lin, HPCA 2001) with its
 * natural self-confidence estimate: a prediction is high confidence
 * when |output sum| exceeds the training threshold (Sec. 2.2 cites
 * this as the storage-free confidence scheme for neural predictors;
 * the same idea was used for O-GEHL).
 */

#ifndef TAGECON_BASELINE_PERCEPTRON_PREDICTOR_HPP
#define TAGECON_BASELINE_PERCEPTRON_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "baseline/predictor.hpp"

namespace tagecon {

/** Global-history perceptron predictor with self-confidence. */
class PerceptronPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param log_perceptrons log2 of the number of perceptrons.
     * @param history_bits Global history length (weights per
     *        perceptron, excluding the bias weight).
     */
    PerceptronPredictor(int log_perceptrons, int history_bits);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "perceptron"; }
    uint64_t storageBits() const override;

    /**
     * Self-confidence of the last predict(): high when |sum| is above
     * the training threshold theta.
     */
    bool lastHighConfidence() const { return lastAbsSum_ >= theta_; }

    /** Output sum of the last predict() (introspection). */
    int lastSum() const { return lastSum_; }

    /** Training threshold theta = floor(1.93 * h + 14). */
    int theta() const { return theta_; }

  private:
    uint32_t indexFor(uint64_t pc) const;
    int computeSum(uint64_t pc) const;

    std::vector<std::vector<int16_t>> weights_; // [perceptron][0..h]
    uint64_t history_ = 0;
    int logPerceptrons_;
    int historyBits_;
    int theta_;
    int lastSum_ = 0;
    int lastAbsSum_ = 0;

    static constexpr int kWeightMax = 127;
    static constexpr int kWeightMin = -128;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_PERCEPTRON_PREDICTOR_HPP
