/**
 * @file
 * Common interface for the pre-TAGE baseline predictors implemented
 * for comparison (Sec. 2 of the paper surveys them).
 */

#ifndef TAGECON_BASELINE_PREDICTOR_HPP
#define TAGECON_BASELINE_PREDICTOR_HPP

#include <cstdint>
#include <string>

namespace tagecon {

/**
 * A conditional branch predictor driven in predict/update pairs, like
 * TagePredictor but with the minimal architectural interface.
 */
class ConditionalPredictor
{
  public:
    virtual ~ConditionalPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(uint64_t pc) = 0;

    /**
     * Train with the resolved outcome. Must follow the matching
     * predict(pc) call.
     */
    virtual void update(uint64_t pc, bool taken) = 0;

    /** Display name of the predictor. */
    virtual std::string name() const = 0;

    /** Total predictor storage in bits. */
    virtual uint64_t storageBits() const = 0;
};

} // namespace tagecon

#endif // TAGECON_BASELINE_PREDICTOR_HPP
