#include "core/adaptive_probability.hpp"

#include "util/logging.hpp"

namespace tagecon {

AdaptiveProbabilityController::AdaptiveProbabilityController()
    : AdaptiveProbabilityController(Config{})
{
}

AdaptiveProbabilityController::AdaptiveProbabilityController(Config cfg)
    : cfg_(cfg), log2Prob_(cfg.initialLog2)
{
    if (cfg_.minLog2 > cfg_.maxLog2)
        fatal("adaptive controller: minLog2 > maxLog2");
    if (cfg_.initialLog2 < cfg_.minLog2 || cfg_.initialLog2 > cfg_.maxLog2)
        fatal("adaptive controller: initialLog2 outside [min, max]");
    if (cfg_.epochLength == 0)
        fatal("adaptive controller: epochLength must be > 0");
    if (cfg_.targetMkp <= 0.0)
        fatal("adaptive controller: targetMkp must be positive");
}

bool
AdaptiveProbabilityController::record(ConfidenceLevel level,
                                      bool mispredicted)
{
    ++seen_;
    if (level == ConfidenceLevel::High) {
        ++highPred_;
        if (mispredicted)
            ++highMiss_;
    }
    if (seen_ >= cfg_.epochLength) {
        closeEpoch();
        return true;
    }
    return false;
}

void
AdaptiveProbabilityController::closeEpoch()
{
    // With no high-confidence predictions this epoch there is nothing
    // to measure; hold the probability.
    if (highPred_ > 0) {
        const double mkp = static_cast<double>(highMiss_) /
                           static_cast<double>(highPred_) * 1000.0;
        if (mkp > cfg_.targetMkp && log2Prob_ < cfg_.maxLog2) {
            // Too many mispredictions sneak into the high class: make
            // saturation rarer (halve p).
            ++log2Prob_;
        } else if (mkp < cfg_.targetMkp * cfg_.relaxFraction &&
                   log2Prob_ > cfg_.minLog2) {
            // Comfortably under target: grow coverage (double p).
            --log2Prob_;
        }
    }
    seen_ = 0;
    highPred_ = 0;
    highMiss_ = 0;
    ++epochs_;
}

void
AdaptiveProbabilityController::reset()
{
    log2Prob_ = cfg_.initialLog2;
    seen_ = 0;
    highPred_ = 0;
    highMiss_ = 0;
    epochs_ = 0;
}

void
AdaptiveProbabilityController::saveState(StateWriter& out) const
{
    out.u32(log2Prob_);
    out.u64(seen_);
    out.u64(highPred_);
    out.u64(highMiss_);
    out.u64(epochs_);
}

bool
AdaptiveProbabilityController::loadState(StateReader& in,
                                         std::string& error)
{
    const uint32_t log2_prob = in.u32();
    const uint64_t seen = in.u64();
    const uint64_t high_pred = in.u64();
    const uint64_t high_miss = in.u64();
    const uint64_t epochs = in.u64();
    if (!in.ok()) {
        reset();
        error = "adaptive controller state is truncated";
        return false;
    }
    if (log2_prob < cfg_.minLog2 || log2_prob > cfg_.maxLog2) {
        reset();
        error = "adaptive controller state carries log2(1/p) outside "
                "the configured [min, max] range";
        return false;
    }
    log2Prob_ = log2_prob;
    seen_ = seen;
    highPred_ = high_pred;
    highMiss_ = high_miss;
    epochs_ = epochs;
    return true;
}

} // namespace tagecon
