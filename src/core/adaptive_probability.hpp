/**
 * @file
 * The adaptive saturation-probability controller of Sec. 6.2: vary the
 * probabilistic-saturation probability p in {1/1024 .. 1} by factors
 * of 2 to maximize high-confidence coverage while keeping the measured
 * misprediction rate of the high-confidence class under a target
 * (10 MKP in the paper).
 */

#ifndef TAGECON_CORE_ADAPTIVE_PROBABILITY_HPP
#define TAGECON_CORE_ADAPTIVE_PROBABILITY_HPP

#include <cstdint>
#include <string>

#include "core/prediction_class.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/**
 * Epoch-based feedback controller. Feed it every resolved
 * high/medium/low graded prediction; at each epoch boundary it moves
 * log2(1/p) one step toward the target and reports the new value
 * through log2Prob() so the caller can push it into the predictor.
 */
class AdaptiveProbabilityController
{
  public:
    struct Config {
        /** Smallest log2(1/p); 0 means p = 1 (always saturate). */
        unsigned minLog2 = 0;

        /** Largest log2(1/p); 10 means p = 1/1024. */
        unsigned maxLog2 = 10;

        /** Starting log2(1/p); 7 means p = 1/128. */
        unsigned initialLog2 = 7;

        /** Target misprediction rate on the high class, in MKP. */
        double targetMkp = 10.0;

        /**
         * Hysteresis: only lower the selectivity (grow coverage) when
         * the measured rate is below target * relaxFraction.
         */
        double relaxFraction = 0.5;

        /** Predictions per adaptation epoch. */
        uint64_t epochLength = 65536;
    };

    /** Build with the paper's defaults (p0 = 1/128, target 10 MKP). */
    AdaptiveProbabilityController();

    explicit AdaptiveProbabilityController(Config cfg);

    /**
     * Record one resolved graded prediction. Returns true when this
     * call closed an epoch (log2Prob() may have changed).
     */
    bool record(ConfidenceLevel level, bool mispredicted);

    /** Current log2 of the inverse saturation probability. */
    unsigned log2Prob() const { return log2Prob_; }

    /** Controller configuration. */
    const Config& config() const { return cfg_; }

    /** Epochs completed so far. */
    uint64_t epochs() const { return epochs_; }

    /** High-class predictions in the current (open) epoch. */
    uint64_t epochHighPredictions() const { return highPred_; }

    /** Reset measurement state and return to the initial probability. */
    void reset();

    /** Serialize the dynamic state (config comes from construction). */
    void saveState(StateWriter& out) const;

    /**
     * Restore state written by saveState() on an identically-configured
     * controller. Returns false (leaving the controller reset()) when
     * the blob is truncated or carries an out-of-range probability.
     */
    bool loadState(StateReader& in, std::string& error);

  private:
    void closeEpoch();

    Config cfg_;
    unsigned log2Prob_;
    uint64_t seen_ = 0;
    uint64_t highPred_ = 0;
    uint64_t highMiss_ = 0;
    uint64_t epochs_ = 0;
};

} // namespace tagecon

#endif // TAGECON_CORE_ADAPTIVE_PROBABILITY_HPP
