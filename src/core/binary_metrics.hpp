/**
 * @file
 * The binary confidence-estimator quality metrics of Grunwald et al.
 * (ISCA 1998), recalled in Sec. 2.2 / Sec. 4 of the paper: SENS, PVP,
 * SPEC and PVN. They apply to any estimator that splits predictions
 * into high-confidence vs. low-confidence; the comparison bench uses
 * them to pit the storage-free estimator against the JRS baseline.
 */

#ifndef TAGECON_CORE_BINARY_METRICS_HPP
#define TAGECON_CORE_BINARY_METRICS_HPP

#include <cstdint>

namespace tagecon {

/**
 * 2x2 confusion accumulator between (high/low confidence) and
 * (correct/incorrect prediction).
 */
class BinaryConfidenceMetrics
{
  public:
    /** Record one resolved prediction with its binary confidence. */
    void
    record(bool high_confidence, bool correct)
    {
        if (high_confidence) {
            if (correct)
                ++highCorrect_;
            else
                ++highWrong_;
        } else {
            if (correct)
                ++lowCorrect_;
            else
                ++lowWrong_;
        }
    }

    /** Merge another accumulator into this one. */
    void
    merge(const BinaryConfidenceMetrics& o)
    {
        highCorrect_ += o.highCorrect_;
        highWrong_ += o.highWrong_;
        lowCorrect_ += o.lowCorrect_;
        lowWrong_ += o.lowWrong_;
    }

    /** Sensitivity: fraction of correct predictions graded high. */
    double
    sens() const
    {
        return ratio(highCorrect_, highCorrect_ + lowCorrect_);
    }

    /** Predictive value of a positive test: P(correct | high). */
    double
    pvp() const
    {
        return ratio(highCorrect_, highCorrect_ + highWrong_);
    }

    /** Specificity: fraction of incorrect predictions graded low. */
    double
    spec() const
    {
        return ratio(lowWrong_, lowWrong_ + highWrong_);
    }

    /** Predictive value of a negative test: P(incorrect | low). */
    double
    pvn() const
    {
        return ratio(lowWrong_, lowWrong_ + lowCorrect_);
    }

    /** Fraction of all predictions graded high confidence. */
    double
    highCoverage() const
    {
        return ratio(highCorrect_ + highWrong_, total());
    }

    /** Total recorded predictions. */
    uint64_t
    total() const
    {
        return highCorrect_ + highWrong_ + lowCorrect_ + lowWrong_;
    }

    uint64_t highCorrect() const { return highCorrect_; }
    uint64_t highWrong() const { return highWrong_; }
    uint64_t lowCorrect() const { return lowCorrect_; }
    uint64_t lowWrong() const { return lowWrong_; }

  private:
    static double
    ratio(uint64_t num, uint64_t den)
    {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    }

    uint64_t highCorrect_ = 0;
    uint64_t highWrong_ = 0;
    uint64_t lowCorrect_ = 0;
    uint64_t lowWrong_ = 0;
};

} // namespace tagecon

#endif // TAGECON_CORE_BINARY_METRICS_HPP
