#include "core/class_stats.hpp"

namespace tagecon {

namespace {

double
safeDiv(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

uint64_t
ClassStats::predictions(ConfidenceLevel l) const
{
    uint64_t n = 0;
    for (const auto c : kAllPredictionClasses) {
        if (confidenceLevel(c) == l)
            n += predictions(c);
    }
    return n;
}

uint64_t
ClassStats::mispredictions(ConfidenceLevel l) const
{
    uint64_t n = 0;
    for (const auto c : kAllPredictionClasses) {
        if (confidenceLevel(c) == l)
            n += mispredictions(c);
    }
    return n;
}

double
ClassStats::pcov(PredictionClass c) const
{
    return safeDiv(predictions(c), totalPredictions());
}

double
ClassStats::mpcov(PredictionClass c) const
{
    return safeDiv(mispredictions(c), totalMispredictions());
}

double
ClassStats::mprateMkp(PredictionClass c) const
{
    return safeDiv(mispredictions(c), predictions(c)) * 1000.0;
}

double
ClassStats::pcov(ConfidenceLevel l) const
{
    return safeDiv(predictions(l), totalPredictions());
}

double
ClassStats::mpcov(ConfidenceLevel l) const
{
    return safeDiv(mispredictions(l), totalMispredictions());
}

double
ClassStats::mprateMkp(ConfidenceLevel l) const
{
    return safeDiv(mispredictions(l), predictions(l)) * 1000.0;
}

double
ClassStats::totalMkp() const
{
    return safeDiv(totalMispredictions(), totalPredictions()) * 1000.0;
}

double
ClassStats::mpki() const
{
    return safeDiv(totalMispredictions(), instructions_) * 1000.0;
}

double
ClassStats::mpkiContribution(PredictionClass c) const
{
    return safeDiv(mispredictions(c), instructions_) * 1000.0;
}

} // namespace tagecon
