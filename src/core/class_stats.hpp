/**
 * @file
 * Per-class prediction statistics in the metrics the paper uses
 * (Sec. 4, "Confidence metrics"): prediction coverage Pcov,
 * misprediction coverage MPcov and misprediction rate MPrate in
 * mispredictions per kilo-prediction (MKP), plus whole-trace MPKI.
 */

#ifndef TAGECON_CORE_CLASS_STATS_HPP
#define TAGECON_CORE_CLASS_STATS_HPP

#include <array>
#include <cstdint>

#include "core/prediction_class.hpp"

namespace tagecon {

/**
 * Accumulates predictions and mispredictions per confidence class and
 * per confidence level, and instruction counts for MPKI.
 */
class ClassStats
{
  public:
    /**
     * Record one graded, resolved prediction.
     * @param c Class the prediction was graded into at predict time.
     * @param mispredicted True when the prediction was wrong.
     * @param instructions Instructions retired by this record
     *        (non-branch instructions preceding the branch + 1).
     */
    void
    record(PredictionClass c, bool mispredicted, uint64_t instructions)
    {
        const size_t ci = classIndex(c);
        ++classPredictions_[ci];
        if (mispredicted)
            ++classMispredictions_[ci];
        instructions_ += instructions;
    }

    /** Merge another accumulator into this one. */
    void
    merge(const ClassStats& other)
    {
        for (size_t i = 0; i < kNumPredictionClasses; ++i) {
            classPredictions_[i] += other.classPredictions_[i];
            classMispredictions_[i] += other.classMispredictions_[i];
        }
        instructions_ += other.instructions_;
    }

    /** Total predictions across all classes. */
    uint64_t
    totalPredictions() const
    {
        uint64_t n = 0;
        for (const auto v : classPredictions_)
            n += v;
        return n;
    }

    /** Total mispredictions across all classes. */
    uint64_t
    totalMispredictions() const
    {
        uint64_t n = 0;
        for (const auto v : classMispredictions_)
            n += v;
        return n;
    }

    /** Total instructions (for MPKI). */
    uint64_t instructions() const { return instructions_; }

    /** Predictions graded into class @p c. */
    uint64_t
    predictions(PredictionClass c) const
    {
        return classPredictions_[classIndex(c)];
    }

    /** Mispredictions graded into class @p c. */
    uint64_t
    mispredictions(PredictionClass c) const
    {
        return classMispredictions_[classIndex(c)];
    }

    /** Predictions graded into level @p l (sum over its classes). */
    uint64_t predictions(ConfidenceLevel l) const;

    /** Mispredictions graded into level @p l. */
    uint64_t mispredictions(ConfidenceLevel l) const;

    /** Pcov: fraction of all predictions that fall in class @p c. */
    double pcov(PredictionClass c) const;

    /** MPcov: fraction of all mispredictions that fall in class @p c. */
    double mpcov(PredictionClass c) const;

    /** MPrate of class @p c in mispredictions per kilo-prediction. */
    double mprateMkp(PredictionClass c) const;

    /** Pcov of a confidence level. */
    double pcov(ConfidenceLevel l) const;

    /** MPcov of a confidence level. */
    double mpcov(ConfidenceLevel l) const;

    /** MPrate of a confidence level in MKP. */
    double mprateMkp(ConfidenceLevel l) const;

    /** Whole-stream misprediction rate in MKP. */
    double totalMkp() const;

    /** Whole-stream mispredictions per kilo-instruction. */
    double mpki() const;

    /**
     * Per-class contribution to MPKI (the stacked bars on the right of
     * the paper's Figures 2/3/5).
     */
    double mpkiContribution(PredictionClass c) const;

  private:
    std::array<uint64_t, kNumPredictionClasses> classPredictions_{};
    std::array<uint64_t, kNumPredictionClasses> classMispredictions_{};
    uint64_t instructions_ = 0;
};

} // namespace tagecon

#endif // TAGECON_CORE_CLASS_STATS_HPP
