/**
 * @file
 * The storage-free confidence estimator — the paper's contribution.
 *
 * Classification needs nothing but the TagePrediction the predictor
 * already produced, plus an 'age since the last bimodal-provided
 * misprediction' micro-counter (a handful of bits of state, no table):
 *
 *  - tagged provider: class by counter strength |2*ctr+1|
 *      1 -> Wtag, 3 -> NWtag, saturated -> Stag, otherwise NStag
 *    (for the 3-bit counters of the paper this is exactly 1/3/5/7);
 *  - bimodal provider: weak counter -> low-conf-bim; within the
 *    post-misprediction burst window -> medium-conf-bim (warming /
 *    capacity bursts, Sec. 5.1.2); otherwise high-conf-bim.
 */

#ifndef TAGECON_CORE_CONFIDENCE_OBSERVER_HPP
#define TAGECON_CORE_CONFIDENCE_OBSERVER_HPP

#include <cstdint>

#include "core/prediction_class.hpp"
#include "tage/tage_prediction.hpp"

namespace tagecon {

/**
 * Grades TAGE predictions into the paper's 7 classes. Call classify()
 * at prediction time, then onResolve() once the branch outcome is
 * known (the burst window tracking needs it).
 */
class ConfidenceObserver
{
  public:
    /**
     * @param bim_window Number of BIM-provided predictions after a
     *        BIM-provided misprediction that are graded
     *        medium-conf-bim; the paper uses "up to 8 branches".
     */
    explicit ConfidenceObserver(int bim_window = 8)
        : window_(bim_window),
          sinceBimMiss_(bim_window) // start outside the burst window
    {
    }

    /** Grade a prediction using only the predictor's outputs. */
    PredictionClass
    classify(const TagePrediction& p) const
    {
        if (p.providerIsTagged) {
            if (p.providerSaturated)
                return PredictionClass::Stag;
            if (p.providerStrength == 1)
                return PredictionClass::Wtag;
            if (p.providerStrength == 3)
                return PredictionClass::NWtag;
            return PredictionClass::NStag;
        }
        if (p.bimodalWeak)
            return PredictionClass::LowConfBim;
        if (sinceBimMiss_ < window_)
            return PredictionClass::MediumConfBim;
        return PredictionClass::HighConfBim;
    }

    /** Grade and map to the 3-level split of Sec. 6.1. */
    ConfidenceLevel
    classifyLevel(const TagePrediction& p) const
    {
        return confidenceLevel(classify(p));
    }

    /**
     * Observe the resolved outcome; advances the BIM burst window.
     * Must be called once per classified prediction, in order.
     */
    void
    onResolve(const TagePrediction& p, bool taken)
    {
        if (p.providerIsTagged)
            return;
        if (p.taken != taken) {
            sinceBimMiss_ = 0;
        } else if (sinceBimMiss_ < window_) {
            ++sinceBimMiss_;
        }
    }

    /** The configured burst window length. */
    int window() const { return window_; }

    /** BIM predictions seen since the last BIM misprediction
     *  (saturates at window()). */
    int sinceBimMiss() const { return sinceBimMiss_; }

    /** Forget any burst in progress. */
    void reset() { sinceBimMiss_ = window_; }

    /**
     * Overwrite the burst counter with a checkpointed value, clamped
     * to its reachable range [0, window()].
     */
    void
    restoreSinceBimMiss(int v)
    {
        sinceBimMiss_ = v < 0 ? 0 : (v > window_ ? window_ : v);
    }

  private:
    int window_;
    int sinceBimMiss_;
};

} // namespace tagecon

#endif // TAGECON_CORE_CONFIDENCE_OBSERVER_HPP
