/**
 * @file
 * Convenience facade bundling the pieces of the paper into a single
 * object: a TAGE predictor, the storage-free confidence observer and
 * (optionally) the Sec. 6.2 adaptive saturation-probability
 * controller, driven through one predict/update pair.
 *
 * Use the individual classes (TagePredictor, ConfidenceObserver,
 * AdaptiveProbabilityController) when you need to wire them into an
 * existing pipeline model; use this facade when you just want graded
 * predictions.
 *
 * For code that should work with *any* predictor family — or be
 * constructed from a spec string — prefer the unified GradedPredictor
 * API (core/graded_predictor.hpp) and its TAGE adapter GradedTage
 * (tage/graded_tage.hpp, makePredictor("tage64k+prob7+sfc")); this
 * facade predates it and keeps the TAGE-specific result type.
 */

#ifndef TAGECON_CORE_CONFIDENT_TAGE_HPP
#define TAGECON_CORE_CONFIDENT_TAGE_HPP

#include <optional>

#include "core/adaptive_probability.hpp"
#include "core/class_stats.hpp"
#include "core/confidence_observer.hpp"
#include "tage/tage_predictor.hpp"
#include "util/logging.hpp"

namespace tagecon {

/** A TAGE prediction together with its storage-free confidence grade. */
struct GradedPrediction {
    /** Predicted direction. */
    bool taken = false;

    /** One of the paper's 7 observation classes. */
    PredictionClass cls = PredictionClass::HighConfBim;

    /** The Sec. 6.1 three-level grade. */
    ConfidenceLevel level = ConfidenceLevel::High;

    /** The raw prediction (for consumers needing the internals). */
    TagePrediction raw;
};

/**
 * TAGE + storage-free confidence in one object.
 *
 *   ConfidentTagePredictor ctp(
 *       TageConfig::medium64K().withProbabilisticSaturation(7));
 *   GradedPrediction g = ctp.predict(pc);
 *   ... speculate according to g.level ...
 *   ctp.update(pc, g, actual_taken);
 */
class ConfidentTagePredictor
{
  public:
    /**
     * @param config Predictor configuration (enable
     *        probabilisticSaturation for the paper's 3-level split).
     * @param bim_window medium-conf-bim burst window (Sec. 5.1.2).
     */
    explicit ConfidentTagePredictor(TageConfig config, int bim_window = 8)
        : predictor_(std::move(config)), observer_(bim_window)
    {
    }

    /**
     * Attach the Sec. 6.2 adaptive controller; requires the config to
     * enable probabilisticSaturation. fatal() otherwise.
     */
    void
    enableAdaptiveProbability(
        AdaptiveProbabilityController::Config cfg = {})
    {
        if (!predictor_.config().probabilisticSaturation)
            fatal("adaptive probability requires a config with "
                  "probabilisticSaturation enabled");
        controller_.emplace(cfg);
        predictor_.setSatLog2Prob(controller_->log2Prob());
    }

    /** Predict and grade the branch at @p pc. */
    GradedPrediction
    predict(uint64_t pc) const
    {
        GradedPrediction g;
        g.raw = predictor_.predict(pc);
        g.taken = g.raw.taken;
        g.cls = observer_.classify(g.raw);
        g.level = confidenceLevel(g.cls);
        return g;
    }

    /**
     * Train with the resolved outcome; @p g must come from the
     * immediately preceding predict(pc). Also feeds the statistics
     * accumulator and, when attached, the adaptive controller.
     */
    void
    update(uint64_t pc, const GradedPrediction& g, bool taken,
           uint64_t instructions = 1)
    {
        const bool mispredicted = g.taken != taken;
        stats_.record(g.cls, mispredicted, instructions);
        observer_.onResolve(g.raw, taken);
        if (controller_ &&
            controller_->record(g.level, mispredicted)) {
            predictor_.setSatLog2Prob(controller_->log2Prob());
        }
        predictor_.update(pc, g.raw, taken);
    }

    /** Lifetime per-class statistics. */
    const ClassStats& stats() const { return stats_; }

    /** The underlying predictor (read-only). */
    const TagePredictor& predictor() const { return predictor_; }

    /** The burst-window observer (read-only). */
    const ConfidenceObserver& observer() const { return observer_; }

    /** The adaptive controller, when attached. */
    const std::optional<AdaptiveProbabilityController>&
    controller() const
    {
        return controller_;
    }

    /** Total predictor storage in bits (confidence adds none). */
    uint64_t storageBits() const { return predictor_.storageBits(); }

    /** Reset predictor, observer, controller and statistics. */
    void
    reset()
    {
        predictor_.reset();
        observer_.reset();
        stats_ = ClassStats{};
        if (controller_) {
            controller_->reset();
            predictor_.setSatLog2Prob(controller_->log2Prob());
        }
    }

  private:
    TagePredictor predictor_;
    ConfidenceObserver observer_;
    ClassStats stats_;
    std::optional<AdaptiveProbabilityController> controller_;
};

} // namespace tagecon

#endif // TAGECON_CORE_CONFIDENT_TAGE_HPP
