/**
 * @file
 * The ConfidenceEstimator family: every way this repository knows to
 * grade a prediction, as decorators attachable to any GradedPredictor.
 *
 *  - IntrinsicEstimator ("sfc"/"self"): trusts the grade the host
 *    predictor derived from its own state — the paper's storage-free
 *    scheme on TAGE, |sum| >= theta self-confidence on neural
 *    predictors, Smith counter strength on bimodal. Zero storage.
 *  - JrsEstimator ("jrs"/"jrsg"): the storage-based JRS resetting
 *    counter table (MICRO 1996), optionally with Grunwald et al.'s
 *    prediction-indexed refinement — the baseline the paper's
 *    storage-free scheme is pitted against.
 *  - BlindEstimator ("blind"): grades everything high confidence; the
 *    confidence-oblivious control row in comparisons.
 */

#ifndef TAGECON_CORE_ESTIMATORS_HPP
#define TAGECON_CORE_ESTIMATORS_HPP

#include "baseline/jrs_estimator.hpp"
#include "core/graded_predictor.hpp"

namespace tagecon {

/**
 * Pass-through estimator: the host's intrinsic (storage-free / self)
 * confidence is the grade. Only attachable to hosts with
 * hasIntrinsicConfidence() — the registry enforces that.
 */
class IntrinsicEstimator : public ConfidenceEstimator
{
  public:
    ConfidenceLevel
    grade(uint64_t /*pc*/, const Prediction& p) override
    {
        return p.confidence;
    }

    void
    onResolve(uint64_t /*pc*/, const Prediction& /*p*/,
              bool /*taken*/) override
    {
    }

    /** The host's 7-class breakdown stays valid under this grade. */
    bool preservesHostClasses() const override { return true; }

    std::string name() const override { return "sfc"; }

    /** The whole point: the grade costs no storage. */
    uint64_t storageBits() const override { return 0; }

    void reset() override {}
};

/**
 * The JRS resetting-counter estimator as a decorator. High confidence
 * iff the gshare-indexed counter is at threshold; counters are
 * incremented on correct predictions and reset on mispredictions.
 */
class JrsEstimator : public ConfidenceEstimator
{
  public:
    /** Classic configuration: 4-bit counters, threshold 15. */
    JrsEstimator() = default;

    explicit JrsEstimator(JrsConfidenceEstimator::Config cfg)
        : inner_(cfg)
    {
    }

    ConfidenceLevel
    grade(uint64_t pc, const Prediction& p) override
    {
        return inner_.query(pc, p.taken) ? ConfidenceLevel::High
                                         : ConfidenceLevel::Low;
    }

    void
    onResolve(uint64_t pc, const Prediction& p, bool taken) override
    {
        inner_.record(pc, p.taken, p.taken == taken, taken);
    }

    std::string
    name() const override
    {
        return inner_.config().indexWithPrediction ? "jrsg" : "jrs";
    }

    uint64_t storageBits() const override { return inner_.storageBits(); }

    void
    reset() override
    {
        inner_ = JrsConfidenceEstimator(inner_.config());
    }

    /** The wrapped table (introspection / tests). */
    const JrsConfidenceEstimator& inner() const { return inner_; }

  private:
    JrsConfidenceEstimator inner_;
};

/** Grades every prediction high confidence (the blind control). */
class BlindEstimator : public ConfidenceEstimator
{
  public:
    ConfidenceLevel
    grade(uint64_t /*pc*/, const Prediction& /*p*/) override
    {
        return ConfidenceLevel::High;
    }

    void
    onResolve(uint64_t /*pc*/, const Prediction& /*p*/,
              bool /*taken*/) override
    {
    }

    std::string name() const override { return "blind"; }

    uint64_t storageBits() const override { return 0; }

    void reset() override {}
};

} // namespace tagecon

#endif // TAGECON_CORE_ESTIMATORS_HPP
