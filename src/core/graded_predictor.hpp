/**
 * @file
 * The unified graded-prediction API every predictor family in this
 * repository implements.
 *
 * The paper's thesis is that confidence can be read off a predictor's
 * existing state for free; this interface makes that a first-class
 * property of *any* predictor: predict() returns a Prediction carrying
 * both the architectural answer (taken) and a confidence grade, and
 * confidence estimators are decorators (EstimatedPredictor) that can
 * be stacked on any host — the storage-free observer on TAGE, JRS
 * counter tables on gshare, self-confidence on neural predictors, or
 * nothing at all.
 *
 * Concrete predictors live next to their families:
 *  - tage/graded_tage.hpp        TAGE and L-TAGE (storage-free classes)
 *  - baseline/graded_baselines.hpp  gshare, bimodal, perceptron, O-GEHL
 *  - core/estimators.hpp         the ConfidenceEstimator family
 * and are usually constructed through the string-spec registry
 * (sim/registry.hpp): makePredictor("tage64k+prob7+sfc").
 */

#ifndef TAGECON_CORE_GRADED_PREDICTOR_HPP
#define TAGECON_CORE_GRADED_PREDICTOR_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "core/prediction_class.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/**
 * One graded prediction: the architectural direction plus the
 * confidence grade attached to it, and an opaque payload slot the
 * producing predictor may use to route lookup state to the paired
 * update() call.
 */
struct Prediction {
    /** Predicted direction, delivered to the front end. */
    bool taken = false;

    /** The 3-level confidence grade (Sec. 6.1 split for TAGE). */
    ConfidenceLevel confidence = ConfidenceLevel::High;

    /**
     * The 7-class storage-free grade when the predictor can produce it
     * (TAGE family); representativeClass(confidence) otherwise, so the
     * class is always consistent with the level.
     */
    PredictionClass cls = PredictionClass::HighConfBim;

    /**
     * Opaque, predictor-owned slot. Consumers must pass it back
     * unchanged in update(); they must not interpret it.
     */
    uint64_t payload = 0;
};

/**
 * A conditional branch predictor whose predictions are graded with
 * confidence. Drive it in strictly alternating predict/update pairs
 * per branch:
 *
 *   Prediction p = predictor.predict(pc);
 *   ... consume p.taken, speculate according to p.confidence ...
 *   predictor.update(pc, p, actual_taken);
 *
 * All six predictor families (TAGE, L-TAGE, gshare, bimodal,
 * perceptron, O-GEHL) implement this interface, which is what lets
 * sim/experiment.hpp drive arbitrary predictor x estimator x workload
 * combinations through one generic loop.
 */
class GradedPredictor
{
  public:
    virtual ~GradedPredictor() = default;

    /** Predict and grade the branch at @p pc. */
    virtual Prediction predict(uint64_t pc) = 0;

    /**
     * Train with the resolved outcome. @p p must be the Prediction
     * returned by the immediately preceding predict(pc).
     */
    virtual void update(uint64_t pc, const Prediction& p, bool taken) = 0;

    /**
     * True when predictMany() is a genuinely batched implementation
     * rather than the scalar fallback loop. Callers may route through
     * predictMany() unconditionally — the fallback is bit-identical —
     * so this only informs reporting and gating decisions.
     */
    virtual bool hasBatchedPredict() const { return false; }

    /**
     * Fused batched step over a batch of resolved branches: for each
     * element k, out[k] receives the Prediction the scalar
     * predict(pcs[k]) would have produced at that point, and the
     * predictor trains with taken[k] (nonzero = taken). The contract
     * is bit-identity with the scalar predict/update loop — including
     * predictions inside the batch observing earlier elements'
     * training. Trace replay and the serving engine drive this;
     * batched implementations (the TAGE family) precompute and
     * prefetch the whole batch's table accesses first.
     */
    virtual void
    predictMany(std::span<const uint64_t> pcs,
                std::span<const uint8_t> taken, std::span<Prediction> out)
    {
        for (size_t k = 0; k < pcs.size(); ++k) {
            out[k] = predict(pcs[k]);
            update(pcs[k], out[k], taken[k] != 0);
        }
    }

    /**
     * Batched replay training: update(pcs[k], preds[k], taken[k]) for
     * every element, prefetched where the family supports it. Only
     * valid where the equivalent scalar update() sequence would be —
     * families that route per-lookup state through Prediction::payload
     * still require each update to follow its own predict.
     */
    virtual void
    updateMany(std::span<const uint64_t> pcs,
               std::span<const Prediction> preds,
               std::span<const uint8_t> taken)
    {
        for (size_t k = 0; k < pcs.size(); ++k)
            update(pcs[k], preds[k], taken[k] != 0);
    }

    /** Total storage in bits, including any attached estimator. */
    virtual uint64_t storageBits() const = 0;

    /** Reset all state to post-construction values. */
    virtual void reset() = 0;

    /**
     * True when predict() fills the confidence grade from the
     * predictor's own state (storage-free / self confidence) rather
     * than defaulting it. Estimator specs like "+sfc" require this.
     */
    virtual bool hasIntrinsicConfidence() const { return false; }

    /**
     * Tagged-entry allocations performed so far; 0 for predictors
     * without an allocation mechanism. Surfaced in RunResult.
     */
    virtual uint64_t allocations() const { return 0; }

    /**
     * Current log2(1/p) of the probabilistic-saturation automaton;
     * 0 when the predictor has none. Surfaced in RunResult.
     */
    virtual unsigned satLog2Prob() const { return 0; }

    /**
     * Serialize the complete architectural state into @p out so a
     * restore()d predictor continues bit-identically to one that never
     * stopped. Families without serialization support (the default)
     * return false with a clear reason in @p error; supporting
     * families embed a geometry fingerprint so restore() can reject a
     * blob from a differently-configured predictor. Checkpoint framing
     * (magic/version/digest) is layered on top by serve/checkpoint.hpp.
     */
    virtual bool
    snapshot(StateWriter& out, std::string& error) const
    {
        (void)out;
        error = name() + ": checkpoint/restore is not supported for "
                         "this predictor family";
        return false;
    }

    /**
     * Replace the predictor's state with one written by snapshot() on
     * an identically-configured instance. On failure (geometry
     * mismatch, truncated or corrupt payload, unsupported family) the
     * predictor is left reset() and false is returned with the reason
     * in @p error.
     */
    virtual bool
    restore(StateReader& in, std::string& error)
    {
        (void)in;
        error = name() + ": checkpoint/restore is not supported for "
                         "this predictor family";
        return false;
    }

    /**
     * Display name: the registry spec when built via makePredictor(),
     * the family default otherwise.
     */
    std::string
    name() const
    {
        return displayName_.empty() ? defaultName() : displayName_;
    }

    /** Override the display name (the registry stamps the spec here). */
    void setName(std::string name) { displayName_ = std::move(name); }

  protected:
    /** Family name used when no display name was stamped. */
    virtual std::string defaultName() const = 0;

  private:
    std::string displayName_;
};

/**
 * A confidence estimator attachable to any GradedPredictor via
 * EstimatedPredictor. grade() is consulted once per prediction,
 * onResolve() once per resolved branch, in order.
 */
class ConfidenceEstimator
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /** Grade the prediction the host just produced for @p pc. */
    virtual ConfidenceLevel grade(uint64_t pc, const Prediction& p) = 0;

    /** Observe the resolved branch (training, history advance). */
    virtual void onResolve(uint64_t pc, const Prediction& p,
                           bool taken) = 0;

    /**
     * True when grade() returns the host's own grade unchanged, so
     * the host's detailed class labels (the 7 TAGE classes) remain
     * valid alongside it. False for independent estimators, whose
     * grades say nothing about the host's class breakdown.
     */
    virtual bool preservesHostClasses() const { return false; }

    /** Estimator name, appended to the host name ("jrs", "sfc"...). */
    virtual std::string name() const = 0;

    /** Extra storage the estimator costs, in bits (0 = storage-free). */
    virtual uint64_t storageBits() const = 0;

    /** Reset estimator state. */
    virtual void reset() = 0;
};

/**
 * Decorator composing a host predictor with a confidence estimator:
 * predictions come from the host, the grade from the estimator. The
 * result is itself a GradedPredictor, so estimators stack.
 */
class EstimatedPredictor : public GradedPredictor
{
  public:
    EstimatedPredictor(std::unique_ptr<GradedPredictor> host,
                       std::unique_ptr<ConfidenceEstimator> estimator)
        : host_(std::move(host)), estimator_(std::move(estimator))
    {
    }

    Prediction
    predict(uint64_t pc) override
    {
        Prediction p = host_->predict(pc);
        const ConfidenceLevel graded = estimator_->grade(pc, p);
        // An independent estimator replaces both the level and the
        // class: keeping the host's detailed classes next to a foreign
        // level would make the per-class statistics describe neither
        // grading scheme.
        if (!estimator_->preservesHostClasses()) {
            p.confidence = graded;
            p.cls = representativeClass(graded);
        }
        return p;
    }

    void
    update(uint64_t pc, const Prediction& p, bool taken) override
    {
        estimator_->onResolve(pc, p, taken);
        host_->update(pc, p, taken);
    }

    /**
     * A transparent estimator — one that preserves the host's classes
     * and keeps no state of its own ("+sfc") — returns every grade
     * unchanged and has nothing to train, so the batched step can
     * delegate to the host wholesale and stay bit-identical. Any other
     * estimator must interleave grade()/onResolve() per element, which
     * is exactly the scalar fallback loop.
     */
    bool
    hasBatchedPredict() const override
    {
        return transparentEstimator() && host_->hasBatchedPredict();
    }

    void
    predictMany(std::span<const uint64_t> pcs,
                std::span<const uint8_t> taken,
                std::span<Prediction> out) override
    {
        if (transparentEstimator()) {
            host_->predictMany(pcs, taken, out);
            return;
        }
        GradedPredictor::predictMany(pcs, taken, out);
    }

    uint64_t
    storageBits() const override
    {
        return host_->storageBits() + estimator_->storageBits();
    }

    void
    reset() override
    {
        host_->reset();
        estimator_->reset();
    }

    /** The estimator fully determines the grade. */
    bool hasIntrinsicConfidence() const override { return true; }

    uint64_t allocations() const override { return host_->allocations(); }

    unsigned satLog2Prob() const override { return host_->satLog2Prob(); }

    /**
     * Stateless estimators (sfc/self/blind: storage-free, nothing to
     * reset) delegate straight to the host, so "tage64k+sfc" style
     * specs checkpoint exactly like their host. A stateful estimator
     * (JRS counter tables) would need its own serialization; until one
     * grows it, such stacks are rejected with a clear error.
     */
    bool
    snapshot(StateWriter& out, std::string& error) const override
    {
        if (estimator_->storageBits() != 0) {
            error = name() + ": checkpoint/restore is not supported "
                             "with the stateful '" +
                    estimator_->name() + "' estimator";
            return false;
        }
        return host_->snapshot(out, error);
    }

    bool
    restore(StateReader& in, std::string& error) override
    {
        if (estimator_->storageBits() != 0) {
            error = name() + ": checkpoint/restore is not supported "
                             "with the stateful '" +
                    estimator_->name() + "' estimator";
            return false;
        }
        estimator_->reset();
        return host_->restore(in, error);
    }

    /** The wrapped host predictor. */
    const GradedPredictor& host() const { return *host_; }

    /** The attached estimator. */
    const ConfidenceEstimator& estimator() const { return *estimator_; }

  protected:
    std::string
    defaultName() const override
    {
        return host_->name() + "+" + estimator_->name();
    }

  private:
    /** True when the estimator is a stateless pass-through. */
    bool
    transparentEstimator() const
    {
        return estimator_->preservesHostClasses() &&
               estimator_->storageBits() == 0;
    }

    std::unique_ptr<GradedPredictor> host_;
    std::unique_ptr<ConfidenceEstimator> estimator_;
};

} // namespace tagecon

#endif // TAGECON_CORE_GRADED_PREDICTOR_HPP
