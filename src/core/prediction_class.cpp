#include "core/prediction_class.hpp"

namespace tagecon {

std::string
predictionClassName(PredictionClass c)
{
    switch (c) {
      case PredictionClass::HighConfBim:
        return "high-conf-bim";
      case PredictionClass::LowConfBim:
        return "low-conf-bim";
      case PredictionClass::MediumConfBim:
        return "medium-conf-bim";
      case PredictionClass::Stag:
        return "Stag";
      case PredictionClass::NStag:
        return "NStag";
      case PredictionClass::NWtag:
        return "NWtag";
      case PredictionClass::Wtag:
        return "Wtag";
    }
    return "?";
}

std::string
confidenceLevelName(ConfidenceLevel level)
{
    switch (level) {
      case ConfidenceLevel::High:
        return "high";
      case ConfidenceLevel::Medium:
        return "medium";
      case ConfidenceLevel::Low:
        return "low";
    }
    return "?";
}

} // namespace tagecon
