/**
 * @file
 * The 7 storage-free confidence classes of Sec. 5 and their grouping
 * into the 3 confidence levels of Sec. 6.1.
 */

#ifndef TAGECON_CORE_PREDICTION_CLASS_HPP
#define TAGECON_CORE_PREDICTION_CLASS_HPP

#include <array>
#include <cstdint>
#include <string>

namespace tagecon {

/**
 * The 7 prediction classes distinguishable by pure observation of the
 * TAGE outputs (Sec. 5). Order matches the paper's figure legends.
 */
enum class PredictionClass : uint8_t {
    HighConfBim,   ///< bimodal provider, strong counter, no recent BIM miss
    LowConfBim,    ///< bimodal provider, weak counter
    MediumConfBim, ///< bimodal provider, within the post-miss burst window
    Stag,          ///< tagged provider, saturated counter
    NStag,         ///< tagged provider, nearly saturated counter
    NWtag,         ///< tagged provider, nearly weak counter
    Wtag,          ///< tagged provider, weak counter
};

/** Number of prediction classes. */
inline constexpr size_t kNumPredictionClasses = 7;

/** All classes in figure-legend order, for iteration. */
inline constexpr std::array<PredictionClass, kNumPredictionClasses>
    kAllPredictionClasses = {
        PredictionClass::HighConfBim, PredictionClass::LowConfBim,
        PredictionClass::MediumConfBim, PredictionClass::Stag,
        PredictionClass::NStag, PredictionClass::NWtag,
        PredictionClass::Wtag,
};

/** The 3-level grouping of Sec. 6.1. */
enum class ConfidenceLevel : uint8_t {
    High,   ///< high-conf-bim + Stag (sub-1% misprediction rate)
    Medium, ///< medium-conf-bim + NStag (8-12% misprediction rate)
    Low,    ///< low-conf-bim + NWtag + Wtag (~30%+ misprediction rate)
};

/** Number of confidence levels. */
inline constexpr size_t kNumConfidenceLevels = 3;

/** All levels, for iteration. */
inline constexpr std::array<ConfidenceLevel, kNumConfidenceLevels>
    kAllConfidenceLevels = {
        ConfidenceLevel::High,
        ConfidenceLevel::Medium,
        ConfidenceLevel::Low,
};

/** Paper legend name of a class (e.g. "high-conf-bim", "Stag"). */
std::string predictionClassName(PredictionClass c);

/** Name of a level ("high", "medium", "low"). */
std::string confidenceLevelName(ConfidenceLevel level);

/**
 * The Sec. 6.1 grouping: low = {low-conf-bim, Wtag, NWtag},
 * medium = {NStag, medium-conf-bim}, high = {high-conf-bim, Stag}.
 */
constexpr ConfidenceLevel
confidenceLevel(PredictionClass c)
{
    switch (c) {
      case PredictionClass::HighConfBim:
      case PredictionClass::Stag:
        return ConfidenceLevel::High;
      case PredictionClass::MediumConfBim:
      case PredictionClass::NStag:
        return ConfidenceLevel::Medium;
      case PredictionClass::LowConfBim:
      case PredictionClass::NWtag:
      case PredictionClass::Wtag:
        return ConfidenceLevel::Low;
    }
    return ConfidenceLevel::Low;
}

/**
 * Canonical class for a bare confidence level, for predictors that
 * grade in levels without the 7-class TAGE observation (the bimodal
 * classes are the historical storage-free origin of each level).
 */
constexpr PredictionClass
representativeClass(ConfidenceLevel level)
{
    switch (level) {
      case ConfidenceLevel::High:
        return PredictionClass::HighConfBim;
      case ConfidenceLevel::Medium:
        return PredictionClass::MediumConfBim;
      case ConfidenceLevel::Low:
        return PredictionClass::LowConfBim;
    }
    return PredictionClass::LowConfBim;
}

/** Index of a class into dense arrays. */
constexpr size_t
classIndex(PredictionClass c)
{
    return static_cast<size_t>(c);
}

/** Index of a level into dense arrays. */
constexpr size_t
levelIndex(ConfidenceLevel level)
{
    return static_cast<size_t>(level);
}

} // namespace tagecon

#endif // TAGECON_CORE_PREDICTION_CLASS_HPP
