#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tagecon {
namespace lint {

namespace {

/**
 * One source line after scrubbing: @p code has comments and
 * string/char literals blanked out (replaced by spaces, so column
 * positions survive); @p comment holds the text of any comment on the
 * line. Rules match against code; suppression and reduction tags
 * match against comment.
 */
struct ScrubbedLine {
    std::string code;
    std::string comment;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Scrub @p contents into per-line (code, comment) views with a small
 * lexer: handles //, block comments, string and char literals with
 * escapes, and raw strings with empty delimiters. Rules therefore see
 * only real code — prose and message text mentioning forbidden
 * constructs never trips them.
 */
std::vector<ScrubbedLine>
scrub(const std::string& contents)
{
    enum class State { Code, LineComment, BlockComment, Str, Chr, Raw };
    std::vector<ScrubbedLine> lines(1);
    State state = State::Code;

    const size_t n = contents.size();
    for (size_t i = 0; i < n; ++i) {
        const char c = contents[i];
        const char next = i + 1 < n ? contents[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            lines.emplace_back();
            continue;
        }
        ScrubbedLine& line = lines.back();
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == 'R' && next == '"' &&
                       (line.code.empty() ||
                        !isIdentChar(line.code.back()))) {
                // Raw string: skip to )" — delimiters with custom
                // tags are not used in this codebase.
                state = State::Raw;
                line.code += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Str;
                line.code += ' ';
            } else if (c == '\'' && !line.code.empty() &&
                       isIdentChar(line.code.back())) {
                // Digit separator (1'000'000), not a char literal.
                line.code += ' ';
            } else if (c == '\'') {
                state = State::Chr;
                line.code += ' ';
            } else {
                line.code += c;
            }
            break;
        case State::LineComment:
            line.comment += c;
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else {
                line.comment += c;
            }
            break;
        case State::Str:
            if (c == '\\')
                ++i;
            else if (c == '"')
                state = State::Code;
            break;
        case State::Chr:
            if (c == '\\')
                ++i;
            else if (c == '\'')
                state = State::Code;
            break;
        case State::Raw:
            if (c == ')' && next == '"') {
                state = State::Code;
                ++i;
            }
            break;
        }
    }
    return lines;
}

/** Find word-boundary occurrences of identifier @p token in @p code. */
bool
hasWordToken(const std::string& code, const std::string& token)
{
    size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        const size_t end = pos + token.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok)
            return true;
        pos = end;
    }
    return false;
}

/** Like hasWordToken, but the token must be called: `token (`-ish. */
bool
hasWordTokenCall(const std::string& code, const std::string& token)
{
    size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        size_t end = pos + token.size();
        if (left_ok &&
            (end >= code.size() || !isIdentChar(code[end]))) {
            while (end < code.size() && code[end] == ' ')
                ++end;
            if (end < code.size() && code[end] == '(') {
                // `.time(` / `->time(` is a member call on some other
                // type, not the libc function.
                const bool member =
                    pos > 0 && (code[pos - 1] == '.' ||
                                (pos > 1 && code[pos - 2] == '-' &&
                                 code[pos - 1] == '>'));
                if (!member)
                    return true;
            }
        }
        pos = pos + token.size();
    }
    return false;
}

/** True when @p rel_path starts with directory prefix @p prefix. */
bool
underPath(const std::string& rel_path, const std::string& prefix)
{
    if (rel_path == prefix)
        return true;
    return rel_path.size() > prefix.size() &&
           rel_path.compare(0, prefix.size(), prefix) == 0 &&
           (rel_path[prefix.size()] == '/' ||
            prefix.back() == '/');
}

/** Identifiers declared in this file as the given template container. */
std::vector<std::string>
declaredContainerNames(const std::vector<ScrubbedLine>& lines,
                       const std::vector<std::string>& containers)
{
    std::vector<std::string> names;
    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string& code = lines[li].code;
        size_t at = std::string::npos;
        for (const auto& container : containers) {
            size_t pos = code.find(container);
            while (pos != std::string::npos) {
                const bool left_ok =
                    pos == 0 || !isIdentChar(code[pos - 1]);
                const size_t end = pos + container.size();
                if (left_ok && end < code.size() && code[end] == '<') {
                    at = end;
                    break;
                }
                pos = code.find(container, end);
            }
            if (at != std::string::npos)
                break;
        }
        if (at == std::string::npos)
            continue;
        // Walk past the template argument list, then take the next
        // identifier as the declared name (possibly on a later line
        // for wrapped declarations).
        int depth = 0;
        size_t pos = at;
        size_t line_idx = li;
        auto advance = [&]() -> char {
            const std::string* code_now = &lines[line_idx].code;
            ++pos;
            while (pos >= code_now->size()) {
                if (line_idx + 1 >= lines.size())
                    return '\0';
                ++line_idx;
                pos = 0;
                code_now = &lines[line_idx].code;
                if (code_now->empty())
                    continue;
            }
            return (*code_now)[pos];
        };
        char c = lines[line_idx].code[pos];
        do {
            if (c == '<')
                ++depth;
            else if (c == '>')
                --depth;
            c = advance();
        } while (c != '\0' && depth > 0);
        // Skip whitespace, '&', '*' — then read an identifier.
        while (c != '\0' && !isIdentChar(c) && c != ';' && c != '(' &&
               c != ')' && c != '{')
            c = advance();
        std::string name;
        while (c != '\0' && isIdentChar(c)) {
            name += c;
            c = advance();
        }
        if (!name.empty())
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

/**
 * The range expression of a range-for on this line, or empty. Finds
 * `for (... : range)` by locating the top-level ':' that is not part
 * of a '::'.
 */
std::string
rangeForExpression(const std::string& code)
{
    size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        const size_t end = pos + 3;
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (!left_ok || !right_ok) {
            pos = end;
            continue;
        }
        size_t open = code.find('(', end);
        if (open == std::string::npos)
            return {};
        int depth = 0;
        size_t colon = std::string::npos;
        size_t close = std::string::npos;
        for (size_t i = open; i < code.size(); ++i) {
            const char c = code[i];
            if (c == '(')
                ++depth;
            else if (c == ')') {
                if (--depth == 0) {
                    close = i;
                    break;
                }
            } else if (c == ':' && depth == 1) {
                const bool dbl =
                    (i + 1 < code.size() && code[i + 1] == ':') ||
                    (i > 0 && code[i - 1] == ':');
                if (!dbl && colon == std::string::npos)
                    colon = i;
            }
        }
        if (colon != std::string::npos) {
            const size_t stop =
                close == std::string::npos ? code.size() : close;
            return code.substr(colon + 1, stop - colon - 1);
        }
        pos = end;
    }
    return {};
}

/** Names of float/double variables declared in this file. */
std::vector<std::string>
declaredFloatNames(const std::vector<ScrubbedLine>& lines)
{
    std::vector<std::string> names;
    for (const auto& line : lines) {
        const std::string& code = line.code;
        for (const char* type : {"double", "float"}) {
            size_t pos = 0;
            const std::string tok(type);
            while ((pos = code.find(tok, pos)) != std::string::npos) {
                const bool left_ok =
                    pos == 0 || !isIdentChar(code[pos - 1]);
                size_t end = pos + tok.size();
                if (!left_ok ||
                    (end < code.size() && isIdentChar(code[end]))) {
                    pos = end;
                    continue;
                }
                while (end < code.size() &&
                       (code[end] == ' ' || code[end] == '&' ||
                        code[end] == '*'))
                    ++end;
                std::string name;
                while (end < code.size() && isIdentChar(code[end])) {
                    name += code[end];
                    ++end;
                }
                if (!name.empty())
                    names.push_back(name);
                pos = end;
            }
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

/** True when a comment on lines [line-2, line] carries @p tag. */
bool
taggedNearby(const std::vector<ScrubbedLine>& lines, size_t idx,
             const std::string& tag)
{
    const size_t lo = idx >= 2 ? idx - 2 : 0;
    for (size_t i = lo; i <= idx && i < lines.size(); ++i) {
        if (lines[i].comment.find(tag) != std::string::npos)
            return true;
    }
    return false;
}

/** True when an inline allow(<rule>) suppression covers this line. */
bool
inlineSuppressed(const std::vector<ScrubbedLine>& lines, size_t idx,
                 const std::string& rule)
{
    const std::string tag = "tagecon-lint: allow(" + rule + ")";
    const size_t lo = idx >= 1 ? idx - 1 : 0;
    for (size_t i = lo; i <= idx && i < lines.size(); ++i) {
        if (lines[i].comment.find(tag) != std::string::npos)
            return true;
    }
    return false;
}

// ------------------------------------------------------------ rules

void
ruleNoRawRandom(const std::string&,
                const std::vector<ScrubbedLine>& lines,
                std::vector<Diagnostic>& out)
{
    static const std::vector<std::string> tokens = {
        "rand",      "srand",          "drand48",       "lrand48",
        "mrand48",   "random_device",  "random_shuffle"};
    for (size_t i = 0; i < lines.size(); ++i) {
        for (const auto& tok : tokens) {
            if (hasWordToken(lines[i].code, tok)) {
                out.push_back(
                    {"", i + 1, "no-raw-random",
                     "nondeterministic RNG primitive '" + tok +
                         "'; use the seedable generators in "
                         "util/random.hpp"});
                break;
            }
        }
    }
}

void
ruleNoWallClock(const std::string&,
                const std::vector<ScrubbedLine>& lines,
                std::vector<Diagnostic>& out)
{
    static const std::vector<std::string> word_tokens = {
        "system_clock",  "steady_clock",  "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "__rdtsc",       "__builtin_readcyclecounter"};
    static const std::vector<std::string> call_tokens = {"time",
                                                         "clock"};
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        std::string hit;
        for (const auto& tok : word_tokens) {
            if (hasWordToken(code, tok)) {
                hit = tok;
                break;
            }
        }
        if (hit.empty()) {
            for (const auto& tok : call_tokens) {
                if (hasWordTokenCall(code, tok)) {
                    hit = tok;
                    break;
                }
            }
        }
        if (!hit.empty()) {
            out.push_back({"", i + 1, "no-wall-clock",
                           "wall-clock read '" + hit +
                               "'; route timing through "
                               "util/wall_clock.hpp (the one "
                               "whitelisted seam)"});
        }
    }
}

void
ruleNoRawTiming(const std::string& rel_path,
                const std::vector<ScrubbedLine>& lines,
                std::vector<Diagnostic>& out)
{
    // Allowed sites are built into the rule, not the checked-in
    // allowlist: the wall-clock seam itself, and the obs layer that is
    // defined as the consumer of that seam.
    if (rel_path == "src/util/wall_clock.cpp" ||
        underPath(rel_path, "src/obs"))
        return;
    static const std::vector<std::string> word_tokens = {
        "chrono", "sleep_for", "sleep_until", "nanosleep", "usleep"};
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        std::string hit;
        for (const auto& tok : word_tokens) {
            if (hasWordToken(code, tok)) {
                hit = tok;
                break;
            }
        }
        if (hit.empty() && hasWordTokenCall(code, "sleep"))
            hit = "sleep";
        if (!hit.empty()) {
            out.push_back({"", i + 1, "no-raw-timing",
                           "raw timing primitive '" + hit +
                               "'; durations and sleeps go through "
                               "util/wall_clock.hpp "
                               "(wallclock::monotonicNanos / "
                               "sleepNanos)"});
        }
    }
}

void
ruleNoUnorderedIter(const std::string&,
                    const std::vector<ScrubbedLine>& lines,
                    std::vector<Diagnostic>& out)
{
    static const std::vector<std::string> containers = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const std::vector<std::string> names =
        declaredContainerNames(lines, containers);
    if (names.empty())
        return;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        const std::string range = rangeForExpression(code);
        for (const auto& name : names) {
            const bool ranged =
                !range.empty() && hasWordToken(range, name);
            const bool begun =
                code.find(name + ".begin") != std::string::npos ||
                code.find(name + ".cbegin") != std::string::npos;
            if (ranged || begun) {
                out.push_back(
                    {"", i + 1, "no-unordered-iter",
                     "iteration over unordered container '" + name +
                         "' — element order is nondeterministic; "
                         "sort first or use an ordered container"});
                break;
            }
        }
    }
}

void
ruleNoFatalInLibrary(const std::string& rel_path,
                     const std::vector<ScrubbedLine>& lines,
                     std::vector<Diagnostic>& out)
{
    if (!underPath(rel_path, "src"))
        return;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (hasWordTokenCall(lines[i].code, "fatal")) {
            out.push_back(
                {"", i + 1, "no-fatal-in-library",
                 "fatal() in library code; return Err/Expected "
                 "(util/errors.hpp) and keep fatal() at tool "
                 "boundaries"});
        }
    }
}

void
ruleNoRawStderr(const std::string&,
                const std::vector<ScrubbedLine>& lines,
                std::vector<Diagnostic>& out)
{
    static const std::vector<std::string> tokens = {"cerr", "clog",
                                                    "stderr"};
    for (size_t i = 0; i < lines.size(); ++i) {
        for (const auto& tok : tokens) {
            if (hasWordToken(lines[i].code, tok)) {
                out.push_back(
                    {"", i + 1, "no-raw-stderr",
                     "raw stderr write via '" + tok +
                         "' bypasses the line-atomic logLine()/"
                         "warn() sinks (util/logging.hpp)"});
                break;
            }
        }
    }
}

void
ruleOrderedReduction(const std::string& rel_path,
                     const std::vector<ScrubbedLine>& lines,
                     std::vector<Diagnostic>& out)
{
    if (!underPath(rel_path, "src/sim") &&
        !underPath(rel_path, "src/serve"))
        return;
    const std::vector<std::string> names = declaredFloatNames(lines);
    if (names.empty())
        return;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        const size_t op = code.find("+=");
        if (op == std::string::npos)
            continue;
        // The accumulator is the identifier immediately left of +=.
        size_t end = op;
        while (end > 0 && code[end - 1] == ' ')
            --end;
        size_t start = end;
        while (start > 0 && isIdentChar(code[start - 1]))
            --start;
        const std::string target = code.substr(start, end - start);
        if (target.empty() ||
            !std::binary_search(names.begin(), names.end(), target))
            continue;
        if (taggedNearby(lines, i, "ordered-reduction"))
            continue;
        out.push_back(
            {"", i + 1, "ordered-reduction",
             "floating-point accumulation into '" + target +
                 "' in an aggregation path without an "
                 "'ordered-reduction:' comment stating why the fold "
                 "order is deterministic"});
    }
}

void
ruleNodiscardResultTypes(const std::string&,
                         const std::vector<ScrubbedLine>& lines,
                         std::vector<Diagnostic>& out)
{
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        for (const char* kw : {"struct", "class"}) {
            size_t pos = 0;
            const std::string tok(kw);
            while ((pos = code.find(tok, pos)) != std::string::npos) {
                const bool left_ok =
                    pos == 0 || !isIdentChar(code[pos - 1]);
                size_t end = pos + tok.size();
                if (!left_ok ||
                    (end < code.size() && isIdentChar(code[end]))) {
                    pos = end;
                    continue;
                }
                // Collect the rest of the declaration head (this line
                // plus the next, for wrapped heads).
                std::string head = code.substr(end);
                if (i + 1 < lines.size())
                    head += " " + lines[i + 1].code;
                const bool nodiscard =
                    head.find("nodiscard") != std::string::npos;
                // The declared name is the identifier after any
                // [[...]] attribute block.
                size_t p = 0;
                while (p < head.size()) {
                    if (head[p] == '[' && p + 1 < head.size() &&
                        head[p + 1] == '[') {
                        const size_t close = head.find("]]", p);
                        if (close == std::string::npos)
                            break;
                        p = close + 2;
                    } else if (!isIdentChar(head[p])) {
                        ++p;
                    } else {
                        break;
                    }
                }
                std::string name;
                while (p < head.size() && isIdentChar(head[p])) {
                    name += head[p];
                    ++p;
                }
                while (p < head.size() && head[p] == ' ')
                    ++p;
                const bool definition =
                    p < head.size() &&
                    (head[p] == '{' || head[p] == ':');
                if ((name == "Err" || name == "Expected") &&
                    definition && !nodiscard) {
                    out.push_back(
                        {"", i + 1, "nodiscard-result-types",
                         "definition of '" + name +
                             "' without [[nodiscard]]; dropped "
                             "errors must stay a compile-time "
                             "diagnostic"});
                }
                pos = end;
            }
        }
    }
}

using RuleFn = void (*)(const std::string&,
                        const std::vector<ScrubbedLine>&,
                        std::vector<Diagnostic>&);

struct RuleEntry {
    RuleInfo info;
    RuleFn fn;
};

const std::vector<RuleEntry>&
rules()
{
    static const std::vector<RuleEntry> table = {
        {{"no-fatal-in-library",
          "fatal() belongs at tool boundaries; library code returns "
          "Err/Expected"},
         ruleNoFatalInLibrary},
        {{"no-raw-random",
          "std/libc RNG primitives; use util/random.hpp"},
         ruleNoRawRandom},
        {{"no-raw-stderr",
          "stderr writes must go through logLine()/warn()"},
         ruleNoRawStderr},
        {{"no-raw-timing",
          "std::chrono / sleeps only inside util/wall_clock.cpp "
          "and src/obs"},
         ruleNoRawTiming},
        {{"no-unordered-iter",
          "no iteration over unordered containers"},
         ruleNoUnorderedIter},
        {{"no-wall-clock",
          "clock reads only inside util/wall_clock.cpp"},
         ruleNoWallClock},
        {{"nodiscard-result-types",
          "Err/Expected definitions keep [[nodiscard]]"},
         ruleNodiscardResultTypes},
        {{"ordered-reduction",
          "float accumulation in sim/serve needs an "
          "ordered-reduction comment"},
         ruleOrderedReduction},
    };
    return table;
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = [] {
        std::vector<RuleInfo> out;
        for (const auto& entry : rules())
            out.push_back(entry.info);
        return out;
    }();
    return catalog;
}

bool
isKnownRule(const std::string& name)
{
    for (const auto& entry : rules())
        if (entry.info.name == name)
            return true;
    return false;
}

bool
Allowlist::parse(const std::string& text, Allowlist& out,
                 std::string& error)
{
    out.entries_.clear();
    std::istringstream in(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string rule, path, extra;
        if (!(fields >> rule))
            continue; // blank or comment-only
        if (!(fields >> path) || (fields >> extra)) {
            error = "allowlist line " + std::to_string(lineno) +
                    ": expected '<rule> <path-prefix>', got '" + line +
                    "'";
            return false;
        }
        if (!isKnownRule(rule)) {
            error = "allowlist line " + std::to_string(lineno) +
                    ": unknown rule '" + rule + "'";
            return false;
        }
        while (!path.empty() && path.back() == '/')
            path.pop_back();
        out.entries_.emplace_back(rule, path);
    }
    return true;
}

bool
Allowlist::loadFile(const std::string& path, Allowlist& out,
                    std::string& error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open allowlist '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), out, error);
}

void
Allowlist::add(const std::string& rule, const std::string& path_prefix)
{
    entries_.emplace_back(rule, path_prefix);
}

bool
Allowlist::allows(const std::string& rule,
                  const std::string& rel_path) const
{
    for (const auto& [r, p] : entries_) {
        if (r == rule && underPath(rel_path, p))
            return true;
    }
    return false;
}

std::vector<Diagnostic>
lintFileContents(const std::string& rel_path,
                 const std::string& contents, const Allowlist& allow)
{
    const std::vector<ScrubbedLine> lines = scrub(contents);
    std::vector<Diagnostic> raw;
    for (const auto& entry : rules())
        entry.fn(rel_path, lines, raw);

    std::vector<Diagnostic> out;
    for (auto& d : raw) {
        if (allow.allows(d.rule, rel_path))
            continue;
        if (d.line >= 1 && inlineSuppressed(lines, d.line - 1, d.rule))
            continue;
        d.file = rel_path;
        out.push_back(std::move(d));
    }
    std::sort(out.begin(), out.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

bool
lintTree(const std::string& root,
         const std::vector<std::string>& subdirs,
         const Allowlist& allow, std::vector<Diagnostic>& out,
         std::string& error)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto& sub : subdirs) {
        const fs::path dir = fs::path(root) / sub;
        std::error_code ec;
        if (!fs::is_directory(dir, ec)) {
            error = "not a directory: " + dir.string();
            return false;
        }
        for (fs::recursive_directory_iterator it(dir, ec), end;
             it != end; it.increment(ec)) {
            if (ec) {
                error = "walking " + dir.string() + ": " + ec.message();
                return false;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".hpp" && ext != ".cpp" && ext != ".h" &&
                ext != ".cc")
                continue;
            files.push_back(
                fs::relative(it->path(), root).generic_string());
        }
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // report (and therefore CI diffs of it) is deterministic.
    std::sort(files.begin(), files.end());

    for (const auto& rel : files) {
        std::ifstream in(fs::path(root) / rel, std::ios::binary);
        if (!in) {
            error = "cannot read " + rel;
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<Diagnostic> diags =
            lintFileContents(rel, buf.str(), allow);
        out.insert(out.end(),
                   std::make_move_iterator(diags.begin()),
                   std::make_move_iterator(diags.end()));
    }
    return true;
}

std::string
formatDiagnostic(const Diagnostic& d)
{
    return d.file + ":" + std::to_string(d.line) + ": [" + d.rule +
           "] " + d.message;
}

} // namespace lint
} // namespace tagecon
