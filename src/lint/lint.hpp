/**
 * @file
 * tagecon_lint: the repo's determinism & error-discipline rule engine.
 *
 * The codebase promises, in prose, a set of invariants that keep every
 * sweep/serve/bench output bit-identical at any --jobs and every
 * failure visible: no ad-hoc randomness, no wall-clock reads outside
 * the util/wall_clock seam, no iteration over unordered containers
 * (their order is nondeterministic), fatal() only at tool boundaries,
 * all logging through the line-atomic logLine()/warn() sinks, ordered
 * floating-point reductions in aggregation paths, and [[nodiscard]]
 * result types. This engine turns those promises into checked rules:
 * it scans the source tree (comments and string literals stripped, so
 * prose can mention the forbidden constructs), emits file:line
 * diagnostics, and exits nonzero — a CI gate next to the dynamic
 * jobs=4-vs-1 diffs, catching what the scheduler didn't happen to
 * expose.
 *
 * Rules are data-driven: legitimate sites live in a checked-in
 * allowlist file (tools/lint_allowlist.txt; `rule path-prefix` lines),
 * and a single site can be suppressed inline with a
 * `tagecon-lint: allow(rule-name)` comment on the offending line or
 * the line above. Adding a new violation therefore requires a diff to
 * the allowlist — visible in review — not just code.
 *
 * The catalog (see ruleCatalog()):
 *
 *   no-raw-random        std/libc RNG primitives (rand, srand,
 *                        random_device, ...) anywhere — synthesis goes
 *                        through util/random.hpp's seedable generators
 *   no-wall-clock        clock reads (steady_clock, system_clock,
 *                        time(), ...) outside util/wall_clock.cpp
 *   no-raw-timing        std::chrono mentions and sleeps (sleep_for,
 *                        nanosleep, ...) outside util/wall_clock.cpp
 *                        and src/obs — the allowed sites are built into
 *                        the rule, so the checked-in allowlist cannot
 *                        quietly widen the seam
 *   no-unordered-iter    range-for or .begin() over a std::unordered_
 *                        map/set declared in the same file
 *   no-fatal-in-library  fatal() in src/ — library code returns
 *                        Err/Expected; fatal() is for tools and bench
 *   no-raw-stderr        std::cerr / stderr / fprintf(stderr, ...)
 *                        bypassing the line-atomic logLine()/warn()
 *   ordered-reduction    float/double `+=` accumulation in the
 *                        sim/serve aggregation paths without an
 *                        `ordered-reduction:` comment documenting why
 *                        the fold order is deterministic
 *   nodiscard-result-types
 *                        a definition of `struct Err` / `class
 *                        Expected` missing its [[nodiscard]]
 */

#ifndef TAGECON_LINT_LINT_HPP
#define TAGECON_LINT_LINT_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tagecon {
namespace lint {

/** One finding: where, which rule, and what is wrong. */
struct Diagnostic {
    /** Repo-relative path with forward slashes. */
    std::string file;

    /** 1-based line number. */
    size_t line = 0;

    /** Rule name from the catalog. */
    std::string rule;

    /** Human-readable explanation. */
    std::string message;
};

/** Catalog entry of one rule. */
struct RuleInfo {
    std::string name;
    std::string summary;
};

/** Every rule the engine knows, sorted by name. */
const std::vector<RuleInfo>& ruleCatalog();

/** True when @p name is a catalog rule name. */
bool isKnownRule(const std::string& name);

/**
 * The checked-in exception table: `rule path-prefix` lines. A
 * diagnostic is dropped when an entry's rule matches and its path is
 * the diagnostic's file or a directory prefix of it ("src/util" allows
 * everything under src/util/). '#' starts a comment; blank lines are
 * skipped.
 */
class Allowlist
{
  public:
    /**
     * Parse allowlist text. Returns false with the reason in
     * @p error on a malformed line or an unknown rule name (typos in
     * the allowlist must not silently allow nothing).
     */
    [[nodiscard]] static bool parse(const std::string& text,
                                    Allowlist& out, std::string& error);

    /** Load and parse @p path. */
    [[nodiscard]] static bool loadFile(const std::string& path,
                                       Allowlist& out,
                                       std::string& error);

    /** Add one entry programmatically (tests). */
    void add(const std::string& rule, const std::string& path_prefix);

    /** True when @p rule at @p rel_path is an allowed site. */
    bool allows(const std::string& rule,
                const std::string& rel_path) const;

    /** Number of entries. */
    size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
};

/**
 * Lint one file's contents. @p rel_path is the repo-relative path
 * (used for rule applicability — e.g. no-fatal-in-library only fires
 * under src/ — and for allowlist matching). Diagnostics come back in
 * line order.
 */
std::vector<Diagnostic> lintFileContents(const std::string& rel_path,
                                         const std::string& contents,
                                         const Allowlist& allow);

/**
 * Walk @p subdirs under @p root (sorted, so output order is
 * deterministic), lint every .hpp/.cpp file, and append diagnostics in
 * (file, line) order. Returns false with the reason in @p error when
 * a directory or file cannot be read.
 */
[[nodiscard]] bool lintTree(const std::string& root,
                            const std::vector<std::string>& subdirs,
                            const Allowlist& allow,
                            std::vector<Diagnostic>& out,
                            std::string& error);

/** "file:line: [rule] message" — the display form the tool prints. */
std::string formatDiagnostic(const Diagnostic& d);

} // namespace lint
} // namespace tagecon

#endif // TAGECON_LINT_LINT_HPP
