#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "util/mutex.hpp"
#include "util/wall_clock.hpp"

namespace tagecon {
namespace obs {

namespace detail {
std::atomic<int> g_metricsEnabled{0};
} // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::g_metricsEnabled.store(on ? 1 : 0,
                                   std::memory_order_relaxed);
}

// ---------------------------------------------------- TimingHistogram

TimingHistogram::TimingHistogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
}

void
TimingHistogram::record(uint64_t value)
{
    if (!metricsEnabled())
        return;
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const size_t bucket =
        static_cast<size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t>
TimingHistogram::bucketCounts() const
{
    std::vector<uint64_t> out(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

double
TimingHistogram::quantile(double q) const
{
    const std::vector<uint64_t> counts = bucketCounts();
    uint64_t total = 0;
    for (const uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double target = q * static_cast<double>(total);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0)
            continue;
        const uint64_t next = cumulative + counts[b];
        if (static_cast<double>(next) >= target) {
            // Interpolate inside bucket b between its lower and upper
            // bound; the overflow bucket reports its lower bound.
            const double lo =
                b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
            if (b >= bounds_.size())
                return lo;
            const double hi = static_cast<double>(bounds_[b]);
            const double into =
                (target - static_cast<double>(cumulative)) /
                static_cast<double>(counts[b]);
            return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
        }
        cumulative = next;
    }
    return static_cast<double>(bounds_.empty() ? 0 : bounds_.back());
}

void
TimingHistogram::reset()
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

const std::vector<uint64_t>&
defaultTimingBoundsNs()
{
    // 100ns .. 10s in log-spaced thirds of a decade (100, 215, 464,
    // 1000, ...): wide enough for a predict batch and a checkpoint
    // fsync alike, and coarse enough that quantile estimates stay
    // within ~2x of the truth.
    static const std::vector<uint64_t> bounds = [] {
        std::vector<uint64_t> b;
        uint64_t decade = 100;
        while (decade <= 10'000'000'000ULL) {
            b.push_back(decade);
            b.push_back(decade * 215 / 100);
            b.push_back(decade * 464 / 100);
            decade *= 10;
        }
        return b;
    }();
    return bounds;
}

// ------------------------------------------------------------ registry

namespace {

/**
 * The process-global registry. std::map (not unordered) so snapshots
 * iterate in sorted name order without an extra sort — the order the
 * deterministic dump is byte-diffed in. Entries are never erased, so
 * references handed out stay valid; resetAllMetrics() only zeroes
 * values.
 */
struct Registry {
    Mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters
        TAGECON_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>> gauges
        TAGECON_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<TimingHistogram>> timings
        TAGECON_GUARDED_BY(mutex);
};

Registry&
registry()
{
    static Registry* r = new Registry; // never destroyed: handles
                                       // outlive static teardown
    return *r;
}

} // namespace

Counter&
counter(const std::string& name)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    auto& slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
gauge(const std::string& name)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    auto& slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

TimingHistogram&
timingHistogram(const std::string& name,
                const std::vector<uint64_t>* bounds)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    auto& slot = r.timings[name];
    if (!slot)
        slot = std::make_unique<TimingHistogram>(
            bounds != nullptr ? *bounds : defaultTimingBoundsNs());
    return *slot;
}

void
resetAllMetrics()
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    for (auto& [name, c] : r.counters)
        c->reset();
    for (auto& [name, g] : r.gauges)
        g->reset();
    for (auto& [name, h] : r.timings)
        h->reset();
}

MetricsSnapshot
snapshotMetrics()
{
    MetricsSnapshot out;
    Registry& r = registry();
    MutexLock lock(r.mutex);
    out.scalars.reserve(r.counters.size() + r.gauges.size());
    for (const auto& [name, c] : r.counters)
        out.scalars.push_back(ScalarSample{
            name, static_cast<int64_t>(c->value()), false});
    for (const auto& [name, g] : r.gauges)
        out.scalars.push_back(ScalarSample{name, g->value(), true});
    // Counters and gauges interleave into one sorted scalar section.
    std::sort(out.scalars.begin(), out.scalars.end(),
              [](const ScalarSample& a, const ScalarSample& b) {
                  return a.name < b.name;
              });
    out.timings.reserve(r.timings.size());
    for (const auto& [name, h] : r.timings) {
        TimingSample s;
        s.name = name;
        s.count = h->count();
        s.sum = h->sum();
        s.bounds = h->bounds();
        s.bucketCounts = h->bucketCounts();
        s.p50 = h->quantile(0.50);
        s.p95 = h->quantile(0.95);
        s.p99 = h->quantile(0.99);
        out.timings.push_back(std::move(s));
    }
    return out;
}

// --------------------------------------------------------------- timer

ScopedTimer::ScopedTimer(TimingHistogram& h)
    : hist_(metricsEnabled() ? &h : nullptr)
{
    if (hist_ != nullptr)
        startNs_ = wallclock::monotonicNanos();
}

ScopedTimer::~ScopedTimer()
{
    if (hist_ != nullptr)
        hist_->record(wallclock::monotonicNanos() - startNs_);
}

} // namespace obs
} // namespace tagecon
