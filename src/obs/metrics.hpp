/**
 * @file
 * MetricsRegistry: named counters, gauges and fixed-bucket timing
 * histograms for the serving / sweep / checkpoint paths — the repo's
 * observability layer.
 *
 * The registry enforces a hard split the rest of the codebase's
 * determinism contract depends on:
 *
 *  - **Deterministic metrics** (Counter, Gauge): pure functions of the
 *    workload configuration — predictions served, allocations,
 *    quarantines, retries, evictions, checkpoint bytes, sweep cache
 *    hits. Integer sums are order-independent, so their values are
 *    byte-identical at any --jobs (with shards/pool/batch held fixed)
 *    and CI diffs the deterministic dump j4-vs-j1.
 *
 *  - **Timing metrics** (TimingHistogram): per-stage latency
 *    distributions with p50/p95/p99. Readings come exclusively from
 *    the util/wall_clock seam (the one clock site the no-wall-clock
 *    lint rule whitelists) and are excluded from every byte-diff gate
 *    by construction — the exporter emits them in a separately marked
 *    section.
 *
 * Cost discipline (same as util/failpoint.hpp): every instrumented
 * site is gated on one relaxed atomic load (metricsEnabled()); with
 * collection disabled — the default — that load is the entire
 * overhead, pinned by BM_MetricsDisabled* in bench_micro_predictor
 * and committed in BENCH_obs.json. Metric objects are never erased,
 * so handles from counter()/gauge()/timingHistogram() stay valid for
 * the process lifetime and hot paths can cache them in local statics.
 */

#ifndef TAGECON_OBS_METRICS_HPP
#define TAGECON_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tagecon {
namespace obs {

namespace detail {
extern std::atomic<int> g_metricsEnabled;
} // namespace detail

/** True when metric collection is on. One relaxed load — the gate. */
inline bool
metricsEnabled()
{
    return detail::g_metricsEnabled.load(std::memory_order_relaxed) != 0;
}

/** Turn collection on or off (off is the zero-overhead default). */
void setMetricsEnabled(bool on);

/**
 * Monotonically increasing event count. add() is a relaxed fetch_add:
 * integer sums are independent of thread interleaving, so a counter's
 * final value is deterministic whenever the *set* of increments is —
 * which every instrumented site guarantees by counting events that are
 * pure functions of the workload configuration.
 */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (metricsEnabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Last-written value. set() is last-write-wins, so a gauge is only
 * deterministic when it is written from one place with a deterministic
 * value (configuration knobs, end-of-run totals) — the only uses the
 * instrumentation layer makes of it.
 */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        if (metricsEnabled())
            value_.store(v, std::memory_order_relaxed);
    }

    int64_t value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram for nanosecond timings. Bucket b counts
 * samples v with v <= bounds[b] (the last bucket is the +Inf
 * overflow), so the cumulative counts are exactly the Prometheus
 * `le` convention. record() is two relaxed fetch_adds plus a binary
 * search over the (immutable) bounds — safe from any thread.
 *
 * Timing histograms are non-deterministic by nature and are emitted
 * only in the exporter's timing section, never in byte-diffed output.
 */
class TimingHistogram
{
  public:
    /**
     * @param bounds Strictly increasing bucket upper bounds. The
     * registry's default timing buckets (defaultTimingBoundsNs())
     * cover 100ns..10s in log-spaced thirds of a decade.
     */
    explicit TimingHistogram(std::vector<uint64_t> bounds);

    /** Record one sample (gated on metricsEnabled()). */
    void record(uint64_t value);

    /** Samples recorded. */
    uint64_t count() const { return count_.load(std::memory_order_relaxed); }

    /** Sum of all samples. */
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    /** The bucket upper bounds (excluding the implicit +Inf). */
    const std::vector<uint64_t>& bounds() const { return bounds_; }

    /** Per-bucket counts, bounds().size() + 1 entries (+Inf last). */
    std::vector<uint64_t> bucketCounts() const;

    /**
     * Quantile estimate by linear interpolation inside the bucket the
     * q-th sample falls into (q in [0,1]); 0 when empty. An estimate —
     * good to bucket resolution, which the log-spaced defaults keep
     * within ~2x.
     */
    double quantile(double q) const;

    void reset();

  private:
    std::vector<uint64_t> bounds_;
    std::vector<std::atomic<uint64_t>> counts_; // bounds_.size() + 1
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** The default timing bucket bounds: 100ns..10s, thirds of a decade. */
const std::vector<uint64_t>& defaultTimingBoundsNs();

// ------------------------------------------------------------ registry

/**
 * Look up (creating on first use) the named counter. Names are
 * dot-separated, lower-case, area-first ("serve.predictions",
 * "ckpt.bytes.written", "sweep.cache.hits") — the exporter turns dots
 * into underscores for the Prometheus dump. The returned reference is
 * valid for the process lifetime; hot paths cache it in a local
 * static. Lookup takes the registry mutex — do it once, not per event.
 */
Counter& counter(const std::string& name);

/** Like counter(), for gauges. */
Gauge& gauge(const std::string& name);

/**
 * Like counter(), for timing histograms with the default nanosecond
 * buckets. A second lookup of the same name returns the same
 * histogram regardless of @p bounds.
 */
TimingHistogram&
timingHistogram(const std::string& name,
                const std::vector<uint64_t>* bounds = nullptr);

/** Zero every registered metric (tests; registration survives). */
void resetAllMetrics();

// ------------------------------------------------------------ snapshot

/** Point-in-time sample of one counter or gauge. */
struct ScalarSample {
    std::string name;
    int64_t value = 0;
    bool isGauge = false;
};

/** Point-in-time sample of one timing histogram. */
struct TimingSample {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> bucketCounts; // bounds.size() + 1, +Inf last
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Everything the registry holds, names sorted: the deterministic
 * scalars (counters + gauges) and the timing histograms, separated so
 * exporters cannot accidentally mix a clock reading into a
 * byte-diffed section.
 */
struct MetricsSnapshot {
    std::vector<ScalarSample> scalars;
    std::vector<TimingSample> timings;
};

/** Sample every registered metric. */
MetricsSnapshot snapshotMetrics();

// --------------------------------------------------------------- timer

/**
 * RAII stage timer: reads wallclock::monotonicNanos() on construction
 * and records the elapsed nanoseconds into @p h on destruction. When
 * metrics are disabled the constructor is one relaxed load and the
 * clock is never touched.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimingHistogram& h);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    TimingHistogram* hist_; // nullptr when disabled at construction
    uint64_t startNs_ = 0;
};

} // namespace obs
} // namespace tagecon

#endif // TAGECON_OBS_METRICS_HPP
