#include "obs/metrics_export.hpp"

#include <fstream>
#include <iostream>

#include "sim/report.hpp"
#include "util/table_printer.hpp"

namespace tagecon {
namespace obs {

void
addMetricsTables(Report& report, const MetricsSnapshot& snap,
                 bool include_timing)
{
    TextTable scalars;
    scalars.addColumn("metric", TextTable::Align::Left);
    scalars.addColumn("value");
    for (const auto& s : snap.scalars)
        scalars.addRow({s.name, std::to_string(s.value)});
    report.addTable(ReportTable{"metrics",
                                "metrics (deterministic)",
                                std::move(scalars)});

    if (!include_timing)
        return;
    TextTable timing;
    timing.addColumn("stage", TextTable::Align::Left);
    timing.addColumn("count");
    timing.addColumn("p50 (ns)");
    timing.addColumn("p95 (ns)");
    timing.addColumn("p99 (ns)");
    timing.addColumn("mean (ns)");
    for (const auto& t : snap.timings) {
        const double mean =
            t.count == 0 ? 0.0
                         : static_cast<double>(t.sum) /
                               static_cast<double>(t.count);
        timing.addRow({t.name, std::to_string(t.count),
                       TextTable::num(t.p50, 1),
                       TextTable::num(t.p95, 1),
                       TextTable::num(t.p99, 1),
                       TextTable::num(mean, 1)});
    }
    report.addBlank();
    report.addTable(ReportTable{"metrics-timing",
                                "stage timing (wall clock)",
                                std::move(timing)});
}

std::string
prometheusName(const std::string& metric)
{
    std::string out = "tagecon_";
    out.reserve(out.size() + metric.size());
    for (const char c : metric)
        out += (c == '.' || c == '-') ? '_' : c;
    return out;
}

void
writePrometheusText(const MetricsSnapshot& snap, std::ostream& os)
{
    os << "# tagecon-metrics-v1\n";
    os << "# --- deterministic ---\n";
    for (const auto& s : snap.scalars) {
        const std::string name = prometheusName(s.name);
        os << "# TYPE " << name << (s.isGauge ? " gauge" : " counter")
           << "\n";
        os << name << " " << s.value << "\n";
    }
    os << "# --- timing (non-deterministic) ---\n";
    for (const auto& t : snap.timings) {
        const std::string name = prometheusName(t.name);
        os << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < t.bucketCounts.size(); ++b) {
            cumulative += t.bucketCounts[b];
            os << name << "_bucket{le=\"";
            if (b < t.bounds.size())
                os << t.bounds[b];
            else
                os << "+Inf";
            os << "\"} " << cumulative << "\n";
        }
        os << name << "_sum " << t.sum << "\n";
        os << name << "_count " << t.count << "\n";
    }
}

Err
writePrometheusFile(const MetricsSnapshot& snap, const std::string& path)
{
    if (path == "-") {
        writePrometheusText(snap, std::cout);
        return {};
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return Err(ErrCode::Io, "metrics.export",
                   "cannot open '" + path + "' for writing");
    writePrometheusText(snap, os);
    os.flush();
    if (!os)
        return Err(ErrCode::Io, "metrics.export",
                   "short write to '" + path + "'");
    return {};
}

} // namespace obs
} // namespace tagecon
