/**
 * @file
 * Exporters for the obs metrics registry:
 *
 *  - addMetricsTables(): the `"metrics"` table family of the shared
 *    sim/report document — a deterministic scalar table ("metrics")
 *    every format carries, and a timing table ("metrics-timing",
 *    p50/p95/p99 per stage) the caller includes only in views that
 *    tolerate wall-clock data (the same rule as tagecon_serve's
 *    timing section: never in the CSV byte-diff path).
 *
 *  - writePrometheusText(): a Prometheus-style text dump for
 *    `--metrics-out=`. The document is split by marker comments into a
 *    `# --- deterministic ---` section (counters + gauges, sorted,
 *    byte-identical at any --jobs for a fixed workload configuration —
 *    the section CI diffs j4-vs-j1) and a
 *    `# --- timing (non-deterministic) ---` section (histograms with
 *    cumulative `le` buckets, `_sum`, `_count`).
 */

#ifndef TAGECON_OBS_METRICS_EXPORT_HPP
#define TAGECON_OBS_METRICS_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "util/errors.hpp"

namespace tagecon {

class Report;

namespace obs {

/**
 * Append the metrics table family to @p report: table id "metrics"
 * (metric | value, deterministic scalars), and — when
 * @p include_timing — table id "metrics-timing"
 * (stage | count | p50/p95/p99/mean ns).
 */
void addMetricsTables(Report& report, const MetricsSnapshot& snap,
                      bool include_timing);

/** Prometheus metric name: "tagecon_" + name with dots flattened. */
std::string prometheusName(const std::string& metric);

/** Write the two-section Prometheus-style text dump. */
void writePrometheusText(const MetricsSnapshot& snap, std::ostream& os);

/** writePrometheusText() into @p path ("-" = stdout). */
[[nodiscard]] Err writePrometheusFile(const MetricsSnapshot& snap,
                                      const std::string& path);

} // namespace obs
} // namespace tagecon

#endif // TAGECON_OBS_METRICS_EXPORT_HPP
