#include "obs/span_trace.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/report.hpp" // jsonEscape
#include "util/mutex.hpp"
#include "util/wall_clock.hpp"

namespace tagecon {
namespace obs {

namespace detail {
std::atomic<int> g_tracingEnabled{0};
} // namespace detail

namespace {

/** Global event store; thread buffers drain into it under the mutex. */
struct TraceStore {
    Mutex mutex;
    std::vector<SpanEvent> events TAGECON_GUARDED_BY(mutex);
    uint32_t nextTid TAGECON_GUARDED_BY(mutex) = 0;
};

TraceStore&
store()
{
    static TraceStore* s = new TraceStore; // outlives static teardown:
                                           // thread-local buffers flush
                                           // through it on thread exit
    return *s;
}

/**
 * Per-thread span buffer. Appends are unsynchronized; the destructor
 * (thread exit) and takeTraceEvents() drain it into the global store
 * under the tracer mutex.
 */
struct ThreadBuffer {
    std::vector<SpanEvent> events;
    uint32_t tid = 0;
    bool tidAssigned = false;

    void
    flush()
    {
        if (events.empty())
            return;
        TraceStore& s = store();
        MutexLock lock(s.mutex);
        s.events.insert(s.events.end(),
                        std::make_move_iterator(events.begin()),
                        std::make_move_iterator(events.end()));
        events.clear();
    }

    uint32_t
    ensureTid()
    {
        if (!tidAssigned) {
            TraceStore& s = store();
            MutexLock lock(s.mutex);
            tid = s.nextTid++;
            tidAssigned = true;
        }
        return tid;
    }

    ~ThreadBuffer() { flush(); }
};

ThreadBuffer&
threadBuffer()
{
    thread_local ThreadBuffer buf;
    return buf;
}

} // namespace

void
startTracing()
{
    TraceStore& s = store();
    {
        MutexLock lock(s.mutex);
        s.events.clear();
    }
    detail::g_tracingEnabled.store(1, std::memory_order_relaxed);
}

void
stopTracing()
{
    detail::g_tracingEnabled.store(0, std::memory_order_relaxed);
}

SpanScope::SpanScope(const char* name, uint64_t id)
    : name_(tracingEnabled() ? name : nullptr), id_(id)
{
    if (name_ != nullptr)
        startNs_ = wallclock::monotonicNanos();
}

void
SpanScope::detail(std::string text)
{
    if (name_ != nullptr)
        detail_ = std::move(text);
}

SpanScope::~SpanScope()
{
    if (name_ == nullptr)
        return;
    ThreadBuffer& buf = threadBuffer();
    SpanEvent e;
    e.name = name_;
    e.id = id_;
    e.startNs = startNs_;
    e.endNs = wallclock::monotonicNanos();
    e.tid = buf.ensureTid();
    e.detail = std::move(detail_);
    buf.events.push_back(std::move(e));
}

std::vector<SpanEvent>
takeTraceEvents()
{
    threadBuffer().flush();
    TraceStore& s = store();
    MutexLock lock(s.mutex);
    std::vector<SpanEvent> out = std::move(s.events);
    s.events.clear();
    return out;
}

void
writeChromeTrace(std::ostream& os)
{
    std::vector<SpanEvent> events = takeTraceEvents();
    // Stable display order (and stable output for identical inputs):
    // by start time, then thread.
    std::sort(events.begin(), events.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.endNs < b.endNs;
              });
    uint64_t t0 = UINT64_MAX;
    for (const auto& e : events)
        t0 = std::min(t0, e.startNs);
    if (events.empty())
        t0 = 0;

    // Microsecond timestamps with nanosecond resolution kept in the
    // fraction — the unit chrome://tracing / Perfetto expect.
    auto micros = [&](uint64_t ns) {
        std::ostringstream v;
        v << (ns / 1000) << '.' << static_cast<char>('0' + ns % 1000 / 100)
          << static_cast<char>('0' + ns % 100 / 10)
          << static_cast<char>('0' + ns % 10);
        return v.str();
    };

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& e : events) {
        const std::string name(e.name);
        const size_t dot = name.find('.');
        const std::string cat =
            dot == std::string::npos ? name : name.substr(0, dot);
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << jsonEscape(name) << "\",\"cat\":\""
           << jsonEscape(cat) << "\",\"ph\":\"X\",\"ts\":"
           << micros(e.startNs - t0) << ",\"dur\":"
           << micros(e.endNs - e.startNs) << ",\"pid\":1,\"tid\":"
           << e.tid << ",\"args\":{\"id\":" << e.id;
        if (!e.detail.empty())
            os << ",\"detail\":\"" << jsonEscape(e.detail) << "\"";
        os << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Err
writeChromeTraceFile(const std::string& path)
{
    if (path == "-") {
        writeChromeTrace(std::cout);
        return {};
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return Err(ErrCode::Io, "trace.export",
                   "cannot open '" + path + "' for writing");
    writeChromeTrace(os);
    os.flush();
    if (!os)
        return Err(ErrCode::Io, "trace.export",
                   "short write to '" + path + "'");
    return {};
}

} // namespace obs
} // namespace tagecon
