/**
 * @file
 * Span-based tracer: RAII scopes around the serving / sweep stages,
 * buffered per thread and exported as Chrome `trace_event` JSON so a
 * whole sharded serve opens in chrome://tracing or Perfetto
 * (https://ui.perfetto.dev — drag the file in).
 *
 *   {
 *       TAGECON_SPAN("serve.shard", shard_id);
 *       ... serve the shard ...
 *   } // span closes, duration recorded
 *
 * Collection model: spans record into an unsynchronized thread-local
 * buffer (no lock, no allocation beyond vector growth), which is
 * flushed into the global event list under the tracer mutex when the
 * thread exits or when the trace is written — so tracing adds no
 * cross-thread synchronization to the paths it observes. Timestamps
 * come from the util/wall_clock seam.
 *
 * Tracing is off by default; every disabled span costs one relaxed
 * atomic load in the constructor (BM_SpanDisabled pins it). Trace
 * output is wall-clock data and therefore lives outside every
 * byte-diff gate, like the timing half of obs/metrics.hpp.
 *
 * Span names must be string literals (the buffer stores the pointer);
 * per-span details (e.g. "spec x trace") go through
 * SpanScope::detail(), guarded by tracingEnabled() at the call site so
 * the string is never built when tracing is off.
 */

#ifndef TAGECON_OBS_SPAN_TRACE_HPP
#define TAGECON_OBS_SPAN_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/errors.hpp"

namespace tagecon {
namespace obs {

namespace detail {
extern std::atomic<int> g_tracingEnabled;
} // namespace detail

/** True when span collection is on. One relaxed load — the gate. */
inline bool
tracingEnabled()
{
    return detail::g_tracingEnabled.load(std::memory_order_relaxed) != 0;
}

/** Drop any buffered events and start collecting spans. */
void startTracing();

/** Stop collecting (buffered events remain until taken or restarted). */
void stopTracing();

/** One completed span. */
struct SpanEvent {
    /** Static name ("serve.shard", "ckpt.write", "sweep.cell"). */
    const char* name = "";

    /** Caller-supplied id (shard index, stream id, cell slot). */
    uint64_t id = 0;

    /** wallclock::monotonicNanos() readings. */
    uint64_t startNs = 0;
    uint64_t endNs = 0;

    /** Small dense thread number (registration order, not OS tid). */
    uint32_t tid = 0;

    /** Optional free-text annotation (empty for most spans). */
    std::string detail;
};

/**
 * RAII span: records a SpanEvent covering its lifetime into the
 * calling thread's buffer. When tracing is disabled at construction
 * the destructor does nothing (a span cannot straddle startTracing()).
 */
class SpanScope
{
  public:
    explicit SpanScope(const char* name, uint64_t id = 0);
    ~SpanScope();

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    /**
     * Attach an annotation shown in the trace viewer's args. Call
     * under `if (obs::tracingEnabled())` so the string is only built
     * when it will be kept.
     */
    void detail(std::string text);

  private:
    const char* name_; // nullptr when tracing was off at construction
    uint64_t id_ = 0;
    uint64_t startNs_ = 0;
    std::string detail_;
};

/** Convenience macro; the variable name is unique per expansion. */
#define TAGECON_SPAN_CAT2(a, b) a##b
#define TAGECON_SPAN_CAT(a, b) TAGECON_SPAN_CAT2(a, b)
#define TAGECON_SPAN(...)                                                  \
    ::tagecon::obs::SpanScope TAGECON_SPAN_CAT(tagecon_span_,              \
                                               __LINE__)(__VA_ARGS__)

/**
 * Flush every thread's buffered events (the calling thread's plus all
 * already-flushed ones) and return them, clearing the store. Events of
 * live worker threads that have not exited are flushed by their
 * thread-local buffer destructors — take the trace after joining.
 */
std::vector<SpanEvent> takeTraceEvents();

/**
 * Write the buffered events (takeTraceEvents()) as a Chrome
 * `trace_event` JSON document: one complete ("ph":"X") event per span,
 * timestamps normalized to the earliest span and converted to
 * microseconds, category = the span name's first dot component.
 */
void writeChromeTrace(std::ostream& os);

/** writeChromeTrace() into @p path ("-" = stdout). */
[[nodiscard]] Err writeChromeTraceFile(const std::string& path);

} // namespace obs
} // namespace tagecon

#endif // TAGECON_OBS_SPAN_TRACE_HPP
