#include "serve/checkpoint.hpp"

#include <fstream>

namespace tagecon {

namespace {

bool
encodeCheckpoint(const GradedPredictor& predictor,
                 const std::string& spec, Checkpoint::Kind kind,
                 uint64_t stream_id, const std::string& trace,
                 uint64_t consumed, std::vector<uint8_t>& out,
                 std::string& error)
{
    StateWriter payload;
    if (!predictor.snapshot(payload, error))
        return false;

    StateWriter w;
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u32(static_cast<uint32_t>(kind));
    w.str(spec);
    if (kind == Checkpoint::Kind::Stream) {
        w.u64(stream_id);
        w.str(trace);
        w.u64(consumed);
    }
    w.u64(payload.size());
    w.bytes(payload.data().data(), payload.size());
    w.u64(fnv1a64(w.data().data(), w.size()));
    out = w.take();
    return true;
}

} // namespace

bool
encodePredictorCheckpoint(const GradedPredictor& predictor,
                          const std::string& spec,
                          std::vector<uint8_t>& out, std::string& error)
{
    return encodeCheckpoint(predictor, spec, Checkpoint::Kind::Predictor,
                            0, "", 0, out, error);
}

bool
encodeStreamCheckpoint(const GradedPredictor& predictor,
                       const std::string& spec, uint64_t stream_id,
                       const std::string& trace, uint64_t consumed,
                       std::vector<uint8_t>& out, std::string& error)
{
    return encodeCheckpoint(predictor, spec, Checkpoint::Kind::Stream,
                            stream_id, trace, consumed, out, error);
}

bool
decodeCheckpoint(const uint8_t* data, size_t size, Checkpoint& out,
                 std::string& error)
{
    // Minimal blob: magic + version + kind + empty spec + payload size
    // + digest.
    if (size < 4 + 4 + 4 + 4 + 8 + 8) {
        error = "checkpoint blob is truncated";
        return false;
    }

    {
        StateReader tail(data + size - 8, 8);
        const uint64_t stored = tail.u64();
        if (fnv1a64(data, size - 8) != stored) {
            error = "checkpoint digest mismatch: blob is corrupted "
                    "or truncated";
            return false;
        }
    }

    StateReader in(data, size - 8);
    if (in.u32() != kCheckpointMagic) {
        error = "not a tagecon checkpoint blob (bad magic)";
        return false;
    }
    const uint32_t version = in.u32();
    if (version != kCheckpointVersion) {
        error = "unsupported checkpoint version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kCheckpointVersion) + ")";
        return false;
    }
    const uint32_t kind = in.u32();
    if (kind != static_cast<uint32_t>(Checkpoint::Kind::Predictor) &&
        kind != static_cast<uint32_t>(Checkpoint::Kind::Stream)) {
        error = "unknown checkpoint kind " + std::to_string(kind);
        return false;
    }
    out.kind = static_cast<Checkpoint::Kind>(kind);
    out.spec = in.str();
    out.streamId = 0;
    out.trace.clear();
    out.consumed = 0;
    if (out.kind == Checkpoint::Kind::Stream) {
        out.streamId = in.u64();
        out.trace = in.str();
        out.consumed = in.u64();
    }
    const uint64_t payload_size = in.u64();
    if (!in.ok() || payload_size != in.remaining()) {
        error = "checkpoint payload size disagrees with the blob";
        return false;
    }
    out.payload.resize(static_cast<size_t>(payload_size));
    in.bytes(out.payload.data(), out.payload.size());
    if (!in.ok() || !in.exhausted()) {
        error = "checkpoint blob is malformed";
        return false;
    }
    return true;
}

bool
decodeCheckpoint(const std::vector<uint8_t>& blob, Checkpoint& out,
                 std::string& error)
{
    return decodeCheckpoint(blob.data(), blob.size(), out, error);
}

bool
restoreFromCheckpoint(const Checkpoint& ck, GradedPredictor& predictor,
                      const std::string& spec, std::string& error)
{
    if (ck.spec != spec) {
        predictor.reset();
        error = "checkpoint was written for spec '" + ck.spec +
                "', not '" + spec + "'";
        return false;
    }
    StateReader in(ck.payload);
    if (!predictor.restore(in, error)) {
        predictor.reset();
        return false;
    }
    if (!in.exhausted()) {
        predictor.reset();
        error = "checkpoint payload has trailing bytes";
        return false;
    }
    return true;
}

uint64_t
checkpointDigest(const std::vector<uint8_t>& blob)
{
    return fnv1a64(blob.data(), blob.size());
}

bool
writeCheckpointFile(const std::string& path,
                    const std::vector<uint8_t>& blob, std::string& error)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    os.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
    os.flush();
    if (!os) {
        error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
readCheckpointFile(const std::string& path, std::vector<uint8_t>& out,
                   std::string& error)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        error = "cannot open '" + path + "' for reading";
        return false;
    }
    const std::streamsize size = is.tellg();
    is.seekg(0, std::ios::beg);
    out.resize(static_cast<size_t>(size));
    if (size > 0)
        is.read(reinterpret_cast<char*>(out.data()), size);
    if (!is) {
        error = "short read from '" + path + "'";
        return false;
    }
    return true;
}

bool
checkpointFileExists(const std::string& path)
{
    return std::ifstream(path, std::ios::binary).good();
}

std::string
streamCheckpointFileName(uint64_t stream_id)
{
    return "stream-" + std::to_string(stream_id) + ".tcsp";
}

} // namespace tagecon
