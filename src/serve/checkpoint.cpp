#include "serve/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"
#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define TAGECON_HAVE_FSYNC 1
#else
#define TAGECON_HAVE_FSYNC 0
#endif

namespace tagecon {

namespace {

/**
 * Cached obs handles for checkpoint traffic. Counters tick on success
 * only, so they are a pure function of the workload + fault schedule
 * (deterministic); the .ns histograms are wall-clock and live in the
 * timing section.
 */
struct CkptMetrics {
    obs::Counter& encodes = obs::counter("ckpt.encodes");
    obs::Counter& decodes = obs::counter("ckpt.decodes");
    obs::Counter& writes = obs::counter("ckpt.writes");
    obs::Counter& reads = obs::counter("ckpt.reads");
    obs::Counter& bytesWritten = obs::counter("ckpt.bytes.written");
    obs::Counter& bytesRead = obs::counter("ckpt.bytes.read");
    obs::TimingHistogram& writeNs = obs::timingHistogram("ckpt.write.ns");
    obs::TimingHistogram& readNs = obs::timingHistogram("ckpt.read.ns");
};

CkptMetrics&
ckptMetrics()
{
    static CkptMetrics* m = new CkptMetrics;
    return *m;
}

Err
encodeCheckpoint(const GradedPredictor& predictor,
                 const std::string& spec, Checkpoint::Kind kind,
                 uint64_t stream_id, const std::string& trace,
                 uint64_t consumed, std::vector<uint8_t>& out)
{
    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check("ckpt.encode"))
            return std::move(*injected);
    }
    StateWriter payload;
    std::string why;
    if (!predictor.snapshot(payload, why))
        return Err(ErrCode::Unsupported, "ckpt.encode", std::move(why));

    StateWriter w;
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u32(static_cast<uint32_t>(kind));
    w.str(spec);
    if (kind == Checkpoint::Kind::Stream) {
        w.u64(stream_id);
        w.str(trace);
        w.u64(consumed);
    }
    w.u64(payload.size());
    w.bytes(payload.data().data(), payload.size());
    w.u64(fnv1a64(w.data().data(), w.size()));
    out = w.take();
    ckptMetrics().encodes.add();
    return {};
}

/** Close @p f (when non-null), ignoring errors; for cleanup paths. */
void
closeQuiet(std::FILE* f)
{
    if (f)
        std::fclose(f);
}

} // namespace

Err
encodePredictorCheckpoint(const GradedPredictor& predictor,
                          const std::string& spec,
                          std::vector<uint8_t>& out)
{
    return encodeCheckpoint(predictor, spec, Checkpoint::Kind::Predictor,
                            0, "", 0, out);
}

bool
encodePredictorCheckpoint(const GradedPredictor& predictor,
                          const std::string& spec,
                          std::vector<uint8_t>& out, std::string& error)
{
    if (Err e = encodePredictorCheckpoint(predictor, spec, out);
        e.failed()) {
        error = e.detail;
        return false;
    }
    return true;
}

Err
encodeStreamCheckpoint(const GradedPredictor& predictor,
                       const std::string& spec, uint64_t stream_id,
                       const std::string& trace, uint64_t consumed,
                       std::vector<uint8_t>& out)
{
    return encodeCheckpoint(predictor, spec, Checkpoint::Kind::Stream,
                            stream_id, trace, consumed, out);
}

bool
encodeStreamCheckpoint(const GradedPredictor& predictor,
                       const std::string& spec, uint64_t stream_id,
                       const std::string& trace, uint64_t consumed,
                       std::vector<uint8_t>& out, std::string& error)
{
    if (Err e = encodeStreamCheckpoint(predictor, spec, stream_id, trace,
                                       consumed, out);
        e.failed()) {
        error = e.detail;
        return false;
    }
    return true;
}

Err
decodeCheckpoint(const uint8_t* data, size_t size, Checkpoint& out)
{
    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check("ckpt.decode"))
            return std::move(*injected);
    }
    constexpr const char* kSite = "ckpt.decode";

    // Minimal blob: magic + version + kind + empty spec + payload size
    // + digest.
    if (size < 4 + 4 + 4 + 4 + 8 + 8)
        return Err(ErrCode::Truncated, kSite,
                   "checkpoint blob is truncated");

    {
        StateReader tail(data + size - 8, 8);
        const uint64_t stored = tail.u64();
        if (fnv1a64(data, size - 8) != stored)
            return Err(ErrCode::Corrupt, kSite,
                       "checkpoint digest mismatch: blob is corrupted "
                       "or truncated");
    }

    StateReader in(data, size - 8);
    if (in.u32() != kCheckpointMagic)
        return Err(ErrCode::Corrupt, kSite,
                   "not a tagecon checkpoint blob (bad magic)");
    const uint32_t version = in.u32();
    if (version != kCheckpointVersion) {
        return Err(ErrCode::BadVersion, kSite,
                   "unsupported checkpoint version " +
                       std::to_string(version) +
                       " (this build reads version " +
                       std::to_string(kCheckpointVersion) + ")");
    }
    const uint32_t kind = in.u32();
    if (kind != static_cast<uint32_t>(Checkpoint::Kind::Predictor) &&
        kind != static_cast<uint32_t>(Checkpoint::Kind::Stream)) {
        return Err(ErrCode::Corrupt, kSite,
                   "unknown checkpoint kind " + std::to_string(kind));
    }
    out.kind = static_cast<Checkpoint::Kind>(kind);
    out.spec = in.str();
    out.streamId = 0;
    out.trace.clear();
    out.consumed = 0;
    if (out.kind == Checkpoint::Kind::Stream) {
        out.streamId = in.u64();
        out.trace = in.str();
        out.consumed = in.u64();
    }
    const uint64_t payload_size = in.u64();
    if (!in.ok() || payload_size != in.remaining())
        return Err(ErrCode::Corrupt, kSite,
                   "checkpoint payload size disagrees with the blob");
    out.payload.resize(static_cast<size_t>(payload_size));
    in.bytes(out.payload.data(), out.payload.size());
    if (!in.ok() || !in.exhausted())
        return Err(ErrCode::Corrupt, kSite,
                   "checkpoint blob is malformed");
    ckptMetrics().decodes.add();
    return {};
}

Err
decodeCheckpoint(const std::vector<uint8_t>& blob, Checkpoint& out)
{
    return decodeCheckpoint(blob.data(), blob.size(), out);
}

bool
decodeCheckpoint(const uint8_t* data, size_t size, Checkpoint& out,
                 std::string& error)
{
    if (Err e = decodeCheckpoint(data, size, out); e.failed()) {
        error = e.detail;
        return false;
    }
    return true;
}

bool
decodeCheckpoint(const std::vector<uint8_t>& blob, Checkpoint& out,
                 std::string& error)
{
    return decodeCheckpoint(blob.data(), blob.size(), out, error);
}

Err
restoreFromCheckpoint(const Checkpoint& ck, GradedPredictor& predictor,
                      const std::string& spec)
{
    constexpr const char* kSite = "ckpt.decode";
    if (ck.spec != spec) {
        predictor.reset();
        return Err(ErrCode::Mismatch, kSite,
                   "checkpoint was written for spec '" + ck.spec +
                       "', not '" + spec + "'");
    }
    StateReader in(ck.payload);
    std::string why;
    if (!predictor.restore(in, why)) {
        predictor.reset();
        return Err(ErrCode::Corrupt, kSite, std::move(why));
    }
    if (!in.exhausted()) {
        predictor.reset();
        return Err(ErrCode::Corrupt, kSite,
                   "checkpoint payload has trailing bytes");
    }
    return {};
}

bool
restoreFromCheckpoint(const Checkpoint& ck, GradedPredictor& predictor,
                      const std::string& spec, std::string& error)
{
    if (Err e = restoreFromCheckpoint(ck, predictor, spec); e.failed()) {
        error = e.detail;
        return false;
    }
    return true;
}

uint64_t
checkpointDigest(const std::vector<uint8_t>& blob)
{
    return fnv1a64(blob.data(), blob.size());
}

Err
writeCheckpointFile(const std::string& path,
                    const std::vector<uint8_t>& blob)
{
    constexpr const char* kSite = "ckpt.write";
    const std::string tmp = checkpointTempName(path);
    TAGECON_SPAN("ckpt.write");
    obs::ScopedTimer timer(ckptMetrics().writeNs);

    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check(kSite)) {
            // Simulate a crash mid-write: half the blob lands in the
            // temp file, the final name is never touched. Restores see
            // a stale .tmp and cold-start; nothing torn is loadable.
            std::ofstream torn(tmp, std::ios::binary | std::ios::trunc);
            if (torn)
                torn.write(reinterpret_cast<const char*>(blob.data()),
                           static_cast<std::streamsize>(blob.size() / 2));
            return std::move(*injected);
        }
    }

    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return Err(ErrCode::Io, kSite,
                   "cannot open '" + tmp + "' for writing");
    if (!blob.empty() &&
        std::fwrite(blob.data(), 1, blob.size(), f) != blob.size()) {
        closeQuiet(f);
        return Err(ErrCode::Io, kSite, "short write to '" + tmp + "'");
    }
    if (std::fflush(f) != 0) {
        closeQuiet(f);
        return Err(ErrCode::Io, kSite, "cannot flush '" + tmp + "'");
    }
#if TAGECON_HAVE_FSYNC
    // Durability before visibility: the rename below must never
    // publish bytes the disk hasn't accepted.
    if (fsync(fileno(f)) != 0) {
        closeQuiet(f);
        return Err(ErrCode::Io, kSite, "cannot fsync '" + tmp + "'");
    }
#endif
    if (std::fclose(f) != 0)
        return Err(ErrCode::Io, kSite, "cannot close '" + tmp + "'");

    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return Err(ErrCode::Io, kSite,
                   "cannot rename '" + tmp + "' to '" + path + "'");
    }
    ckptMetrics().writes.add();
    ckptMetrics().bytesWritten.add(blob.size());
    return {};
}

bool
writeCheckpointFile(const std::string& path,
                    const std::vector<uint8_t>& blob, std::string& error)
{
    if (Err e = writeCheckpointFile(path, blob); e.failed()) {
        error = e.detail;
        return false;
    }
    return true;
}

Err
readCheckpointFile(const std::string& path, std::vector<uint8_t>& out)
{
    constexpr const char* kSite = "ckpt.read";
    TAGECON_SPAN("ckpt.read");
    obs::ScopedTimer timer(ckptMetrics().readNs);
    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check(kSite))
            return std::move(*injected);
    }
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        return Err(ErrCode::NotFound, kSite,
                   "cannot open '" + path + "' for reading");
    const std::streamsize size = is.tellg();
    is.seekg(0, std::ios::beg);
    out.resize(static_cast<size_t>(size));
    if (size > 0)
        is.read(reinterpret_cast<char*>(out.data()), size);
    if (!is)
        return Err(ErrCode::Io, kSite,
                   "short read from '" + path + "'");
    ckptMetrics().reads.add();
    ckptMetrics().bytesRead.add(out.size());
    return {};
}

bool
readCheckpointFile(const std::string& path, std::vector<uint8_t>& out,
                   std::string& error)
{
    if (Err e = readCheckpointFile(path, out); e.failed()) {
        error = e.detail;
        return false;
    }
    return true;
}

bool
checkpointFileExists(const std::string& path)
{
    return std::ifstream(path, std::ios::binary).good();
}

std::string
streamCheckpointFileName(uint64_t stream_id)
{
    return "stream-" + std::to_string(stream_id) + ".tcsp";
}

std::string
checkpointTempName(const std::string& path)
{
    return path + ".tmp";
}

bool
staleCheckpointTempExists(const std::string& path)
{
    return !checkpointFileExists(path) &&
           checkpointFileExists(checkpointTempName(path));
}

} // namespace tagecon
