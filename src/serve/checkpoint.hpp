/**
 * @file
 * Versioned predictor checkpoint blobs: the on-disk/wire format the
 * serving engine uses to park and resume predictor state.
 *
 * A blob is a header (magic, format version, kind, the canonical
 * registry spec the state was written with), an opaque payload (the
 * predictor's GradedPredictor::snapshot() bytes) and a trailing
 * FNV-1a-64 digest over everything before it. Stream checkpoints
 * (Kind::Stream) additionally carry the serving position — stream id,
 * trace spec and records consumed — so a multi-stream serve can be
 * stopped and resumed bit-identically.
 *
 * Decoding is strict: bad magic, unknown version, digest mismatch,
 * truncation and payload-size disagreement are all distinct, reported
 * errors, and restoreFromCheckpoint() additionally demands that the
 * target predictor's spec matches and that the payload is consumed to
 * the last byte.
 *
 * Every operation has a typed primary returning Err (site names match
 * the failpoint sites: "ckpt.encode", "ckpt.decode", "ckpt.read",
 * "ckpt.write"); the bool+string overloads are thin shims kept for
 * existing callers. File writes are crash-safe: the blob lands in
 * "<path>.tmp", is flushed to disk, and is renamed over the final name
 * only once complete — a crash mid-write leaves a stale .tmp, never a
 * torn .tcsp.
 */

#ifndef TAGECON_SERVE_CHECKPOINT_HPP
#define TAGECON_SERVE_CHECKPOINT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/graded_predictor.hpp"
#include "util/errors.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/** First bytes of every checkpoint blob ("TCKP", little-endian). */
inline constexpr uint32_t kCheckpointMagic = 0x504B4354u;

/**
 * Current blob format version. Version history:
 *  - 1: 4 B/entry TAGE payloads (separate ctr and u arena sections).
 *  - 2: 3 B/entry packed payloads (one packed::ctru* arena section);
 *       perceptron and O-GEHL gained snapshot support.
 * Readers reject any other version outright — predictor payloads are
 * raw arena images, so cross-version translation is not attempted.
 */
inline constexpr uint32_t kCheckpointVersion = 2;

/** Decoded form of one checkpoint blob. */
struct Checkpoint {
    /** What the blob checkpoints. */
    enum class Kind : uint32_t {
        Predictor = 1, ///< bare predictor state
        Stream = 2,    ///< predictor state + serving position
    };

    Kind kind = Kind::Predictor;

    /** Canonical registry spec the payload was written with. */
    std::string spec;

    /** Serving stream id (Kind::Stream only). */
    uint64_t streamId = 0;

    /** Trace spec the stream was serving (Kind::Stream only). */
    std::string trace;

    /** Trace records already served (Kind::Stream only). */
    uint64_t consumed = 0;

    /** The predictor's snapshot() bytes. */
    std::vector<uint8_t> payload;
};

/**
 * Snapshot @p predictor into a Kind::Predictor blob tagged with
 * @p spec (the canonical registry spec it was built from). Fails
 * (Unsupported) when the predictor family does not support
 * checkpointing. Failpoint site "ckpt.encode".
 */
Err encodePredictorCheckpoint(const GradedPredictor& predictor,
                              const std::string& spec,
                              std::vector<uint8_t>& out);

/** Legacy bool+string shim. */
[[nodiscard]] bool encodePredictorCheckpoint(const GradedPredictor& predictor,
                               const std::string& spec,
                               std::vector<uint8_t>& out,
                               std::string& error);

/**
 * Snapshot @p predictor into a Kind::Stream blob carrying the serving
 * position (@p stream_id, @p trace, @p consumed records served).
 * Failpoint site "ckpt.encode".
 */
Err encodeStreamCheckpoint(const GradedPredictor& predictor,
                           const std::string& spec, uint64_t stream_id,
                           const std::string& trace, uint64_t consumed,
                           std::vector<uint8_t>& out);

/** Legacy bool+string shim. */
[[nodiscard]] bool encodeStreamCheckpoint(const GradedPredictor& predictor,
                            const std::string& spec, uint64_t stream_id,
                            const std::string& trace, uint64_t consumed,
                            std::vector<uint8_t>& out,
                            std::string& error);

/**
 * Decode @p size bytes at @p data into @p out. Validates magic,
 * version, digest and structure; the Err taxonomy distinguishes
 * truncation, corruption (digest/magic/structure) and an unsupported
 * version. Does not touch any predictor. Failpoint site "ckpt.decode".
 */
Err decodeCheckpoint(const uint8_t* data, size_t size, Checkpoint& out);

/** Overload over a whole vector. */
Err decodeCheckpoint(const std::vector<uint8_t>& blob, Checkpoint& out);

/** Legacy bool+string shims. */
[[nodiscard]] bool decodeCheckpoint(const uint8_t* data, size_t size, Checkpoint& out,
                      std::string& error);
[[nodiscard]] bool decodeCheckpoint(const std::vector<uint8_t>& blob, Checkpoint& out,
                      std::string& error);

/**
 * Restore @p predictor (built from canonical @p spec) from the decoded
 * @p ck. Rejects a spec mismatch (Mismatch); on any failure the
 * predictor is left reset, never half-restored. The payload must be
 * consumed exactly — trailing bytes are an error.
 */
Err restoreFromCheckpoint(const Checkpoint& ck,
                          GradedPredictor& predictor,
                          const std::string& spec);

/** Legacy bool+string shim. */
[[nodiscard]] bool restoreFromCheckpoint(const Checkpoint& ck,
                           GradedPredictor& predictor,
                           const std::string& spec, std::string& error);

/**
 * FNV-1a-64 over the whole encoded blob — the state-hash fingerprint
 * the serving engine reports per stream and the golden checkpoint
 * tests pin.
 */
uint64_t checkpointDigest(const std::vector<uint8_t>& blob);

/**
 * Write @p blob to @p path crash-safely: the bytes land in
 * checkpointTempName(path), are flushed (fsync on POSIX) and the temp
 * file is renamed over @p path only once durable, so a reader never
 * observes a torn checkpoint under the final name. I/O failures are
 * ErrCode::Io — the one retryable code. Failpoint site "ckpt.write"
 * (an injected fault simulates a crash mid-write: a half-written .tmp
 * is left behind and the final file is never touched).
 */
Err writeCheckpointFile(const std::string& path,
                        const std::vector<uint8_t>& blob);

/** Legacy bool+string shim. */
[[nodiscard]] bool writeCheckpointFile(const std::string& path,
                         const std::vector<uint8_t>& blob,
                         std::string& error);

/**
 * Read @p path into @p out. A missing file is NotFound — callers
 * treating absence as "cold start" should check checkpointFileExists()
 * first; a short read is Io (retryable). Failpoint site "ckpt.read".
 */
Err readCheckpointFile(const std::string& path,
                       std::vector<uint8_t>& out);

/** Legacy bool+string shim. */
[[nodiscard]] bool readCheckpointFile(const std::string& path,
                        std::vector<uint8_t>& out, std::string& error);

/** True when @p path exists and is openable for reading. */
[[nodiscard]] bool checkpointFileExists(const std::string& path);

/** Conventional per-stream checkpoint file name ("stream-<id>.tcsp"). */
std::string streamCheckpointFileName(uint64_t stream_id);

/** In-progress temp name writeCheckpointFile() uses ("<path>.tmp"). */
std::string checkpointTempName(const std::string& path);

/**
 * True when @p path has a leftover in-progress temp file but no final
 * checkpoint — the signature of a crash mid-write. Restore paths
 * should warn and cold-start instead of failing.
 */
[[nodiscard]] bool staleCheckpointTempExists(const std::string& path);

} // namespace tagecon

#endif // TAGECON_SERVE_CHECKPOINT_HPP
