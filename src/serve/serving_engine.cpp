#include "serve/serving_engine.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <unordered_set>

#include "core/graded_predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"
#include "serve/checkpoint.hpp"
#include "sim/registry.hpp"
#include "sim/trace_registry.hpp"
#include "trace/trace_source.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/wall_clock.hpp"

namespace tagecon {

namespace StreamSet {

std::vector<StreamDesc>
roundRobin(uint64_t num_streams, const std::vector<std::string>& traces,
           uint64_t branches, uint64_t base_salt)
{
    std::vector<StreamDesc> out;
    if (traces.empty())
        return out;
    out.reserve(static_cast<size_t>(num_streams));
    for (uint64_t id = 0; id < num_streams; ++id) {
        StreamDesc d;
        d.id = id;
        d.trace = traces[static_cast<size_t>(id % traces.size())];
        d.branches = branches;
        // Golden-ratio increment decorrelates same-profile streams;
        // stream 0 keeps the canonical seed.
        d.seedSalt = base_salt ^ (id * 0x9E3779B97F4A7C15ULL);
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace StreamSet

namespace {

/** Serving-side state of one stream, owned by exactly one shard. */
struct StreamState {
    const StreamDesc* desc = nullptr;
    std::unique_ptr<TraceSource> trace;
    std::unique_ptr<GradedPredictor> predictor;

    /** Parked snapshot bytes while the predictor is evicted. */
    std::vector<uint8_t> parked;

    uint64_t consumed = 0;
    bool started = false;
    bool done = false;

    StreamResult result;
};

/** Prefix an Err's detail with the stream it belongs to. */
Err
streamErr(const StreamState& st, Err e)
{
    e.detail =
        "stream " + std::to_string(st.desc->id) + ": " + e.detail;
    return e;
}

/**
 * Everything one worker needs to process shards. Each stream's state
 * is owned by exactly one shard and one worker owns a whole shard at
 * a time, so StreamState needs no lock; the two cross-worker sinks —
 * the first-error slot and the pooled latency samples — are guarded
 * by their own mutexes, and -Wthread-safety checks every access.
 */
struct ServeShared {
    const ServeOptions* opts = nullptr;
    std::vector<StreamState>* streams = nullptr;
    const std::vector<std::vector<size_t>>* shardStreams = nullptr;
    std::atomic<size_t> nextShard{0};
    std::atomic<bool> failed{false};
    Mutex errorMutex;
    std::string error TAGECON_GUARDED_BY(errorMutex);
    Mutex latencyMutex;
    std::vector<double> latencyNs TAGECON_GUARDED_BY(latencyMutex);
};

/**
 * Cached obs registry handles for the serving hot path — one name
 * lookup per process, then a relaxed atomic per event. All counters
 * here are deterministic for a fixed workload configuration (streams,
 * spec, shards, pool, batch, faults): each shard is served by exactly
 * one worker in a fixed order, so the sums are independent of --jobs.
 */
struct ServeMetrics {
    obs::Counter& predictions = obs::counter("serve.predictions");
    obs::Counter& turns = obs::counter("serve.turns");
    obs::Counter& admissions = obs::counter("serve.pool.admissions");
    obs::Counter& evictions = obs::counter("serve.pool.evictions");
    obs::Counter& quarantines = obs::counter("serve.quarantines");
    obs::TimingHistogram& turnNs = obs::timingHistogram("serve.turn.ns");
};

ServeMetrics&
serveMetrics()
{
    static ServeMetrics* m = new ServeMetrics;
    return *m;
}

void
reportError(ServeShared& sh, const std::string& what)
{
    MutexLock lock(sh.errorMutex);
    if (sh.error.empty())
        sh.error = what;
    sh.failed.store(true, std::memory_order_relaxed);
}

/**
 * Run @p op, retrying retryable (Io) failures up to
 * ServeOptions::retryAttempts total attempts with exponential backoff.
 * Retries are charged to the stream (StreamResult::retries) so they
 * are visible per stream — and deterministic, because failpoint
 * schedules are a pure function of (rule, stream id, hit index).
 */
Err
withRetry(ServeShared& sh, StreamState& st,
          const std::function<Err()>& op)
{
    const unsigned attempts = std::max(1u, sh.opts->retryAttempts);
    for (unsigned attempt = 1;; ++attempt) {
        Err e = op();
        if (e.ok() || !errIsRetryable(e.code) || attempt >= attempts)
            return e;
        ++st.result.retries;
        const uint64_t delay = sh.opts->retryBaseDelayNs
                               << (attempt - 1);
        if (sh.opts->retrySleep)
            sh.opts->retrySleep(delay);
        else
            wallclock::sleepNanos(delay);
    }
}

/** Materialize (or re-materialize) a stream's live predictor. */
Err
admitStream(ServeShared& sh, StreamState& st)
{
    std::string error;
    st.predictor = tryMakePredictor(sh.opts->spec, &error);
    if (!st.predictor)
        return Err(ErrCode::BadSpec, "serve.admit", std::move(error));

    if (!st.parked.empty()) {
        StateReader in(st.parked);
        if (!st.predictor->restore(in, error) || !in.exhausted()) {
            return Err(ErrCode::Corrupt, "serve.admit",
                       "re-admission failed: " +
                           (error.empty() ? "trailing bytes" : error));
        }
        st.parked.clear();
        st.parked.shrink_to_fit();
        return {};
    }

    if (st.started)
        return {};
    st.started = true;

    // First admission: open the trace, then warm-start from a
    // restore-dir checkpoint when one exists.
    auto opened = openTraceSource(st.desc->trace, st.desc->branches,
                                  st.desc->seedSalt);
    if (!opened.ok())
        return opened.error();
    st.trace = opened.take();

    if (sh.opts->restoreDir.empty())
        return {};
    const std::string path = sh.opts->restoreDir + "/" +
                             streamCheckpointFileName(st.desc->id);
    if (!checkpointFileExists(path)) {
        // A leftover in-progress temp means the writer crashed
        // mid-checkpoint; the atomic rename guarantees nothing torn
        // sits under the final name, so cold-start and say so.
        if (staleCheckpointTempExists(path)) {
            warn("stream " + std::to_string(st.desc->id) +
                 ": stale in-progress checkpoint '" +
                 checkpointTempName(path) +
                 "' (crashed write?); cold-starting");
        }
        return {}; // cold start
    }

    std::vector<uint8_t> blob;
    if (Err e = withRetry(sh, st,
                          [&] {
                              return readCheckpointFile(path, blob);
                          });
        e.failed())
        return e;
    Checkpoint ck;
    if (Err e = decodeCheckpoint(blob, ck); e.failed())
        return e;
    if (ck.kind != Checkpoint::Kind::Stream ||
        ck.streamId != st.desc->id || ck.trace != st.desc->trace) {
        return Err(ErrCode::Mismatch, "ckpt.decode",
                   "checkpoint '" + path +
                       "' belongs to a different stream");
    }
    if (Err e = restoreFromCheckpoint(ck, *st.predictor, sh.opts->spec);
        e.failed())
        return e;

    // Skip the already-served trace prefix.
    BranchRecord rec;
    for (uint64_t i = 0; i < ck.consumed; ++i) {
        if (!st.trace->next(rec)) {
            if (const Err* te = st.trace->lastError())
                return *te;
            return Err(ErrCode::Truncated, "trace.read",
                       "checkpoint consumed " +
                           std::to_string(ck.consumed) +
                           " records but the trace is shorter");
        }
    }
    st.consumed = ck.consumed;
    st.result.resumedAt = ck.consumed;
    return {};
}

/** Park a live predictor as snapshot bytes. */
Err
evictStream(ServeShared& sh, StreamState& st)
{
    (void)sh;
    failpoints::KeyScope scope(st.desc->id);
    StateWriter w;
    std::string error;
    if (!st.predictor->snapshot(w, error))
        return Err(ErrCode::Unsupported, "serve.evict",
                   "eviction failed: " + error);
    st.parked = w.take();
    st.predictor.reset();
    return {};
}

/** Checkpoint / fingerprint a finished stream, then release it. */
Err
finalizeStream(ServeShared& sh, StreamState& st)
{
    const ServeOptions& opts = *sh.opts;
    st.result.allocations = st.predictor->allocations();
    if (!opts.checkpointDir.empty() || opts.computeDigests) {
        std::vector<uint8_t> blob;
        if (Err e = encodeStreamCheckpoint(*st.predictor, opts.spec,
                                           st.desc->id, st.desc->trace,
                                           st.consumed, blob);
            e.failed())
            return e;
        st.result.stateDigest = checkpointDigest(blob);
        st.result.checkpointBytes = blob.size();
        if (!opts.checkpointDir.empty()) {
            const std::string path =
                opts.checkpointDir + "/" +
                streamCheckpointFileName(st.desc->id);
            if (Err e = withRetry(sh, st,
                                  [&] {
                                      return writeCheckpointFile(path,
                                                                 blob);
                                  });
                e.failed())
                return e;
        }
    }
    st.predictor.reset();
    st.trace.reset();
    st.done = true;
    return {};
}

/**
 * Isolate a failed stream: record the fault, free its resources, mark
 * it done. Every other stream is untouched, so the rest of the serve
 * is bit-identical to one that never contained this stream.
 */
void
quarantineStream(StreamState& st, Err e)
{
    warn("stream " + std::to_string(st.desc->id) +
         " quarantined: " + e.message());
    st.result.status = StreamStatus::Quarantined;
    st.result.fault = std::move(e);
    serveMetrics().quarantines.add();
    st.predictor.reset();
    st.trace.reset();
    st.parked.clear();
    st.parked.shrink_to_fit();
    st.done = true;
}

/**
 * Serve every stream of one shard round-robin to exhaustion. Single
 * worker per shard, so no locking on stream state.
 */
/** predictMany() chunk size of a scheduling turn (batch may be huge). */
constexpr size_t kServeChunk = 512;

void
serveShard(ServeShared& sh, size_t shard_index,
           const std::vector<size_t>& members)
{
    TAGECON_SPAN("serve.shard", shard_index);
    const ServeOptions& opts = *sh.opts;
    ServeMetrics& metrics = serveMetrics();
    const size_t cap = opts.poolPerShard;
    std::deque<size_t> live; // admission order, for FIFO eviction
    std::vector<double> latency;

    auto eraseLive = [&live](size_t idx) {
        const auto it = std::find(live.begin(), live.end(), idx);
        if (it != live.end())
            live.erase(it);
    };

    // Strict mode aborts the serve on the first failure (returns
    // false); the default isolates it into the one stream.
    auto failStream = [&](StreamState& st, Err e) {
        if (opts.strict) {
            reportError(sh, streamErr(st, std::move(e)).message());
            return false;
        }
        quarantineStream(st, std::move(e));
        return true;
    };

    // Reused per-turn predictMany buffers.
    const size_t chunk = std::min<size_t>(kServeChunk, opts.batch);
    std::vector<uint64_t> pcs;
    std::vector<uint8_t> taken;
    std::vector<uint64_t> insns;
    std::vector<Prediction> preds(chunk);
    pcs.reserve(chunk);
    taken.reserve(chunk);
    insns.reserve(chunk);

    size_t remaining = members.size();
    while (remaining > 0) {
        if (sh.failed.load(std::memory_order_relaxed))
            return;
        for (size_t idx : members) {
            StreamState& st = (*sh.streams)[idx];
            if (st.done)
                continue;
            if (sh.failed.load(std::memory_order_relaxed))
                return;

            // Failpoint triggers key on the stream id, so injection
            // schedules are a function of each stream's own progress —
            // bit-reproducible at any --jobs / shard count.
            failpoints::KeyScope scope(st.desc->id);

            if (failpoints::anyArmed()) {
                if (auto injected =
                        failpoints::check("serve.worker.step")) {
                    eraseLive(idx);
                    if (!failStream(st, std::move(*injected)))
                        return;
                    --remaining;
                    continue;
                }
            }

            if (!st.predictor) {
                if (Err e = admitStream(sh, st); e.failed()) {
                    if (!failStream(st, std::move(e)))
                        return;
                    --remaining;
                    continue;
                }
                metrics.admissions.add();
                live.push_back(idx);
                while (cap != 0 && live.size() > cap) {
                    const size_t victim = live.front();
                    live.pop_front();
                    StreamState& vs = (*sh.streams)[victim];
                    metrics.evictions.add();
                    if (Err e = evictStream(sh, vs); e.failed()) {
                        // The victim, not the stream being admitted,
                        // is the one that failed.
                        if (!failStream(vs, std::move(e)))
                            return;
                        --remaining;
                    }
                }
            }

            const uint64_t start_ns = wallclock::monotonicNanos();
            BranchRecord rec;
            uint64_t n = 0;
            GradedPredictor& predictor = *st.predictor;
            ClassStats& stats = st.result.stats;
            BinaryConfidenceMetrics& confusion = st.result.confusion;
            if (opts.forceScalar) {
                while (n < opts.batch && st.trace->next(rec)) {
                    const Prediction p = predictor.predict(rec.pc);
                    const bool mispredicted = p.taken != rec.taken;
                    stats.record(p.cls, mispredicted,
                                 uint64_t{rec.instructionsBefore} + 1);
                    confusion.record(p.confidence ==
                                         ConfidenceLevel::High,
                                     !mispredicted);
                    predictor.update(rec.pc, p, rec.taken);
                    ++n;
                }
            } else {
                // Route the turn through the fused batched step in
                // chunks; the base-class fallback makes this the
                // scalar loop above for non-batched families, and
                // batched ones (TAGE) are bit-identical by contract.
                bool more = true;
                while (more && n < opts.batch) {
                    pcs.clear();
                    taken.clear();
                    insns.clear();
                    while (pcs.size() < chunk &&
                           n + pcs.size() < opts.batch &&
                           (more = st.trace->next(rec))) {
                        pcs.push_back(rec.pc);
                        taken.push_back(rec.taken ? 1 : 0);
                        insns.push_back(
                            uint64_t{rec.instructionsBefore} + 1);
                    }
                    const size_t filled = pcs.size();
                    if (filled == 0)
                        break;
                    predictor.predictMany(
                        std::span<const uint64_t>(pcs.data(), filled),
                        std::span<const uint8_t>(taken.data(), filled),
                        std::span<Prediction>(preds.data(), filled));
                    for (size_t k = 0; k < filled; ++k) {
                        const bool mispredicted =
                            preds[k].taken != (taken[k] != 0);
                        stats.record(preds[k].cls, mispredicted,
                                     insns[k]);
                        confusion.record(preds[k].confidence ==
                                             ConfidenceLevel::High,
                                         !mispredicted);
                    }
                    n += filled;
                }
            }
            st.consumed += n;
            st.result.branchesServed += n;
            metrics.turns.add();
            metrics.predictions.add(n);
            if (n > 0) {
                const uint64_t end_ns = wallclock::monotonicNanos();
                metrics.turnNs.record(end_ns - start_ns);
                const double elapsed_ns =
                    wallclock::nanosBetween(start_ns, end_ns);
                latency.push_back(elapsed_ns /
                                  static_cast<double>(n));
            }
            // A short turn means exhaustion — or a failed source;
            // check before treating the stream as cleanly finished.
            if (const Err* te = st.trace->lastError()) {
                eraseLive(idx);
                if (!failStream(st, *te))
                    return;
                --remaining;
                continue;
            }
            if (n < opts.batch) {
                eraseLive(idx);
                if (Err e = finalizeStream(sh, st); e.failed()) {
                    if (!failStream(st, std::move(e)))
                        return;
                }
                --remaining;
            }
        }
    }

    MutexLock lock(sh.latencyMutex);
    sh.latencyNs.insert(sh.latencyNs.end(), latency.begin(),
                        latency.end());
}

double
percentileOfSorted(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

ServingEngine::ServingEngine(ServeOptions opts) : opts_(std::move(opts))
{
}

bool
ServingEngine::validate(std::string* error)
{
    if (validated_)
        return true;
    std::string why;
    const std::string canonical = canonicalizeSpec(opts_.spec, &why);
    if (canonical.empty()) {
        if (error)
            *error = why;
        return false;
    }
    auto probe = tryMakePredictor(canonical, &why);
    if (!probe) {
        if (error)
            *error = why;
        return false;
    }
    const bool needs_snapshot = opts_.poolPerShard != 0 ||
                                !opts_.checkpointDir.empty() ||
                                !opts_.restoreDir.empty() ||
                                opts_.computeDigests;
    if (needs_snapshot) {
        StateWriter w;
        if (!probe->snapshot(w, why)) {
            if (error)
                *error = why +
                         " (use an unbounded pool and no "
                         "checkpointing to serve it anyway)";
            return false;
        }
    }
    if (opts_.batch == 0) {
        if (error)
            *error = "batch size must be at least 1";
        return false;
    }
    opts_.spec = canonical;
    validated_ = true;
    return true;
}

bool
ServingEngine::serve(const std::vector<StreamDesc>& streams,
                     ServeResult& out, std::string& error)
{
    out = ServeResult{};
    if (!validate(&error))
        return false;
    if (streams.empty()) {
        error = "no streams to serve";
        return false;
    }
    {
        std::unordered_set<uint64_t> ids;
        for (const auto& d : streams)
            if (!ids.insert(d.id).second) {
                error = "duplicate stream id " + std::to_string(d.id);
                return false;
            }
    }

    unsigned jobs = opts_.jobs != 0
                        ? opts_.jobs
                        : std::max(1u, std::thread::hardware_concurrency());
    unsigned shards = opts_.shards != 0 ? opts_.shards : 4 * jobs;

    std::vector<StreamState> states(streams.size());
    std::vector<std::vector<size_t>> shard_streams(shards);
    for (size_t i = 0; i < streams.size(); ++i) {
        states[i].desc = &streams[i];
        states[i].result.id = streams[i].id;
        states[i].result.trace = streams[i].trace;
        shard_streams[static_cast<size_t>(streams[i].id % shards)]
            .push_back(i);
    }

    ServeShared sh;
    sh.opts = &opts_;
    sh.streams = &states;
    sh.shardStreams = &shard_streams;

    const uint64_t wall_start_ns = wallclock::monotonicNanos();
    auto worker = [&sh, &shard_streams]() {
        for (;;) {
            const size_t shard =
                sh.nextShard.fetch_add(1, std::memory_order_relaxed);
            if (shard >= shard_streams.size())
                return;
            if (sh.failed.load(std::memory_order_relaxed))
                return;
            if (!shard_streams[shard].empty())
                serveShard(sh, shard, shard_streams[shard]);
        }
    };

    const unsigned workers =
        std::min<unsigned>(jobs, static_cast<unsigned>(shards));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            pool.emplace_back(worker);
        for (auto& t : pool)
            t.join();
    }
    const double wall = wallclock::secondsBetween(
        wall_start_ns, wallclock::monotonicNanos());

    if (sh.failed.load(std::memory_order_relaxed)) {
        // Workers are joined; the lock is for the annotated invariant
        // (and costs nothing uncontended).
        MutexLock lock(sh.errorMutex);
        error = sh.error;
        return false;
    }

    out.perStream.reserve(states.size());
    for (auto& st : states) {
        if (st.result.status == StreamStatus::Ok) {
            out.aggregate.merge(st.result.stats);
            out.confusion.merge(st.result.confusion);
            out.totalBranches += st.result.branchesServed;
            out.totalAllocations += st.result.allocations;
            ++out.streamsServed;
            if (st.result.resumedAt != 0)
                ++out.streamsRestored;
        } else {
            ++out.streamsQuarantined;
            out.quarantinedBranches += st.result.branchesServed;
        }
        out.totalRetries += st.result.retries;
        out.perStream.push_back(std::move(st.result));
    }
    // Stream-outcome counters, bumped here (single-threaded, input
    // order) rather than in the workers: same totals either way, but
    // this keeps the aggregation the one place outcome accounting
    // lives.
    obs::counter("serve.streams.ok").add(out.streamsServed);
    obs::counter("serve.streams.quarantined")
        .add(out.streamsQuarantined);
    obs::counter("serve.streams.restored").add(out.streamsRestored);
    obs::counter("serve.allocs").add(out.totalAllocations);
    obs::counter("serve.retries").add(out.totalRetries);
    {
        auto probe = tryMakePredictor(opts_.spec, nullptr);
        out.storageBits = probe ? probe->storageBits() : 0;
    }

    out.timing.wallSeconds = wall;
    if (wall > 0.0) {
        out.timing.streamsPerSec =
            static_cast<double>(out.streamsServed) / wall;
        out.timing.predictionsPerSec =
            static_cast<double>(out.totalBranches) / wall;
    }
    {
        // Workers are joined; locked for the annotated invariant.
        MutexLock lock(sh.latencyMutex);
        std::sort(sh.latencyNs.begin(), sh.latencyNs.end());
        out.timing.latencySamples = sh.latencyNs.size();
        out.timing.p50LatencyNs =
            percentileOfSorted(sh.latencyNs, 0.50);
        out.timing.p99LatencyNs =
            percentileOfSorted(sh.latencyNs, 0.99);
    }
    return true;
}

} // namespace tagecon
