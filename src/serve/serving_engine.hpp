/**
 * @file
 * Multi-stream serving engine: N independent prediction streams —
 * thousands of simulated "users", each with its own trace position and
 * predictor state — multiplexed over a fixed worker pool.
 *
 * Dispatch is sharded on stream id: stream i belongs to shard
 * i % shards, one worker owns a whole shard at a time (workers pull
 * shards off an atomic counter), so stream state needs no locking.
 * Within a shard, streams advance round-robin in batches of
 * ServeOptions::batch predictions. Predictor state is pooled per
 * shard: at most poolPerShard predictors are resident; the rest are
 * parked as snapshot() blobs and restored on re-admission — the
 * checkpoint layer doubles as the eviction format, so a 10k-stream
 * serve stays within a bounded memory footprint.
 *
 * Determinism: each stream's trajectory is a pure function of its
 * (spec, trace, branches, seedSalt) and snapshot/restore round-trips
 * are bit-exact, so per-stream results are identical at any --jobs,
 * shard count, pool bound or batch size. Wall-clock timing
 * (ServeTiming) is the only non-deterministic output and is kept
 * separate so drivers can diff the deterministic part byte for byte.
 *
 * Fault isolation: a stream whose trace or checkpoint I/O fails is
 * quarantined — its typed Err is recorded in StreamResult::fault, its
 * resources are freed, and every other stream completes bit-identical
 * to a serve that never contained the faulty stream. Retryable
 * (ErrCode::Io) checkpoint-dir failures get a bounded retry with
 * exponential backoff first. ServeOptions::strict restores the old
 * fail-fast behavior: the first stream error aborts the serve.
 */

#ifndef TAGECON_SERVE_SERVING_ENGINE_HPP
#define TAGECON_SERVE_SERVING_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/binary_metrics.hpp"
#include "core/class_stats.hpp"
#include "util/errors.hpp"

namespace tagecon {

/** One serving stream: an id plus its trace recipe. */
struct StreamDesc {
    /** Stable stream id (shard key and checkpoint file name). */
    uint64_t id = 0;

    /** Trace spec (profile name or "file:PATH"). */
    std::string trace;

    /** Branches to serve (generated, or replay cap for files). */
    uint64_t branches = 0;

    /** Seed salt for synthetic generation (ignored by files). */
    uint64_t seedSalt = 0;
};

/** Builders for common stream populations. */
namespace StreamSet {

/**
 * @p num_streams streams over @p traces round-robin (stream i serves
 * traces[i % traces.size()]), each @p branches long. Stream 0 keeps
 * the canonical seed (@p base_salt); every other stream perturbs it
 * with a per-id golden-ratio salt so "users" of the same profile see
 * distinct branch streams.
 */
std::vector<StreamDesc> roundRobin(uint64_t num_streams,
                                   const std::vector<std::string>& traces,
                                   uint64_t branches,
                                   uint64_t base_salt = 0);

} // namespace StreamSet

/** Execution knobs of a serve. */
struct ServeOptions {
    /** Registry spec every stream's predictor is built from. */
    std::string spec = "tage64k+sfc";

    /** Worker threads; 0 means hardware concurrency. */
    unsigned jobs = 1;

    /** Dispatch shards; 0 means 4 * jobs. */
    unsigned shards = 0;

    /**
     * Resident predictors per shard; streams beyond this are parked as
     * snapshot blobs between batches. 0 means unbounded (every stream
     * keeps a live predictor — fastest, largest footprint).
     */
    unsigned poolPerShard = 8;

    /** Predictions served per stream per scheduling turn. */
    unsigned batch = 512;

    /**
     * When non-empty, write each finished stream's state as
     * "<dir>/stream-<id>.tcsp" (Kind::Stream checkpoint blob).
     */
    std::string checkpointDir;

    /**
     * When non-empty, warm-start each stream from
     * "<dir>/stream-<id>.tcsp" if present: restore the predictor and
     * skip the already-consumed trace prefix. Missing files cold-start.
     */
    std::string restoreDir;

    /**
     * Compute each finished stream's checkpoint-blob digest
     * (StreamResult::stateDigest) even when not writing files.
     */
    bool computeDigests = false;

    /**
     * Serve with the scalar predict/update loop instead of routing
     * each scheduling turn through predictMany(). The two paths are
     * bit-identical by contract; CI diffs their outputs. Debug /
     * verification knob ("tagecon_serve --scalar").
     */
    bool forceScalar = false;

    /**
     * Fail fast: the first stream error aborts the whole serve (the
     * pre-quarantine behavior). Default is to quarantine the failed
     * stream and keep serving the rest.
     */
    bool strict = false;

    /**
     * Total attempts for retryable (ErrCode::Io) checkpoint-dir reads
     * and writes; 1 disables retry. Attempt k sleeps
     * retryBaseDelayNs * 2^(k-1) first.
     */
    unsigned retryAttempts = 3;

    /** Backoff before the first retry, in nanoseconds (then doubled). */
    uint64_t retryBaseDelayNs = 1'000'000;

    /**
     * Injectable backoff clock for tests: called with the delay in
     * nanoseconds instead of sleeping. Empty means really sleep.
     */
    std::function<void(uint64_t)> retrySleep;
};

/** Terminal state of one stream after a serve. */
enum class StreamStatus : uint8_t {
    Ok = 0,          ///< served to exhaustion
    Quarantined = 1, ///< failed and isolated; see StreamResult::fault
};

/** Outcome of serving one stream. */
struct StreamResult {
    uint64_t id = 0;
    std::string trace;

    /** Branches served this run (excludes a restored prefix). */
    uint64_t branchesServed = 0;

    /** Consumed count the stream was warm-started at (0 = cold). */
    uint64_t resumedAt = 0;

    /** Per-class statistics of the served branches. */
    ClassStats stats;

    /** Binary (high/low) confidence confusion. */
    BinaryConfidenceMetrics confusion;

    /**
     * FNV-1a-64 of the stream's final checkpoint blob, when digests or
     * checkpointing were requested; 0 otherwise.
     */
    uint64_t stateDigest = 0;

    /** Ok, or Quarantined with the reason in fault. */
    StreamStatus status = StreamStatus::Ok;

    /**
     * Why the stream was quarantined (fault.ok() for Ok streams). The
     * site field names the failing operation — injected faults and
     * real failures are indistinguishable here by design.
     */
    Err fault;

    /** Backoff retries spent on this stream's checkpoint-dir I/O. */
    uint32_t retries = 0;

    /**
     * Tagged-table entries the stream's predictor allocated over its
     * whole lifetime (GradedPredictor::allocations()). Serialized in
     * snapshots, so eviction/restore round-trips preserve it — a pure
     * function of the stream recipe, invariant to jobs/shards/pool.
     */
    uint64_t allocations = 0;

    /**
     * Size of the stream's final checkpoint blob in bytes, when
     * digests or checkpointing were requested; 0 otherwise. Blobs are
     * bit-identical across configs, so this is config-invariant too.
     */
    uint64_t checkpointBytes = 0;
};

/** Wall-clock throughput of a serve (non-deterministic). */
struct ServeTiming {
    double wallSeconds = 0.0;
    double streamsPerSec = 0.0;
    double predictionsPerSec = 0.0;

    /** Per-prediction latency percentiles over per-batch samples. */
    double p50LatencyNs = 0.0;
    double p99LatencyNs = 0.0;
    uint64_t latencySamples = 0;
};

/** Outcome of a whole serve. */
struct ServeResult {
    /** Per-stream results, in input stream order. */
    std::vector<StreamResult> perStream;

    /**
     * Pooled statistics over every branch of every Ok stream.
     * Quarantined streams' partial progress is excluded, so these
     * match a serve that never contained the faulty streams.
     */
    ClassStats aggregate;

    /** Pooled binary confidence confusion (Ok streams only). */
    BinaryConfidenceMetrics confusion;

    /** Branches served by Ok streams. */
    uint64_t totalBranches = 0;

    /** Streams that finished Ok. */
    uint64_t streamsServed = 0;

    /** Streams quarantined (streamsServed + this = input size). */
    uint64_t streamsQuarantined = 0;

    /** Partial branches served by quarantined streams before failing. */
    uint64_t quarantinedBranches = 0;

    /** Backoff retries spent across all streams. */
    uint64_t totalRetries = 0;

    /** Streams warm-started from a restore-dir checkpoint. */
    uint64_t streamsRestored = 0;

    /** Lifetime predictor allocations summed over Ok streams. */
    uint64_t totalAllocations = 0;

    /** Per-predictor storage in bits (one stream's predictor). */
    uint64_t storageBits = 0;

    ServeTiming timing;
};

/** Sharded multi-stream serving engine. */
class ServingEngine
{
  public:
    explicit ServingEngine(ServeOptions opts);

    /**
     * Check the options: the spec must be constructible, and snapshot
     * support is required whenever the pool is bounded or
     * checkpoint/restore/digests are requested. Returns false with the
     * reason in @p error. serve() calls this implicitly.
     */
    [[nodiscard]] bool validate(std::string* error = nullptr);

    /** The options, with spec canonicalized after validate(). */
    const ServeOptions& options() const { return opts_; }

    /**
     * Serve @p streams to exhaustion. Returns false with the reason in
     * @p error on invalid options, duplicate stream ids, or — in
     * strict mode only — the first stream failure. Otherwise a failing
     * stream is quarantined (StreamResult::status / fault) and serve()
     * still returns true. Results are in @p streams order regardless
     * of jobs/shards/pool/batch.
     */
    [[nodiscard]] bool serve(const std::vector<StreamDesc>& streams,
                             ServeResult& out, std::string& error);

  private:
    ServeOptions opts_;
    bool validated_ = false;
};

} // namespace tagecon

#endif // TAGECON_SERVE_SERVING_ENGINE_HPP
