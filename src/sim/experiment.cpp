#include "sim/experiment.hpp"

#include "core/confidence_observer.hpp"
#include "tage/tage_predictor.hpp"
#include "util/logging.hpp"

namespace tagecon {

RunResult
runTrace(TraceSource& trace, const RunConfig& cfg)
{
    if (cfg.adaptive && !cfg.predictor.probabilisticSaturation)
        fatal("adaptive runs require probabilisticSaturation");

    TagePredictor predictor(cfg.predictor);
    ConfidenceObserver observer(cfg.bimWindow);
    AdaptiveProbabilityController controller(cfg.adaptiveConfig);
    if (cfg.adaptive)
        predictor.setSatLog2Prob(controller.log2Prob());

    RunResult result;
    result.traceName = trace.name();
    result.configName = cfg.predictor.name;

    BranchRecord rec;
    while (trace.next(rec)) {
        const TagePrediction p = predictor.predict(rec.pc);
        const PredictionClass cls = observer.classify(p);
        const bool mispredicted = p.taken != rec.taken;

        result.stats.record(cls, mispredicted,
                            uint64_t{rec.instructionsBefore} + 1);
        observer.onResolve(p, rec.taken);

        if (cfg.adaptive &&
            controller.record(confidenceLevel(cls), mispredicted)) {
            predictor.setSatLog2Prob(controller.log2Prob());
        }

        predictor.update(rec.pc, p, rec.taken);
    }

    result.finalLog2Prob = predictor.satLog2Prob();
    result.allocations = predictor.allocations();
    return result;
}

SetResult
runBenchmarkSet(BenchmarkSet set, const RunConfig& cfg,
                uint64_t branches_per_trace)
{
    SetResult sr;
    sr.set = set;
    double mpki_sum = 0.0;
    for (const auto& name : traceNames(set)) {
        SyntheticTrace trace = makeTrace(name, branches_per_trace);
        RunResult rr = runTrace(trace, cfg);
        sr.aggregate.merge(rr.stats);
        mpki_sum += rr.stats.mpki();
        sr.perTrace.push_back(std::move(rr));
    }
    sr.meanMpki = sr.perTrace.empty()
                      ? 0.0
                      : mpki_sum / static_cast<double>(sr.perTrace.size());
    return sr;
}

RunResult
runNamedTrace(const std::string& trace_name, const RunConfig& cfg,
              uint64_t branches)
{
    SyntheticTrace trace = makeTrace(trace_name, branches);
    return runTrace(trace, cfg);
}

} // namespace tagecon
