#include "sim/experiment.hpp"

#include <span>
#include <vector>

#include "sim/registry.hpp"
#include "tage/graded_tage.hpp"
#include "util/logging.hpp"

namespace tagecon {

namespace {

/** Accumulate one trace run into a set-level result. */
void
foldIntoSet(SetResult& sr, RunResult&& rr, double& mpki_sum)
{
    sr.aggregate.merge(rr.stats);
    sr.confusion.merge(rr.confusion);
    // ordered-reduction: callers fold traces serially in set order.
    mpki_sum += rr.stats.mpki();
    sr.perTrace.push_back(std::move(rr));
}

void
finishSet(SetResult& sr, double mpki_sum)
{
    sr.meanMpki = sr.perTrace.empty()
                      ? 0.0
                      : mpki_sum / static_cast<double>(sr.perTrace.size());
}

} // namespace

namespace {

/** Internal batch size of runTrace()'s predictMany() fast path. */
constexpr size_t kTraceBatch = 512;

} // namespace

RunResult
runTrace(TraceSource& trace, GradedPredictor& predictor)
{
    RunResult result;
    result.traceName = trace.name();
    result.configName = predictor.name();

    BranchRecord rec;
    if (predictor.hasBatchedPredict()) {
        // Batched inner loop: buffer up to kTraceBatch resolved
        // branches and run them through the fused batched step, which
        // is bit-identical to the scalar loop below. Stats are folded
        // in the same element order, so the result is unchanged.
        std::vector<uint64_t> pcs;
        std::vector<uint8_t> taken;
        std::vector<uint64_t> insns;
        std::vector<Prediction> preds(kTraceBatch);
        pcs.reserve(kTraceBatch);
        taken.reserve(kTraceBatch);
        insns.reserve(kTraceBatch);
        bool more = true;
        while (more) {
            pcs.clear();
            taken.clear();
            insns.clear();
            while (pcs.size() < kTraceBatch && (more = trace.next(rec))) {
                pcs.push_back(rec.pc);
                taken.push_back(rec.taken ? 1 : 0);
                insns.push_back(uint64_t{rec.instructionsBefore} + 1);
            }
            const size_t n = pcs.size();
            if (n == 0)
                break;
            predictor.predictMany(
                std::span<const uint64_t>(pcs.data(), n),
                std::span<const uint8_t>(taken.data(), n),
                std::span<Prediction>(preds.data(), n));
            for (size_t k = 0; k < n; ++k) {
                const bool mispredicted =
                    preds[k].taken != (taken[k] != 0);
                result.stats.record(preds[k].cls, mispredicted,
                                    insns[k]);
                result.confusion.record(preds[k].confidence ==
                                            ConfidenceLevel::High,
                                        !mispredicted);
            }
        }
    } else {
        while (trace.next(rec)) {
            const Prediction p = predictor.predict(rec.pc);
            const bool mispredicted = p.taken != rec.taken;

            result.stats.record(p.cls, mispredicted,
                                uint64_t{rec.instructionsBefore} + 1);
            result.confusion.record(
                p.confidence == ConfidenceLevel::High, !mispredicted);

            predictor.update(rec.pc, p, rec.taken);
        }
    }

    result.finalLog2Prob = predictor.satLog2Prob();
    result.allocations = predictor.allocations();
    result.storageBits = predictor.storageBits();
    return result;
}

RunResult
runTrace(TraceSource& trace, GradedPredictor& predictor,
         ObserverList& observers)
{
    // Zero-cost when absent: the plain loop carries no observer
    // dispatch at all, and the micro-bench gate holds trivially.
    if (observers.empty())
        return runTrace(trace, predictor);

    RunResult result;
    result.traceName = trace.name();
    result.configName = predictor.name();

    BranchRecord rec;
    uint64_t index = 0;
    while (trace.next(rec)) {
        const Prediction p = predictor.predict(rec.pc);
        const bool mispredicted = p.taken != rec.taken;
        const uint64_t instructions =
            uint64_t{rec.instructionsBefore} + 1;

        result.stats.record(p.cls, mispredicted, instructions);
        result.confusion.record(
            p.confidence == ConfidenceLevel::High, !mispredicted);

        const ObservedPrediction observed{
            rec.pc, p, rec.taken, mispredicted, instructions, index};
        for (auto& observer : observers)
            observer->onPrediction(observed);

        predictor.update(rec.pc, p, rec.taken);
        ++index;
    }

    for (auto& observer : observers)
        observer->finish(result.analysis);

    result.finalLog2Prob = predictor.satLog2Prob();
    result.allocations = predictor.allocations();
    result.storageBits = predictor.storageBits();
    return result;
}

RunResult
runTrace(TraceSource& trace, GradedPredictor& predictor,
         const AnalysisConfig& analysis)
{
    if (!analysis.enabled())
        return runTrace(trace, predictor);
    ObserverList observers = buildObservers(analysis);
    return runTrace(trace, predictor, observers);
}

SetResult
runBenchmarkSet(BenchmarkSet set, const std::string& spec,
                uint64_t branches_per_trace, uint64_t seed_salt)
{
    SetResult sr;
    sr.set = set;
    double mpki_sum = 0.0;
    for (const auto& name : traceNames(set)) {
        SyntheticTrace trace =
            makeTrace(name, branches_per_trace, seed_salt);
        auto predictor = makePredictor(spec);
        foldIntoSet(sr, runTrace(trace, *predictor), mpki_sum);
    }
    finishSet(sr, mpki_sum);
    return sr;
}

RunResult
runNamedTrace(const std::string& trace_name, const std::string& spec,
              uint64_t branches, uint64_t seed_salt)
{
    SyntheticTrace trace = makeTrace(trace_name, branches, seed_salt);
    auto predictor = makePredictor(spec);
    return runTrace(trace, *predictor);
}

RunResult
runSets(const std::vector<BenchmarkSet>& sets, const std::string& spec,
        uint64_t branches_per_trace, uint64_t seed_salt)
{
    RunResult pooled;
    pooled.configName = canonicalizeSpec(spec);
    std::string names;
    for (const BenchmarkSet set : sets) {
        names += (names.empty() ? "" : "+") + benchmarkSetName(set);
        const SetResult sr =
            runBenchmarkSet(set, spec, branches_per_trace, seed_salt);
        pooled.stats.merge(sr.aggregate);
        pooled.confusion.merge(sr.confusion);
        if (!sr.perTrace.empty())
            pooled.storageBits = sr.perTrace.back().storageBits;
    }
    pooled.traceName = names;
    return pooled;
}

RunResult
runTrace(TraceSource& trace, const RunConfig& cfg)
{
    if (cfg.adaptive && !cfg.predictor.probabilisticSaturation)
        fatal("adaptive runs require probabilisticSaturation");

    GradedTageOptions opt;
    opt.bimWindow = cfg.bimWindow;
    opt.adaptive = cfg.adaptive;
    opt.adaptiveConfig = cfg.adaptiveConfig;
    GradedTage predictor(cfg.predictor, opt);

    RunResult result = runTrace(trace, predictor);
    result.configName = cfg.predictor.name;
    return result;
}

SetResult
runBenchmarkSet(BenchmarkSet set, const RunConfig& cfg,
                uint64_t branches_per_trace, uint64_t seed_salt)
{
    SetResult sr;
    sr.set = set;
    double mpki_sum = 0.0;
    for (const auto& name : traceNames(set)) {
        SyntheticTrace trace =
            makeTrace(name, branches_per_trace, seed_salt);
        foldIntoSet(sr, runTrace(trace, cfg), mpki_sum);
    }
    finishSet(sr, mpki_sum);
    return sr;
}

RunResult
runNamedTrace(const std::string& trace_name, const RunConfig& cfg,
              uint64_t branches, uint64_t seed_salt)
{
    SyntheticTrace trace = makeTrace(trace_name, branches, seed_salt);
    return runTrace(trace, cfg);
}

} // namespace tagecon
