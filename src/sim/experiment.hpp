/**
 * @file
 * Trace-driven experiment driver: runs a TAGE predictor with the
 * storage-free confidence observer over traces and benchmark sets,
 * producing the per-class statistics every table and figure of the
 * paper is built from.
 */

#ifndef TAGECON_SIM_EXPERIMENT_HPP
#define TAGECON_SIM_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "core/adaptive_probability.hpp"
#include "core/class_stats.hpp"
#include "tage/tage_config.hpp"
#include "trace/profiles.hpp"
#include "trace/trace_source.hpp"

namespace tagecon {

/** Everything that parameterizes one simulation run. */
struct RunConfig {
    /** Predictor configuration (Sec. 4 sizes or custom). */
    TageConfig predictor;

    /** medium-conf-bim burst window (Sec. 5.1.2); paper uses 8. */
    int bimWindow = 8;

    /**
     * Drive the saturation probability with the adaptive controller of
     * Sec. 6.2. Requires predictor.probabilisticSaturation.
     */
    bool adaptive = false;

    /** Controller parameters when adaptive is set. */
    AdaptiveProbabilityController::Config adaptiveConfig{};
};

/** Outcome of simulating one trace. */
struct RunResult {
    std::string traceName;
    std::string configName;

    /** Per-class and total statistics. */
    ClassStats stats;

    /** Final log2(1/p) (only interesting for adaptive runs). */
    unsigned finalLog2Prob = 0;

    /** Tagged entry allocations performed by the predictor. */
    uint64_t allocations = 0;
};

/** Outcome of simulating a whole benchmark set. */
struct SetResult {
    BenchmarkSet set;

    /** One result per trace, in the set's canonical order. */
    std::vector<RunResult> perTrace;

    /** Pooled statistics over all branches of the set. */
    ClassStats aggregate;

    /** Arithmetic mean of per-trace MPKI (the paper's misp/KI rows). */
    double meanMpki = 0.0;
};

/** Simulate @p trace (from its current position) under @p cfg. */
RunResult runTrace(TraceSource& trace, const RunConfig& cfg);

/**
 * Simulate every trace of @p set, generating each synthetically with
 * @p branches_per_trace branches.
 */
SetResult runBenchmarkSet(BenchmarkSet set, const RunConfig& cfg,
                          uint64_t branches_per_trace);

/**
 * Simulate one named trace generated with @p branches branches.
 */
RunResult runNamedTrace(const std::string& trace_name, const RunConfig& cfg,
                        uint64_t branches);

} // namespace tagecon

#endif // TAGECON_SIM_EXPERIMENT_HPP
