/**
 * @file
 * Trace-driven experiment driver. One generic loop — runTrace(trace,
 * predictor) — drives any GradedPredictor built by hand or through the
 * registry (sim/registry.hpp) over any TraceSource, producing the
 * per-class statistics every table and figure of the paper is built
 * from plus the binary (high/low) confidence confusion the comparison
 * benches score with.
 *
 * The original TAGE-specific entry points (RunConfig overloads) are
 * kept and are now thin shims over the generic loop.
 */

#ifndef TAGECON_SIM_EXPERIMENT_HPP
#define TAGECON_SIM_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "analysis/analysis_config.hpp"
#include "analysis/run_analysis.hpp"
#include "analysis/run_observer.hpp"
#include "core/adaptive_probability.hpp"
#include "core/binary_metrics.hpp"
#include "core/class_stats.hpp"
#include "core/graded_predictor.hpp"
#include "tage/tage_config.hpp"
#include "trace/profiles.hpp"
#include "trace/trace_source.hpp"

namespace tagecon {

/** Everything that parameterizes one TAGE simulation run (legacy). */
struct RunConfig {
    /** Predictor configuration (Sec. 4 sizes or custom). */
    TageConfig predictor;

    /** medium-conf-bim burst window (Sec. 5.1.2); paper uses 8. */
    int bimWindow = 8;

    /**
     * Drive the saturation probability with the adaptive controller of
     * Sec. 6.2. Requires predictor.probabilisticSaturation.
     */
    bool adaptive = false;

    /** Controller parameters when adaptive is set. */
    AdaptiveProbabilityController::Config adaptiveConfig{};
};

/** Outcome of simulating one trace. */
struct RunResult {
    std::string traceName;

    /** Predictor display name (the registry spec for spec-built runs). */
    std::string configName;

    /** Per-class and total statistics. */
    ClassStats stats;

    /**
     * 2x2 confusion between (high confidence / not) and (correct /
     * mispredicted) — the SENS/PVP/SPEC/PVN inputs.
     */
    BinaryConfidenceMetrics confusion;

    /** Final log2(1/p) (only interesting for adaptive runs). */
    unsigned finalLog2Prob = 0;

    /** Tagged entry allocations performed by the predictor. */
    uint64_t allocations = 0;

    /** Predictor storage in bits, including any attached estimator. */
    uint64_t storageBits = 0;

    /**
     * Results of the run-analysis observers attached to the run
     * (empty for plain runs, which stay on the zero-overhead loop).
     */
    RunAnalysis analysis;
};

/** Outcome of simulating a whole benchmark set. */
struct SetResult {
    BenchmarkSet set;

    /** One result per trace, in the set's canonical order. */
    std::vector<RunResult> perTrace;

    /** Pooled statistics over all branches of the set. */
    ClassStats aggregate;

    /** Pooled binary confidence confusion over the set. */
    BinaryConfidenceMetrics confusion;

    /** Arithmetic mean of per-trace MPKI (the paper's misp/KI rows). */
    double meanMpki = 0.0;
};

// ------------------------------------------------- generic drive loop

/**
 * Simulate @p trace (from its current position) on @p predictor — the
 * single generic loop every experiment goes through.
 */
RunResult runTrace(TraceSource& trace, GradedPredictor& predictor);

/**
 * Like runTrace() but with a run-analysis pipeline attached: every
 * graded, resolved prediction is fed to @p observers (in list order,
 * after the run statistics are recorded, before the predictor's
 * update), and each observer's results land in RunResult::analysis.
 * An empty list delegates to the plain zero-overhead loop.
 */
RunResult runTrace(TraceSource& trace, GradedPredictor& predictor,
                   ObserverList& observers);

/**
 * Like runTrace() but building the observer pipeline described by
 * @p analysis fresh for this run. A disabled config delegates to the
 * plain zero-overhead loop.
 */
RunResult runTrace(TraceSource& trace, GradedPredictor& predictor,
                   const AnalysisConfig& analysis);

/**
 * Simulate every trace of @p set on a fresh registry-built @p spec
 * predictor per trace, generating each trace synthetically with
 * @p branches_per_trace branches. @p seed_salt perturbs every trace's
 * profile seed (0 = the profiles' canonical streams).
 */
SetResult runBenchmarkSet(BenchmarkSet set, const std::string& spec,
                          uint64_t branches_per_trace,
                          uint64_t seed_salt = 0);

/**
 * Simulate one named synthetic trace of @p branches branches on a
 * fresh registry-built @p spec predictor.
 */
RunResult runNamedTrace(const std::string& trace_name,
                        const std::string& spec, uint64_t branches,
                        uint64_t seed_salt = 0);

/**
 * Simulate @p spec over every trace of several benchmark sets (fresh
 * predictor per trace) and pool everything into one RunResult — the
 * shape of the cross-set comparison benches.
 */
RunResult runSets(const std::vector<BenchmarkSet>& sets,
                  const std::string& spec, uint64_t branches_per_trace,
                  uint64_t seed_salt = 0);

// ------------------------------------------- legacy TAGE entry points

/** Simulate @p trace (from its current position) under @p cfg. */
RunResult runTrace(TraceSource& trace, const RunConfig& cfg);

/**
 * Simulate every trace of @p set, generating each synthetically with
 * @p branches_per_trace branches.
 */
SetResult runBenchmarkSet(BenchmarkSet set, const RunConfig& cfg,
                          uint64_t branches_per_trace,
                          uint64_t seed_salt = 0);

/**
 * Simulate one named trace generated with @p branches branches.
 */
RunResult runNamedTrace(const std::string& trace_name, const RunConfig& cfg,
                        uint64_t branches, uint64_t seed_salt = 0);

} // namespace tagecon

#endif // TAGECON_SIM_EXPERIMENT_HPP
