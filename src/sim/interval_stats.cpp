#include "sim/interval_stats.hpp"

#include "util/logging.hpp"

namespace tagecon {

IntervalRecorder::IntervalRecorder(uint64_t interval_length)
    : length_(interval_length)
{
    if (length_ == 0)
        fatal("interval length must be positive");
}

void
IntervalRecorder::record(PredictionClass c, bool mispredicted,
                         uint64_t instructions)
{
    current_.record(c, mispredicted, instructions);
    if (++inCurrent_ >= length_) {
        done_.push_back(current_);
        current_ = ClassStats{};
        inCurrent_ = 0;
    }
}

} // namespace tagecon
