/**
 * @file
 * Interval (windowed) statistics: per-class stats collected over
 * fixed-length windows of the branch stream. Used to observe the
 * predictor's warming behaviour — Sec. 5.1 attributes the BIM-class
 * mispredictions to "the warming phase of the predictor" and to
 * capacity-problem phases, both of which are time-local phenomena that
 * whole-trace averages hide.
 */

#ifndef TAGECON_SIM_INTERVAL_STATS_HPP
#define TAGECON_SIM_INTERVAL_STATS_HPP

#include <cstdint>
#include <vector>

#include "core/class_stats.hpp"

namespace tagecon {

/**
 * Splits a stream of graded, resolved predictions into consecutive
 * fixed-length intervals and keeps a ClassStats per interval.
 */
class IntervalRecorder
{
  public:
    /** @param interval_length Predictions per interval; must be > 0. */
    explicit IntervalRecorder(uint64_t interval_length);

    /** Record one graded resolved prediction (see ClassStats). */
    void record(PredictionClass c, bool mispredicted,
                uint64_t instructions);

    /** Completed intervals, in stream order. */
    const std::vector<ClassStats>& intervals() const { return done_; }

    /** The currently filling (incomplete) interval. */
    const ClassStats& current() const { return current_; }

    /** Predictions per interval. */
    uint64_t intervalLength() const { return length_; }

    /** Number of completed intervals. */
    size_t completed() const { return done_.size(); }

  private:
    uint64_t length_;
    uint64_t inCurrent_ = 0;
    ClassStats current_;
    std::vector<ClassStats> done_;
};

} // namespace tagecon

#endif // TAGECON_SIM_INTERVAL_STATS_HPP
