#include "sim/registry.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "baseline/graded_baselines.hpp"
#include "core/estimators.hpp"
#include "tage/graded_tage.hpp"
#include "util/logging.hpp"
#include "util/text.hpp"

namespace tagecon {

namespace {

/** Split @p spec on '+'; empty tokens are malformed. */
bool
splitSpec(const std::string& spec, std::vector<std::string>& tokens,
          std::string& error)
{
    std::stringstream ss(toLower(spec));
    std::string tok;
    while (std::getline(ss, tok, '+')) {
        if (tok.empty()) {
            error = "malformed spec '" + spec + "': empty token";
            return false;
        }
        tokens.push_back(tok);
    }
    if (tokens.empty()) {
        error = "empty predictor spec";
        return false;
    }
    return true;
}

/** Reject the TAGE-only modifiers on a non-TAGE base. */
bool
rejectModifiers(const std::string& name, const SpecModifiers& mods,
                std::string& error)
{
    if (mods.prob || mods.adaptive) {
        error = "modifiers prob/adaptive only apply to the tage "
                "family, not to '" +
                name + "'";
        return false;
    }
    return true;
}

/**
 * Apply the TAGE-family parameter keys to a named budget's geometry
 * and build the config. Shared by the tage* and ltage* factories.
 *
 * Keys: tables, logent, tag, minhist, maxhist, logbim, bimctr, ctr
 * (tagged counter bits), ubits (useful counter bits), ualt
 * (USE_ALT_ON_NA on/off).
 */
bool
buildTageConfig(const TageGeometry& base_geometry, const SpecParams& p,
                TageConfig& out, std::string& error)
{
    TageGeometry g = base_geometry;
    g.numTables = static_cast<int>(
        p.getInt("tables", g.numTables, 1, kMaxTaggedTables));
    g.logEntries =
        static_cast<int>(p.getInt("logent", g.logEntries, 1, 24));
    g.tagBits = static_cast<int>(p.getInt("tag", g.tagBits, 2, 16));
    g.minHistory =
        static_cast<int>(p.getInt("minhist", g.minHistory, 1, 4000));
    g.maxHistory =
        static_cast<int>(p.getInt("maxhist", g.maxHistory, 1, 4000));
    g.logBimodalEntries = static_cast<int>(
        p.getInt("logbim", g.logBimodalEntries, 1, 24));

    const int bim_ctr = static_cast<int>(p.getInt("bimctr", 2, 1, 8));
    const int ctr = static_cast<int>(p.getInt("ctr", 3, 2, 8));
    const int ubits = static_cast<int>(p.getInt("ubits", 2, 1, 8));
    const bool ualt = p.getBool("ualt", true);

    // The tagged arena packs ctr and u into one byte; reject spec
    // combinations that cannot, before TageConfig::validate() would
    // make the same complaint fatal.
    if (ctr + ubits > 8) {
        error = "ctr=" + std::to_string(ctr) + " and ubits=" +
                std::to_string(ubits) +
                " do not pack into one byte (ctr + ubits must be <= 8)";
        return false;
    }

    // Surface a malformed value as this factory's own error so it is
    // reported ahead of any modifier problem, and skip constructing a
    // predictor that is already disqualified.
    if (!p.error().empty()) {
        error = p.error();
        return false;
    }

    // The rounded geometric series needs one strictly-increasing
    // length per table; check here so fromGeometry cannot fatal().
    if (g.maxHistory < g.minHistory + g.numTables - 1) {
        error = "maxhist " + std::to_string(g.maxHistory) +
                " too short for " + std::to_string(g.numTables) +
                " tables starting at minhist " +
                std::to_string(g.minHistory);
        return false;
    }

    out = TageConfig::fromGeometry("custom", g);
    out.bimodalCtrBits = bim_ctr;
    out.taggedCtrBits = ctr;
    out.usefulBits = ubits;
    out.useAltOnNa = ualt;
    return true;
}

std::unique_ptr<GradedPredictor>
makeTageBase(const TageGeometry& geometry, const SpecParams& params,
             const SpecModifiers& mods, std::string& error)
{
    TageConfig cfg;
    if (!buildTageConfig(geometry, params, cfg, error))
        return nullptr;
    if (mods.prob)
        cfg = cfg.withProbabilisticSaturation(mods.probLog2);
    if (mods.adaptive && !cfg.probabilisticSaturation) {
        error = "adaptive requires probabilisticSaturation "
                "(add +prob to the spec)";
        return nullptr;
    }
    GradedTageOptions opt;
    opt.adaptive = mods.adaptive;
    return std::make_unique<GradedTage>(std::move(cfg), opt);
}

std::unique_ptr<GradedPredictor>
makeLTageBase(const TageGeometry& geometry, const SpecParams& params,
              const SpecModifiers& mods, std::string& error)
{
    if (mods.adaptive) {
        error = "adaptive is not supported on ltage bases";
        return nullptr;
    }
    TageConfig cfg;
    if (!buildTageConfig(geometry, params, cfg, error))
        return nullptr;
    if (mods.prob)
        cfg = cfg.withProbabilisticSaturation(mods.probLog2);
    return std::make_unique<GradedLTage>(std::move(cfg));
}

/** Registry entries for a named TAGE / L-TAGE budget. */
PredictorBaseFactory
tageFactory(TageGeometry geometry)
{
    return [geometry](const SpecParams& p, const SpecModifiers& m,
                      std::string& e) {
        return makeTageBase(geometry, p, m, e);
    };
}

PredictorBaseFactory
ltageFactory(TageGeometry geometry)
{
    return [geometry](const SpecParams& p, const SpecModifiers& m,
                      std::string& e) {
        return makeLTageBase(geometry, p, m, e);
    };
}

std::map<std::string, PredictorBaseFactory>&
baseRegistry()
{
    static std::map<std::string, PredictorBaseFactory> registry = [] {
        std::map<std::string, PredictorBaseFactory> r;
        r["tage16k"] = tageFactory(TageConfig::geometry16K());
        r["tage64k"] = tageFactory(TageConfig::geometry64K());
        r["tage256k"] = tageFactory(TageConfig::geometry256K());
        r["ltage16k"] = ltageFactory(TageConfig::geometry16K());
        r["ltage64k"] = ltageFactory(TageConfig::geometry64K());
        r["ltage256k"] = ltageFactory(TageConfig::geometry256K());
        r["gshare"] = [](const SpecParams& p, const SpecModifiers& m,
                         std::string& e)
            -> std::unique_ptr<GradedPredictor> {
            if (!rejectModifiers("gshare", m, e))
                return nullptr;
            const int entries =
                static_cast<int>(p.getInt("entries", 15, 1, 24));
            const int hist =
                static_cast<int>(p.getInt("hist", 15, 1, 64));
            const int ctr = static_cast<int>(p.getInt("ctr", 2, 1, 8));
            return std::make_unique<GradedGshare>(entries, hist, ctr);
        };
        r["bimodal"] = [](const SpecParams& p, const SpecModifiers& m,
                          std::string& e)
            -> std::unique_ptr<GradedPredictor> {
            if (!rejectModifiers("bimodal", m, e))
                return nullptr;
            const int entries =
                static_cast<int>(p.getInt("entries", 15, 1, 24));
            const int ctr = static_cast<int>(p.getInt("ctr", 2, 1, 8));
            return std::make_unique<GradedBimodal>(entries, ctr);
        };
        r["perceptron"] = [](const SpecParams& p,
                             const SpecModifiers& m, std::string& e)
            -> std::unique_ptr<GradedPredictor> {
            if (!rejectModifiers("perceptron", m, e))
                return nullptr;
            const int perceptrons =
                static_cast<int>(p.getInt("perceptrons", 9, 1, 20));
            const int hist =
                static_cast<int>(p.getInt("hist", 32, 1, 64));
            return std::make_unique<GradedPerceptron>(perceptrons,
                                                      hist);
        };
        r["ogehl"] = [](const SpecParams& p, const SpecModifiers& m,
                        std::string& e)
            -> std::unique_ptr<GradedPredictor> {
            if (!rejectModifiers("ogehl", m, e))
                return nullptr;
            OgehlPredictor::Config cfg;
            cfg.numTables = static_cast<int>(
                p.getInt("tables", cfg.numTables, 2, 16));
            cfg.logEntries = static_cast<int>(
                p.getInt("entries", cfg.logEntries, 4, 20));
            cfg.ctrBits =
                static_cast<int>(p.getInt("ctr", cfg.ctrBits, 2, 8));
            cfg.minHistory = static_cast<int>(
                p.getInt("minhist", cfg.minHistory, 1, 4000));
            cfg.maxHistory = static_cast<int>(
                p.getInt("maxhist", cfg.maxHistory, 1, 4000));
            cfg.initialTheta = static_cast<int>(
                p.getInt("theta", cfg.initialTheta, 1, 1024));
            if (!p.error().empty()) {
                e = p.error();
                return nullptr;
            }
            // T1..T_{M-1} take a strictly-increasing geometric series
            // of numTables-1 history lengths capped at maxhist; a
            // shorter span would round lengths past maxhist and
            // overflow the history buffer mid-run.
            if (cfg.maxHistory < cfg.minHistory + cfg.numTables - 2) {
                e = "maxhist " + std::to_string(cfg.maxHistory) +
                    " too short for " + std::to_string(cfg.numTables) +
                    " tables starting at minhist " +
                    std::to_string(cfg.minHistory);
                return nullptr;
            }
            return std::make_unique<GradedOgehl>(cfg);
        };
        return r;
    }();
    return registry;
}

/** Estimator tokens; "self" is an alias resolved to "sfc". */
const std::vector<std::string> kEstimatorTokens = {
    "blind", "jrs", "jrsg", "self", "sfc",
};

bool
isEstimatorToken(const std::string& tok)
{
    return std::find(kEstimatorTokens.begin(), kEstimatorTokens.end(),
                     tok) != kEstimatorTokens.end();
}

/** Everything a spec string parses into. */
struct ParsedSpec {
    std::string base;
    SpecParams params;
    SpecModifiers mods;
    std::string estimator; // canonical token, empty = none
};

bool
parseSpec(const std::string& spec, ParsedSpec& out, std::string& error)
{
    std::vector<std::string> tokens;
    if (!splitSpec(spec, tokens, error))
        return false;

    // tokens[0] is "base" or "base:key=value,..."
    const auto colon = tokens[0].find(':');
    out.base = tokens[0].substr(0, colon);
    if (colon != std::string::npos) {
        std::string param_error;
        if (!SpecParams::parse(tokens[0].substr(colon + 1), out.params,
                               param_error)) {
            error = "malformed spec '" + spec + "': " + param_error;
            return false;
        }
    }
    if (baseRegistry().find(out.base) == baseRegistry().end()) {
        error = "unknown predictor base '" + out.base +
                "' (known: " + [&] {
                    std::string names;
                    for (const auto& b : registeredBases())
                        names += (names.empty() ? "" : ", ") + b;
                    return names;
                }() + ")";
        return false;
    }

    for (size_t i = 1; i < tokens.size(); ++i) {
        const std::string& tok = tokens[i];
        if (tok.find(':') != std::string::npos) {
            error = "parameters only attach to the base, not to '" +
                    tok + "' in spec '" + spec + "'";
            return false;
        }
        if (isEstimatorToken(tok)) {
            if (!out.estimator.empty()) {
                error = "spec '" + spec +
                        "' names more than one estimator";
                return false;
            }
            out.estimator = tok == "self" ? "sfc" : tok;
        } else if (tok == "adaptive") {
            out.mods.adaptive = true;
        } else if (tok.rfind("prob", 0) == 0) {
            out.mods.prob = true;
            const std::string digits = tok.substr(4);
            if (!digits.empty()) {
                if (!std::all_of(digits.begin(), digits.end(),
                                 [](unsigned char c) {
                                     return std::isdigit(c);
                                 })) {
                    error = "malformed prob modifier '" + tok + "'";
                    return false;
                }
                if (digits.size() > 2 ||
                    std::stoul(digits) > 15) {
                    error = "prob log2(1/p) out of range (0..15): '" +
                            tok + "'";
                    return false;
                }
                out.mods.probLog2 =
                    static_cast<unsigned>(std::stoul(digits));
            }
        } else {
            error = "unknown token '" + tok + "' in spec '" + spec + "'";
            return false;
        }
    }
    return true;
}

std::string
canonicalName(const ParsedSpec& p)
{
    std::string s = p.base;
    if (!p.params.empty())
        s += ":" + p.params.canonical();
    if (p.mods.prob)
        s += "+prob" + std::to_string(p.mods.probLog2);
    if (p.mods.adaptive)
        s += "+adaptive";
    if (!p.estimator.empty())
        s += "+" + p.estimator;
    return s;
}

std::unique_ptr<ConfidenceEstimator>
makeEstimator(const std::string& token)
{
    if (token == "sfc")
        return std::make_unique<IntrinsicEstimator>();
    if (token == "jrs")
        return std::make_unique<JrsEstimator>();
    if (token == "jrsg") {
        JrsConfidenceEstimator::Config cfg;
        cfg.indexWithPrediction = true;
        return std::make_unique<JrsEstimator>(cfg);
    }
    if (token == "blind")
        return std::make_unique<BlindEstimator>();
    return nullptr;
}

} // namespace

void
registerPredictorBase(const std::string& name,
                      PredictorBaseFactory factory)
{
    baseRegistry()[toLower(name)] = std::move(factory);
}

std::vector<std::string>
registeredBases()
{
    std::vector<std::string> names;
    for (const auto& [name, factory] : baseRegistry())
        names.push_back(name);
    return names;
}

std::vector<std::string>
registeredEstimators()
{
    return kEstimatorTokens;
}

std::vector<std::string>
exampleSpecs()
{
    std::vector<std::string> specs;
    for (const auto& base : registeredBases()) {
        if (base.rfind("tage", 0) == 0)
            specs.push_back(base + "+prob7+sfc");
        else if (base.rfind("ltage", 0) == 0)
            specs.push_back(base + "+sfc");
        else if (base == "gshare")
            specs.push_back(base + "+jrs");
        else
            specs.push_back(base + "+sfc");
    }
    specs.push_back("tage64k+prob7+adaptive+sfc");
    specs.push_back("gshare+jrsg");
    specs.push_back("tage64k+jrs");
    specs.push_back("gshare");
    specs.push_back("gshare:entries=16,hist=17+jrs");
    specs.push_back("tage64k:ctr=4,tables=8+prob7+sfc");
    specs.push_back("ogehl:maxhist=120,tables=6+sfc");
    return specs;
}

std::vector<std::string>
regroupSpecList(const std::vector<std::string>& items)
{
    std::vector<std::string> specs;
    for (const auto& item : items) {
        const std::string head =
            item.substr(0, item.find_first_of(":+"));
        if (!specs.empty() && head.find('=') != std::string::npos)
            specs.back() += "," + item;
        else
            specs.push_back(item);
    }
    return specs;
}

std::string
canonicalizeSpec(const std::string& spec, std::string* error)
{
    ParsedSpec parsed;
    std::string err;
    if (!parseSpec(spec, parsed, err)) {
        if (error)
            *error = err;
        return "";
    }
    return canonicalName(parsed);
}

std::unique_ptr<GradedPredictor>
tryMakePredictor(const std::string& spec, std::string* error)
{
    ParsedSpec parsed;
    std::string err;
    std::unique_ptr<GradedPredictor> predictor;
    if (parseSpec(spec, parsed, err)) {
        predictor =
            baseRegistry()[parsed.base](parsed.params, parsed.mods, err);
        // Parameter hygiene: every supplied key must have been read by
        // the factory, and every value must have parsed cleanly.
        if (predictor && !parsed.params.error().empty()) {
            err = "spec '" + spec + "': " + parsed.params.error();
            predictor.reset();
        }
        if (predictor) {
            const auto unknown = parsed.params.unrecognizedKeys();
            if (!unknown.empty()) {
                std::string names;
                for (const auto& k : unknown)
                    names += (names.empty() ? "" : ", ") + k;
                err = "unknown parameter(s) [" + names +
                      "] for base '" + parsed.base + "'";
                predictor.reset();
            }
        }
        if (predictor && !parsed.estimator.empty()) {
            if (parsed.estimator == "sfc" &&
                !predictor->hasIntrinsicConfidence()) {
                err = "estimator 'sfc' requires a predictor with "
                      "intrinsic confidence; '" +
                      parsed.base +
                      "' has none (attach +jrs instead)";
                predictor.reset();
            } else {
                predictor = std::make_unique<EstimatedPredictor>(
                    std::move(predictor),
                    makeEstimator(parsed.estimator));
            }
        }
    }
    if (!predictor) {
        if (error)
            *error = err;
        return nullptr;
    }
    predictor->setName(canonicalName(parsed));
    return predictor;
}

std::unique_ptr<GradedPredictor>
makePredictor(const std::string& spec)
{
    std::string error;
    auto predictor = tryMakePredictor(spec, &error);
    if (!predictor)
        fatal("makePredictor: " + error);
    return predictor;
}

std::string
tageBaseForSize(const std::string& size_name)
{
    if (size_name == "16K")
        return "tage16k";
    if (size_name == "64K")
        return "tage64k";
    if (size_name == "256K")
        return "tage256k";
    return "";
}

} // namespace tagecon
