#include "sim/registry.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "baseline/graded_baselines.hpp"
#include "core/estimators.hpp"
#include "tage/graded_tage.hpp"
#include "util/logging.hpp"

namespace tagecon {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Split @p spec on '+'; empty tokens are malformed. */
bool
splitSpec(const std::string& spec, std::vector<std::string>& tokens,
          std::string& error)
{
    std::stringstream ss(toLower(spec));
    std::string tok;
    while (std::getline(ss, tok, '+')) {
        if (tok.empty()) {
            error = "malformed spec '" + spec + "': empty token";
            return false;
        }
        tokens.push_back(tok);
    }
    if (tokens.empty()) {
        error = "empty predictor spec";
        return false;
    }
    return true;
}

std::unique_ptr<GradedPredictor>
makeTageBase(TageConfig cfg, const SpecModifiers& mods,
             std::string& error)
{
    if (mods.prob)
        cfg = cfg.withProbabilisticSaturation(mods.probLog2);
    if (mods.adaptive && !cfg.probabilisticSaturation) {
        error = "adaptive requires probabilisticSaturation "
                "(add +prob to the spec)";
        return nullptr;
    }
    GradedTageOptions opt;
    opt.adaptive = mods.adaptive;
    return std::make_unique<GradedTage>(std::move(cfg), opt);
}

std::unique_ptr<GradedPredictor>
makeLTageBase(TageConfig cfg, const SpecModifiers& mods,
              std::string& error)
{
    if (mods.adaptive) {
        error = "adaptive is not supported on ltage bases";
        return nullptr;
    }
    if (mods.prob)
        cfg = cfg.withProbabilisticSaturation(mods.probLog2);
    return std::make_unique<GradedLTage>(std::move(cfg));
}

/** Wrap a modifier-free baseline constructor, rejecting modifiers. */
template <typename Make>
PredictorBaseFactory
plainBase(const std::string& name, Make make)
{
    return [name, make](const SpecModifiers& mods,
                        std::string& error)
               -> std::unique_ptr<GradedPredictor> {
        if (mods.prob || mods.adaptive) {
            error = "modifiers prob/adaptive only apply to the tage "
                    "family, not to '" +
                    name + "'";
            return nullptr;
        }
        return make();
    };
}

std::map<std::string, PredictorBaseFactory>&
baseRegistry()
{
    static std::map<std::string, PredictorBaseFactory> registry = [] {
        std::map<std::string, PredictorBaseFactory> r;
        r["tage16k"] = [](const SpecModifiers& m, std::string& e) {
            return makeTageBase(TageConfig::small16K(), m, e);
        };
        r["tage64k"] = [](const SpecModifiers& m, std::string& e) {
            return makeTageBase(TageConfig::medium64K(), m, e);
        };
        r["tage256k"] = [](const SpecModifiers& m, std::string& e) {
            return makeTageBase(TageConfig::large256K(), m, e);
        };
        r["ltage16k"] = [](const SpecModifiers& m, std::string& e) {
            return makeLTageBase(TageConfig::small16K(), m, e);
        };
        r["ltage64k"] = [](const SpecModifiers& m, std::string& e) {
            return makeLTageBase(TageConfig::medium64K(), m, e);
        };
        r["ltage256k"] = [](const SpecModifiers& m, std::string& e) {
            return makeLTageBase(TageConfig::large256K(), m, e);
        };
        r["gshare"] = plainBase("gshare", [] {
            return std::make_unique<GradedGshare>();
        });
        r["bimodal"] = plainBase("bimodal", [] {
            return std::make_unique<GradedBimodal>();
        });
        r["perceptron"] = plainBase("perceptron", [] {
            return std::make_unique<GradedPerceptron>();
        });
        r["ogehl"] = plainBase("ogehl", [] {
            return std::make_unique<GradedOgehl>();
        });
        return r;
    }();
    return registry;
}

/** Estimator tokens; "self" is an alias resolved to "sfc". */
const std::vector<std::string> kEstimatorTokens = {
    "blind", "jrs", "jrsg", "self", "sfc",
};

bool
isEstimatorToken(const std::string& tok)
{
    return std::find(kEstimatorTokens.begin(), kEstimatorTokens.end(),
                     tok) != kEstimatorTokens.end();
}

/** Everything a spec string parses into. */
struct ParsedSpec {
    std::string base;
    SpecModifiers mods;
    std::string estimator; // canonical token, empty = none
};

bool
parseSpec(const std::string& spec, ParsedSpec& out, std::string& error)
{
    std::vector<std::string> tokens;
    if (!splitSpec(spec, tokens, error))
        return false;

    out.base = tokens[0];
    if (baseRegistry().find(out.base) == baseRegistry().end()) {
        error = "unknown predictor base '" + out.base +
                "' (known: " + [&] {
                    std::string names;
                    for (const auto& b : registeredBases())
                        names += (names.empty() ? "" : ", ") + b;
                    return names;
                }() + ")";
        return false;
    }

    for (size_t i = 1; i < tokens.size(); ++i) {
        const std::string& tok = tokens[i];
        if (isEstimatorToken(tok)) {
            if (!out.estimator.empty()) {
                error = "spec '" + spec +
                        "' names more than one estimator";
                return false;
            }
            out.estimator = tok == "self" ? "sfc" : tok;
        } else if (tok == "adaptive") {
            out.mods.adaptive = true;
        } else if (tok.rfind("prob", 0) == 0) {
            out.mods.prob = true;
            const std::string digits = tok.substr(4);
            if (!digits.empty()) {
                if (!std::all_of(digits.begin(), digits.end(),
                                 [](unsigned char c) {
                                     return std::isdigit(c);
                                 })) {
                    error = "malformed prob modifier '" + tok + "'";
                    return false;
                }
                if (digits.size() > 2 ||
                    std::stoul(digits) > 15) {
                    error = "prob log2(1/p) out of range (0..15): '" +
                            tok + "'";
                    return false;
                }
                out.mods.probLog2 =
                    static_cast<unsigned>(std::stoul(digits));
            }
        } else {
            error = "unknown token '" + tok + "' in spec '" + spec + "'";
            return false;
        }
    }
    return true;
}

std::string
canonicalName(const ParsedSpec& p)
{
    std::string s = p.base;
    if (p.mods.prob)
        s += "+prob" + std::to_string(p.mods.probLog2);
    if (p.mods.adaptive)
        s += "+adaptive";
    if (!p.estimator.empty())
        s += "+" + p.estimator;
    return s;
}

std::unique_ptr<ConfidenceEstimator>
makeEstimator(const std::string& token)
{
    if (token == "sfc")
        return std::make_unique<IntrinsicEstimator>();
    if (token == "jrs")
        return std::make_unique<JrsEstimator>();
    if (token == "jrsg") {
        JrsConfidenceEstimator::Config cfg;
        cfg.indexWithPrediction = true;
        return std::make_unique<JrsEstimator>(cfg);
    }
    if (token == "blind")
        return std::make_unique<BlindEstimator>();
    return nullptr;
}

} // namespace

void
registerPredictorBase(const std::string& name,
                      PredictorBaseFactory factory)
{
    baseRegistry()[toLower(name)] = std::move(factory);
}

std::vector<std::string>
registeredBases()
{
    std::vector<std::string> names;
    for (const auto& [name, factory] : baseRegistry())
        names.push_back(name);
    return names;
}

std::vector<std::string>
registeredEstimators()
{
    return kEstimatorTokens;
}

std::vector<std::string>
exampleSpecs()
{
    std::vector<std::string> specs;
    for (const auto& base : registeredBases()) {
        if (base.rfind("tage", 0) == 0)
            specs.push_back(base + "+prob7+sfc");
        else if (base.rfind("ltage", 0) == 0)
            specs.push_back(base + "+sfc");
        else if (base == "gshare")
            specs.push_back(base + "+jrs");
        else
            specs.push_back(base + "+sfc");
    }
    specs.push_back("tage64k+prob7+adaptive+sfc");
    specs.push_back("gshare+jrsg");
    specs.push_back("tage64k+jrs");
    specs.push_back("gshare");
    return specs;
}

std::string
canonicalizeSpec(const std::string& spec, std::string* error)
{
    ParsedSpec parsed;
    std::string err;
    if (!parseSpec(spec, parsed, err)) {
        if (error)
            *error = err;
        return "";
    }
    return canonicalName(parsed);
}

std::unique_ptr<GradedPredictor>
tryMakePredictor(const std::string& spec, std::string* error)
{
    ParsedSpec parsed;
    std::string err;
    std::unique_ptr<GradedPredictor> predictor;
    if (parseSpec(spec, parsed, err)) {
        predictor = baseRegistry()[parsed.base](parsed.mods, err);
        if (predictor && !parsed.estimator.empty()) {
            if (parsed.estimator == "sfc" &&
                !predictor->hasIntrinsicConfidence()) {
                err = "estimator 'sfc' requires a predictor with "
                      "intrinsic confidence; '" +
                      parsed.base +
                      "' has none (attach +jrs instead)";
                predictor.reset();
            } else {
                predictor = std::make_unique<EstimatedPredictor>(
                    std::move(predictor),
                    makeEstimator(parsed.estimator));
            }
        }
    }
    if (!predictor) {
        if (error)
            *error = err;
        return nullptr;
    }
    predictor->setName(canonicalName(parsed));
    return predictor;
}

std::unique_ptr<GradedPredictor>
makePredictor(const std::string& spec)
{
    std::string error;
    auto predictor = tryMakePredictor(spec, &error);
    if (!predictor)
        fatal("makePredictor: " + error);
    return predictor;
}

std::string
tageBaseForSize(const std::string& size_name)
{
    if (size_name == "16K")
        return "tage16k";
    if (size_name == "64K")
        return "tage64k";
    if (size_name == "256K")
        return "tage256k";
    return "";
}

} // namespace tagecon
