/**
 * @file
 * String-keyed factory for graded predictors: one spec string names a
 * (predictor base x modifiers x confidence estimator) combination, so
 * drivers, benches and the CLI can construct any supported pipeline
 * without bespoke wiring:
 *
 *   auto p = makePredictor("tage64k+prob7+sfc");   // the paper
 *   auto q = makePredictor("gshare+jrs");          // JRS baseline
 *
 * Spec grammar (case-insensitive):
 *
 *   spec      := base [':' params] ( '+' token )*
 *   base      := tage16k | tage64k | tage256k
 *              | ltage16k | ltage64k | ltage256k
 *              | gshare | bimodal | perceptron | ogehl
 *              | any name added via registerPredictorBase()
 *   params    := key '=' value ( ',' key '=' value )*
 *                geometry overrides of the base, e.g.
 *                "gshare:hist=17,entries=16" or
 *                "tage64k:tables=8,ctr=2,maxhist=300"; unknown keys
 *                and malformed values are rejected (see each base's
 *                factory for its keys, or README "spec grammar")
 *   token     := modifier | estimator
 *   modifier  := "prob" [digits]   probabilistic saturation automaton
 *                                  (Sec. 6), log2(1/p), default 7
 *              | "adaptive"        Sec. 6.2 controller; requires prob
 *   estimator := "sfc" | "self"    intrinsic storage-free / self
 *                                  confidence (host must provide it)
 *              | "jrs" | "jrsg"    JRS resetting counters, plain /
 *                                  prediction-indexed (Grunwald)
 *              | "blind"           grade everything high confidence
 *
 * At most one estimator per spec; modifiers apply to the TAGE family
 * only. makePredictor() stamps the canonical spec as the predictor's
 * name(), so specs round-trip: makePredictor(s)->name() parses back to
 * the same pipeline.
 */

#ifndef TAGECON_SIM_REGISTRY_HPP
#define TAGECON_SIM_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/graded_predictor.hpp"
#include "sim/spec_params.hpp"

namespace tagecon {

/** Parsed spec modifiers handed to predictor base factories. */
struct SpecModifiers {
    /** Enable the probabilistic saturation automaton (Sec. 6). */
    bool prob = false;

    /** log2(1/p) when prob is set. */
    unsigned probLog2 = 7;

    /** Drive p with the adaptive controller (Sec. 6.2). */
    bool adaptive = false;
};

/**
 * Factory for one predictor base. Returns the predictor, or nullptr
 * after filling @p error (e.g. when a modifier does not apply).
 *
 * @p params is the spec's "key=value,..." list; read every supported
 * key through the typed getters (with the base's default as the
 * fallback). The registry rejects the spec after the factory returns
 * if any supplied key was never read or any value was malformed, so
 * factories need no unknown-key handling of their own.
 */
using PredictorBaseFactory =
    std::function<std::unique_ptr<GradedPredictor>(
        const SpecParams& params, const SpecModifiers& mods,
        std::string& error)>;

/**
 * Register (or replace) a predictor base under @p name, making
 * "<name>[+...]" specs constructible. The built-in bases are
 * pre-registered; this is the extension point for new families.
 */
void registerPredictorBase(const std::string& name,
                           PredictorBaseFactory factory);

/** Registered base names, sorted. */
std::vector<std::string> registeredBases();

/** Recognized estimator tokens, sorted. */
std::vector<std::string> registeredEstimators();

/**
 * A representative runnable spec for every registered base (with the
 * estimator that suits it), for listings and round-trip tests.
 */
std::vector<std::string> exampleSpecs();

/**
 * Repair a comma-split spec list: canonical multi-parameter specs
 * contain ',' ("gshare:entries=16,hist=17+jrs"), so a generic
 * comma-split cuts them apart. A segment whose base part (text before
 * the first ':' or '+') contains '=' cannot start a spec — base names
 * never contain '=' — so it is provably a parameter continuation of
 * the previous segment and is rejoined with ','. Lets the output of
 * name() / exampleSpecs() be pasted into --predictors lists verbatim.
 */
std::vector<std::string>
regroupSpecList(const std::vector<std::string>& items);

/**
 * Canonical form of @p spec (lowercase, tokens in base / prob /
 * adaptive / estimator order, base parameters sorted by key, aliases
 * resolved). Empty string on a malformed spec, with the reason in
 * @p error when given. Syntactic only: parameter keys are checked
 * against the base's supported set at construction time
 * (tryMakePredictor), not here.
 */
std::string canonicalizeSpec(const std::string& spec,
                             std::string* error = nullptr);

/**
 * Construct the pipeline named by @p spec. Returns nullptr after
 * filling @p error on an unknown name or invalid combination.
 */
std::unique_ptr<GradedPredictor>
tryMakePredictor(const std::string& spec, std::string* error = nullptr);

/** Like tryMakePredictor() but fatal()s on a bad spec. */
std::unique_ptr<GradedPredictor> makePredictor(const std::string& spec);

/**
 * Registry base for a legacy TAGE size name ("16K" -> "tage16k",
 * "64K" -> "tage64k", "256K" -> "tage256k"); empty string for an
 * unknown name. For tools keeping their pre-registry --config flags.
 */
std::string tageBaseForSize(const std::string& size_name);

} // namespace tagecon

#endif // TAGECON_SIM_REGISTRY_HPP
