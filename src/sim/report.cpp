#include "sim/report.hpp"

#include <ostream>

#include "util/text.hpp"

namespace tagecon {

bool
parseReportFormat(const std::string& name, ReportFormat& out,
                  std::string& error)
{
    const std::string lowered = toLower(name);
    if (lowered == "text")
        out = ReportFormat::Text;
    else if (lowered == "csv")
        out = ReportFormat::Csv;
    else if (lowered == "json")
        out = ReportFormat::Json;
    else {
        error = "unknown report format '" + name +
                "' (known: text, csv, json)";
        return false;
    }
    return true;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const unsigned char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (ch < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(ch >> 4) & 0xf];
                out += hex[ch & 0xf];
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
    return out;
}

void
Report::emit(ReportFormat format, std::ostream& os) const
{
    switch (format) {
      case ReportFormat::Text:
        emitFlat(os, false);
        break;
      case ReportFormat::Csv:
        emitFlat(os, true);
        break;
      case ReportFormat::Json:
        emitJson(os);
        break;
    }
}

std::vector<const ReportTable*>
Report::tables() const
{
    std::vector<const ReportTable*> tables;
    for (const auto& item : items_) {
        if (item.kind == Item::Kind::Table)
            tables.push_back(&item.table);
    }
    return tables;
}

void
Report::emitFlat(std::ostream& os, bool csv) const
{
    if (showBanner_ && !title_.empty()) {
        os << "=== " << title_ << " ===\n";
        if (!paperRef_.empty())
            os << "reproduces: " << paperRef_ << "\n";
        if (!meta_.empty()) {
            bool first = true;
            for (const auto& [key, value] : meta_) {
                os << (first ? "" : "  ") << key << ": " << value;
                first = false;
            }
            os << "\n";
        }
        os << "\n";
    }

    for (const auto& item : items_) {
        if (item.kind == Item::Kind::Text) {
            os << item.text << "\n";
            continue;
        }
        if (!item.table.heading.empty())
            os << "--- " << item.table.heading << " ---\n";
        if (csv)
            item.table.table.renderCsv(os);
        else
            item.table.table.render(os);
    }
}

void
Report::emitJson(std::ostream& os) const
{
    os << "{\n";
    os << "  \"schema\": \"tagecon-report-v1\",\n";
    os << "  \"id\": \"" << jsonEscape(id_) << "\",\n";
    os << "  \"title\": \"" << jsonEscape(title_) << "\",\n";
    os << "  \"paperRef\": \"" << jsonEscape(paperRef_) << "\",\n";

    os << "  \"meta\": {";
    for (size_t i = 0; i < meta_.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << jsonEscape(meta_[i].first)
           << "\": \"" << jsonEscape(meta_[i].second) << "\"";
    }
    os << "},\n";

    os << "  \"sections\": [";
    bool first_section = true;
    for (const auto& item : items_) {
        if (item.kind == Item::Kind::Text && item.text.empty())
            continue; // layout blanks carry no content
        os << (first_section ? "" : ",") << "\n    ";
        first_section = false;
        if (item.kind == Item::Kind::Text) {
            os << "{\"kind\": \"text\", \"text\": \""
               << jsonEscape(item.text) << "\"}";
            continue;
        }
        const ReportTable& t = item.table;
        os << "{\n      \"kind\": \"table\",\n";
        os << "      \"id\": \"" << jsonEscape(t.id) << "\",\n";
        os << "      \"heading\": \"" << jsonEscape(t.heading)
           << "\",\n";
        os << "      \"columns\": [";
        const auto& headers = t.table.headers();
        for (size_t c = 0; c < headers.size(); ++c) {
            os << (c == 0 ? "" : ", ") << "\"" << jsonEscape(headers[c])
               << "\"";
        }
        os << "],\n";
        os << "      \"rows\": [";
        const auto rows = t.table.dataRows();
        for (size_t r = 0; r < rows.size(); ++r) {
            os << (r == 0 ? "" : ",") << "\n        [";
            for (size_t c = 0; c < rows[r].size(); ++c) {
                os << (c == 0 ? "" : ", ") << "\""
                   << jsonEscape(rows[r][c]) << "\"";
            }
            os << "]";
        }
        os << (rows.empty() ? "]" : "\n      ]") << "\n    }";
    }
    os << (first_section ? "]" : "\n  ]") << "\n";
    os << "}\n";
}

} // namespace tagecon
