/**
 * @file
 * Structured run reports with pluggable emitters. A Report is an
 * ordered document — a banner (title, paper reference, run metadata)
 * followed by text blocks and identified tables — that renders to:
 *
 *  - text  aligned tables with "--- heading ---" section markers (the
 *          historical bench output, byte for byte)
 *  - csv   the same walk with tables in RFC-4180 CSV
 *  - json  one machine-readable document ("tagecon-report-v1"): every
 *          table keeps its id, columns and row cells, so benches and
 *          tagecon_sweep --report=json share one schema
 *
 * Cells are pre-formatted strings (through the shared TextTable
 * formatters), so a table's numbers are identical across all three
 * formats — the property the CI report smoke step checks.
 */

#ifndef TAGECON_SIM_REPORT_HPP
#define TAGECON_SIM_REPORT_HPP

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/table_printer.hpp"

namespace tagecon {

/** Output format of a Report. */
enum class ReportFormat { Text, Csv, Json };

/**
 * Parse a --report flag value ("text", "csv", "json",
 * case-insensitive). Returns false with the reason in @p error.
 */
bool parseReportFormat(const std::string& name, ReportFormat& out,
                       std::string& error);

/** One identified table section of a report. */
struct ReportTable {
    /** Machine id, unique within the report (JSON key "id"). */
    std::string id;

    /**
     * Optional section heading; rendered as "--- heading ---" ahead
     * of the table in text/csv, kept verbatim in JSON.
     */
    std::string heading;

    /** The table itself (headers + pre-formatted cells). */
    TextTable table;
};

/**
 * An ordered report document. Build it section by section; emit() it
 * once in the requested format.
 */
class Report
{
  public:
    Report() = default;

    /** @param id Machine id of the whole report (e.g. "figure2"). */
    Report(std::string id, std::string title, std::string paper_ref)
        : id_(std::move(id)), title_(std::move(title)),
          paperRef_(std::move(paper_ref))
    {
    }

    /** Append one banner metadata pair (kept in insertion order). */
    void
    addMeta(std::string key, std::string value)
    {
        meta_.emplace_back(std::move(key), std::move(value));
    }

    /** Append a verbatim text line (no trailing newline). */
    void
    addText(std::string line)
    {
        items_.push_back(Item{Item::Kind::Text, std::move(line), {}});
    }

    /** Append a blank line. */
    void addBlank() { addText(""); }

    /** Append a table section. */
    void
    addTable(ReportTable table)
    {
        items_.push_back(Item{Item::Kind::Table, {}, std::move(table)});
    }

    /**
     * Suppress the banner in text/csv output (tagecon_sweep's CSV
     * mode historically prints the bare table). JSON always carries
     * the banner fields.
     */
    void setShowBanner(bool show) { showBanner_ = show; }

    /** Emit in @p format into @p os. */
    void emit(ReportFormat format, std::ostream& os) const;

    // ----------------------------------------------- read-back access
    const std::string& id() const { return id_; }
    const std::string& title() const { return title_; }
    const std::string& paperRef() const { return paperRef_; }

    const std::vector<std::pair<std::string, std::string>>&
    meta() const
    {
        return meta_;
    }

    /** The table sections, in document order (text blocks skipped). */
    std::vector<const ReportTable*> tables() const;

  private:
    struct Item {
        enum class Kind { Text, Table } kind = Kind::Text;
        std::string text;
        ReportTable table;
    };

    void emitFlat(std::ostream& os, bool csv) const;
    void emitJson(std::ostream& os) const;

    std::string id_;
    std::string title_;
    std::string paperRef_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<Item> items_;
    bool showBanner_ = true;
};

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string& s);

} // namespace tagecon

#endif // TAGECON_SIM_REPORT_HPP
