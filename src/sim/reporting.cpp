#include "sim/reporting.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace tagecon {

namespace {

/** @p factor * num / den as a cell, 0 when the denominator is 0. */
std::string
scaledRatioCell(double factor, uint64_t num, uint64_t den,
                int decimals)
{
    const double ratio = den == 0 ? 0.0
                                  : factor * static_cast<double>(num) /
                                        static_cast<double>(den);
    return TextTable::num(ratio, decimals);
}

} // namespace

std::string
pctCell(uint64_t num, uint64_t den, int decimals)
{
    return scaledRatioCell(100.0, num, den, decimals);
}

std::string
ratePerKiloCell(uint64_t num, uint64_t den, int decimals)
{
    return scaledRatioCell(1000.0, num, den, decimals);
}

BimSplit
bimSplit(const ClassStats& stats)
{
    BimSplit split;
    for (const auto c :
         {PredictionClass::HighConfBim, PredictionClass::MediumConfBim,
          PredictionClass::LowConfBim}) {
        split.predictions += stats.predictions(c);
        split.mispredictions += stats.mispredictions(c);
    }
    return split;
}

TextTable
coverageTable(const std::vector<RunResult>& per_trace,
              const ClassStats& aggregate)
{
    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    for (const auto c : kAllPredictionClasses)
        t.addColumn(predictionClassName(c));
    for (const auto& rr : per_trace) {
        std::vector<std::string> row{rr.traceName};
        for (const auto c : kAllPredictionClasses)
            row.push_back(TextTable::num(rr.stats.pcov(c) * 100.0, 1));
        t.addRow(std::move(row));
    }
    std::vector<std::string> agg{"(all)"};
    for (const auto c : kAllPredictionClasses)
        agg.push_back(TextTable::num(aggregate.pcov(c) * 100.0, 1));
    t.addSeparator();
    t.addRow(std::move(agg));
    return t;
}

TextTable
coverageTable(const SetResult& result)
{
    return coverageTable(result.perTrace, result.aggregate);
}

TextTable
mpkiBreakdownTable(const std::vector<RunResult>& per_trace,
                   const ClassStats& aggregate)
{
    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    for (const auto c : kAllPredictionClasses)
        t.addColumn(predictionClassName(c));
    t.addColumn("total-MPKI");
    for (const auto& rr : per_trace) {
        std::vector<std::string> row{rr.traceName};
        for (const auto c : kAllPredictionClasses)
            row.push_back(TextTable::num(rr.stats.mpkiContribution(c), 3));
        row.push_back(TextTable::num(rr.stats.mpki(), 2));
        t.addRow(std::move(row));
    }
    std::vector<std::string> agg{"(all)"};
    for (const auto c : kAllPredictionClasses)
        agg.push_back(TextTable::num(aggregate.mpkiContribution(c), 3));
    agg.push_back(TextTable::num(aggregate.mpki(), 2));
    t.addSeparator();
    t.addRow(std::move(agg));
    return t;
}

TextTable
mpkiBreakdownTable(const SetResult& result)
{
    return mpkiBreakdownTable(result.perTrace, result.aggregate);
}

TextTable
mprateTable(const std::vector<RunResult>& per_trace,
            const std::vector<std::string>& traces)
{
    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    for (const auto c : kAllPredictionClasses)
        t.addColumn(predictionClassName(c));
    t.addColumn("average");

    for (const auto& want : traces) {
        const RunResult* found = nullptr;
        for (const auto& rr : per_trace) {
            if (rr.traceName == want) {
                found = &rr;
                break;
            }
        }
        if (found == nullptr)
            fatal("mprateTable: trace '" + want + "' not in result set");
        std::vector<std::string> row{want};
        for (const auto c : kAllPredictionClasses)
            row.push_back(TextTable::num(found->stats.mprateMkp(c), 0));
        row.push_back(TextTable::num(found->stats.totalMkp(), 0));
        t.addRow(std::move(row));
    }
    return t;
}

TextTable
mprateTable(const SetResult& result,
            const std::vector<std::string>& traces)
{
    return mprateTable(result.perTrace, traces);
}

TextTable
classRateTable(const ClassStats& stats)
{
    TextTable t;
    t.addColumn("class", TextTable::Align::Left);
    t.addColumn("MPrate (MKP)");
    for (const auto c : kAllPredictionClasses) {
        t.addRow({predictionClassName(c),
                  TextTable::num(stats.mprateMkp(c), 0)});
    }
    t.addRow({"average", TextTable::num(stats.totalMkp(), 0)});
    return t;
}

std::vector<std::string>
threeClassRow(const std::string& label, const ClassStats& stats)
{
    std::vector<std::string> row{label};
    for (const auto level : kAllConfidenceLevels) {
        std::ostringstream cell;
        cell << TextTable::frac(stats.pcov(level)) << "-"
             << TextTable::frac(stats.mpcov(level)) << " ("
             << TextTable::num(stats.mprateMkp(level), 0) << ")";
        row.push_back(cell.str());
    }
    return row;
}

TextTable
threeClassTable()
{
    TextTable t;
    t.addColumn("config", TextTable::Align::Left);
    t.addColumn("high conf");
    t.addColumn("medium conf");
    t.addColumn("low conf");
    return t;
}

std::string
summarize(const RunResult& result)
{
    std::ostringstream os;
    os << result.traceName << " [" << result.configName
       << "]: " << result.stats.totalPredictions() << " branches, "
       << TextTable::num(result.stats.mpki(), 2) << " MPKI, "
       << TextTable::num(result.stats.totalMkp(), 1) << " MKP";
    return os.str();
}

// ------------------------------------------- analysis result tables

ReportTable
intervalAnalysisTable(const IntervalAnalysis& ia, const std::string& id)
{
    ReportTable rt;
    rt.id = id;
    rt.table.addColumn("interval", TextTable::Align::Left);
    rt.table.addColumn("predictions");
    rt.table.addColumn("total MKP");
    rt.table.addColumn("BIM MKP");
    rt.table.addColumn("medium-conf-bim Pcov %");
    rt.table.addColumn("low+med-bim MPcov %");

    for (size_t i = 0; i < ia.intervals.size(); ++i) {
        const ClassStats& s = ia.intervals[i];
        const BimSplit bim = bimSplit(s);
        std::string label = std::to_string(i);
        if (i >= ia.completeIntervals)
            label += " (partial)";
        rt.table.addRow(
            {std::move(label),
             TextTable::integer(s.totalPredictions()),
             TextTable::num(s.totalMkp(), 1),
             ratePerKiloCell(bim.mispredictions, bim.predictions, 1),
             TextTable::num(
                 s.pcov(PredictionClass::MediumConfBim) * 100.0, 1),
             TextTable::num(
                 (s.mpcov(PredictionClass::MediumConfBim) +
                  s.mpcov(PredictionClass::LowConfBim)) *
                     100.0,
                 1)});
    }
    return rt;
}

ReportTable
histogramAnalysisTable(const ConfidenceHistogram& h,
                       const std::string& id)
{
    ReportTable rt;
    rt.id = id;
    rt.table.addColumn("class", TextTable::Align::Left);
    rt.table.addColumn("predictions");
    rt.table.addColumn("mispredictions");
    rt.table.addColumn("taken preds");
    rt.table.addColumn("taken misses");
    rt.table.addColumn("MPrate (MKP)");

    for (const auto c : kAllPredictionClasses) {
        const size_t i = classIndex(c);
        rt.table.addRow(
            {predictionClassName(c),
             TextTable::integer(h.predictions[i]),
             TextTable::integer(h.mispredictions[i]),
             TextTable::integer(h.takenPredictions[i]),
             TextTable::integer(h.takenMispredictions[i]),
             ratePerKiloCell(h.mispredictions[i], h.predictions[i])});
    }
    rt.table.addSeparator();
    for (const auto level : kAllConfidenceLevels) {
        const size_t i = levelIndex(level);
        rt.table.addRow(
            {confidenceLevelName(level) + " (level)",
             TextTable::integer(h.levelPredictions[i]),
             TextTable::integer(h.levelMispredictions[i]), "", "",
             ratePerKiloCell(h.levelMispredictions[i],
                             h.levelPredictions[i])});
    }
    return rt;
}

ReportTable
burstAnalysisTable(const BurstAnalysis& ba, const std::string& id)
{
    ReportTable rt;
    rt.id = id;
    rt.table.addColumn("BIM preds since last BIM miss",
                       TextTable::Align::Left);
    rt.table.addColumn("predictions");
    rt.table.addColumn("Pcov-of-BIM %");
    rt.table.addColumn("MPrate (MKP)");

    const uint64_t total = ba.totalPredictions();
    for (size_t d = 0; d < ba.predictions.size(); ++d) {
        const std::string label =
            d < ba.maxDistance
                ? std::to_string(d)
                : (">= " + std::to_string(ba.maxDistance));
        rt.table.addRow({label, TextTable::integer(ba.predictions[d]),
                         pctCell(ba.predictions[d], total, 2),
                         ratePerKiloCell(ba.mispredictions[d],
                                         ba.predictions[d])});
    }
    return rt;
}

ReportTable
perBranchAnalysisTable(const PerBranchAnalysis& pa,
                       const std::string& id)
{
    ReportTable rt;
    rt.id = id;
    rt.table.addColumn("pc", TextTable::Align::Left);
    rt.table.addColumn("predictions");
    rt.table.addColumn("mispredictions");
    rt.table.addColumn("MPrate (MKP)");

    for (const auto& b : pa.top) {
        std::ostringstream pc;
        pc << "0x" << std::hex << b.pc;
        rt.table.addRow({pc.str(), TextTable::integer(b.predictions),
                         TextTable::integer(b.mispredictions),
                         TextTable::num(b.mprateMkp(), 0)});
    }
    return rt;
}

ReportTable
warmupAnalysisTable(const WarmupAnalysis& wa, const std::string& id)
{
    ReportTable rt;
    rt.id = id;
    rt.table.addColumn("metric", TextTable::Align::Left);
    rt.table.addColumn("value");
    rt.table.addRow(
        {"interval length", TextTable::integer(wa.intervalLength)});
    rt.table.addRow(
        {"threshold (MKP)", TextTable::num(wa.thresholdMkp, 0)});
    rt.table.addRow({"converged", wa.converged ? "yes" : "no"});
    rt.table.addRow({"warmup intervals",
                     TextTable::integer(wa.warmupIntervals)});
    rt.table.addRow(
        {"warmup branches", TextTable::integer(wa.warmupBranches)});
    rt.table.addRow({"first interval MKP",
                     TextTable::num(wa.firstIntervalMkp, 1)});
    rt.table.addRow({"converged interval MKP",
                     TextTable::num(wa.convergedIntervalMkp, 1)});
    return rt;
}

void
addAnalysisSections(Report& r, const RunResult& result,
                    const std::string& id_prefix,
                    const std::string& label)
{
    const RunAnalysis& a = result.analysis;
    if (a.empty())
        return;

    const std::string& shown = label.empty() ? result.traceName : label;
    auto headed = [&](ReportTable rt, const char* observer) {
        rt.heading = shown + " [" + observer + "]";
        r.addTable(std::move(rt));
        r.addBlank();
    };

    if (a.intervals)
        headed(intervalAnalysisTable(*a.intervals,
                                     id_prefix + "-intervals"),
               "intervals");
    if (a.histogram)
        headed(histogramAnalysisTable(*a.histogram,
                                      id_prefix + "-histogram"),
               "histogram");
    if (a.burst)
        headed(burstAnalysisTable(*a.burst, id_prefix + "-burst"),
               "burst");
    if (a.perBranch)
        headed(perBranchAnalysisTable(*a.perBranch,
                                      id_prefix + "-perbranch"),
               "perbranch");
    if (a.warmup)
        headed(warmupAnalysisTable(*a.warmup, id_prefix + "-warmup"),
               "warmup");
    if (!a.custom.empty()) {
        ReportTable rt;
        rt.id = id_prefix + "-custom";
        rt.table.addColumn("metric", TextTable::Align::Left);
        rt.table.addColumn("value");
        for (const auto& [key, value] : a.custom)
            rt.table.addRow({key, TextTable::num(value, 3)});
        headed(std::move(rt), "custom");
    }
}

} // namespace tagecon
