#include "sim/reporting.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace tagecon {

TextTable
coverageTable(const SetResult& result)
{
    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    for (const auto c : kAllPredictionClasses)
        t.addColumn(predictionClassName(c));
    for (const auto& rr : result.perTrace) {
        std::vector<std::string> row{rr.traceName};
        for (const auto c : kAllPredictionClasses)
            row.push_back(TextTable::num(rr.stats.pcov(c) * 100.0, 1));
        t.addRow(std::move(row));
    }
    std::vector<std::string> agg{"(all)"};
    for (const auto c : kAllPredictionClasses)
        agg.push_back(TextTable::num(result.aggregate.pcov(c) * 100.0, 1));
    t.addSeparator();
    t.addRow(std::move(agg));
    return t;
}

TextTable
mpkiBreakdownTable(const SetResult& result)
{
    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    for (const auto c : kAllPredictionClasses)
        t.addColumn(predictionClassName(c));
    t.addColumn("total-MPKI");
    for (const auto& rr : result.perTrace) {
        std::vector<std::string> row{rr.traceName};
        for (const auto c : kAllPredictionClasses)
            row.push_back(TextTable::num(rr.stats.mpkiContribution(c), 3));
        row.push_back(TextTable::num(rr.stats.mpki(), 2));
        t.addRow(std::move(row));
    }
    std::vector<std::string> agg{"(all)"};
    for (const auto c : kAllPredictionClasses)
        agg.push_back(TextTable::num(
            result.aggregate.mpkiContribution(c), 3));
    agg.push_back(TextTable::num(result.aggregate.mpki(), 2));
    t.addSeparator();
    t.addRow(std::move(agg));
    return t;
}

TextTable
mprateTable(const SetResult& result,
            const std::vector<std::string>& traces)
{
    TextTable t;
    t.addColumn("trace", TextTable::Align::Left);
    for (const auto c : kAllPredictionClasses)
        t.addColumn(predictionClassName(c));
    t.addColumn("average");

    for (const auto& want : traces) {
        const RunResult* found = nullptr;
        for (const auto& rr : result.perTrace) {
            if (rr.traceName == want) {
                found = &rr;
                break;
            }
        }
        if (found == nullptr)
            fatal("mprateTable: trace '" + want + "' not in result set");
        std::vector<std::string> row{want};
        for (const auto c : kAllPredictionClasses)
            row.push_back(TextTable::num(found->stats.mprateMkp(c), 0));
        row.push_back(TextTable::num(found->stats.totalMkp(), 0));
        t.addRow(std::move(row));
    }
    return t;
}

std::vector<std::string>
threeClassRow(const std::string& label, const ClassStats& stats)
{
    std::vector<std::string> row{label};
    for (const auto level : kAllConfidenceLevels) {
        std::ostringstream cell;
        cell << TextTable::frac(stats.pcov(level)) << "-"
             << TextTable::frac(stats.mpcov(level)) << " ("
             << TextTable::num(stats.mprateMkp(level), 0) << ")";
        row.push_back(cell.str());
    }
    return row;
}

TextTable
threeClassTable()
{
    TextTable t;
    t.addColumn("config", TextTable::Align::Left);
    t.addColumn("high conf");
    t.addColumn("medium conf");
    t.addColumn("low conf");
    return t;
}

std::string
summarize(const RunResult& result)
{
    std::ostringstream os;
    os << result.traceName << " [" << result.configName
       << "]: " << result.stats.totalPredictions() << " branches, "
       << TextTable::num(result.stats.mpki(), 2) << " MPKI, "
       << TextTable::num(result.stats.totalMkp(), 1) << " MKP";
    return os.str();
}

} // namespace tagecon
