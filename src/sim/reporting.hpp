/**
 * @file
 * Renderers producing the paper's tables and figure data series from
 * simulation results, the shared numeric cell formatters every bench
 * routes through, and the builders that turn run-analysis observer
 * output (RunAnalysis) into report tables.
 *
 * Figures are printed as aligned text tables (one row per trace, one
 * column per class) — the same numbers the paper plots as stacked
 * bars. The per-trace renderers take any (perTrace, aggregate) pair,
 * so legacy SetResults and sweep SweepRows feed the same code.
 */

#ifndef TAGECON_SIM_REPORTING_HPP
#define TAGECON_SIM_REPORTING_HPP

#include <string>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "util/table_printer.hpp"

namespace tagecon {

// --------------------------------------------- shared cell formatters
//
// Every floating-point cell in every bench goes through these (or the
// underlying TextTable::num), so precision and locale are uniform
// across tables, formats and binaries.

/** "100 * num / den" with @p decimals digits; "0.0"-style when den=0. */
std::string pctCell(uint64_t num, uint64_t den, int decimals = 1);

/** "1000 * num / den" (MKP-style rate), @p decimals digits. */
std::string ratePerKiloCell(uint64_t num, uint64_t den,
                            int decimals = 0);

/** The pooled counts of the three bimodal-provider classes. */
struct BimSplit {
    uint64_t predictions = 0;
    uint64_t mispredictions = 0;
};

/**
 * Fold the BIM classes (high/medium/low-conf-bim) of @p stats — the
 * Sec. 5.1 "BIM class" every bimodal-side view is built on.
 */
BimSplit bimSplit(const ClassStats& stats);

// ------------------------------------------------- figure/table views

/**
 * Figure 2/3/5-left style: per-trace prediction coverage (%) of each
 * of the 7 classes, with a pooled "(all)" row.
 */
TextTable coverageTable(const std::vector<RunResult>& per_trace,
                        const ClassStats& aggregate);
TextTable coverageTable(const SetResult& result);

/**
 * Figure 2/3/5-right style: per-trace misprediction contribution in
 * misses per kilo-instruction of each of the 7 classes, plus the
 * total MPKI.
 */
TextTable mpkiBreakdownTable(const std::vector<RunResult>& per_trace,
                             const ClassStats& aggregate);
TextTable mpkiBreakdownTable(const SetResult& result);

/**
 * Figure 4/6 style: per-trace misprediction rate (MKP) of each class,
 * with an average column, for the named subset of traces.
 */
TextTable mprateTable(const std::vector<RunResult>& per_trace,
                      const std::vector<std::string>& traces);
TextTable mprateTable(const SetResult& result,
                      const std::vector<std::string>& traces);

/**
 * Figure 4/6 footer style: one row per class with its pooled MPrate
 * (MKP) plus the average row.
 */
TextTable classRateTable(const ClassStats& stats);

/**
 * Table 2/3 style row content for one configuration x benchmark set:
 * "Pcov-MPcov (MPrate)" per confidence level.
 */
std::vector<std::string> threeClassRow(const std::string& label,
                                       const ClassStats& stats);

/** Build the Table 2/3 skeleton (header columns). */
TextTable threeClassTable();

/** Render a one-line summary of a RunResult (debugging / examples). */
std::string summarize(const RunResult& result);

// ------------------------------------------- analysis result tables

/** Per-interval class stats (IntervalObserver output). */
ReportTable intervalAnalysisTable(const IntervalAnalysis& ia,
                                  const std::string& id);

/** Class/level distributions (ConfidenceHistogramObserver output). */
ReportTable histogramAnalysisTable(const ConfidenceHistogram& h,
                                   const std::string& id);

/** BIM misprediction-distance decay (BurstObserver output). */
ReportTable burstAnalysisTable(const BurstAnalysis& ba,
                               const std::string& id);

/** Hard-to-predict top-N branches (PerBranchObserver output). */
ReportTable perBranchAnalysisTable(const PerBranchAnalysis& pa,
                                   const std::string& id);

/** Warming-phase summary (WarmupObserver output). */
ReportTable warmupAnalysisTable(const WarmupAnalysis& wa,
                                const std::string& id);

/**
 * Append one table per populated slot of @p result.analysis to @p r,
 * each headed "<label> [<observer>]" and id'd "<id_prefix>-<observer>"
 * (custom scalar metrics land in one key/value table). @p label
 * defaults to the result's trace name when empty. No-op for runs
 * without analysis.
 */
void addAnalysisSections(Report& r, const RunResult& result,
                         const std::string& id_prefix,
                         const std::string& label = "");

} // namespace tagecon

#endif // TAGECON_SIM_REPORTING_HPP
