/**
 * @file
 * Renderers producing the paper's tables and figure data series from
 * simulation results. Figures are printed as aligned text tables (one
 * row per trace, one column per class) — the same numbers the paper
 * plots as stacked bars.
 */

#ifndef TAGECON_SIM_REPORTING_HPP
#define TAGECON_SIM_REPORTING_HPP

#include <string>

#include "sim/experiment.hpp"
#include "util/table_printer.hpp"

namespace tagecon {

/**
 * Figure 2/3/5-left style: per-trace prediction coverage (%) of each
 * of the 7 classes.
 */
TextTable coverageTable(const SetResult& result);

/**
 * Figure 2/3/5-right style: per-trace misprediction contribution in
 * misses per kilo-instruction of each of the 7 classes, plus the
 * total MPKI.
 */
TextTable mpkiBreakdownTable(const SetResult& result);

/**
 * Figure 4/6 style: per-trace misprediction rate (MKP) of each class,
 * with an average row, for the named subset of traces.
 */
TextTable mprateTable(const SetResult& result,
                      const std::vector<std::string>& traces);

/**
 * Table 2/3 style row content for one configuration x benchmark set:
 * "Pcov-MPcov (MPrate)" per confidence level.
 */
std::vector<std::string> threeClassRow(const std::string& label,
                                       const ClassStats& stats);

/** Build the Table 2/3 skeleton (header columns). */
TextTable threeClassTable();

/** Render a one-line summary of a RunResult (debugging / examples). */
std::string summarize(const RunResult& result);

} // namespace tagecon

#endif // TAGECON_SIM_REPORTING_HPP
