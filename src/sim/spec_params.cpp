#include "sim/spec_params.hpp"

#include <algorithm>
#include <sstream>

#include "util/strict_parse.hpp"

namespace tagecon {

bool
SpecParams::parse(const std::string& text, SpecParams& out,
                  std::string& error)
{
    std::map<std::string, std::string> kv;
    // ';' is an alias for ',' so multi-parameter specs survive inside
    // comma-separated flag lists ("--predictors=a:x=1;y=2,b"); the
    // canonical rendering always uses ','.
    std::string separable = text;
    std::replace(separable.begin(), separable.end(), ';', ',');
    // getline never yields the empty entry after a trailing
    // separator, so a typo-truncated list ("hist=9,") would silently
    // pass the per-entry checks below; reject it explicitly.
    if (!separable.empty() && separable.back() == ',') {
        error = "trailing parameter separator in '" + text + "'";
        return false;
    }
    std::stringstream ss(separable);
    std::string entry;
    bool any = false;
    while (std::getline(ss, entry, ',')) {
        any = true;
        const auto eq = entry.find('=');
        if (eq == std::string::npos) {
            error = "parameter '" + entry + "' is not key=value";
            return false;
        }
        const std::string key = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        if (key.empty() || value.empty()) {
            error = "parameter '" + entry + "' has an empty " +
                    (key.empty() ? "key" : "value");
            return false;
        }
        if (value.find('=') != std::string::npos) {
            error = "parameter '" + entry + "' has more than one '='";
            return false;
        }
        if (!kv.emplace(key, value).second) {
            error = "duplicate parameter '" + key + "'";
            return false;
        }
    }
    if (!any) {
        error = "empty parameter list after ':'";
        return false;
    }
    out = SpecParams(std::move(kv));
    return true;
}

const std::string*
SpecParams::find(const std::string& key) const
{
    recognized_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? nullptr : &it->second;
}

void
SpecParams::recordError(const std::string& key,
                        const std::string& why) const
{
    if (error_.empty())
        error_ = "parameter '" + key + "': " + why;
}

int64_t
SpecParams::getInt(const std::string& key, int64_t def, int64_t lo,
                   int64_t hi) const
{
    const std::string* raw = find(key);
    if (!raw)
        return def;
    int64_t v = 0;
    std::string why;
    if (!parseInt64(*raw, v, why)) {
        recordError(key, why + " ('" + *raw + "')");
        return def;
    }
    if (v < lo || v > hi) {
        recordError(key, "value " + std::to_string(v) +
                             " out of range [" + std::to_string(lo) +
                             ", " + std::to_string(hi) + "]");
        return def;
    }
    return v;
}

bool
SpecParams::getBool(const std::string& key, bool def) const
{
    const std::string* raw = find(key);
    if (!raw)
        return def;
    if (*raw == "1" || *raw == "true" || *raw == "yes")
        return true;
    if (*raw == "0" || *raw == "false" || *raw == "no")
        return false;
    recordError(key, "expected a boolean, got '" + *raw + "'");
    return def;
}

std::vector<std::string>
SpecParams::unrecognizedKeys() const
{
    std::vector<std::string> keys;
    for (const auto& [key, value] : kv_) {
        if (recognized_.count(key) == 0)
            keys.push_back(key);
    }
    return keys;
}

std::string
SpecParams::canonical() const
{
    // kv_ is a std::map, so iteration is already key-sorted.
    std::string s;
    for (const auto& [key, value] : kv_)
        s += (s.empty() ? "" : ",") + key + "=" + value;
    return s;
}

} // namespace tagecon
