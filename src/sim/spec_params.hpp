/**
 * @file
 * Typed parameter map for registry spec strings. A spec base may carry
 * a parameter list — "gshare:hist=17,entries=16" — which the parser
 * turns into a SpecParams and hands to the base's factory.
 *
 * Lookups are typed and range-checked, and every lookup marks its key
 * as recognized; after the factory runs, the registry rejects the spec
 * if any key was never looked up (unknown-key rejection) or if any
 * value failed to parse or fell outside its range (the first such
 * problem is kept in error()). This keeps per-base parameter handling
 * declarative: a factory just reads the keys it supports.
 */

#ifndef TAGECON_SIM_SPEC_PARAMS_HPP
#define TAGECON_SIM_SPEC_PARAMS_HPP

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tagecon {

/** Parsed "key=value,..." parameter list of one spec base. */
class SpecParams
{
  public:
    SpecParams() = default;

    /** Wrap an already-parsed key/value map (keys lowercase). */
    explicit SpecParams(std::map<std::string, std::string> kv)
        : kv_(std::move(kv))
    {
    }

    /**
     * Parse "key=value,key=value" (already lowercased; ';' is
     * accepted as a ',' alias so specs can sit inside comma-separated
     * flag lists). Returns false on a malformed list — empty entry,
     * missing '=', empty key or value, duplicate key — with the
     * reason in @p error.
     */
    static bool parse(const std::string& text, SpecParams& out,
                      std::string& error);

    /** True when no parameters were given. */
    bool empty() const { return kv_.empty(); }

    /** Number of parameters. */
    size_t size() const { return kv_.size(); }

    /** True when @p key was supplied (does not mark it recognized). */
    bool has(const std::string& key) const
    {
        return kv_.count(key) > 0;
    }

    /**
     * Integer value of @p key clamped-checked against [lo, hi], or
     * @p def when absent. A malformed or out-of-range value records
     * the problem for error() and returns @p def.
     */
    int64_t getInt(const std::string& key, int64_t def,
                   int64_t lo = std::numeric_limits<int64_t>::min(),
                   int64_t hi = std::numeric_limits<int64_t>::max()) const;

    /** Boolean value of @p key (1/0/true/false/yes/no). */
    bool getBool(const std::string& key, bool def) const;

    /** Keys never looked up by any getter, sorted. */
    std::vector<std::string> unrecognizedKeys() const;

    /** First value parse/range problem, or empty when all clean. */
    const std::string& error() const { return error_; }

    /**
     * Canonical "k1=v1,k2=v2" rendering, keys sorted — the parameter
     * part of a canonical spec, so parameter order round-trips.
     */
    std::string canonical() const;

  private:
    const std::string* find(const std::string& key) const;
    void recordError(const std::string& key, const std::string& why) const;

    std::map<std::string, std::string> kv_;

    // Lookup bookkeeping: factories take SpecParams by const reference,
    // so recognition/error state is mutable.
    mutable std::set<std::string> recognized_;
    mutable std::string error_;
};

} // namespace tagecon

#endif // TAGECON_SIM_SPEC_PARAMS_HPP
