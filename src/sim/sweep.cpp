#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"
#include "sim/registry.hpp"
#include "sim/trace_registry.hpp"
#include "util/logging.hpp"

namespace tagecon {

SweepPlan
SweepPlan::over(std::vector<std::string> specs,
                std::vector<std::string> traces,
                uint64_t branches_per_trace, uint64_t seed_salt)
{
    SweepPlan plan;
    plan.specs = std::move(specs);
    plan.traces = std::move(traces);
    plan.branchesPerTrace = branches_per_trace;
    plan.seedSalt = seed_salt;
    return plan;
}

bool
SweepPlan::resolveTraceArgs(const std::vector<std::string>& args,
                            std::vector<std::string>& out,
                            std::string& error)
{
    return resolveTraceSpecs(args, out, error);
}

bool
SweepPlan::validate(std::string* error)
{
    if (validated)
        return true;
    std::string err;
    if (specs.empty())
        err = "sweep plan names no predictor specs";
    else if (traces.empty())
        err = "sweep plan names no traces";
    else if (branchesPerTrace == 0)
        err = "sweep plan generates zero branches per trace";
    else if (analysis.intervals && analysis.intervalLength == 0)
        err = "analysis interval length must be positive";
    else if (analysis.warmup && analysis.warmupIntervalLength == 0)
        err = "warmup interval length must be positive";

    for (auto& spec : specs) {
        if (!err.empty())
            break;
        std::string spec_err;
        // Probe-construct so workers can't hit a bad spec mid-sweep.
        if (!tryMakePredictor(spec, &spec_err)) {
            err = spec_err;
            break;
        }
        spec = canonicalizeSpec(spec);
    }
    for (const auto& trace : traces) {
        if (!err.empty())
            break;
        TraceSpec spec;
        // Probe files up front so workers can't hit a missing or
        // corrupt trace mid-sweep.
        if (!parseTraceSpec(trace, spec, &err))
            break;
        if (!validateTraceSpec(spec, &err))
            break;
    }
    if (err.empty() && !analysis.custom.empty()) {
        // Probe registered observers so workers can't hit an
        // unconstructible one mid-sweep.
        AnalysisConfig probe;
        parseAnalysisSpecs(analysis.custom, probe, err);
    }

    if (!err.empty()) {
        if (error)
            *error = err;
        return false;
    }
    validated = true;
    return true;
}

std::vector<SweepCell>
SweepPlan::cells() const
{
    std::vector<SweepCell> cells;
    cells.reserve(cellCount());
    for (const auto& spec : specs) {
        for (const auto& trace : traces)
            cells.push_back(SweepCell{spec, trace, branchesPerTrace,
                                      seedSalt, analysis});
    }
    return cells;
}

std::string
sweepCellKey(const SweepCell& cell)
{
    // '\x1f' (unit separator) cannot appear in specs or trace names,
    // so concatenated fields cannot collide across boundaries.
    std::string key = canonicalizeSpec(cell.spec);
    key += '\x1f';
    key += cell.trace;
    key += '\x1f';
    key += std::to_string(cell.branches);
    key += '\x1f';
    key += std::to_string(cell.seedSalt);
    key += '\x1f';

    const AnalysisConfig& a = cell.analysis;
    if (a.intervals)
        key += "intervals:len=" + std::to_string(a.intervalLength) + ";";
    if (a.histogram)
        key += "histogram;";
    if (a.burst)
        key += "burst:max=" + std::to_string(a.burstMaxDistance) + ";";
    if (a.perBranch)
        key += "perbranch:top=" + std::to_string(a.perBranchTopN) + ";";
    if (a.warmup)
        key += "warmup:len=" + std::to_string(a.warmupIntervalLength) +
               ",mkp=" + std::to_string(a.warmupThresholdMkp) + ";";
    for (const auto& item : a.custom)
        key += item + ";";
    return key;
}

RunResult
runSweepCell(const SweepCell& cell)
{
    // Every cell streams through its own independent source (own file
    // handle for file-backed traces), so no materialization and no
    // shared reader state across worker threads.
    auto trace =
        makeTraceSource(cell.trace, cell.branches, cell.seedSalt);
    auto predictor = makePredictor(cell.spec);
    // A fresh observer pipeline per cell: analysis output is a pure
    // function of the cell, whatever thread runs it.
    return runTrace(*trace, *predictor, cell.analysis);
}

std::vector<RunResult>
runSweep(SweepPlan plan, const SweepOptions& opt)
{
    std::string error;
    if (!plan.validate(&error))
        fatal("runSweep: " + error);

    const std::vector<SweepCell> cells = plan.cells();
    std::vector<RunResult> results(cells.size());

    // With a cache attached, resolve hits and intra-plan duplicates up
    // front so the worker pool only sees cells that genuinely need
    // simulation. Without one, every cell runs (the historical path,
    // zero overhead).
    std::vector<size_t> to_run;
    std::vector<std::pair<size_t, size_t>> copies; // (dst, src) slots
    std::vector<std::string> keys;
    size_t cache_hits = 0;
    if (opt.cache != nullptr) {
        keys.reserve(cells.size());
        std::unordered_map<std::string, size_t> first_run;
        for (size_t i = 0; i < cells.size(); ++i) {
            keys.push_back(sweepCellKey(cells[i]));
            if (opt.cache->lookup(keys[i], results[i])) {
                ++cache_hits;
                continue;
            }
            const auto [it, inserted] = first_run.emplace(keys[i], i);
            if (inserted) {
                to_run.push_back(i);
            } else {
                // A duplicate cell inside the plan: simulate the first
                // occurrence only, copy its slot after the join.
                copies.emplace_back(i, it->second);
                ++cache_hits;
            }
        }
    } else {
        to_run.resize(cells.size());
        for (size_t i = 0; i < cells.size(); ++i)
            to_run[i] = i;
    }
    if (opt.stats != nullptr) {
        opt.stats->cells = cells.size();
        opt.stats->executed = to_run.size();
        opt.stats->cacheHits = cache_hits;
    }
    // Planner-side counters: resolved before the pool starts, so
    // deterministic at any --jobs.
    obs::counter("sweep.cells").add(cells.size());
    obs::counter("sweep.cells.executed").add(to_run.size());
    obs::counter("sweep.cache.hits").add(cache_hits);

    size_t jobs = opt.jobs != 0
                      ? opt.jobs
                      : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(jobs, to_run.size());

    // Progress callbacks are serialized under one per-call mutex so a
    // consumer printing lines never interleaves; the completed count
    // is owned by the same mutex (see the SweepOptions::onProgress
    // locking contract). No-op (and cost-free) when unset.
    struct ProgressState {
        Mutex mutex;
        size_t completed TAGECON_GUARDED_BY(mutex) = 0;
    } progress_state;
    auto report_progress = [&](size_t i) {
        if (!opt.onProgress)
            return;
        MutexLock lock(progress_state.mutex);
        ++progress_state.completed;
        const SweepProgress progress{progress_state.completed,
                                     to_run.size(), &cells[i],
                                     &results[i]};
        opt.onProgress(progress);
    };

    obs::TimingHistogram& cell_ns = obs::timingHistogram("sweep.cell.ns");
    auto run_cell = [&](size_t i) {
        obs::SpanScope span("sweep.cell", i);
        if (obs::tracingEnabled())
            span.detail(cells[i].spec + " x " + cells[i].trace);
        obs::ScopedTimer timer(cell_ns);
        results[i] = runSweepCell(cells[i]);
    };

    if (jobs <= 1) {
        for (const size_t i : to_run) {
            run_cell(i);
            report_progress(i);
        }
    } else {
        // Work-stealing by atomic work-list index; each worker writes
        // only its own preassigned slot, so no locking and no ordering
        // effects.
        std::atomic<size_t> next{0};
        auto worker = [&] {
            for (size_t w = next.fetch_add(1); w < to_run.size();
                 w = next.fetch_add(1)) {
                run_cell(to_run[w]);
                report_progress(to_run[w]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (size_t t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto& t : pool)
            t.join();
    }

    if (opt.cache != nullptr) {
        for (const size_t i : to_run)
            opt.cache->store(keys[i], results[i]);
        for (const auto& [dst, src] : copies)
            results[dst] = results[src];
    }
    return results;
}

std::vector<SweepRow>
runSweepRows(SweepPlan plan, const SweepOptions& opt)
{
    std::vector<RunResult> flat = runSweep(plan, opt);
    const size_t per_row = plan.traces.size();

    std::vector<SweepRow> rows;
    rows.reserve(plan.specs.size());
    for (size_t s = 0; s < plan.specs.size(); ++s) {
        SweepRow row;
        row.spec = canonicalizeSpec(plan.specs[s]);
        double mpki_sum = 0.0;
        for (size_t t = 0; t < per_row; ++t) {
            RunResult& rr = flat[s * per_row + t];
            row.aggregate.merge(rr.stats);
            row.confusion.merge(rr.confusion);
            // ordered-reduction: serial fold over flat[] in canonical
            // plan order — independent of jobs/scheduling.
            mpki_sum += rr.stats.mpki();
            row.storageBits = rr.storageBits;
            if (rr.analysis.histogram) {
                if (!row.pooledHistogram)
                    row.pooledHistogram.emplace();
                row.pooledHistogram->merge(*rr.analysis.histogram);
            }
            if (rr.analysis.burst) {
                if (!row.pooledBurst)
                    row.pooledBurst.emplace();
                row.pooledBurst->merge(*rr.analysis.burst);
            }
            row.perTrace.push_back(std::move(rr));
        }
        row.meanMpki = per_row == 0
                           ? 0.0
                           : mpki_sum / static_cast<double>(per_row);
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace tagecon
