/**
 * @file
 * Declarative (spec x trace) sweep grids and a parallel runner.
 *
 * Every table and figure of the paper is a grid of (predictor config x
 * trace) cells, and the registry makes each cell a pure function of
 * its strings: a SweepCell names a spec, a trace, a branch count and a
 * seed salt, nothing else. SweepPlan is the cross product; SweepRunner
 * executes the cells across a std::thread pool and collects RunResults
 * in the plan's canonical (spec-major) order, so multithreaded output
 * is bit-identical to a serial run:
 *
 *   SweepPlan plan = SweepPlan::over(
 *       {"tage64k+prob7+sfc", "gshare:hist=17+jrs"}, allTraceNames(),
 *       1000000);
 *   auto rows = runSweepRows(plan, {.jobs = 8});   // one row per spec
 *
 * Determinism: cells share no state (fresh predictor and trace per
 * cell, no globals), each cell's synthetic trace derives its seed
 * purely from (profile seed XOR plan.seedSalt) while file-backed
 * cells each stream through their own reader handle, and results land
 * in a preallocated slot indexed by cell position — thread count and
 * scheduling cannot change any output bit.
 */

#ifndef TAGECON_SIM_SWEEP_HPP
#define TAGECON_SIM_SWEEP_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hpp"
#include "util/mutex.hpp"

namespace tagecon {

/** One (spec, trace) grid cell — a pure function of its strings. */
struct SweepCell {
    /** Canonical registry spec to construct. */
    std::string spec;

    /**
     * Trace spec: a synthetic profile name or "file:PATH"
     * (see sim/trace_registry.hpp). Each cell opens its own
     * independent source, so file-backed cells stream from their own
     * handle and never share reader state across workers.
     */
    std::string trace;

    /** Branches to generate (synthetic) or replay at most (file). */
    uint64_t branches = 0;

    /** Seed salt applied to the trace's profile seed (synthetic only). */
    uint64_t seedSalt = 0;

    /**
     * Run-analysis observers to attach. Pure data: the worker builds a
     * fresh pipeline from it per cell, so observer state is never
     * shared and analysis output stays bit-identical at any --jobs.
     */
    AnalysisConfig analysis;
};

/** A (specs x traces) grid with shared branch count and seed salt. */
struct SweepPlan {
    /** Registry specs, one row per spec. */
    std::vector<std::string> specs;

    /** Trace specs (profile names / "file:PATH"), the columns. */
    std::vector<std::string> traces;

    /** Branches per cell (generated, or the replay cap for files). */
    uint64_t branchesPerTrace = 1000000;

    /** Seed salt applied to every cell's trace generation. */
    uint64_t seedSalt = 0;

    /** Run-analysis observers attached to every cell. */
    AnalysisConfig analysis;

    /** Convenience builder for the common literal case. */
    static SweepPlan over(std::vector<std::string> specs,
                          std::vector<std::string> traces,
                          uint64_t branches_per_trace,
                          uint64_t seed_salt = 0);

    /**
     * Expand user trace arguments into trace specs: each item is a
     * trace spec (profile name or "file:PATH"), or a set alias —
     * "cbp1" / "cbp2" / "all" / registerTraceSet() names
     * (case-insensitive). Thin shim over resolveTraceSpecs()
     * (sim/trace_registry.hpp). Returns false on an unknown item with
     * the reason in @p error.
     */
    static bool resolveTraceArgs(const std::vector<std::string>& args,
                                 std::vector<std::string>& out,
                                 std::string& error);

    /**
     * Check the plan and canonicalize its specs in place: every spec
     * must be constructible, every trace name known, and the grid
     * non-empty. Returns false with the reason in @p error.
     * Idempotent: a second call on an unmodified plan (including the
     * copy runSweep() validates) returns immediately without
     * re-probing the predictors; mutating the plan after a successful
     * validate() is a usage error.
     */
    [[nodiscard]] bool validate(std::string* error = nullptr);

    /** True once validate() has succeeded on this plan (or a copy). */
    bool validated = false;

    /** Number of grid cells. */
    size_t cellCount() const { return specs.size() * traces.size(); }

    /**
     * The grid cells in canonical order: spec-major, traces in plan
     * order within each spec — the order results are returned in.
     */
    std::vector<SweepCell> cells() const;
};

/** Progress of a running sweep, as delivered to onProgress. */
struct SweepProgress {
    /** Cells finished so far (including this one). */
    size_t completed = 0;

    /** Total cells in the plan. */
    size_t total = 0;

    /** The cell that just finished. */
    const SweepCell* cell = nullptr;

    /** Its result (valid for the duration of the callback). */
    const RunResult* result = nullptr;
};

/**
 * Cache key of one sweep cell: the canonical spec, trace spec, branch
 * count, seed salt and analysis configuration — everything a cell's
 * RunResult is a pure function of. Two cells with equal keys produce
 * bit-identical results, so one execution can serve both.
 */
std::string sweepCellKey(const SweepCell& cell);

/** Execution counters of one runSweep() call. */
struct SweepExecStats {
    /** Cells in the plan. */
    size_t cells = 0;

    /** Cells actually simulated. */
    size_t executed = 0;

    /** Cells served from the cache or deduplicated within the plan. */
    size_t cacheHits = 0;
};

/**
 * Thread-safe cell-level result cache, keyed on sweepCellKey(). Hand
 * the same cache to several runSweep() calls (SweepOptions::cache) and
 * cells already simulated — same spec, trace, branches, salt and
 * analysis — are served from memory instead of re-run; because cells
 * are pure functions of their key, cached results are bit-identical to
 * fresh ones.
 *
 * Locking contract: every access to the underlying map — lookup,
 * store, size, clear — takes mutex_ for its whole duration, and
 * lookup() *copies* the result out under the lock, so a caller never
 * holds a reference into the map that a concurrent store() could
 * invalidate. The TAGECON_GUARDED_BY annotation makes -Wthread-safety
 * prove it, and the TSan cache-hammer test exercises it dynamically.
 */
class SweepResultCache
{
  public:
    /** Copy the cached result for @p key into @p out, if present. */
    [[nodiscard]] bool
    lookup(const std::string& key, RunResult& out) const
    {
        MutexLock lock(mutex_);
        const auto it = results_.find(key);
        if (it == results_.end())
            return false;
        out = it->second;
        return true;
    }

    /** Store (or overwrite) the result for @p key. */
    void
    store(const std::string& key, const RunResult& result)
    {
        MutexLock lock(mutex_);
        results_[key] = result;
    }

    /** Number of cached cells. */
    size_t
    size() const
    {
        MutexLock lock(mutex_);
        return results_.size();
    }

    /** Drop every cached result. */
    void
    clear()
    {
        MutexLock lock(mutex_);
        results_.clear();
    }

  private:
    mutable Mutex mutex_;
    std::unordered_map<std::string, RunResult> results_
        TAGECON_GUARDED_BY(mutex_);
};

/** Execution knobs of a sweep. */
struct SweepOptions {
    /** Worker threads; 0 means hardware concurrency. */
    unsigned jobs = 1;

    /**
     * Per-cell completion callback for long grids.
     *
     * Locking contract: the callback is invoked with runSweep()'s
     * per-call progress mutex held, so invocations are serialized —
     * it never runs concurrently with itself, and the SweepProgress
     * counters are consistent. It runs on whichever worker thread
     * finished the cell, so anything it touches *outside* the
     * callback's arguments must be its own synchronized state (e.g.
     * route printing through logLine(), which is line-atomic). It
     * must not block on work scheduled in the same runSweep() call
     * (that would deadlock the pool behind the progress mutex);
     * calling into an independent runSweep() is safe because the
     * mutex is per-call, not global.
     *
     * Completion order is scheduling-dependent, so treat it as
     * progress reporting only — results themselves are returned in
     * canonical plan order. Leave empty (the default) for zero
     * overhead. With a cache attached, progress fires for executed
     * cells only (total is the executed count), since cached cells
     * complete instantly.
     */
    std::function<void(const SweepProgress&)> onProgress;

    /**
     * Optional cell-level result cache. When set, cells whose key is
     * already cached are served from memory, duplicate cells within
     * the plan are simulated once, and every executed cell is stored
     * for later sweeps. nullptr (the default) preserves the uncached
     * path untouched.
     */
    SweepResultCache* cache = nullptr;

    /** Optional execution counters, filled when non-null. */
    SweepExecStats* stats = nullptr;
};

/** Run one cell: fresh trace + fresh predictor through runTrace(). */
[[nodiscard]] RunResult runSweepCell(const SweepCell& cell);

/**
 * Run every cell of @p plan across @p opt.jobs threads. fatal()s on an
 * invalid plan. Results are in plan.cells() order regardless of the
 * thread count or scheduling.
 */
[[nodiscard]] std::vector<RunResult>
runSweep(SweepPlan plan, const SweepOptions& opt = {});

/** One spec's row of a sweep, pooled over the plan's traces. */
struct SweepRow {
    /** Canonical spec of this row. */
    std::string spec;

    /** Per-trace results, in plan trace order. */
    std::vector<RunResult> perTrace;

    /** Pooled statistics over all the row's branches. */
    ClassStats aggregate;

    /** Pooled binary confidence confusion. */
    BinaryConfidenceMetrics confusion;

    /** Arithmetic mean of per-trace MPKI (the paper's misp/KI rows). */
    double meanMpki = 0.0;

    /** Predictor storage in bits (identical across the row's cells). */
    uint64_t storageBits = 0;

    /**
     * Cross-trace pooled ConfidenceHistogramObserver view: the sum of
     * every per-trace histogram of the row, when the plan attached the
     * histogram observer. Disengaged otherwise.
     */
    std::optional<ConfidenceHistogram> pooledHistogram;

    /** Cross-trace pooled BurstObserver view, likewise. */
    std::optional<BurstAnalysis> pooledBurst;
};

/**
 * Run @p plan and fold each spec's cells into one SweepRow — the shape
 * of the comparison benches (one table row per spec, pooled over both
 * benchmark sets).
 */
[[nodiscard]] std::vector<SweepRow>
runSweepRows(SweepPlan plan, const SweepOptions& opt = {});

} // namespace tagecon

#endif // TAGECON_SIM_SWEEP_HPP
