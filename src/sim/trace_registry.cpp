#include "sim/trace_registry.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "obs/metrics.hpp"
#include "trace/cbp_ascii.hpp"
#include "trace/profiles.hpp"
#include "trace/trace_io.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/text.hpp"

namespace tagecon {

namespace {

constexpr const char* kFilePrefix = "file:";

/** On-disk formats a "file:" spec can point at. */
enum class TraceFileFormat {
    Tcbt,  ///< binary trace_io format (magic "TCBT")
    Ascii, ///< CBP-style ASCII, plain or gzipped
};

/**
 * Sniff the format from the file's leading bytes: "TCBT" is the
 * binary format, anything else (including the gzip magic) is handed
 * to the ASCII reader, which deals with compression itself.
 */
bool
detectTraceFileFormat(const std::string& path, TraceFileFormat& out,
                      std::string& error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open trace file '" + path + "'";
        return false;
    }
    char magic[4] = {0, 0, 0, 0};
    in.read(magic, 4);
    out = (in.gcount() == 4 && magic[0] == 'T' && magic[1] == 'C' &&
           magic[2] == 'B' && magic[3] == 'T')
              ? TraceFileFormat::Tcbt
              : TraceFileFormat::Ascii;
    return true;
}

bool
isKnownProfile(const std::string& name)
{
    const auto names = allTraceNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::map<std::string, std::vector<std::string>>&
traceSetRegistry()
{
    static std::map<std::string, std::vector<std::string>> registry;
    return registry;
}

} // namespace

std::string
TraceSpec::spec() const
{
    return kind == Kind::File ? kFilePrefix + key : key;
}

bool
parseTraceSpec(const std::string& text, TraceSpec& out,
               std::string* error)
{
    if (toLower(text).rfind(kFilePrefix, 0) == 0) {
        out.kind = TraceSpec::Kind::File;
        out.key = text.substr(std::string(kFilePrefix).size());
        if (out.key.empty()) {
            if (error)
                *error = "trace spec '" + text + "' names no file path";
            return false;
        }
        return true;
    }
    if (text.empty()) {
        if (error)
            *error = "empty trace spec";
        return false;
    }
    out.kind = TraceSpec::Kind::Synthetic;
    out.key = text;
    return true;
}

bool
validateTraceSpec(const TraceSpec& spec, std::string* error)
{
    std::string err;
    if (spec.kind == TraceSpec::Kind::Synthetic) {
        if (!isKnownProfile(spec.key)) {
            if (error)
                *error = "unknown trace '" + spec.key +
                         "' (use a profile name, file:PATH, cbp1, "
                         "cbp2 or all)";
            return false;
        }
        return true;
    }
    TraceFileFormat format;
    if (!detectTraceFileFormat(spec.key, format, err)) {
        if (error)
            *error = err;
        return false;
    }
    const bool ok = format == TraceFileFormat::Tcbt
                        ? probeTraceFile(spec.key, nullptr, &err)
                        : probeCbpAsciiFile(spec.key, &err);
    if (!ok && error)
        *error = err;
    return ok;
}

void
registerTraceSet(const std::string& name,
                 std::vector<std::string> specs)
{
    const std::string key = toLower(name);
    if (key == "all" || key == "cbp1" || key == "cbp2")
        fatal("trace set name '" + name +
              "' collides with a built-in alias");
    if (key.empty() || specs.empty())
        fatal("registerTraceSet() needs a name and at least one spec");
    traceSetRegistry()[key] = std::move(specs);
}

std::vector<std::string>
registeredTraceSets()
{
    std::vector<std::string> names;
    for (const auto& [name, specs] : traceSetRegistry())
        names.push_back(name);
    return names;
}

bool
resolveTraceSpecs(const std::vector<std::string>& args,
                  std::vector<std::string>& out, std::string& error)
{
    out.clear();
    std::vector<std::string> expanded;
    for (const auto& arg : args) {
        const std::string key = toLower(arg);
        if (key == "all") {
            const auto names = allTraceNames();
            expanded.insert(expanded.end(), names.begin(), names.end());
        } else if (key == "cbp1") {
            const auto& names = traceNames(BenchmarkSet::Cbp1);
            expanded.insert(expanded.end(), names.begin(), names.end());
        } else if (key == "cbp2") {
            const auto& names = traceNames(BenchmarkSet::Cbp2);
            expanded.insert(expanded.end(), names.begin(), names.end());
        } else if (auto it = traceSetRegistry().find(key);
                   it != traceSetRegistry().end()) {
            expanded.insert(expanded.end(), it->second.begin(),
                            it->second.end());
        } else {
            expanded.push_back(arg);
        }
    }
    for (const auto& item : expanded) {
        TraceSpec spec;
        if (!parseTraceSpec(item, spec, &error) ||
            !validateTraceSpec(spec, &error))
            return false;
        out.push_back(spec.spec());
    }
    if (out.empty()) {
        error = "no traces named";
        return false;
    }
    return true;
}

namespace {

Expected<std::unique_ptr<TraceSource>>
openTraceSourceImpl(const TraceSpec& spec, uint64_t branches,
                    uint64_t seed_salt)
{
    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check("trace.open"))
            return std::move(*injected);
    }
    std::string err;
    if (spec.kind == TraceSpec::Kind::Synthetic) {
        if (!validateTraceSpec(spec, &err))
            return Err(ErrCode::BadSpec, "trace.open", std::move(err));
        if (branches == 0) {
            return Err(ErrCode::BadSpec, "trace.open",
                       "synthetic trace '" + spec.key +
                           "' needs a nonzero branch count");
        }
        return std::unique_ptr<TraceSource>(
            std::make_unique<SyntheticTrace>(
                makeTrace(spec.key, branches, seed_salt)));
    }

    // Recorded streams: seed_salt does not apply; branches caps the
    // replay (0 = the whole file). Each call opens its own handle so
    // parallel sweep cells never share reader state.
    TraceFileFormat format;
    if (!detectTraceFileFormat(spec.key, format, err))
        return Err(ErrCode::NotFound, "trace.open", std::move(err));
    if (format == TraceFileFormat::Tcbt) {
        auto opened = TraceReader::open(spec.key);
        if (!opened.ok())
            return opened.error();
        auto reader = opened.take();
        if (branches != 0 && reader->totalRecords() > branches)
            return std::unique_ptr<TraceSource>(
                std::make_unique<LimitedTrace>(std::move(reader),
                                               branches));
        return std::unique_ptr<TraceSource>(std::move(reader));
    }
    // The ASCII probe reads up to the first data line, catching files
    // that open but carry a foreign format before a sweep starts.
    if (!probeCbpAsciiFile(spec.key, &err))
        return Err(ErrCode::Parse, "trace.open", std::move(err));
    auto opened = CbpAsciiReader::open(spec.key);
    if (!opened.ok())
        return opened.error();
    std::unique_ptr<TraceSource> src = opened.take();
    if (branches != 0)
        src = std::make_unique<LimitedTrace>(std::move(src), branches);
    return src;
}

} // namespace

Expected<std::unique_ptr<TraceSource>>
openTraceSource(const TraceSpec& spec, uint64_t branches,
                uint64_t seed_salt)
{
    auto opened = openTraceSourceImpl(spec, branches, seed_salt);
    // Open counts are a pure function of the workload (sweep plans and
    // stream admission schedules are), so this is a deterministic
    // metric despite ticking on worker threads.
    if (opened.ok())
        obs::counter("trace.sources.opened").add();
    return opened;
}

Expected<std::unique_ptr<TraceSource>>
openTraceSource(const std::string& spec, uint64_t branches,
                uint64_t seed_salt)
{
    TraceSpec parsed;
    std::string err;
    if (!parseTraceSpec(spec, parsed, &err))
        return Err(ErrCode::BadSpec, "trace.open", std::move(err));
    return openTraceSource(parsed, branches, seed_salt);
}

std::unique_ptr<TraceSource>
tryMakeTraceSource(const TraceSpec& spec, uint64_t branches,
                   uint64_t seed_salt, std::string* error)
{
    auto opened = openTraceSource(spec, branches, seed_salt);
    if (!opened.ok()) {
        if (error)
            *error = opened.error().detail;
        return nullptr;
    }
    return opened.take();
}

std::unique_ptr<TraceSource>
tryMakeTraceSource(const std::string& spec, uint64_t branches,
                   uint64_t seed_salt, std::string* error)
{
    TraceSpec parsed;
    if (!parseTraceSpec(spec, parsed, error))
        return nullptr;
    return tryMakeTraceSource(parsed, branches, seed_salt, error);
}

std::unique_ptr<TraceSource>
makeTraceSource(const std::string& spec, uint64_t branches,
                uint64_t seed_salt)
{
    std::string error;
    auto src = tryMakeTraceSource(spec, branches, seed_salt, &error);
    if (!src)
        fatal("makeTraceSource: " + error);
    return src;
}

} // namespace tagecon
