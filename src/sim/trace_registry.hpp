/**
 * @file
 * String-keyed factory for trace sources, mirroring the predictor
 * registry (sim/registry.hpp): one spec string names where a sweep
 * cell's branches come from, so drivers, benches and the CLI can point
 * any grid at synthetic profiles and real trace files alike without
 * bespoke wiring:
 *
 *   auto t = makeTraceSource("164.gzip", 1000000);      // synthetic
 *   auto u = makeTraceSource("file:traces/gcc.tcbt", 0); // recorded
 *
 * Trace spec grammar:
 *
 *   spec := "file:" PATH   a trace file: binary .tcbt (trace_io.hpp)
 *                          or CBP-style ASCII, optionally
 *                          gzip-compressed (cbp_ascii.hpp); the format
 *                          is sniffed from the file contents
 *         | NAME           a named synthetic profile ("FP-1",
 *                          "300.twolf"; see trace/profiles.hpp)
 *
 * Set aliases, expanded by resolveTraceSpecs(): "cbp1", "cbp2", "all"
 * (case-insensitive) and any set registered via registerTraceSet() —
 * e.g. a materialized suite of trace files under one name.
 *
 * Semantics shared by every consumer (runSweep, tagecon_sweep,
 * benches):
 *  - synthetic specs generate exactly @c branches records, salted by
 *    @c seed_salt;
 *  - file specs replay the recorded stream, capped at @c branches
 *    records (files shorter than the cap replay fully); @c seed_salt
 *    does not apply — a recorded stream has no seed;
 *  - every makeTraceSource() call returns an independent source with
 *    its own file handle, so parallel sweep cells never share reader
 *    state and grids stay bit-identical to serial runs.
 */

#ifndef TAGECON_SIM_TRACE_REGISTRY_HPP
#define TAGECON_SIM_TRACE_REGISTRY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hpp"
#include "util/errors.hpp"

namespace tagecon {

/** Parsed form of one trace spec string. */
struct TraceSpec {
    /** Where the records come from. */
    enum class Kind {
        Synthetic, ///< named profile, generated on the fly
        File,      ///< recorded trace file (.tcbt or ASCII[.gz])
    };

    Kind kind = Kind::Synthetic;

    /** Profile name (Synthetic) or file path (File). */
    std::string key;

    /** The canonical spec string ("file:PATH" or the profile name). */
    std::string spec() const;
};

/**
 * Parse @p text into @p out. Purely syntactic — existence of the
 * profile or file is checked by validateTraceSpec(). Returns false
 * with the reason in @p error (when non-null) on e.g. "file:" with an
 * empty path.
 */
[[nodiscard]] bool parseTraceSpec(const std::string& text, TraceSpec& out,
                    std::string* error = nullptr);

/**
 * Check that @p spec is usable: a Synthetic spec must name a known
 * profile; a File spec must open and carry a well-formed header /
 * first record (probed without reading the whole file). Returns false
 * with the reason in @p error (when non-null). This is what
 * SweepPlan::validate() calls so workers can't hit a bad trace
 * mid-sweep.
 */
[[nodiscard]] bool validateTraceSpec(const TraceSpec& spec,
                       std::string* error = nullptr);

/**
 * Register (or replace) the named trace set @p name (case-insensitive)
 * as an alias expanding to @p specs — the way "cbp1" expands to the 20
 * CBP-1 profile names. Lets a materialized suite of trace files be
 * addressed as one word in --traces lists. The name must not collide
 * with the built-in aliases (all/cbp1/cbp2); entries are themselves
 * trace specs (not aliases).
 */
void registerTraceSet(const std::string& name,
                      std::vector<std::string> specs);

/** Names of the registered trace sets (user sets only), sorted. */
std::vector<std::string> registeredTraceSets();

/**
 * Expand user trace arguments into individual trace specs: each item
 * is a trace spec, or a set alias ("cbp1" / "cbp2" / "all" /
 * registerTraceSet() names, case-insensitive). Every resulting spec is
 * validated. Returns false with the reason in @p error.
 */
[[nodiscard]] bool resolveTraceSpecs(const std::vector<std::string>& args,
                       std::vector<std::string>& out,
                       std::string& error);

/**
 * Construct an independent TraceSource for @p spec — the trace-side
 * mirror of tryMakePredictor(), with typed errors. @p branches caps
 * the stream (generated length for synthetic specs, replay cap for
 * files; files shorter than the cap replay fully). @p seed_salt
 * perturbs synthetic generation and is ignored by file specs.
 *
 * This is the "trace.open" failpoint site: an armed fault fires here
 * for synthetic and file specs alike, so tests can quarantine any
 * stream without staging a broken file.
 */
Expected<std::unique_ptr<TraceSource>>
openTraceSource(const TraceSpec& spec, uint64_t branches,
                uint64_t seed_salt = 0);

/** Overload parsing @p spec first. */
Expected<std::unique_ptr<TraceSource>>
openTraceSource(const std::string& spec, uint64_t branches,
                uint64_t seed_salt = 0);

/**
 * Legacy shim over openTraceSource(): returns nullptr with the reason
 * in @p error (when non-null) on a bad spec.
 */
std::unique_ptr<TraceSource>
tryMakeTraceSource(const std::string& spec, uint64_t branches,
                   uint64_t seed_salt = 0, std::string* error = nullptr);

/** Overload taking an already-parsed spec. */
std::unique_ptr<TraceSource>
tryMakeTraceSource(const TraceSpec& spec, uint64_t branches,
                   uint64_t seed_salt = 0, std::string* error = nullptr);

/** Like tryMakeTraceSource() but fatal()s on a bad spec. */
std::unique_ptr<TraceSource>
makeTraceSource(const std::string& spec, uint64_t branches,
                uint64_t seed_salt = 0);

} // namespace tagecon

#endif // TAGECON_SIM_TRACE_REGISTRY_HPP
