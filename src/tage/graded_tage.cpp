#include "tage/graded_tage.hpp"

#include "util/logging.hpp"

namespace tagecon {

// ------------------------------------------------------------ GradedTage

GradedTage::GradedTage(TageConfig config, GradedTageOptions opt)
    : predictor_(std::move(config)), observer_(opt.bimWindow)
{
    if (opt.adaptive) {
        if (!predictor_.config().probabilisticSaturation)
            fatal("adaptive probability requires a config with "
                  "probabilisticSaturation enabled");
        controller_.emplace(opt.adaptiveConfig);
        predictor_.setSatLog2Prob(controller_->log2Prob());
    }
}

Prediction
GradedTage::predict(uint64_t pc)
{
    raw_ = predictor_.predict(pc);
    Prediction p;
    p.taken = raw_.taken;
    p.cls = observer_.classify(raw_);
    p.confidence = confidenceLevel(p.cls);
    p.payload = ++seq_;
    lastIntrinsicLevel_ = p.confidence;
    return p;
}

void
GradedTage::update(uint64_t pc, const Prediction& p, bool taken)
{
    if (p.payload != seq_)
        fatal("GradedTage::update: prediction is not from the "
              "immediately preceding predict()");
    const bool mispredicted = p.taken != taken;
    observer_.onResolve(raw_, taken);
    // The controller measures the intrinsic (storage-free) grade, not
    // whatever a decorating estimator rewrote the level to.
    if (controller_ &&
        controller_->record(lastIntrinsicLevel_, mispredicted)) {
        predictor_.setSatLog2Prob(controller_->log2Prob());
    }
    predictor_.update(pc, raw_, taken);
}

bool
GradedTage::hasBatchedPredict() const
{
    return !controller_.has_value();
}

void
GradedTage::predictMany(std::span<const uint64_t> pcs,
                        std::span<const uint8_t> taken,
                        std::span<Prediction> out)
{
    if (controller_) {
        GradedPredictor::predictMany(pcs, taken, out);
        return;
    }
    const size_t n = pcs.size();
    if (rawBatch_.size() < n)
        rawBatch_.resize(n);
    predictor_.predictMany(
        pcs, taken, std::span<TagePrediction>(rawBatch_.data(), n));

    // The burst-window observer never feeds back into the TAGE tables,
    // so its classify/onResolve interleaving can run as a second pass
    // in element order — the exact sequence the scalar loop produces.
    for (size_t k = 0; k < n; ++k) {
        const TagePrediction& raw = rawBatch_[k];
        Prediction& p = out[k];
        p.taken = raw.taken;
        p.cls = observer_.classify(raw);
        p.confidence = confidenceLevel(p.cls);
        p.payload = ++seq_;
        lastIntrinsicLevel_ = p.confidence;
        observer_.onResolve(raw, taken[k] != 0);
    }
    // Keep the scalar invariant that raw_ pairs with the newest seq_.
    if (n != 0)
        raw_ = rawBatch_[n - 1];
}

uint64_t
GradedTage::storageBits() const
{
    return predictor_.storageBits();
}

void
GradedTage::reset()
{
    predictor_.reset();
    observer_.reset();
    seq_ = 0;
    if (controller_) {
        controller_->reset();
        predictor_.setSatLog2Prob(controller_->log2Prob());
    }
}

uint64_t
GradedTage::allocations() const
{
    return predictor_.allocations();
}

unsigned
GradedTage::satLog2Prob() const
{
    return predictor_.satLog2Prob();
}

std::string
GradedTage::defaultName() const
{
    return "tage-" + predictor_.config().name;
}

bool
GradedTage::snapshot(StateWriter& out, std::string& error) const
{
    (void)error;
    out.u8(controller_ ? 1 : 0);
    predictor_.saveState(out);
    out.i64(observer_.sinceBimMiss());
    out.u64(seq_);
    out.u8(static_cast<uint8_t>(levelIndex(lastIntrinsicLevel_)));
    if (controller_)
        controller_->saveState(out);
    return true;
}

bool
GradedTage::restore(StateReader& in, std::string& error)
{
    const bool has_controller = in.u8() != 0;
    if (has_controller != controller_.has_value()) {
        reset();
        error = "TAGE checkpoint disagrees with this predictor about "
                "the adaptive controller";
        return false;
    }
    if (!predictor_.loadState(in, error)) {
        reset();
        return false;
    }
    const int64_t since_bim_miss = in.i64();
    const uint64_t seq = in.u64();
    const uint8_t level = in.u8();
    if (!in.ok() || level >= kNumConfidenceLevels) {
        reset();
        error = "TAGE checkpoint is truncated";
        return false;
    }
    if (controller_ && !controller_->loadState(in, error)) {
        reset();
        return false;
    }
    observer_.restoreSinceBimMiss(static_cast<int>(since_bim_miss));
    seq_ = seq;
    lastIntrinsicLevel_ = kAllConfidenceLevels[level];
    return true;
}

// ----------------------------------------------------------- GradedLTage

GradedLTage::GradedLTage(TageConfig tage_config,
                         LoopPredictor::Config loop_config,
                         GradedTageOptions opt)
    : tageConfig_(tage_config), loopConfig_(loop_config),
      predictor_(std::move(tage_config), loop_config),
      observer_(opt.bimWindow)
{
    if (opt.adaptive)
        fatal("the adaptive controller is not wired into L-TAGE; use a "
              "tage* base for adaptive runs");
}

Prediction
GradedLTage::predict(uint64_t pc)
{
    raw_ = predictor_.predict(pc);
    Prediction p;
    p.taken = raw_.taken;
    if (raw_.fromLoopPredictor) {
        // Loop-provided predictions are practically always correct.
        p.confidence = ConfidenceLevel::High;
        p.cls = representativeClass(p.confidence);
    } else {
        p.cls = observer_.classify(raw_.tage);
        p.confidence = confidenceLevel(p.cls);
    }
    p.payload = ++seq_;
    return p;
}

void
GradedLTage::update(uint64_t pc, const Prediction& p, bool taken)
{
    if (p.payload != seq_)
        fatal("GradedLTage::update: prediction is not from the "
              "immediately preceding predict()");
    observer_.onResolve(raw_.tage, taken);
    predictor_.update(pc, raw_, taken);
}

uint64_t
GradedLTage::storageBits() const
{
    return predictor_.storageBits();
}

void
GradedLTage::reset()
{
    predictor_ = LTagePredictor(tageConfig_, loopConfig_);
    observer_.reset();
    seq_ = 0;
}

uint64_t
GradedLTage::allocations() const
{
    return predictor_.tage().allocations();
}

unsigned
GradedLTage::satLog2Prob() const
{
    return predictor_.tage().satLog2Prob();
}

std::string
GradedLTage::defaultName() const
{
    return "ltage-" + predictor_.tage().config().name;
}

} // namespace tagecon
