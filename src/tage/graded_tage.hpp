/**
 * @file
 * GradedPredictor adapters for the TAGE family: TAGE with the paper's
 * storage-free confidence classes, and L-TAGE (TAGE + loop predictor)
 * with the same grading on its embedded TAGE component.
 *
 * These are the intrinsic-confidence hosts of the new API: predict()
 * already returns the 7-class / 3-level grade read off the predictor's
 * own state, so attaching the "sfc" estimator costs nothing.
 */

#ifndef TAGECON_TAGE_GRADED_TAGE_HPP
#define TAGECON_TAGE_GRADED_TAGE_HPP

#include <optional>
#include <vector>

#include "core/adaptive_probability.hpp"
#include "core/confidence_observer.hpp"
#include "core/graded_predictor.hpp"
#include "tage/ltage_predictor.hpp"
#include "tage/tage_predictor.hpp"

namespace tagecon {

/** Knobs shared by the TAGE-family adapters. */
struct GradedTageOptions {
    /** medium-conf-bim burst window (Sec. 5.1.2); the paper uses 8. */
    int bimWindow = 8;

    /**
     * Drive the saturation probability with the Sec. 6.2 adaptive
     * controller. Requires the config to enable
     * probabilisticSaturation; the constructor fatal()s otherwise.
     */
    bool adaptive = false;

    /** Controller parameters when adaptive is set. */
    AdaptiveProbabilityController::Config adaptiveConfig{};
};

/**
 * TAGE + storage-free confidence observer (+ optional adaptive
 * saturation-probability controller) behind the GradedPredictor
 * interface. This is the paper's whole pipeline as one registry-
 * constructible object.
 */
class GradedTage : public GradedPredictor
{
  public:
    explicit GradedTage(TageConfig config, GradedTageOptions opt = {});

    Prediction predict(uint64_t pc) override;
    void update(uint64_t pc, const Prediction& p, bool taken) override;

    /**
     * Batched: true unless the adaptive controller is attached — the
     * controller retunes the saturation probability between elements,
     * which the fused TAGE batch cannot replay, so adaptive stacks
     * stay on the (bit-identical) scalar loop.
     */
    bool hasBatchedPredict() const override;

    /**
     * Fused batched step through TagePredictor::predictMany(), with
     * the storage-free grading applied per element in scalar order.
     */
    void predictMany(std::span<const uint64_t> pcs,
                     std::span<const uint8_t> taken,
                     std::span<Prediction> out) override;

    uint64_t storageBits() const override;
    void reset() override;

    bool hasIntrinsicConfidence() const override { return true; }
    uint64_t allocations() const override;
    unsigned satLog2Prob() const override;

    /**
     * Full-pipeline checkpoint: the TAGE tables/histories plus the
     * burst-window observer, the predict/update pairing sequence and
     * (when attached) the adaptive controller.
     */
    bool snapshot(StateWriter& out, std::string& error) const override;
    bool restore(StateReader& in, std::string& error) override;

    /** The underlying predictor (read-only). */
    const TagePredictor& tage() const { return predictor_; }

    /** The burst-window observer (read-only). */
    const ConfidenceObserver& observer() const { return observer_; }

    /** The adaptive controller, when attached. */
    const std::optional<AdaptiveProbabilityController>&
    controller() const
    {
        return controller_;
    }

  protected:
    std::string defaultName() const override;

  private:
    TagePredictor predictor_;
    ConfidenceObserver observer_;
    std::optional<AdaptiveProbabilityController> controller_;

    /** Lookup state routed from predict() to the paired update(). */
    TagePrediction raw_;
    ConfidenceLevel lastIntrinsicLevel_ = ConfidenceLevel::High;
    uint64_t seq_ = 0;

    /** predictMany() scratch; not architectural state. */
    std::vector<TagePrediction> rawBatch_;
};

/**
 * L-TAGE behind the GradedPredictor interface. The embedded TAGE
 * prediction is graded with the storage-free observer; loop-provided
 * predictions are graded high confidence (the loop entry is only
 * trusted at full confidence, Sec. 2 of the L-TAGE description).
 */
class GradedLTage : public GradedPredictor
{
  public:
    explicit GradedLTage(TageConfig tage_config,
                         LoopPredictor::Config loop_config = {},
                         GradedTageOptions opt = {});

    Prediction predict(uint64_t pc) override;
    void update(uint64_t pc, const Prediction& p, bool taken) override;

    uint64_t storageBits() const override;
    void reset() override;

    bool hasIntrinsicConfidence() const override { return true; }
    uint64_t allocations() const override;
    unsigned satLog2Prob() const override;

    /** The underlying L-TAGE predictor (read-only). */
    const LTagePredictor& ltage() const { return predictor_; }

    /** The burst-window observer (read-only). */
    const ConfidenceObserver& observer() const { return observer_; }

  protected:
    std::string defaultName() const override;

  private:
    TageConfig tageConfig_;
    LoopPredictor::Config loopConfig_;
    LTagePredictor predictor_;
    ConfidenceObserver observer_;

    LTagePrediction raw_;
    uint64_t seq_ = 0;
};

} // namespace tagecon

#endif // TAGECON_TAGE_GRADED_TAGE_HPP
