#include "tage/loop_predictor.hpp"

#include "util/bit_utils.hpp"
#include "util/logging.hpp"
#include "util/saturating_counter.hpp"

namespace tagecon {

LoopPredictor::LoopPredictor()
    : LoopPredictor(Config{})
{
}

LoopPredictor::LoopPredictor(Config cfg)
    : cfg_(cfg),
      confMax_(packed::unsignedMax(cfg.confBits)),
      ageMax_(packed::unsignedMax(cfg.ageBits)),
      iterMax_(packed::unsignedMax(cfg.iterBits))
{
    if (cfg_.logEntries < 1 || cfg_.logEntries > 16)
        fatal("loop predictor: bad table size");
    if (cfg_.tagBits < 2 || cfg_.tagBits > 16)
        fatal("loop predictor: bad tag width");
    if (cfg_.iterBits < 2 || cfg_.iterBits > 16)
        fatal("loop predictor: bad iteration width");
    entries_.assign(size_t{1} << cfg_.logEntries, Entry{});
}

uint32_t
LoopPredictor::indexFor(uint64_t pc) const
{
    return static_cast<uint32_t>((pc ^ (pc >> cfg_.logEntries)) &
                                 maskBits(cfg_.logEntries));
}

uint16_t
LoopPredictor::tagFor(uint64_t pc) const
{
    return static_cast<uint16_t>((pc >> cfg_.logEntries) &
                                 maskBits(cfg_.tagBits));
}

LoopPredictor::Result
LoopPredictor::lookup(uint64_t pc) const
{
    const Entry& e = entries_[indexFor(pc)];
    Result r;
    if (!e.inUse || e.tag != tagFor(pc) || e.confidence != confMax_ ||
        e.pastIter == 0) {
        return r;
    }
    r.valid = true;
    // Exit exactly at the learned trip count, continue otherwise.
    r.taken = (e.currentIter + 1 == e.pastIter) ? !e.dir : e.dir;
    return r;
}

void
LoopPredictor::update(uint64_t pc, bool taken, bool main_mispredicted)
{
    Entry& e = entries_[indexFor(pc)];
    const uint16_t tag = tagFor(pc);

    if (e.inUse && e.tag == tag) {
        e.age = static_cast<uint8_t>(
            packed::unsignedInc(e.age, cfg_.ageBits));

        if (taken == e.dir) {
            // Another iteration of the loop body.
            ++e.currentIter;
            if (e.currentIter >= iterMax_) {
                // Not a bounded loop we can track; free the entry.
                e = Entry{};
            }
            return;
        }

        // Loop exit observed.
        const uint16_t trip =
            static_cast<uint16_t>(e.currentIter + 1);
        if (e.pastIter == trip) {
            e.confidence = static_cast<uint8_t>(
                packed::unsignedInc(e.confidence, cfg_.confBits));
        } else if (e.pastIter == 0) {
            // First complete run: learn the trip count.
            e.pastIter = trip;
            e.confidence = 0;
        } else {
            // Trip count changed: this is not a constant loop.
            e.pastIter = trip;
            e.confidence = 0;
            if (e.age > 0)
                e.age = static_cast<uint8_t>(e.age >> 1);
        }
        e.currentIter = 0;
        return;
    }

    // Miss: consider allocating, but only when the main predictor got
    // this branch wrong (the entry would otherwise add no value).
    if (!main_mispredicted)
        return;
    if (e.inUse && e.age > 0) {
        e.age = static_cast<uint8_t>(packed::unsignedDec(e.age));
        return;
    }
    e = Entry{};
    e.inUse = true;
    e.tag = tag;
    // Allocation happens at a mispredicted loop *exit*, so the
    // loop-continue direction is the opposite of the outcome just
    // observed (as in the L-TAGE reference implementation).
    e.dir = !taken;
    e.currentIter = 0;
    e.pastIter = 0;
    e.confidence = 0;
    e.age = static_cast<uint8_t>(ageMax_ / 2);
}

uint64_t
LoopPredictor::storageBits() const
{
    const uint64_t per_entry =
        static_cast<uint64_t>(cfg_.tagBits) +
        2u * static_cast<uint64_t>(cfg_.iterBits) +
        static_cast<uint64_t>(cfg_.confBits) +
        static_cast<uint64_t>(cfg_.ageBits) + 2; // dir + inUse
    return (uint64_t{1} << cfg_.logEntries) * per_entry;
}

int
LoopPredictor::confidentEntries() const
{
    int n = 0;
    for (const auto& e : entries_) {
        if (e.inUse && e.confidence == confMax_)
            ++n;
    }
    return n;
}

} // namespace tagecon
