/**
 * @file
 * The L-TAGE loop predictor (Seznec, "The L-TAGE branch predictor",
 * JILP 2007 / CBP-2 — reference [12] of the paper): a small side table
 * that identifies loops with constant trip counts and predicts their
 * exits exactly, including trip counts far beyond any global-history
 * window. Used by LTagePredictor as an optional side predictor.
 */

#ifndef TAGECON_TAGE_LOOP_PREDICTOR_HPP
#define TAGECON_TAGE_LOOP_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace tagecon {

/**
 * Direct-mapped loop predictor. Each entry tracks one branch's trip
 * count; after the same count has been observed `confMax` consecutive
 * times, the entry predicts the exit iteration exactly.
 */
class LoopPredictor
{
  public:
    struct Config {
        /** log2 of the number of entries. */
        int logEntries = 6;

        /** Partial tag width. */
        int tagBits = 14;

        /** Iteration counter width (max trackable trip count). */
        int iterBits = 10;

        /** Confidence counter width (saturate => trust). */
        int confBits = 2;

        /** Age counter width (replacement damping). */
        int ageBits = 8;
    };

    /** Outcome of a lookup. */
    struct Result {
        /** True when a confident entry provides a prediction. */
        bool valid = false;

        /** Predicted direction (exact exit prediction). */
        bool taken = false;
    };

    LoopPredictor();
    explicit LoopPredictor(Config cfg);

    /** Query the loop predictor for the branch at @p pc. */
    Result lookup(uint64_t pc) const;

    /**
     * Train with the resolved outcome.
     * @param pc Branch address.
     * @param taken Architectural outcome.
     * @param main_mispredicted True when the main (TAGE) prediction
     *        was wrong — misses only allocate on that hint, as in
     *        L-TAGE.
     */
    void update(uint64_t pc, bool taken, bool main_mispredicted);

    /** Storage cost in bits. */
    uint64_t storageBits() const;

    /** The configuration in use. */
    const Config& config() const { return cfg_; }

    /** Number of confident entries (introspection / tests). */
    int confidentEntries() const;

  private:
    struct Entry {
        uint16_t tag = 0;
        uint16_t pastIter = 0;
        uint16_t currentIter = 0;
        uint8_t confidence = 0;
        uint8_t age = 0;
        bool dir = false; ///< direction of the loop-continue outcome
        bool inUse = false;
    };

    uint32_t indexFor(uint64_t pc) const;
    uint16_t tagFor(uint64_t pc) const;

    Config cfg_;
    std::vector<Entry> entries_;
    Lfsr16 lfsr_;
    unsigned confMax_;
    unsigned ageMax_;
    unsigned iterMax_;
};

} // namespace tagecon

#endif // TAGECON_TAGE_LOOP_PREDICTOR_HPP
