/**
 * @file
 * L-TAGE: the TAGE predictor augmented with the loop predictor, as in
 * Seznec's CBP-2 winner (reference [12] of the paper). The loop
 * predictor overrides TAGE only when it is confident and a WITHLOOP
 * hysteresis counter has learned that trusting it pays off.
 */

#ifndef TAGECON_TAGE_LTAGE_PREDICTOR_HPP
#define TAGECON_TAGE_LTAGE_PREDICTOR_HPP

#include "tage/loop_predictor.hpp"
#include "tage/tage_predictor.hpp"
#include "util/saturating_counter.hpp"

namespace tagecon {

/** Output of an L-TAGE lookup. */
struct LTagePrediction {
    /** Final direction after loop-predictor arbitration. */
    bool taken = false;

    /** True when the loop predictor provided the final prediction. */
    bool fromLoopPredictor = false;

    /** The underlying TAGE prediction (for confidence grading). */
    TagePrediction tage;

    /** The loop predictor's answer. */
    LoopPredictor::Result loop;
};

/**
 * TAGE + loop predictor. The ConfidenceObserver of core/ still applies
 * to the embedded TagePrediction; loop-provided predictions are
 * practically always correct (the entry is only trusted at full
 * confidence), so consumers may grade them as high confidence.
 */
class LTagePredictor
{
  public:
    /**
     * @param tage_config TAGE configuration (the paper's sizes).
     * @param loop_config Loop predictor geometry.
     */
    explicit LTagePredictor(TageConfig tage_config,
                            LoopPredictor::Config loop_config = {})
        : tage_(std::move(tage_config)), loop_(loop_config),
          withLoop_(7, -1) // 7-bit hysteresis, start distrusting
    {
    }

    /** Predict the branch at @p pc. */
    LTagePrediction
    predict(uint64_t pc) const
    {
        LTagePrediction p;
        p.tage = tage_.predict(pc);
        p.loop = loop_.lookup(pc);
        if (p.loop.valid && withLoop_.value() >= 0) {
            p.taken = p.loop.taken;
            p.fromLoopPredictor = true;
        } else {
            p.taken = p.tage.taken;
        }
        return p;
    }

    /** Train with the resolved outcome. */
    void
    update(uint64_t pc, const LTagePrediction& p, bool taken)
    {
        // WITHLOOP learns whether the loop predictor beats TAGE when
        // they disagree.
        if (p.loop.valid && p.loop.taken != p.tage.taken)
            withLoop_.update(p.loop.taken == taken);

        loop_.update(pc, taken, p.tage.taken != taken);
        tage_.update(pc, p.tage, taken);
    }

    /** The embedded TAGE predictor. */
    const TagePredictor& tage() const { return tage_; }

    /** The embedded loop predictor. */
    const LoopPredictor& loopPredictor() const { return loop_; }

    /** WITHLOOP hysteresis value (introspection / tests). */
    int withLoop() const { return withLoop_.value(); }

    /** Total storage in bits (TAGE tables + loop table). */
    uint64_t
    storageBits() const
    {
        return tage_.storageBits() + loop_.storageBits();
    }

  private:
    TagePredictor tage_;
    LoopPredictor loop_;
    SignedSatCounter withLoop_;
};

} // namespace tagecon

#endif // TAGECON_TAGE_LTAGE_PREDICTOR_HPP
