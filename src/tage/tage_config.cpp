#include "tage/tage_config.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tagecon {

std::vector<int>
TageConfig::geometricHistories(int min_hist, int max_hist, int n)
{
    TAGECON_ASSERT(n >= 1, "need at least one tagged table");
    TAGECON_ASSERT(min_hist >= 1 && max_hist >= min_hist,
                   "bad history bounds");
    std::vector<int> lengths(static_cast<size_t>(n));
    if (n == 1) {
        lengths[0] = max_hist;
        return lengths;
    }
    const double ratio =
        std::pow(static_cast<double>(max_hist) / min_hist,
                 1.0 / static_cast<double>(n - 1));
    double l = min_hist;
    int prev = 0;
    for (int i = 0; i < n; ++i) {
        int li = static_cast<int>(l + 0.5);
        // Keep the series strictly increasing even after rounding.
        li = std::max(li, prev + 1);
        lengths[static_cast<size_t>(i)] = li;
        prev = li;
        l *= ratio;
    }
    lengths.back() = max_hist;
    return lengths;
}

TageConfig
TageConfig::fromGeometry(std::string name, const TageGeometry& g)
{
    TageConfig cfg;
    cfg.name = std::move(name);
    cfg.logBimodalEntries = g.logBimodalEntries;
    const auto lengths = TageConfig::geometricHistories(
        g.minHistory, g.maxHistory, g.numTables);
    cfg.tagged.reserve(static_cast<size_t>(g.numTables));
    for (int i = 0; i < g.numTables; ++i) {
        cfg.tagged.push_back(TageTableConfig{
            g.logEntries, g.tagBits, lengths[static_cast<size_t>(i)]});
    }
    cfg.validate();
    return cfg;
}

TageGeometry
TageConfig::geometry16K()
{
    // 1024x2b bimodal + 4 x 256 x (8b tag + 3b ctr + 2b u) = 15.0 Kbit.
    return TageGeometry{10, 4, 8, 8, 3, 80};
}

TageGeometry
TageConfig::geometry64K()
{
    // 4096x2b bimodal + 7 x 512 x (10+3+2) = 60.5 Kbit.
    return TageGeometry{12, 7, 9, 10, 5, 130};
}

TageGeometry
TageConfig::geometry256K()
{
    // 4096x2b bimodal + 8 x 2048 x (10+3+2) = 248 Kbit.
    return TageGeometry{12, 8, 11, 10, 5, 300};
}

TageConfig
TageConfig::small16K()
{
    return fromGeometry("16K", geometry16K());
}

TageConfig
TageConfig::medium64K()
{
    return fromGeometry("64K", geometry64K());
}

TageConfig
TageConfig::large256K()
{
    return fromGeometry("256K", geometry256K());
}

std::vector<TageConfig>
TageConfig::paperConfigs()
{
    return {small16K(), medium64K(), large256K()};
}

uint64_t
TageConfig::storageBits() const
{
    uint64_t bits = (uint64_t{1} << logBimodalEntries) *
                    static_cast<uint64_t>(bimodalCtrBits);
    for (const auto& t : tagged) {
        bits += (uint64_t{1} << t.logEntries) *
                static_cast<uint64_t>(t.tagBits + taggedCtrBits +
                                      usefulBits);
    }
    return bits;
}

int
TageConfig::maxHistoryLength() const
{
    int m = 0;
    for (const auto& t : tagged)
        m = std::max(m, t.historyLength);
    return m;
}

void
TageConfig::validate() const
{
    if (tagged.empty())
        fatal("TAGE config '" + name + "': needs at least one tagged table");
    if (tagged.size() > static_cast<size_t>(kMaxTaggedTables))
        fatal("TAGE config '" + name + "': too many tagged tables");
    if (logBimodalEntries < 1 || logBimodalEntries > 24)
        fatal("TAGE config '" + name + "': bad bimodal size");
    if (bimodalCtrBits < 1 || bimodalCtrBits > 8)
        fatal("TAGE config '" + name + "': bad bimodal counter width");
    if (taggedCtrBits < 2 || taggedCtrBits > 8)
        fatal("TAGE config '" + name + "': bad tagged counter width");
    if (usefulBits < 1 || usefulBits > 8)
        fatal("TAGE config '" + name + "': bad useful counter width");
    if (taggedCtrBits + usefulBits > 8)
        fatal("TAGE config '" + name + "': tagged ctr and useful "
              "counters must pack into one byte (ctr + u bits <= 8)");
    if (pathHistoryBits < 1 || pathHistoryBits > 32)
        fatal("TAGE config '" + name + "': bad path history width");
    if (satLog2Prob > 15)
        fatal("TAGE config '" + name + "': satLog2Prob too large");
    int prev = 0;
    for (const auto& t : tagged) {
        if (t.logEntries < 1 || t.logEntries > 24)
            fatal("TAGE config '" + name + "': bad tagged table size");
        if (t.tagBits < 2 || t.tagBits > 16)
            fatal("TAGE config '" + name + "': bad tag width");
        if (t.historyLength <= prev)
            fatal("TAGE config '" + name +
                  "': history lengths must strictly increase");
        prev = t.historyLength;
    }
}

TageConfig
TageConfig::withProbabilisticSaturation(unsigned log2_prob) const
{
    TageConfig cfg = *this;
    cfg.probabilisticSaturation = true;
    cfg.satLog2Prob = log2_prob;
    return cfg;
}

} // namespace tagecon
