/**
 * @file
 * Configuration of a TAGE predictor instance, including the three
 * storage budgets evaluated in the paper (Table 1): 16Kbit (1+4
 * tables, history 3..80), 64Kbit (1+7 tables, history 5..130) and
 * 256Kbit (1+8 tables, history 5..300). As in the paper, all tagged
 * tables of a configuration have the same number of entries and the
 * bimodal hysteresis bits are not shared.
 */

#ifndef TAGECON_TAGE_TAGE_CONFIG_HPP
#define TAGECON_TAGE_TAGE_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace tagecon {

/** Upper bound on tagged tables supported by the implementation. */
inline constexpr int kMaxTaggedTables = 16;

/**
 * The shape parameters the paper's named budgets are generated from:
 * uniform tagged tables over a geometric history series. Kept as an
 * explicit struct so the registry can override individual fields
 * ("tage64k:tables=8,maxhist=300") and rebuild the series.
 */
struct TageGeometry {
    /** log2 of the bimodal (base) table entry count. */
    int logBimodalEntries = 12;

    /** Number of tagged components. */
    int numTables = 7;

    /** log2 of entries per tagged table. */
    int logEntries = 9;

    /** Partial tag width in bits. */
    int tagBits = 10;

    /** Shortest history length L(1). */
    int minHistory = 5;

    /** Longest history length L(M). */
    int maxHistory = 130;
};

/** Geometry of one tagged TAGE component. */
struct TageTableConfig {
    /** log2 of the number of entries. */
    int logEntries = 9;

    /** Width of the partial tag in bits. */
    int tagBits = 10;

    /** Global history length L(i) hashed into index and tag. */
    int historyLength = 5;
};

/**
 * Full TAGE predictor configuration. Construct via the named factory
 * functions for the paper's three budgets, or fill the fields directly
 * for ablations.
 */
struct TageConfig {
    /** Display name ("16K", "64K", "256K", or custom). */
    std::string name = "custom";

    /** log2 of the bimodal (base) table entry count. */
    int logBimodalEntries = 12;

    /** Bimodal counter width; 2 bits in the paper. */
    int bimodalCtrBits = 2;

    /** Tagged components, ordered T1 (shortest history) .. TM. */
    std::vector<TageTableConfig> tagged;

    /** Tagged prediction counter width; 3 bits in the paper. */
    int taggedCtrBits = 3;

    /** Useful counter width; 2 bits in the paper. */
    int usefulBits = 2;

    /** Path history register width mixed into the index hash. */
    int pathHistoryBits = 16;

    /** USE_ALT_ON_NA counter width (signed); 4 bits in the paper. */
    int useAltOnNaBits = 4;

    /**
     * Updates between graceful useful-counter resets (each reset is a
     * one-bit right shift of every u counter, Sec. 3.2).
     */
    uint64_t uResetPeriod = 1u << 18;

    /** Right-shift applied to the PC before hashing. */
    int instShift = 0;

    /**
     * Enable the USE_ALT_ON_NA mechanism (Sec. 3.1): on a weak provider
     * entry, dynamically choose between provider and alternate
     * prediction. Disabled only by the ablation bench.
     */
    bool useAltOnNa = true;

    // --- Modified automaton (Sec. 6) --------------------------------------
    /**
     * Enable the probabilistic saturation automaton: on a correct
     * prediction, a tagged counter at max-1 / min+1 only advances into
     * the saturated state with probability 1 / 2^satLog2Prob.
     */
    bool probabilisticSaturation = false;

    /** log2 of the inverse saturation probability; 7 -> p = 1/128. */
    unsigned satLog2Prob = 7;

    /**
     * Geometric history series L(i) = round(min * (max/min)^((i-1)/(n-1)))
     * as introduced for the O-GEHL predictor and used by TAGE.
     */
    static std::vector<int> geometricHistories(int min_hist, int max_hist,
                                               int n);

    /**
     * Build a config from a geometry: uniform tagged tables with a
     * geometric history series, exactly how the named budgets below
     * are generated.
     */
    static TageConfig fromGeometry(std::string name,
                                   const TageGeometry& g);

    /** Generation shape of the named budgets. */
    static TageGeometry geometry16K();
    static TageGeometry geometry64K();
    static TageGeometry geometry256K();

    /** The paper's small configuration: ~16Kbit, 1+4 tables, 3..80. */
    static TageConfig small16K();

    /** The paper's medium configuration: ~64Kbit, 1+7 tables, 5..130. */
    static TageConfig medium64K();

    /** The paper's large configuration: ~256Kbit, 1+8 tables, 5..300. */
    static TageConfig large256K();

    /** All three paper configurations, small to large. */
    static std::vector<TageConfig> paperConfigs();

    /** Total storage in bits (prediction tables only). */
    uint64_t storageBits() const;

    /** Number of tagged components. */
    int numTaggedTables() const { return static_cast<int>(tagged.size()); }

    /** Longest history used by any component. */
    int maxHistoryLength() const;

    /** Validate invariants; fatal() with a message on a bad config. */
    void validate() const;

    /** A copy of this config with the Sec. 6 automaton enabled. */
    TageConfig withProbabilisticSaturation(unsigned log2_prob = 7) const;
};

} // namespace tagecon

#endif // TAGECON_TAGE_TAGE_CONFIG_HPP
