/**
 * @file
 * The complete output of one TAGE lookup. This struct is the paper's
 * whole point: everything the storage-free confidence estimator needs
 * (provider component identity, provider counter strength, bimodal
 * counter state) is already in here — no extra tables required.
 */

#ifndef TAGECON_TAGE_TAGE_PREDICTION_HPP
#define TAGECON_TAGE_TAGE_PREDICTION_HPP

#include <array>
#include <cstdint>

#include "tage/tage_config.hpp"

namespace tagecon {

/**
 * Result of TagePredictor::predict(). Carries both the architectural
 * answer (taken) and the observable internals used for confidence
 * grading, plus the per-table indices/tags so the paired update() does
 * not recompute them.
 */
struct TagePrediction {
    /** Final prediction delivered to the front-end. */
    bool taken = false;

    /** True when a tagged component provided the prediction. */
    bool providerIsTagged = false;

    /**
     * Provider component: 1..M for tagged tables (M = longest history),
     * 0 when the bimodal base predictor provided.
     */
    int providerTable = 0;

    /** Provider's own direction (before any altpred substitution). */
    bool providerPredTaken = false;

    /** Tagged provider counter value; 0 when provider is bimodal. */
    int providerCtr = 0;

    /**
     * Prediction strength |2*ctr + 1| of the tagged provider counter
     * (1 = weak ... 2^bits-1 = saturated); 0 when provider is bimodal.
     */
    int providerStrength = 0;

    /** True when the tagged provider counter is saturated. */
    bool providerSaturated = false;

    /** True when the tagged provider counter is weak (strength 1). */
    bool providerWeak = false;

    /** Bimodal table direction at this PC. */
    bool bimodalTaken = false;

    /** True when the bimodal counter at this PC is weak. */
    bool bimodalWeak = false;

    /** Alternate prediction (next matching component / bimodal). */
    bool altTaken = false;

    /** True when the alternate prediction came from a tagged table. */
    bool altIsTagged = false;

    /** Alternate provider table (0 = bimodal). */
    int altTable = 0;

    /**
     * True when the final prediction used the alternate prediction
     * because the provider entry was weak and USE_ALT_ON_NA was
     * non-negative (Sec. 3.1).
     */
    bool usedAlt = false;

    /** Per-table indices computed at lookup; [0] is the bimodal index. */
    std::array<uint32_t, kMaxTaggedTables + 1> index{};

    /** Per-table partial tags computed at lookup; [0] unused. */
    std::array<uint16_t, kMaxTaggedTables + 1> tag{};
};

} // namespace tagecon

#endif // TAGECON_TAGE_TAGE_PREDICTION_HPP
