#include "tage/tage_predictor.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "util/bit_utils.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"

namespace tagecon {

namespace {

/** Initial bimodal counter value: weakly taken. */
unsigned
bimodalInit(int bits)
{
    return 1u << (bits - 1); // e.g. 2 for a 2-bit counter
}

/**
 * predictMany() processing-block size. One block's TagePrediction
 * scratch (~140 B each) plus the per-table index/tag staging arrays
 * must stay L1-resident between the table-major index pass and the
 * per-element resolve pass; 64 elements keeps the footprint near 12 KB.
 */
constexpr size_t kBatchBlock = 64;

/** rotateLeft specialized for rot already reduced mod width. */
inline uint32_t
rotlMasked(uint32_t v, int rot, int width, uint32_t mask)
{
    v &= mask;
    if (rot == 0)
        return v;
    return ((v << rot) | (v >> (width - rot))) & mask;
}

} // namespace

TagePredictor::TagePredictor(TageConfig config, uint16_t lfsr_seed)
    : config_(std::move(config)),
      history_(static_cast<size_t>(config_.maxHistoryLength()) + 2),
      pathHistory_(config_.pathHistoryBits),
      useAltOnNa_(config_.useAltOnNaBits, 0),
      lfsr_(lfsr_seed), lfsrSeed_(lfsr_seed)
{
    config_.validate();

    bimodal_.assign(size_t{1} << config_.logBimodalEntries,
                    static_cast<uint8_t>(
                        bimodalInit(config_.bimodalCtrBits)));

    const int m = config_.numTaggedTables();
    meta_.resize(static_cast<size_t>(m) + 1);
    folds_.resize(static_cast<size_t>(m) + 1);
    uint32_t offset = 0;
    for (int i = 1; i <= m; ++i) {
        const auto& tc = config_.tagged[static_cast<size_t>(i - 1)];
        TableMeta& t = meta_[static_cast<size_t>(i)];
        t.offset = offset;
        t.indexMask = static_cast<uint32_t>(maskBits(tc.logEntries));
        t.tagMask = static_cast<uint32_t>(maskBits(tc.tagBits));
        t.pathMask = static_cast<uint32_t>(maskBits(
            std::min(tc.historyLength, config_.pathHistoryBits)));
        t.logEntries = static_cast<uint8_t>(tc.logEntries);
        t.rot = static_cast<uint8_t>(i % tc.logEntries);
        t.idxShift = static_cast<uint8_t>(tc.logEntries - t.rot);
        offset += uint32_t{1} << tc.logEntries;

        folds_[static_cast<size_t>(i)] = FoldedHistoryTriple(
            tc.historyLength, tc.logEntries, tc.tagBits, tc.tagBits - 1);
    }
    tag_.assign(offset, 0);
    ctru_.assign(offset, 0); // ctr 0, u 0 packs to 0

    uResetCountdown_ = config_.uResetPeriod;
}

void
TagePredictor::reset()
{
    *this = TagePredictor(config_, lfsrSeed_);
}

uint32_t
TagePredictor::bimodalIndex(uint64_t pc) const
{
    const uint64_t shifted = pc >> config_.instShift;
    return static_cast<uint32_t>(shifted &
                                 maskBits(config_.logBimodalEntries));
}

uint32_t
TagePredictor::pathHash(int table) const
{
    // Classic TAGE "F" function: fold the path history register into
    // logEntries bits with a table-dependent rotation so components do
    // not alias the same way.
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    const int logg = t.logEntries;

    uint32_t a = pathHistory_.value() & t.pathMask;
    const uint32_t a1 = a & t.indexMask;
    uint32_t a2 = a >> logg;
    a2 = rotlMasked(a2, t.rot, logg, t.indexMask);
    a = a1 ^ a2;
    a = rotlMasked(a, t.rot, logg, t.indexMask);
    return a;
}

uint32_t
TagePredictor::taggedIndex(uint64_t pc, int table) const
{
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    const uint64_t shifted = pc >> config_.instShift;
    const uint64_t mixed = shifted ^ (shifted >> t.idxShift) ^
                           folds_[static_cast<size_t>(table)].a() ^
                           pathHash(table);
    return static_cast<uint32_t>(mixed) & t.indexMask;
}

uint16_t
TagePredictor::taggedTag(uint64_t pc, int table) const
{
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    const FoldedHistoryTriple& f = folds_[static_cast<size_t>(table)];
    const uint64_t shifted = pc >> config_.instShift;
    const uint64_t mixed =
        shifted ^ f.b() ^ (static_cast<uint64_t>(f.c()) << 1);
    return static_cast<uint16_t>(static_cast<uint32_t>(mixed) & t.tagMask);
}

TagePrediction
TagePredictor::predict(uint64_t pc) const
{
    TagePrediction p;
    const int m = config_.numTaggedTables();

    p.index[0] = bimodalIndex(pc);
    for (int i = 1; i <= m; ++i) {
        p.index[static_cast<size_t>(i)] = taggedIndex(pc, i);
        p.tag[static_cast<size_t>(i)] = taggedTag(pc, i);
    }
    fillFromTables(p);
    return p;
}

void
TagePredictor::fillFromTables(TagePrediction& p) const
{
    const int m = config_.numTaggedTables();

    const uint8_t bim = bimodal_[p.index[0]];
    const int bim_bits = config_.bimodalCtrBits;
    p.bimodalTaken = packed::unsignedTaken(bim, bim_bits);
    p.bimodalWeak = packed::unsignedWeak(bim, bim_bits);

    // Find provider (longest matching history) and the alternate:
    // gather the candidate entries' stored tags and compare all lanes
    // at once. Bit i-1 of the mask = "table i matches", so the
    // provider is the highest set bit and the alternate the next one
    // down — the same entries the scalar longest-match scan selects.
    // Unused lanes hold 0 in both arrays and are masked off.
    alignas(16) uint16_t stored[kMaxTaggedTables] = {};
    alignas(16) uint16_t want[kMaxTaggedTables] = {};
    static_assert(kMaxTaggedTables == 16,
                  "tag scan assumes 16 matchMask16 lanes");
    for (int i = 1; i <= m; ++i) {
        stored[i - 1] = tag_[meta_[static_cast<size_t>(i)].offset +
                             p.index[static_cast<size_t>(i)]];
        want[i - 1] = p.tag[static_cast<size_t>(i)];
    }
    uint32_t mask = simd::matchMask16(stored, want) &
                    static_cast<uint32_t>(maskBits(m));
    int provider = 0;
    int alt = 0;
    if (mask != 0) {
        provider = std::bit_width(mask);
        mask ^= 1u << (provider - 1);
        if (mask != 0)
            alt = std::bit_width(mask);
    }

    const int ctr_bits = config_.taggedCtrBits;
    if (alt != 0) {
        const uint32_t at = meta_[static_cast<size_t>(alt)].offset +
                            p.index[static_cast<size_t>(alt)];
        p.altTaken =
            packed::signedTaken(packed::ctruCtr(ctru_[at], ctr_bits));
        p.altIsTagged = true;
        p.altTable = alt;
    } else {
        p.altTaken = p.bimodalTaken;
        p.altIsTagged = false;
        p.altTable = 0;
    }

    if (provider != 0) {
        const uint32_t at = meta_[static_cast<size_t>(provider)].offset +
                            p.index[static_cast<size_t>(provider)];
        const int ctr = packed::ctruCtr(ctru_[at], ctr_bits);
        p.providerIsTagged = true;
        p.providerTable = provider;
        p.providerCtr = ctr;
        p.providerStrength = packed::signedStrength(ctr);
        p.providerSaturated = packed::signedSaturated(ctr, ctr_bits);
        p.providerWeak = packed::signedWeak(ctr);
        p.providerPredTaken = packed::signedTaken(ctr);

        // Sec. 3.1: when the provider entry is weak and USE_ALT_ON_NA
        // is non-negative, the alternate prediction is used instead.
        if (config_.useAltOnNa && p.providerWeak &&
            useAltOnNa_.value() >= 0) {
            p.taken = p.altTaken;
            p.usedAlt = true;
        } else {
            p.taken = p.providerPredTaken;
        }
    } else {
        p.providerIsTagged = false;
        p.providerTable = 0;
        p.providerPredTaken = p.bimodalTaken;
        p.taken = p.bimodalTaken;
    }
}

void
TagePredictor::updateTaggedCtr(uint32_t at, bool taken)
{
    const int bits = config_.taggedCtrBits;
    const uint8_t packed_entry = ctru_[at];
    const int ctr = packed::ctruCtr(packed_entry, bits);
    if (config_.probabilisticSaturation &&
        packed::signedUpdateWouldSaturate(ctr, bits, taken)) {
        // Sec. 6: the transition into the saturated state only happens
        // with probability 1/2^satLog2Prob. All other transitions are
        // unchanged, so the accuracy impact is marginal while a
        // saturated counter now implies a long recent mistake-free run.
        if (!lfsr_.oneIn(config_.satLog2Prob))
            return;
    }
    ctru_[at] = packed::ctruWithCtr(
        packed_entry, packed::signedUpdate(ctr, bits, taken), bits);
}

void
TagePredictor::allocate(const TagePrediction& p, bool taken)
{
    const int m = config_.numTaggedTables();
    const int start = p.providerTable + 1;
    if (start > m)
        return;

    const int cb = config_.taggedCtrBits;
    bool any_useless = false;
    for (int k = start; k <= m && !any_useless; ++k) {
        any_useless =
            packed::ctruU(ctru_[meta_[static_cast<size_t>(k)].offset +
                                p.index[static_cast<size_t>(k)]],
                          cb) == 0;
    }

    if (!any_useless) {
        // No free entry: gracefully decay the contenders so an
        // allocation will succeed soon (anti-ping-pong).
        for (int k = start; k <= m; ++k) {
            uint8_t& v = ctru_[meta_[static_cast<size_t>(k)].offset +
                               p.index[static_cast<size_t>(k)]];
            v = packed::ctruWithU(
                v, packed::unsignedDec(packed::ctruU(v, cb)), cb);
        }
        return;
    }

    // Choose among useless entries with geometrically decreasing
    // probability from the shortest history up, as in the reference
    // TAGE implementations: each candidate is taken with probability
    // 1/2, falling through to longer histories otherwise.
    int chosen = 0;
    for (int k = start; k <= m; ++k) {
        if (packed::ctruU(ctru_[meta_[static_cast<size_t>(k)].offset +
                                p.index[static_cast<size_t>(k)]],
                          cb) != 0)
            continue;
        chosen = k;
        if (lfsr_.oneIn(1))
            break;
    }

    const uint32_t at = meta_[static_cast<size_t>(chosen)].offset +
                        p.index[static_cast<size_t>(chosen)];
    tag_[at] = p.tag[static_cast<size_t>(chosen)];
    // Weak correct ctr, strong not-useful u.
    ctru_[at] = packed::ctruPack(taken ? 0 : -1, 0, cb);
    ++allocations_;
}

void
TagePredictor::ageUsefulCounters()
{
    // One-bit right shift of every packed entry's useful field; the
    // ctr field is untouched. Constant masks, so the loop vectorizes.
    const int cb = config_.taggedCtrBits;
    for (uint8_t& v : ctru_)
        v = packed::ctruAgeU(v, cb);
}

void
TagePredictor::train(const TagePrediction& p, bool taken)
{
    const bool mispredicted = p.taken != taken;

    if (p.providerIsTagged) {
        const uint32_t at =
            meta_[static_cast<size_t>(p.providerTable)].offset +
            p.index[static_cast<size_t>(p.providerTable)];

        // Manage USE_ALT_ON_NA: on a weak ("pseudo newly allocated")
        // provider whose direction differs from the alternate, learn
        // which of the two tends to be right (Sec. 3.1).
        if (p.providerWeak && p.providerPredTaken != p.altTaken)
            useAltOnNa_.update(p.altTaken == taken);

        updateTaggedCtr(at, taken);

        // Sec. 3.2: u is updated when the alternate prediction differs
        // from the provider prediction.
        if (p.providerPredTaken != p.altTaken) {
            const int cb = config_.taggedCtrBits;
            const uint8_t v = ctru_[at];
            ctru_[at] = packed::ctruWithU(
                v,
                packed::unsignedUpdate(packed::ctruU(v, cb),
                                       config_.usefulBits,
                                       p.providerPredTaken == taken),
                cb);
        }
    } else {
        uint8_t& bim = bimodal_[p.index[0]];
        bim = static_cast<uint8_t>(
            packed::unsignedUpdate(bim, config_.bimodalCtrBits, taken));
    }

    // Sec. 3.3: allocate on mispredictions — but when a weak provider
    // entry was itself correct, it only needs training, not backup.
    bool alloc = mispredicted && p.providerTable < config_.numTaggedTables();
    if (p.providerIsTagged && p.providerWeak &&
        p.providerPredTaken == taken) {
        alloc = false;
    }
    if (alloc)
        allocate(p, taken);

    ++updates_;
    if (uResetCountdown_ != 0 && --uResetCountdown_ == 0) {
        ageUsefulCounters();
        uResetCountdown_ = config_.uResetPeriod;
    }
}

void
TagePredictor::advanceHistories(uint64_t pc, bool taken)
{
    // Advance speculative state with the resolved outcome. The fused
    // fold triple updates index and both tag folds with one pair of
    // history reads per table.
    history_.push(taken);
    pathHistory_.push(pc >> config_.instShift);
    const int m = config_.numTaggedTables();
    for (int i = 1; i <= m; ++i)
        folds_[static_cast<size_t>(i)].update(history_);
}

void
TagePredictor::update(uint64_t pc, const TagePrediction& p, bool taken)
{
    train(p, taken);
    advanceHistories(pc, taken);
}

void
TagePredictor::prefetchBatch(std::span<const TagePrediction> out)
{
    // Prefetching only pays when the tagged arena outgrows the cache
    // the batch's gathers would otherwise hit: every paper-budget
    // config (a few dozen KiB end to end) stays resident after its
    // first batch, and issuing ~3 prefetches per table per element
    // would be pure front-end overhead. Gate on the packed arena
    // footprint.
    constexpr size_t kPrefetchMinArenaBytes = size_t{1} << 18; // 256 KiB
    constexpr size_t kSortArenaBytes = size_t{1} << 21;        // 2 MiB
    const size_t arena_bytes = ctru_.size() * 3 + bimodal_.size();
    if (arena_bytes <= kPrefetchMinArenaBytes)
        return;

    // Collect the flat arena offsets the batch will read, one pass
    // over the batch. Only when the arena also outgrows the last-level
    // working set is the full (table, index) sort worth its cost,
    // turning the prefetch walk into one ascending pass.
    const int m = config_.numTaggedTables();
    batchAts_.clear();
    batchAts_.reserve(out.size() * static_cast<size_t>(m));
    for (const TagePrediction& p : out)
        for (int i = 1; i <= m; ++i)
            batchAts_.push_back(meta_[static_cast<size_t>(i)].offset +
                                p.index[static_cast<size_t>(i)]);
    if (ctru_.size() * 3 > kSortArenaBytes)
        std::sort(batchAts_.begin(), batchAts_.end());
    for (const uint32_t at : batchAts_) {
        simd::prefetchRead(&tag_[at]);
        simd::prefetchRead(&ctru_[at]);
    }
    for (const TagePrediction& p : out)
        simd::prefetchRead(&bimodal_[p.index[0]]);
}

void
TagePredictor::advanceAndIndexBlock(std::span<const uint64_t> pcs,
                                    std::span<const uint8_t> taken,
                                    std::span<TagePrediction> out)
{
    const int m = config_.numTaggedTables();
    const size_t n = pcs.size();
    const size_t lmax =
        static_cast<size_t>(config_.maxHistoryLength());
    TAGECON_ASSERT(n <= kBatchBlock, "index block too large");

    // Lay the block's outcome bits behind the pre-block history
    // window: batchWindow_[lmax - 1 - j] = h[j] for the lmax newest
    // pre-block outcomes, then batchWindow_[lmax + k] = outcome k. A
    // fold update for element k then reads its in-bit at lmax + k and
    // its out-bit (the bit leaving the L-wide window) at
    // lmax + k - L, for any L <= lmax — no ring wrap-around to chase.
    if (batchWindow_.size() < lmax + kBatchBlock)
        batchWindow_.resize(lmax + kBatchBlock);
    for (size_t j = 0; j < lmax; ++j)
        batchWindow_[lmax - 1 - j] = history_[j];

    // Per-element prep: zero the outputs, capture each element's
    // pre-push path register value, and advance the path register.
    uint64_t shifted[kBatchBlock];
    uint32_t pathv[kBatchBlock];
    for (size_t k = 0; k < n; ++k) {
        TagePrediction& p = out[k];
        p = TagePrediction{};
        const uint64_t pc = pcs[k];
        shifted[k] = pc >> config_.instShift;
        p.index[0] = bimodalIndex(pc);
        pathv[k] = pathHistory_.value();
        pathHistory_.push(shifted[k]);
        batchWindow_[lmax + k] = taken[k] != 0 ? 1 : 0;
    }

    // Table-major precompute. First the fold-value streams — the only
    // serial dependency in the hash, walked with the fold triple in
    // registers — then the hashes themselves, which are uniform
    // element-wise ops over those streams (vectorizable), and finally
    // one scatter into the output structs.
    uint32_t aV[kBatchBlock];
    uint32_t bV[kBatchBlock];
    uint32_t cV[kBatchBlock];
    uint32_t idxV[kBatchBlock];
    uint16_t tagV[kBatchBlock];
    for (int i = 1; i <= m; ++i) {
        FoldedHistoryTriple f = folds_[static_cast<size_t>(i)];
        const size_t L = static_cast<size_t>(f.origLength());
        for (size_t k = 0; k < n; ++k) {
            aV[k] = f.a();
            bV[k] = f.b();
            cV[k] = f.c();
            f.updateWithBits(batchWindow_[lmax + k],
                             batchWindow_[lmax + k - L]);
        }
        folds_[static_cast<size_t>(i)] = f;

        const TableMeta& t = meta_[static_cast<size_t>(i)];
        const int logg = t.logEntries;
        for (size_t k = 0; k < n; ++k) {
            // Inline taggedIndex()/taggedTag() over the precomputed
            // fold and path values (bit-identical: xor commutes with
            // the truncation to 32 bits).
            uint32_t a = pathv[k] & t.pathMask;
            const uint32_t a1 = a & t.indexMask;
            const uint32_t a2 =
                rotlMasked(a >> logg, t.rot, logg, t.indexMask);
            a = rotlMasked(a1 ^ a2, t.rot, logg, t.indexMask);
            const uint64_t s = shifted[k];
            idxV[k] = (static_cast<uint32_t>(s ^ (s >> t.idxShift)) ^
                       aV[k] ^ a) &
                      t.indexMask;
            tagV[k] = static_cast<uint16_t>(
                (static_cast<uint32_t>(s) ^ bV[k] ^ (cV[k] << 1)) &
                t.tagMask);
        }
        for (size_t k = 0; k < n; ++k) {
            out[k].index[static_cast<size_t>(i)] = idxV[k];
            out[k].tag[static_cast<size_t>(i)] = tagV[k];
        }
    }

    // The outcomes enter the ring last: the folds already consumed
    // them from the block window, and nothing else reads the ring
    // mid-block.
    for (size_t k = 0; k < n; ++k)
        history_.push(taken[k] != 0);
}

void
TagePredictor::predictMany(std::span<const uint64_t> pcs,
                           std::span<const uint8_t> taken,
                           std::span<TagePrediction> out)
{
    TAGECON_ASSERT(taken.size() >= pcs.size() &&
                       out.size() >= pcs.size(),
                   "predictMany spans disagree on the batch size");
    const size_t n = pcs.size();

    // Process in blocks sized so one block's TagePrediction scratch
    // stays L1-resident between the index pass and the resolve pass.
    for (size_t at = 0; at < n; at += kBatchBlock) {
        const size_t len = std::min(kBatchBlock, n - at);

        // Pass 1: per-table indices and tags, table-major. They
        // depend only on the PCs and the outcome-driven history state
        // — never on table contents — so the histories can be
        // advanced through the whole block up front, leaving each
        // element exactly the lookup values its scalar predict()
        // would have computed.
        advanceAndIndexBlock(pcs.subspan(at, len),
                             taken.subspan(at, len),
                             out.subspan(at, len));

        // Pass 2: stream the block's arena reads (large arenas only).
        prefetchBatch(out.subspan(at, len));

        // Pass 3: resolve in input order — read each element's
        // entries as they stand after elements [0, k) trained, then
        // train with its outcome. Training consumes the LFSR and
        // updates USE_ALT_ON_NA and the aging countdown in exactly
        // the scalar order, so both the prediction stream and the
        // final state are bit-identical to the scalar predict/update
        // loop. (Training touches no history state; that already
        // advanced in pass 1.)
        for (size_t k = at; k < at + len; ++k) {
            fillFromTables(out[k]);
            train(out[k], taken[k] != 0);
        }
    }
}

void
TagePredictor::updateMany(std::span<const uint64_t> pcs,
                          std::span<const TagePrediction> preds,
                          std::span<const uint8_t> taken)
{
    TAGECON_ASSERT(preds.size() >= pcs.size() &&
                       taken.size() >= pcs.size(),
                   "updateMany spans disagree on the batch size");
    prefetchBatch(preds.first(pcs.size()));
    for (size_t k = 0; k < pcs.size(); ++k)
        update(pcs[k], preds[k], taken[k] != 0);
}

void
TagePredictor::setSatLog2Prob(unsigned log2_prob)
{
    TAGECON_ASSERT(log2_prob <= 15, "saturation probability too small");
    config_.satLog2Prob = log2_prob;
}

TagePredictor::TaggedEntry
TagePredictor::taggedEntry(int table, uint32_t index) const
{
    TAGECON_ASSERT(table >= 1 && table <= config_.numTaggedTables(),
                   "tagged table id out of range");
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    TAGECON_ASSERT(index <= t.indexMask, "tagged index out of range");
    const uint32_t at = t.offset + index;
    const int cb = config_.taggedCtrBits;
    return TaggedEntry{
        SignedSatCounter(cb, packed::ctruCtr(ctru_[at], cb)), tag_[at],
        UnsignedSatCounter(config_.usefulBits,
                           packed::ctruU(ctru_[at], cb))};
}

UnsignedSatCounter
TagePredictor::bimodalEntry(uint32_t index) const
{
    TAGECON_ASSERT(index < bimodal_.size(), "bimodal index out of range");
    return UnsignedSatCounter(config_.bimodalCtrBits, bimodal_[index]);
}

void
TagePredictor::saveState(StateWriter& out) const
{
    // Geometry fingerprint: everything loadState() must agree on for
    // the arena sizes and hash functions to line up. The checkpoint
    // layer above additionally matches the canonical spec string; this
    // guards direct saveState()/loadState() use and custom configs.
    const int m = config_.numTaggedTables();
    out.u32(static_cast<uint32_t>(m));
    for (const auto& tc : config_.tagged) {
        out.u8(static_cast<uint8_t>(tc.logEntries));
        out.u8(static_cast<uint8_t>(tc.tagBits));
        out.u32(static_cast<uint32_t>(tc.historyLength));
    }
    out.u8(static_cast<uint8_t>(config_.logBimodalEntries));
    out.u8(static_cast<uint8_t>(config_.bimodalCtrBits));
    out.u8(static_cast<uint8_t>(config_.taggedCtrBits));
    out.u8(static_cast<uint8_t>(config_.usefulBits));
    out.u8(static_cast<uint8_t>(config_.pathHistoryBits));
    out.u8(static_cast<uint8_t>(config_.useAltOnNaBits));
    out.u8(static_cast<uint8_t>(config_.instShift));
    out.u8(config_.useAltOnNa ? 1 : 0);
    out.u8(config_.probabilisticSaturation ? 1 : 0);
    out.u64(config_.uResetPeriod);

    // Dynamic state. satLog2Prob is config-carried but runtime-mutable
    // (the adaptive controller drives it), so it checkpoints as state.
    out.u32(config_.satLog2Prob);
    out.bytes(bimodal_.data(), bimodal_.size());
    for (const uint16_t t : tag_)
        out.u16(t);
    out.bytes(ctru_.data(), ctru_.size());

    // History ring, relative to the head (index 0 = newest), packed 8
    // outcomes per byte. Replaying these into a cleared ring restores
    // every addressable h[i] — head position itself is not
    // architectural, all reads are head-relative.
    const size_t outcomes = history_.capacity() + 1;
    out.u32(static_cast<uint32_t>(outcomes));
    out.packedBits(outcomes, [&](size_t i) {
        return history_[outcomes - 1 - i] != 0;
    });

    out.u32(pathHistory_.value());
    for (int i = 1; i <= m; ++i) {
        const FoldedHistoryTriple& f = folds_[static_cast<size_t>(i)];
        out.u32(f.a());
        out.u32(f.b());
        out.u32(f.c());
    }

    out.i64(useAltOnNa_.value());
    out.u16(lfsr_.value());
    out.u16(lfsrSeed_);
    out.u64(updates_);
    out.u64(allocations_);
    out.u64(uResetCountdown_);
}

bool
TagePredictor::loadState(StateReader& in, std::string& error)
{
    const int m = config_.numTaggedTables();
    bool geometry_ok = in.u32() == static_cast<uint32_t>(m);
    for (int i = 0; i < m && geometry_ok; ++i) {
        const auto& tc = config_.tagged[static_cast<size_t>(i)];
        geometry_ok =
            in.u8() == static_cast<uint8_t>(tc.logEntries) &&
            in.u8() == static_cast<uint8_t>(tc.tagBits) &&
            in.u32() == static_cast<uint32_t>(tc.historyLength);
    }
    geometry_ok =
        geometry_ok &&
        in.u8() == static_cast<uint8_t>(config_.logBimodalEntries) &&
        in.u8() == static_cast<uint8_t>(config_.bimodalCtrBits) &&
        in.u8() == static_cast<uint8_t>(config_.taggedCtrBits) &&
        in.u8() == static_cast<uint8_t>(config_.usefulBits) &&
        in.u8() == static_cast<uint8_t>(config_.pathHistoryBits) &&
        in.u8() == static_cast<uint8_t>(config_.useAltOnNaBits) &&
        in.u8() == static_cast<uint8_t>(config_.instShift) &&
        in.u8() == (config_.useAltOnNa ? 1 : 0) &&
        in.u8() == (config_.probabilisticSaturation ? 1 : 0) &&
        in.u64() == config_.uResetPeriod;
    if (!in.ok() || !geometry_ok) {
        reset();
        error = in.ok() ? "TAGE state was written by a predictor with "
                          "a different geometry"
                        : "TAGE state is truncated";
        return false;
    }

    const uint32_t sat_log2 = in.u32();
    in.bytes(bimodal_.data(), bimodal_.size());
    for (uint16_t& t : tag_)
        t = in.u16();
    in.bytes(ctru_.data(), ctru_.size());

    const size_t outcomes = history_.capacity() + 1;
    if (in.u32() != static_cast<uint32_t>(outcomes)) {
        reset();
        error = in.ok() ? "TAGE state carries a history ring of a "
                          "different capacity"
                        : "TAGE state is truncated";
        return false;
    }
    std::vector<uint8_t> ring(outcomes, 0);
    in.packedBits(outcomes,
                  [&](size_t i, bool bit) { ring[i] = bit ? 1 : 0; });
    const uint32_t path = in.u32();
    std::vector<std::array<uint32_t, 3>> fold_state(
        static_cast<size_t>(m));
    for (auto& f : fold_state) {
        f[0] = in.u32();
        f[1] = in.u32();
        f[2] = in.u32();
    }
    const int64_t use_alt = in.i64();
    const uint16_t lfsr = in.u16();
    const uint16_t lfsr_seed = in.u16();
    const uint64_t updates = in.u64();
    const uint64_t allocations = in.u64();
    const uint64_t u_reset_countdown = in.u64();
    if (!in.ok()) {
        reset();
        error = "TAGE state is truncated";
        return false;
    }

    if (sat_log2 > 15) {
        reset();
        error = "TAGE state carries an out-of-range saturation "
                "probability";
        return false;
    }
    config_.satLog2Prob = sat_log2;
    // ring[0] is the oldest outcome; pushing oldest-first rebuilds
    // every head-relative index.
    history_.clear();
    for (const uint8_t bit : ring)
        history_.push(bit != 0);
    pathHistory_.restore(path);
    for (int i = 1; i <= m; ++i) {
        const auto& f = fold_state[static_cast<size_t>(i - 1)];
        folds_[static_cast<size_t>(i)].restore(f[0], f[1], f[2]);
    }
    useAltOnNa_.set(static_cast<int>(use_alt));
    lfsr_.setState(lfsr);
    lfsrSeed_ = lfsr_seed;
    updates_ = updates;
    allocations_ = allocations;
    uResetCountdown_ = u_reset_countdown;
    return true;
}

} // namespace tagecon
