#include "tage/tage_predictor.hpp"

#include <algorithm>
#include <array>

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

namespace {

/** Initial bimodal counter value: weakly taken. */
unsigned
bimodalInit(int bits)
{
    return 1u << (bits - 1); // e.g. 2 for a 2-bit counter
}

/** rotateLeft specialized for rot already reduced mod width. */
inline uint32_t
rotlMasked(uint32_t v, int rot, int width, uint32_t mask)
{
    v &= mask;
    if (rot == 0)
        return v;
    return ((v << rot) | (v >> (width - rot))) & mask;
}

} // namespace

TagePredictor::TagePredictor(TageConfig config, uint16_t lfsr_seed)
    : config_(std::move(config)),
      history_(static_cast<size_t>(config_.maxHistoryLength()) + 2),
      pathHistory_(config_.pathHistoryBits),
      useAltOnNa_(config_.useAltOnNaBits, 0),
      lfsr_(lfsr_seed), lfsrSeed_(lfsr_seed)
{
    config_.validate();

    bimodal_.assign(size_t{1} << config_.logBimodalEntries,
                    static_cast<uint8_t>(
                        bimodalInit(config_.bimodalCtrBits)));

    const int m = config_.numTaggedTables();
    meta_.resize(static_cast<size_t>(m) + 1);
    folds_.resize(static_cast<size_t>(m) + 1);
    uint32_t offset = 0;
    for (int i = 1; i <= m; ++i) {
        const auto& tc = config_.tagged[static_cast<size_t>(i - 1)];
        TableMeta& t = meta_[static_cast<size_t>(i)];
        t.offset = offset;
        t.indexMask = static_cast<uint32_t>(maskBits(tc.logEntries));
        t.tagMask = static_cast<uint32_t>(maskBits(tc.tagBits));
        t.pathMask = static_cast<uint32_t>(maskBits(
            std::min(tc.historyLength, config_.pathHistoryBits)));
        t.logEntries = static_cast<uint8_t>(tc.logEntries);
        t.rot = static_cast<uint8_t>(i % tc.logEntries);
        t.idxShift = static_cast<uint8_t>(tc.logEntries - t.rot);
        offset += uint32_t{1} << tc.logEntries;

        folds_[static_cast<size_t>(i)] = FoldedHistoryTriple(
            tc.historyLength, tc.logEntries, tc.tagBits, tc.tagBits - 1);
    }
    ctr_.assign(offset, 0);
    tag_.assign(offset, 0);
    u_.assign(offset, 0);

    uResetCountdown_ = config_.uResetPeriod;
}

void
TagePredictor::reset()
{
    *this = TagePredictor(config_, lfsrSeed_);
}

uint32_t
TagePredictor::bimodalIndex(uint64_t pc) const
{
    const uint64_t shifted = pc >> config_.instShift;
    return static_cast<uint32_t>(shifted &
                                 maskBits(config_.logBimodalEntries));
}

uint32_t
TagePredictor::pathHash(int table) const
{
    // Classic TAGE "F" function: fold the path history register into
    // logEntries bits with a table-dependent rotation so components do
    // not alias the same way.
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    const int logg = t.logEntries;

    uint32_t a = pathHistory_.value() & t.pathMask;
    const uint32_t a1 = a & t.indexMask;
    uint32_t a2 = a >> logg;
    a2 = rotlMasked(a2, t.rot, logg, t.indexMask);
    a = a1 ^ a2;
    a = rotlMasked(a, t.rot, logg, t.indexMask);
    return a;
}

uint32_t
TagePredictor::taggedIndex(uint64_t pc, int table) const
{
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    const uint64_t shifted = pc >> config_.instShift;
    const uint64_t mixed = shifted ^ (shifted >> t.idxShift) ^
                           folds_[static_cast<size_t>(table)].a() ^
                           pathHash(table);
    return static_cast<uint32_t>(mixed) & t.indexMask;
}

uint16_t
TagePredictor::taggedTag(uint64_t pc, int table) const
{
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    const FoldedHistoryTriple& f = folds_[static_cast<size_t>(table)];
    const uint64_t shifted = pc >> config_.instShift;
    const uint64_t mixed =
        shifted ^ f.b() ^ (static_cast<uint64_t>(f.c()) << 1);
    return static_cast<uint16_t>(static_cast<uint32_t>(mixed) & t.tagMask);
}

TagePrediction
TagePredictor::predict(uint64_t pc) const
{
    TagePrediction p;
    const int m = config_.numTaggedTables();

    p.index[0] = bimodalIndex(pc);
    const uint8_t bim = bimodal_[p.index[0]];
    const int bim_bits = config_.bimodalCtrBits;
    p.bimodalTaken = packed::unsignedTaken(bim, bim_bits);
    p.bimodalWeak = packed::unsignedWeak(bim, bim_bits);

    for (int i = 1; i <= m; ++i) {
        p.index[static_cast<size_t>(i)] = taggedIndex(pc, i);
        p.tag[static_cast<size_t>(i)] = taggedTag(pc, i);
    }

    // Find provider (longest matching history) and the alternate. The
    // scan only touches the packed tag arena.
    int provider = 0;
    int alt = 0;
    for (int i = m; i >= 1; --i) {
        const uint32_t at = meta_[static_cast<size_t>(i)].offset +
                            p.index[static_cast<size_t>(i)];
        if (tag_[at] == p.tag[static_cast<size_t>(i)]) {
            if (provider == 0) {
                provider = i;
            } else {
                alt = i;
                break;
            }
        }
    }

    const int ctr_bits = config_.taggedCtrBits;
    if (alt != 0) {
        const uint32_t at = meta_[static_cast<size_t>(alt)].offset +
                            p.index[static_cast<size_t>(alt)];
        p.altTaken = packed::signedTaken(ctr_[at]);
        p.altIsTagged = true;
        p.altTable = alt;
    } else {
        p.altTaken = p.bimodalTaken;
        p.altIsTagged = false;
        p.altTable = 0;
    }

    if (provider != 0) {
        const uint32_t at = meta_[static_cast<size_t>(provider)].offset +
                            p.index[static_cast<size_t>(provider)];
        const int ctr = ctr_[at];
        p.providerIsTagged = true;
        p.providerTable = provider;
        p.providerCtr = ctr;
        p.providerStrength = packed::signedStrength(ctr);
        p.providerSaturated = packed::signedSaturated(ctr, ctr_bits);
        p.providerWeak = packed::signedWeak(ctr);
        p.providerPredTaken = packed::signedTaken(ctr);

        // Sec. 3.1: when the provider entry is weak and USE_ALT_ON_NA
        // is non-negative, the alternate prediction is used instead.
        if (config_.useAltOnNa && p.providerWeak &&
            useAltOnNa_.value() >= 0) {
            p.taken = p.altTaken;
            p.usedAlt = true;
        } else {
            p.taken = p.providerPredTaken;
        }
    } else {
        p.providerIsTagged = false;
        p.providerTable = 0;
        p.providerPredTaken = p.bimodalTaken;
        p.taken = p.bimodalTaken;
    }

    return p;
}

void
TagePredictor::updateTaggedCtr(uint32_t at, bool taken)
{
    const int bits = config_.taggedCtrBits;
    const int ctr = ctr_[at];
    if (config_.probabilisticSaturation &&
        packed::signedUpdateWouldSaturate(ctr, bits, taken)) {
        // Sec. 6: the transition into the saturated state only happens
        // with probability 1/2^satLog2Prob. All other transitions are
        // unchanged, so the accuracy impact is marginal while a
        // saturated counter now implies a long recent mistake-free run.
        if (!lfsr_.oneIn(config_.satLog2Prob))
            return;
    }
    ctr_[at] = static_cast<int8_t>(packed::signedUpdate(ctr, bits, taken));
}

void
TagePredictor::allocate(const TagePrediction& p, bool taken)
{
    const int m = config_.numTaggedTables();
    const int start = p.providerTable + 1;
    if (start > m)
        return;

    bool any_useless = false;
    for (int k = start; k <= m && !any_useless; ++k) {
        any_useless = u_[meta_[static_cast<size_t>(k)].offset +
                         p.index[static_cast<size_t>(k)]] == 0;
    }

    if (!any_useless) {
        // No free entry: gracefully decay the contenders so an
        // allocation will succeed soon (anti-ping-pong).
        for (int k = start; k <= m; ++k) {
            uint8_t& u = u_[meta_[static_cast<size_t>(k)].offset +
                            p.index[static_cast<size_t>(k)]];
            u = static_cast<uint8_t>(packed::unsignedDec(u));
        }
        return;
    }

    // Choose among useless entries with geometrically decreasing
    // probability from the shortest history up, as in the reference
    // TAGE implementations: each candidate is taken with probability
    // 1/2, falling through to longer histories otherwise.
    int chosen = 0;
    for (int k = start; k <= m; ++k) {
        if (u_[meta_[static_cast<size_t>(k)].offset +
               p.index[static_cast<size_t>(k)]] != 0)
            continue;
        chosen = k;
        if (lfsr_.oneIn(1))
            break;
    }

    const uint32_t at = meta_[static_cast<size_t>(chosen)].offset +
                        p.index[static_cast<size_t>(chosen)];
    tag_[at] = p.tag[static_cast<size_t>(chosen)];
    ctr_[at] = static_cast<int8_t>(taken ? 0 : -1); // weak correct
    u_[at] = 0;                                     // strong not useful
    ++allocations_;
}

void
TagePredictor::ageUsefulCounters()
{
    // One-bit right shift of the whole packed arena; vectorizes.
    for (uint8_t& u : u_)
        u = static_cast<uint8_t>(u >> 1);
}

void
TagePredictor::update(uint64_t pc, const TagePrediction& p, bool taken)
{
    const bool mispredicted = p.taken != taken;

    if (p.providerIsTagged) {
        const uint32_t at =
            meta_[static_cast<size_t>(p.providerTable)].offset +
            p.index[static_cast<size_t>(p.providerTable)];

        // Manage USE_ALT_ON_NA: on a weak ("pseudo newly allocated")
        // provider whose direction differs from the alternate, learn
        // which of the two tends to be right (Sec. 3.1).
        if (p.providerWeak && p.providerPredTaken != p.altTaken)
            useAltOnNa_.update(p.altTaken == taken);

        updateTaggedCtr(at, taken);

        // Sec. 3.2: u is updated when the alternate prediction differs
        // from the provider prediction.
        if (p.providerPredTaken != p.altTaken) {
            u_[at] = static_cast<uint8_t>(
                packed::unsignedUpdate(u_[at], config_.usefulBits,
                                       p.providerPredTaken == taken));
        }
    } else {
        uint8_t& bim = bimodal_[p.index[0]];
        bim = static_cast<uint8_t>(
            packed::unsignedUpdate(bim, config_.bimodalCtrBits, taken));
    }

    // Sec. 3.3: allocate on mispredictions — but when a weak provider
    // entry was itself correct, it only needs training, not backup.
    bool alloc = mispredicted && p.providerTable < config_.numTaggedTables();
    if (p.providerIsTagged && p.providerWeak &&
        p.providerPredTaken == taken) {
        alloc = false;
    }
    if (alloc)
        allocate(p, taken);

    ++updates_;
    if (uResetCountdown_ != 0 && --uResetCountdown_ == 0) {
        ageUsefulCounters();
        uResetCountdown_ = config_.uResetPeriod;
    }

    // Advance speculative state with the resolved outcome. The fused
    // fold triple updates index and both tag folds with one pair of
    // history reads per table.
    history_.push(taken);
    pathHistory_.push(pc >> config_.instShift);
    const int m = config_.numTaggedTables();
    for (int i = 1; i <= m; ++i)
        folds_[static_cast<size_t>(i)].update(history_);
}

void
TagePredictor::setSatLog2Prob(unsigned log2_prob)
{
    TAGECON_ASSERT(log2_prob <= 15, "saturation probability too small");
    config_.satLog2Prob = log2_prob;
}

TagePredictor::TaggedEntry
TagePredictor::taggedEntry(int table, uint32_t index) const
{
    TAGECON_ASSERT(table >= 1 && table <= config_.numTaggedTables(),
                   "tagged table id out of range");
    const TableMeta& t = meta_[static_cast<size_t>(table)];
    TAGECON_ASSERT(index <= t.indexMask, "tagged index out of range");
    const uint32_t at = t.offset + index;
    return TaggedEntry{
        SignedSatCounter(config_.taggedCtrBits, ctr_[at]), tag_[at],
        UnsignedSatCounter(config_.usefulBits, u_[at])};
}

UnsignedSatCounter
TagePredictor::bimodalEntry(uint32_t index) const
{
    TAGECON_ASSERT(index < bimodal_.size(), "bimodal index out of range");
    return UnsignedSatCounter(config_.bimodalCtrBits, bimodal_[index]);
}

void
TagePredictor::saveState(StateWriter& out) const
{
    // Geometry fingerprint: everything loadState() must agree on for
    // the arena sizes and hash functions to line up. The checkpoint
    // layer above additionally matches the canonical spec string; this
    // guards direct saveState()/loadState() use and custom configs.
    const int m = config_.numTaggedTables();
    out.u32(static_cast<uint32_t>(m));
    for (const auto& tc : config_.tagged) {
        out.u8(static_cast<uint8_t>(tc.logEntries));
        out.u8(static_cast<uint8_t>(tc.tagBits));
        out.u32(static_cast<uint32_t>(tc.historyLength));
    }
    out.u8(static_cast<uint8_t>(config_.logBimodalEntries));
    out.u8(static_cast<uint8_t>(config_.bimodalCtrBits));
    out.u8(static_cast<uint8_t>(config_.taggedCtrBits));
    out.u8(static_cast<uint8_t>(config_.usefulBits));
    out.u8(static_cast<uint8_t>(config_.pathHistoryBits));
    out.u8(static_cast<uint8_t>(config_.useAltOnNaBits));
    out.u8(static_cast<uint8_t>(config_.instShift));
    out.u8(config_.useAltOnNa ? 1 : 0);
    out.u8(config_.probabilisticSaturation ? 1 : 0);
    out.u64(config_.uResetPeriod);

    // Dynamic state. satLog2Prob is config-carried but runtime-mutable
    // (the adaptive controller drives it), so it checkpoints as state.
    out.u32(config_.satLog2Prob);
    out.bytes(bimodal_.data(), bimodal_.size());
    out.bytes(reinterpret_cast<const uint8_t*>(ctr_.data()),
              ctr_.size());
    for (const uint16_t t : tag_)
        out.u16(t);
    out.bytes(u_.data(), u_.size());

    // History ring, relative to the head (index 0 = newest), packed 8
    // outcomes per byte. Replaying these into a cleared ring restores
    // every addressable h[i] — head position itself is not
    // architectural, all reads are head-relative.
    const size_t outcomes = history_.capacity() + 1;
    out.u32(static_cast<uint32_t>(outcomes));
    out.packedBits(outcomes, [&](size_t i) {
        return history_[outcomes - 1 - i] != 0;
    });

    out.u32(pathHistory_.value());
    for (int i = 1; i <= m; ++i) {
        const FoldedHistoryTriple& f = folds_[static_cast<size_t>(i)];
        out.u32(f.a());
        out.u32(f.b());
        out.u32(f.c());
    }

    out.i64(useAltOnNa_.value());
    out.u16(lfsr_.value());
    out.u16(lfsrSeed_);
    out.u64(updates_);
    out.u64(allocations_);
    out.u64(uResetCountdown_);
}

bool
TagePredictor::loadState(StateReader& in, std::string& error)
{
    const int m = config_.numTaggedTables();
    bool geometry_ok = in.u32() == static_cast<uint32_t>(m);
    for (int i = 0; i < m && geometry_ok; ++i) {
        const auto& tc = config_.tagged[static_cast<size_t>(i)];
        geometry_ok =
            in.u8() == static_cast<uint8_t>(tc.logEntries) &&
            in.u8() == static_cast<uint8_t>(tc.tagBits) &&
            in.u32() == static_cast<uint32_t>(tc.historyLength);
    }
    geometry_ok =
        geometry_ok &&
        in.u8() == static_cast<uint8_t>(config_.logBimodalEntries) &&
        in.u8() == static_cast<uint8_t>(config_.bimodalCtrBits) &&
        in.u8() == static_cast<uint8_t>(config_.taggedCtrBits) &&
        in.u8() == static_cast<uint8_t>(config_.usefulBits) &&
        in.u8() == static_cast<uint8_t>(config_.pathHistoryBits) &&
        in.u8() == static_cast<uint8_t>(config_.useAltOnNaBits) &&
        in.u8() == static_cast<uint8_t>(config_.instShift) &&
        in.u8() == (config_.useAltOnNa ? 1 : 0) &&
        in.u8() == (config_.probabilisticSaturation ? 1 : 0) &&
        in.u64() == config_.uResetPeriod;
    if (!in.ok() || !geometry_ok) {
        reset();
        error = in.ok() ? "TAGE state was written by a predictor with "
                          "a different geometry"
                        : "TAGE state is truncated";
        return false;
    }

    const uint32_t sat_log2 = in.u32();
    in.bytes(bimodal_.data(), bimodal_.size());
    in.bytes(reinterpret_cast<uint8_t*>(ctr_.data()), ctr_.size());
    for (uint16_t& t : tag_)
        t = in.u16();
    in.bytes(u_.data(), u_.size());

    const size_t outcomes = history_.capacity() + 1;
    if (in.u32() != static_cast<uint32_t>(outcomes)) {
        reset();
        error = in.ok() ? "TAGE state carries a history ring of a "
                          "different capacity"
                        : "TAGE state is truncated";
        return false;
    }
    std::vector<uint8_t> ring(outcomes, 0);
    in.packedBits(outcomes,
                  [&](size_t i, bool bit) { ring[i] = bit ? 1 : 0; });
    const uint32_t path = in.u32();
    std::vector<std::array<uint32_t, 3>> fold_state(
        static_cast<size_t>(m));
    for (auto& f : fold_state) {
        f[0] = in.u32();
        f[1] = in.u32();
        f[2] = in.u32();
    }
    const int64_t use_alt = in.i64();
    const uint16_t lfsr = in.u16();
    const uint16_t lfsr_seed = in.u16();
    const uint64_t updates = in.u64();
    const uint64_t allocations = in.u64();
    const uint64_t u_reset_countdown = in.u64();
    if (!in.ok()) {
        reset();
        error = "TAGE state is truncated";
        return false;
    }

    if (sat_log2 > 15) {
        reset();
        error = "TAGE state carries an out-of-range saturation "
                "probability";
        return false;
    }
    config_.satLog2Prob = sat_log2;
    // ring[0] is the oldest outcome; pushing oldest-first rebuilds
    // every head-relative index.
    history_.clear();
    for (const uint8_t bit : ring)
        history_.push(bit != 0);
    pathHistory_.restore(path);
    for (int i = 1; i <= m; ++i) {
        const auto& f = fold_state[static_cast<size_t>(i - 1)];
        folds_[static_cast<size_t>(i)].restore(f[0], f[1], f[2]);
    }
    useAltOnNa_.set(static_cast<int>(use_alt));
    lfsr_.setState(lfsr);
    lfsrSeed_ = lfsr_seed;
    updates_ = updates;
    allocations_ = allocations;
    uResetCountdown_ = u_reset_countdown;
    return true;
}

} // namespace tagecon
