#include "tage/tage_predictor.hpp"

#include <algorithm>

#include "util/bit_utils.hpp"
#include "util/logging.hpp"

namespace tagecon {

namespace {

/** Initial bimodal counter value: weakly taken. */
unsigned
bimodalInit(int bits)
{
    return 1u << (bits - 1); // e.g. 2 for a 2-bit counter
}

} // namespace

TagePredictor::TagePredictor(TageConfig config, uint16_t lfsr_seed)
    : config_(std::move(config)),
      history_(static_cast<size_t>(config_.maxHistoryLength()) + 2),
      pathHistory_(config_.pathHistoryBits),
      useAltOnNa_(config_.useAltOnNaBits, 0),
      lfsr_(lfsr_seed), lfsrSeed_(lfsr_seed)
{
    config_.validate();

    bimodal_.assign(size_t{1} << config_.logBimodalEntries,
                    UnsignedSatCounter(config_.bimodalCtrBits,
                                       bimodalInit(config_.bimodalCtrBits)));

    const int m = config_.numTaggedTables();
    tables_.resize(static_cast<size_t>(m) + 1);
    indexFold_.resize(static_cast<size_t>(m) + 1);
    tagFold0_.resize(static_cast<size_t>(m) + 1);
    tagFold1_.resize(static_cast<size_t>(m) + 1);
    for (int i = 1; i <= m; ++i) {
        const auto& tc = config_.tagged[static_cast<size_t>(i - 1)];
        tables_[static_cast<size_t>(i)].assign(
            size_t{1} << tc.logEntries,
            TaggedEntry{SignedSatCounter(config_.taggedCtrBits, 0), 0,
                        UnsignedSatCounter(config_.usefulBits, 0)});
        indexFold_[static_cast<size_t>(i)] =
            FoldedHistory(tc.historyLength, tc.logEntries);
        tagFold0_[static_cast<size_t>(i)] =
            FoldedHistory(tc.historyLength, tc.tagBits);
        tagFold1_[static_cast<size_t>(i)] =
            FoldedHistory(tc.historyLength, tc.tagBits - 1);
    }
}

void
TagePredictor::reset()
{
    *this = TagePredictor(config_, lfsrSeed_);
}

uint32_t
TagePredictor::bimodalIndex(uint64_t pc) const
{
    const uint64_t shifted = pc >> config_.instShift;
    return static_cast<uint32_t>(shifted &
                                 maskBits(config_.logBimodalEntries));
}

uint32_t
TagePredictor::pathHash(int table) const
{
    // Classic TAGE "F" function: fold the path history register into
    // logEntries bits with a table-dependent rotation so components do
    // not alias the same way.
    const auto& tc = config_.tagged[static_cast<size_t>(table - 1)];
    const int logg = tc.logEntries;
    const int size = std::min(tc.historyLength, config_.pathHistoryBits);

    uint32_t a = pathHistory_.value() & static_cast<uint32_t>(
                                            maskBits(size));
    const uint32_t a1 = a & static_cast<uint32_t>(maskBits(logg));
    uint32_t a2 = a >> logg;
    const int rot = table % logg;
    a2 = static_cast<uint32_t>(
        rotateLeft(a2, rot, logg));
    a = a1 ^ a2;
    a = static_cast<uint32_t>(rotateLeft(a, rot, logg));
    return a;
}

uint32_t
TagePredictor::taggedIndex(uint64_t pc, int table) const
{
    const auto& tc = config_.tagged[static_cast<size_t>(table - 1)];
    const int logg = tc.logEntries;
    const uint64_t shifted = pc >> config_.instShift;
    const uint64_t mixed = shifted ^ (shifted >> (logg - table % logg)) ^
                           indexFold_[static_cast<size_t>(table)].value() ^
                           pathHash(table);
    return static_cast<uint32_t>(mixed & maskBits(logg));
}

uint16_t
TagePredictor::taggedTag(uint64_t pc, int table) const
{
    const auto& tc = config_.tagged[static_cast<size_t>(table - 1)];
    const uint64_t shifted = pc >> config_.instShift;
    const uint64_t mixed =
        shifted ^ tagFold0_[static_cast<size_t>(table)].value() ^
        (static_cast<uint64_t>(
             tagFold1_[static_cast<size_t>(table)].value())
         << 1);
    return static_cast<uint16_t>(mixed & maskBits(tc.tagBits));
}

TagePrediction
TagePredictor::predict(uint64_t pc) const
{
    TagePrediction p;
    const int m = config_.numTaggedTables();

    p.index[0] = bimodalIndex(pc);
    const UnsignedSatCounter& bim = bimodal_[p.index[0]];
    p.bimodalTaken = bim.taken();
    p.bimodalWeak = bim.weak();

    for (int i = 1; i <= m; ++i) {
        p.index[static_cast<size_t>(i)] = taggedIndex(pc, i);
        p.tag[static_cast<size_t>(i)] = taggedTag(pc, i);
    }

    // Find provider (longest matching history) and the alternate.
    int provider = 0;
    int alt = 0;
    for (int i = m; i >= 1; --i) {
        const auto& entry =
            tables_[static_cast<size_t>(i)][p.index[static_cast<size_t>(i)]];
        if (entry.tag == p.tag[static_cast<size_t>(i)]) {
            if (provider == 0) {
                provider = i;
            } else {
                alt = i;
                break;
            }
        }
    }

    if (alt != 0) {
        const auto& alt_entry =
            tables_[static_cast<size_t>(alt)]
                   [p.index[static_cast<size_t>(alt)]];
        p.altTaken = alt_entry.ctr.taken();
        p.altIsTagged = true;
        p.altTable = alt;
    } else {
        p.altTaken = p.bimodalTaken;
        p.altIsTagged = false;
        p.altTable = 0;
    }

    if (provider != 0) {
        const auto& entry =
            tables_[static_cast<size_t>(provider)]
                   [p.index[static_cast<size_t>(provider)]];
        p.providerIsTagged = true;
        p.providerTable = provider;
        p.providerCtr = entry.ctr.value();
        p.providerStrength = entry.ctr.strength();
        p.providerSaturated = entry.ctr.saturated();
        p.providerWeak = entry.ctr.weak();
        p.providerPredTaken = entry.ctr.taken();

        // Sec. 3.1: when the provider entry is weak and USE_ALT_ON_NA
        // is non-negative, the alternate prediction is used instead.
        if (config_.useAltOnNa && p.providerWeak &&
            useAltOnNa_.value() >= 0) {
            p.taken = p.altTaken;
            p.usedAlt = true;
        } else {
            p.taken = p.providerPredTaken;
        }
    } else {
        p.providerIsTagged = false;
        p.providerTable = 0;
        p.providerPredTaken = p.bimodalTaken;
        p.taken = p.bimodalTaken;
    }

    return p;
}

void
TagePredictor::updateTaggedCtr(SignedSatCounter& ctr, bool taken)
{
    if (config_.probabilisticSaturation &&
        ctr.updateWouldSaturate(taken)) {
        // Sec. 6: the transition into the saturated state only happens
        // with probability 1/2^satLog2Prob. All other transitions are
        // unchanged, so the accuracy impact is marginal while a
        // saturated counter now implies a long recent mistake-free run.
        if (!lfsr_.oneIn(config_.satLog2Prob))
            return;
    }
    ctr.update(taken);
}

void
TagePredictor::allocate(const TagePrediction& p, bool taken)
{
    const int m = config_.numTaggedTables();
    const int start = p.providerTable + 1;
    if (start > m)
        return;

    bool any_useless = false;
    for (int k = start; k <= m && !any_useless; ++k) {
        any_useless =
            tables_[static_cast<size_t>(k)]
                   [p.index[static_cast<size_t>(k)]].u.value() == 0;
    }

    if (!any_useless) {
        // No free entry: gracefully decay the contenders so an
        // allocation will succeed soon (anti-ping-pong).
        for (int k = start; k <= m; ++k) {
            auto& entry =
                tables_[static_cast<size_t>(k)]
                       [p.index[static_cast<size_t>(k)]];
            entry.u.decrement();
        }
        return;
    }

    // Choose among useless entries with geometrically decreasing
    // probability from the shortest history up, as in the reference
    // TAGE implementations: each candidate is taken with probability
    // 1/2, falling through to longer histories otherwise.
    int chosen = 0;
    for (int k = start; k <= m; ++k) {
        const auto& entry =
            tables_[static_cast<size_t>(k)][p.index[static_cast<size_t>(k)]];
        if (entry.u.value() != 0)
            continue;
        chosen = k;
        if (lfsr_.oneIn(1))
            break;
    }

    auto& entry =
        tables_[static_cast<size_t>(chosen)]
               [p.index[static_cast<size_t>(chosen)]];
    entry.tag = p.tag[static_cast<size_t>(chosen)];
    entry.ctr.set(taken ? 0 : -1); // weak correct
    entry.u.set(0);                // strong not useful
    ++allocations_;
}

void
TagePredictor::ageUsefulCounters()
{
    for (auto& table : tables_) {
        for (auto& entry : table)
            entry.u.shiftDown();
    }
}

void
TagePredictor::update(uint64_t pc, const TagePrediction& p, bool taken)
{
    const bool mispredicted = p.taken != taken;

    if (p.providerIsTagged) {
        auto& entry = tables_[static_cast<size_t>(p.providerTable)]
                             [p.index[static_cast<size_t>(p.providerTable)]];

        // Manage USE_ALT_ON_NA: on a weak ("pseudo newly allocated")
        // provider whose direction differs from the alternate, learn
        // which of the two tends to be right (Sec. 3.1).
        if (p.providerWeak && p.providerPredTaken != p.altTaken)
            useAltOnNa_.update(p.altTaken == taken);

        updateTaggedCtr(entry.ctr, taken);

        // Sec. 3.2: u is updated when the alternate prediction differs
        // from the provider prediction.
        if (p.providerPredTaken != p.altTaken)
            entry.u.update(p.providerPredTaken == taken);
    } else {
        bimodal_[p.index[0]].update(taken);
    }

    // Sec. 3.3: allocate on mispredictions — but when a weak provider
    // entry was itself correct, it only needs training, not backup.
    bool alloc = mispredicted && p.providerTable < config_.numTaggedTables();
    if (p.providerIsTagged && p.providerWeak &&
        p.providerPredTaken == taken) {
        alloc = false;
    }
    if (alloc)
        allocate(p, taken);

    ++updates_;
    if (config_.uResetPeriod != 0 && updates_ % config_.uResetPeriod == 0)
        ageUsefulCounters();

    // Advance speculative state with the resolved outcome.
    history_.push(taken);
    pathHistory_.push(pc >> config_.instShift);
    for (int i = 1; i <= config_.numTaggedTables(); ++i) {
        indexFold_[static_cast<size_t>(i)].update(history_);
        tagFold0_[static_cast<size_t>(i)].update(history_);
        tagFold1_[static_cast<size_t>(i)].update(history_);
    }
}

void
TagePredictor::setSatLog2Prob(unsigned log2_prob)
{
    TAGECON_ASSERT(log2_prob <= 15, "saturation probability too small");
    config_.satLog2Prob = log2_prob;
}

const TagePredictor::TaggedEntry&
TagePredictor::taggedEntry(int table, uint32_t index) const
{
    TAGECON_ASSERT(table >= 1 && table <= config_.numTaggedTables(),
                   "tagged table id out of range");
    const auto& t = tables_[static_cast<size_t>(table)];
    TAGECON_ASSERT(index < t.size(), "tagged index out of range");
    return t[index];
}

const UnsignedSatCounter&
TagePredictor::bimodalEntry(uint32_t index) const
{
    TAGECON_ASSERT(index < bimodal_.size(), "bimodal index out of range");
    return bimodal_[index];
}

} // namespace tagecon
