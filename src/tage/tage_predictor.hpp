/**
 * @file
 * The TAGE conditional branch predictor (Seznec & Michaud, JILP 2006),
 * as described in Sec. 3 of the paper: a bimodal base predictor backed
 * by M partially-tagged components indexed with geometrically
 * increasing global history lengths, with USE_ALT_ON_NA alternate
 * prediction, useful-counter driven allocation and graceful aging.
 *
 * The Sec. 6 modification — probabilistic transition into the
 * saturated counter state — is implemented behind
 * TageConfig::probabilisticSaturation, with a predictor-owned LFSR as
 * the randomness source (as cheap hardware would use).
 */

#ifndef TAGECON_TAGE_TAGE_PREDICTOR_HPP
#define TAGECON_TAGE_TAGE_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "tage/tage_config.hpp"
#include "tage/tage_prediction.hpp"
#include "util/global_history.hpp"
#include "util/random.hpp"
#include "util/saturating_counter.hpp"

namespace tagecon {

/**
 * TAGE predictor. Usage per branch:
 *
 *   TagePrediction p = predictor.predict(pc);
 *   ... grade p with a ConfidenceObserver, consume p.taken ...
 *   predictor.update(pc, p, actual_taken);
 *
 * predict()/update() must alternate for the history folding to stay
 * consistent; update() trains the provider, manages allocation, and
 * advances all speculative histories with the resolved outcome.
 */
class TagePredictor
{
  public:
    /** Build a predictor; the config is validated with fatal(). */
    explicit TagePredictor(TageConfig config, uint16_t lfsr_seed = 0x1d4e);

    /** Compute the prediction and its observable internals for @p pc. */
    TagePrediction predict(uint64_t pc) const;

    /**
     * Train with the resolved outcome. @p p must be the object returned
     * by the immediately preceding predict(pc).
     */
    void update(uint64_t pc, const TagePrediction& p, bool taken);

    /** The configuration this predictor was built with. */
    const TageConfig& config() const { return config_; }

    /** Total storage in bits (prediction state only). */
    uint64_t storageBits() const { return config_.storageBits(); }

    /**
     * Change the saturation probability at run time (used by the
     * adaptive controller of Sec. 6.2). Only meaningful when the
     * config enables probabilisticSaturation.
     */
    void setSatLog2Prob(unsigned log2_prob);

    /** Current log2 of the inverse saturation probability. */
    unsigned satLog2Prob() const { return config_.satLog2Prob; }

    /** Value of the USE_ALT_ON_NA counter (introspection/tests). */
    int useAltOnNa() const { return useAltOnNa_.value(); }

    /** Number of tagged-entry allocations performed so far. */
    uint64_t allocations() const { return allocations_; }

    /** Number of update() calls so far. */
    uint64_t updates() const { return updates_; }

    /** Reset all tables, counters and histories to the initial state. */
    void reset();

    /** One entry of a tagged component (exposed for tests). */
    struct TaggedEntry {
        SignedSatCounter ctr{3, 0};
        uint16_t tag = 0;
        UnsignedSatCounter u{2, 0};
    };

    /** Read-only access to a tagged entry (tests / introspection). */
    const TaggedEntry& taggedEntry(int table, uint32_t index) const;

    /** Read-only access to a bimodal counter (tests / introspection). */
    const UnsignedSatCounter& bimodalEntry(uint32_t index) const;

  private:
    /** Compute the index into tagged table @p table (1-based). */
    uint32_t taggedIndex(uint64_t pc, int table) const;

    /** Compute the partial tag for tagged table @p table (1-based). */
    uint16_t taggedTag(uint64_t pc, int table) const;

    /** Bimodal table index. */
    uint32_t bimodalIndex(uint64_t pc) const;

    /** Mix the path history into an index (classic TAGE F function). */
    uint32_t pathHash(int table) const;

    /**
     * Update a tagged prediction counter toward @p taken, applying the
     * Sec. 6 probabilistic saturation gate when enabled.
     */
    void updateTaggedCtr(SignedSatCounter& ctr, bool taken);

    /** Allocate at most one entry above the provider on misprediction. */
    void allocate(const TagePrediction& p, bool taken);

    /** Graceful periodic aging of all useful counters. */
    void ageUsefulCounters();

    TageConfig config_;

    std::vector<UnsignedSatCounter> bimodal_;
    std::vector<std::vector<TaggedEntry>> tables_; // [1..M], [0] empty

    GlobalHistory history_;
    PathHistory pathHistory_;
    std::vector<FoldedHistory> indexFold_;   // [1..M]
    std::vector<FoldedHistory> tagFold0_;    // [1..M] tagBits fold
    std::vector<FoldedHistory> tagFold1_;    // [1..M] tagBits-1 fold

    SignedSatCounter useAltOnNa_;
    Lfsr16 lfsr_;
    uint16_t lfsrSeed_;

    uint64_t updates_ = 0;
    uint64_t allocations_ = 0;
};

} // namespace tagecon

#endif // TAGECON_TAGE_TAGE_PREDICTOR_HPP
