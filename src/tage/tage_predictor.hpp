/**
 * @file
 * The TAGE conditional branch predictor (Seznec & Michaud, JILP 2006),
 * as described in Sec. 3 of the paper: a bimodal base predictor backed
 * by M partially-tagged components indexed with geometrically
 * increasing global history lengths, with USE_ALT_ON_NA alternate
 * prediction, useful-counter driven allocation and graceful aging.
 *
 * The Sec. 6 modification — probabilistic transition into the
 * saturated counter state — is implemented behind
 * TageConfig::probabilisticSaturation, with a predictor-owned LFSR as
 * the randomness source (as cheap hardware would use).
 */

#ifndef TAGECON_TAGE_TAGE_PREDICTOR_HPP
#define TAGECON_TAGE_TAGE_PREDICTOR_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "tage/tage_config.hpp"
#include "tage/tage_prediction.hpp"
#include "util/global_history.hpp"
#include "util/random.hpp"
#include "util/saturating_counter.hpp"
#include "util/state_io.hpp"

namespace tagecon {

/**
 * TAGE predictor. Usage per branch:
 *
 *   TagePrediction p = predictor.predict(pc);
 *   ... grade p with a ConfidenceObserver, consume p.taken ...
 *   predictor.update(pc, p, actual_taken);
 *
 * predict()/update() must alternate for the history folding to stay
 * consistent; update() trains the provider, manages allocation, and
 * advances all speculative histories with the resolved outcome.
 */
class TagePredictor
{
  public:
    /** Build a predictor; the config is validated with fatal(). */
    explicit TagePredictor(TageConfig config, uint16_t lfsr_seed = 0x1d4e);

    /** Compute the prediction and its observable internals for @p pc. */
    TagePrediction predict(uint64_t pc) const;

    /**
     * Train with the resolved outcome. @p p must be the object returned
     * by the immediately preceding predict(pc).
     */
    void update(uint64_t pc, const TagePrediction& p, bool taken);

    /**
     * Fused batched step: for each element k, produce in out[k] the
     * prediction the scalar predict(pcs[k]) would have returned and
     * train with taken[k], bit-identical to the scalar
     * predict/update loop over the batch (predictions inside the
     * batch observe the earlier elements' updates).
     *
     * The batch is processed in cache-sized blocks, each in three
     * passes: all per-table indices and tags are precomputed up front
     * table-major (they depend only on the PCs and the outcome
     * stream, never on table contents, so the per-table fold state
     * stays in registers and the hash math runs as uniform
     * element-wise passes), large arenas then get their block's reads
     * prefetched, and finally each element is resolved and trained in
     * input order.
     */
    void predictMany(std::span<const uint64_t> pcs,
                     std::span<const uint8_t> taken,
                     std::span<TagePrediction> out);

    /**
     * Batched replay training: update(pcs[k], preds[k], taken[k]) for
     * each element, with the batch's arena accesses prefetched up
     * front. preds must hold the predictions the scalar predict()
     * calls returned, in order.
     */
    void updateMany(std::span<const uint64_t> pcs,
                    std::span<const TagePrediction> preds,
                    std::span<const uint8_t> taken);

    /** The configuration this predictor was built with. */
    const TageConfig& config() const { return config_; }

    /** Total storage in bits (prediction state only). */
    uint64_t storageBits() const { return config_.storageBits(); }

    /**
     * Change the saturation probability at run time (used by the
     * adaptive controller of Sec. 6.2). Only meaningful when the
     * config enables probabilisticSaturation.
     */
    void setSatLog2Prob(unsigned log2_prob);

    /** Current log2 of the inverse saturation probability. */
    unsigned satLog2Prob() const { return config_.satLog2Prob; }

    /** Value of the USE_ALT_ON_NA counter (introspection/tests). */
    int useAltOnNa() const { return useAltOnNa_.value(); }

    /** Number of tagged-entry allocations performed so far. */
    uint64_t allocations() const { return allocations_; }

    /** Number of update() calls so far. */
    uint64_t updates() const { return updates_; }

    /** Reset all tables, counters and histories to the initial state. */
    void reset();

    /**
     * Value snapshot of one tagged-component entry (tests /
     * introspection). The live storage is packed (see the SoA arenas
     * below); this view materializes full counter objects on demand.
     */
    struct TaggedEntry {
        SignedSatCounter ctr{3, 0};
        uint16_t tag = 0;
        UnsignedSatCounter u{2, 0};
    };

    /** Snapshot of a tagged entry (tests / introspection). */
    TaggedEntry taggedEntry(int table, uint32_t index) const;

    /** Snapshot of a bimodal counter (tests / introspection). */
    UnsignedSatCounter bimodalEntry(uint32_t index) const;

    /**
     * Serialize the complete architectural state — packed SoA arenas
     * (ctr/tag/u/bimodal), history ring, fused fold registers, path
     * history, USE_ALT_ON_NA, the LFSR and all counters — prefixed by
     * a geometry fingerprint, so loadState() on an identical config
     * continues bit-identically to a predictor that never stopped.
     */
    void saveState(StateWriter& out) const;

    /**
     * Restore state written by saveState(). Returns false (leaving the
     * predictor reset()) when the blob is truncated or was written by
     * a differently-configured predictor, with the reason in @p error.
     */
    bool loadState(StateReader& in, std::string& error);

  private:
    /**
     * Per-table lookup constants, precomputed at construction into one
     * flat array so the per-branch loops never chase config_.tagged[]
     * or re-derive rotation/shift amounts. 16 bytes per table; the
     * whole array fits in one cache line for every paper config.
     */
    struct TableMeta {
        /** Start of this table's entries in the SoA arenas. */
        uint32_t offset = 0;

        /** (1 << logEntries) - 1. */
        uint32_t indexMask = 0;

        /** (1 << tagBits) - 1. */
        uint32_t tagMask = 0;

        /** maskBits(min(historyLength, pathHistoryBits)). */
        uint32_t pathMask = 0;

        /** log2 of the entry count. */
        uint8_t logEntries = 0;

        /** Path-hash rotation: table % logEntries. */
        uint8_t rot = 0;

        /** PC self-shear shift in the index hash: logEntries - rot. */
        uint8_t idxShift = 0;
    };

    /**
     * Fill the provider/alternate/bimodal fields of @p p from the
     * current table state; p.index[] and p.tag[] must already be set.
     * The candidate-tag scan runs through simd::matchMask16.
     */
    void fillFromTables(TagePrediction& p) const;

    /** Training half of update(): everything except history advance. */
    void train(const TagePrediction& p, bool taken);

    /** Advance global/path histories and all fold registers. */
    void advanceHistories(uint64_t pc, bool taken);

    /**
     * Table-major index/tag precompute for one predictMany() block
     * (advances all histories through the block as a side effect).
     * For each element k, out[k] is left zeroed except index[]/tag[]
     * — exactly the lookup values its scalar predict() would have
     * computed after elements [0, k) resolved.
     */
    void advanceAndIndexBlock(std::span<const uint64_t> pcs,
                              std::span<const uint8_t> taken,
                              std::span<TagePrediction> out);

    /**
     * Prefetch the tagged-arena lines the batch in @p out will read,
     * streaming table by table (and fully sorted by (table, index)
     * when the arena outgrows the cache).
     */
    void prefetchBatch(std::span<const TagePrediction> out);

    /** Compute the index into tagged table @p table (1-based). */
    uint32_t taggedIndex(uint64_t pc, int table) const;

    /** Compute the partial tag for tagged table @p table (1-based). */
    uint16_t taggedTag(uint64_t pc, int table) const;

    /** Bimodal table index. */
    uint32_t bimodalIndex(uint64_t pc) const;

    /** Mix the path history into an index (classic TAGE F function). */
    uint32_t pathHash(int table) const;

    /**
     * Update the tagged prediction counter at arena position @p at
     * toward @p taken, applying the Sec. 6 probabilistic saturation
     * gate when enabled.
     */
    void updateTaggedCtr(uint32_t at, bool taken);

    /** Allocate at most one entry above the provider on misprediction. */
    void allocate(const TagePrediction& p, bool taken);

    /** Graceful periodic aging of all useful counters. */
    void ageUsefulCounters();

    TageConfig config_;

    /**
     * Packed per-table storage (structure-of-arrays). A tagged entry
     * is 3 bytes across two arenas — a uint16_t tag plus the ctr and u
     * counters packed into one byte with the packed::ctru* ops —
     * instead of a ~24-byte entry of counter objects; a bimodal
     * counter is one byte. Tables are laid out back to back; table i
     * owns [meta_[i].offset, meta_[i].offset + meta_[i].indexMask].
     */
    std::vector<uint8_t> bimodal_;
    std::vector<uint16_t> tag_;
    std::vector<uint8_t> ctru_;

    std::vector<TableMeta> meta_; // [1..M], [0] unused

    GlobalHistory history_;
    PathHistory pathHistory_;

    /** Fused index/tag/tag-1 folds, one contiguous struct per table. */
    std::vector<FoldedHistoryTriple> folds_; // [1..M], [0] unused

    SignedSatCounter useAltOnNa_;
    Lfsr16 lfsr_;
    uint16_t lfsrSeed_;

    uint64_t updates_ = 0;
    uint64_t allocations_ = 0;

    /**
     * Branches until the next graceful useful-counter reset; reloaded
     * from config_.uResetPeriod (0 disables aging). Replaces a per-
     * update 64-bit modulo on the hot path.
     */
    uint64_t uResetCountdown_ = 0;

    /**
     * predictMany()/updateMany() scratch for the prefetch pass; not
     * architectural state, excluded from saveState().
     */
    std::vector<uint32_t> batchAts_;

    /**
     * predictMany() scratch: one block's outcome window laid behind
     * the pre-block history bits (see advanceAndIndexBlock()); not
     * architectural state, excluded from saveState().
     */
    std::vector<uint8_t> batchWindow_;
};

} // namespace tagecon

#endif // TAGECON_TAGE_TAGE_PREDICTOR_HPP
