#include "trace/behavior.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tagecon {

BranchBehavior
BranchBehavior::always(bool taken)
{
    return BranchBehavior(AlwaysModel{taken});
}

BranchBehavior
BranchBehavior::loop(uint32_t period, double trip_jitter)
{
    TAGECON_ASSERT(period >= 1, "loop period must be >= 1");
    return BranchBehavior(
        LoopModel{period, std::clamp(trip_jitter, 0.0, 1.0), 0, period});
}

BranchBehavior
BranchBehavior::pattern(std::vector<bool> pattern)
{
    TAGECON_ASSERT(!pattern.empty(), "pattern must be non-empty");
    return BranchBehavior(PatternModel{std::move(pattern), 0});
}

BranchBehavior
BranchBehavior::biased(double p_taken)
{
    return BranchBehavior(BiasedModel{std::clamp(p_taken, 0.0, 1.0)});
}

BranchBehavior
BranchBehavior::markov(double p_stay_taken, double p_stay_not_taken)
{
    return BranchBehavior(MarkovModel{std::clamp(p_stay_taken, 0.0, 1.0),
                                      std::clamp(p_stay_not_taken, 0.0, 1.0),
                                      false});
}

BranchBehavior
BranchBehavior::correlated(std::vector<uint16_t> taps, bool invert,
                           double noise)
{
    TAGECON_ASSERT(!taps.empty(), "correlated branch needs taps");
    for (const uint16_t t : taps)
        TAGECON_ASSERT(t >= 1, "correlation tap must look at the past");
    return BranchBehavior(CorrelatedModel{std::move(taps), invert,
                                          std::clamp(noise, 0.0, 1.0)});
}

bool
BranchBehavior::nextOutcome(BehaviorContext& ctx)
{
    struct Visitor {
        BehaviorContext& ctx;

        bool operator()(AlwaysModel& m) const { return m.taken; }

        bool
        operator()(LoopModel& m) const
        {
            if (m.pos == 0 && m.tripJitter > 0.0 &&
                ctx.rng.nextBool(m.tripJitter)) {
                // Data-dependent trip count: this run is one iteration
                // shorter or longer than nominal.
                const bool up = ctx.rng.nextBool(0.5);
                m.curPeriod = up ? m.period + 1
                                 : (m.period > 1 ? m.period - 1 : 1);
            } else if (m.pos == 0) {
                m.curPeriod = m.period;
            }
            const bool taken = m.pos + 1 < m.curPeriod;
            m.pos = (m.pos + 1) % m.curPeriod;
            return taken;
        }

        bool
        operator()(PatternModel& m) const
        {
            const bool taken = m.outcomes[m.pos];
            m.pos = (m.pos + 1) % m.outcomes.size();
            return taken;
        }

        bool
        operator()(BiasedModel& m) const
        {
            return ctx.rng.nextBool(m.pTaken);
        }

        bool
        operator()(MarkovModel& m) const
        {
            const double stay = m.state ? m.pStayTaken : m.pStayNotTaken;
            if (!ctx.rng.nextBool(stay))
                m.state = !m.state;
            return m.state;
        }

        bool
        operator()(CorrelatedModel& m) const
        {
            unsigned parity = m.invert ? 1u : 0u;
            for (const uint16_t t : m.taps)
                parity ^= ctx.history[t];
            bool taken = (parity & 1u) != 0;
            if (m.noise > 0.0 && ctx.rng.nextBool(m.noise))
                taken = !taken;
            return taken;
        }
    };

    return std::visit(Visitor{ctx}, model_);
}

BehaviorKind
BranchBehavior::kind() const
{
    struct Visitor {
        BehaviorKind operator()(const AlwaysModel&) const
        { return BehaviorKind::Always; }
        BehaviorKind operator()(const LoopModel&) const
        { return BehaviorKind::Loop; }
        BehaviorKind operator()(const PatternModel&) const
        { return BehaviorKind::Pattern; }
        BehaviorKind operator()(const BiasedModel&) const
        { return BehaviorKind::Biased; }
        BehaviorKind operator()(const MarkovModel&) const
        { return BehaviorKind::Markov; }
        BehaviorKind operator()(const CorrelatedModel&) const
        { return BehaviorKind::Correlated; }
    };
    return std::visit(Visitor{}, model_);
}

void
BranchBehavior::reset()
{
    struct Visitor {
        void operator()(AlwaysModel&) const {}
        void
        operator()(LoopModel& m) const
        {
            m.pos = 0;
            m.curPeriod = m.period;
        }
        void operator()(PatternModel& m) const { m.pos = 0; }
        void operator()(BiasedModel&) const {}
        void operator()(MarkovModel& m) const { m.state = false; }
        void operator()(CorrelatedModel&) const {}
    };
    std::visit(Visitor{}, model_);
}

uint16_t
BranchBehavior::maxHistoryTap() const
{
    if (const auto* m = std::get_if<CorrelatedModel>(&model_))
        return *std::max_element(m->taps.begin(), m->taps.end());
    return 0;
}

} // namespace tagecon
