/**
 * @file
 * Per-static-branch outcome models for the synthetic workloads.
 *
 * The paper's evaluation rests on traces mixing branches that are
 *  (a) trivially predictable (always taken / loop exits / short
 *      patterns),
 *  (b) predictable only with global history correlation (possibly very
 *      long correlation distances),
 *  (c) intrinsically unpredictable (data-dependent, i.e. biased coin
 *      flips or Markov processes).
 * Each model here produces one of these behaviours; profiles.cpp mixes
 * them in per-trace proportions.
 */

#ifndef TAGECON_TRACE_BEHAVIOR_HPP
#define TAGECON_TRACE_BEHAVIOR_HPP

#include <cstdint>
#include <variant>
#include <vector>

#include "util/global_history.hpp"
#include "util/random.hpp"

namespace tagecon {

/** Inputs a behaviour may consult when producing an outcome. */
struct BehaviorContext {
    /** Workload-level RNG modelling data-dependent outcomes. */
    XorShift128Plus& rng;

    /** Global outcome history of the synthetic program (0 = newest). */
    const GlobalHistory& history;
};

/** Discriminator for the behaviour models. */
enum class BehaviorKind {
    Always,     ///< fixed direction
    Loop,       ///< taken (period-1) times, then not-taken once
    Pattern,    ///< repeating fixed outcome sequence
    Biased,     ///< independent Bernoulli draw (unpredictable)
    Markov,     ///< 2-state Markov chain (partially predictable)
    Correlated, ///< parity of global-history taps (history-predictable)
};

/**
 * A static branch's outcome generator. Construct through the factory
 * functions; call nextOutcome() once per dynamic execution.
 */
class BranchBehavior
{
  public:
    /** Branch with a fixed direction. */
    static BranchBehavior always(bool taken);

    /**
     * Loop-closing branch with trip count @p period: taken period-1
     * consecutive times, then not-taken once. period == 1 degenerates to
     * always-not-taken. With probability @p trip_jitter a run uses
     * period +/- 1 instead (data-dependent trip counts), which makes
     * the loop exit only statistically predictable.
     */
    static BranchBehavior loop(uint32_t period, double trip_jitter = 0.0);

    /** Branch repeating @p pattern forever; pattern must be non-empty. */
    static BranchBehavior pattern(std::vector<bool> pattern);

    /**
     * Data-dependent branch: independent Bernoulli with P(taken) =
     * @p p_taken. No predictor can beat max(p, 1-p) on it.
     */
    static BranchBehavior biased(double p_taken);

    /**
     * Two-state Markov chain: P(taken | last was taken) =
     * @p p_stay_taken, P(not-taken | last was not-taken) =
     * @p p_stay_not_taken.
     */
    static BranchBehavior markov(double p_stay_taken,
                                 double p_stay_not_taken);

    /**
     * History-correlated branch: outcome is the XOR parity of the global
     * outcomes at distances @p taps (each >= 1), inverted when
     * @p invert, and flipped with probability @p noise. A predictor can
     * capture it only if its history window spans max(taps).
     */
    static BranchBehavior correlated(std::vector<uint16_t> taps,
                                     bool invert, double noise);

    /** Produce the outcome for the next dynamic execution. */
    bool nextOutcome(BehaviorContext& ctx);

    /** Which model this is. */
    BehaviorKind kind() const;

    /**
     * Reset mutable state (loop position, pattern position, Markov
     * state) without changing parameters.
     */
    void reset();

    /**
     * Largest history distance this behaviour reads; 0 for models that
     * ignore history. The workload sizes its history buffer from the
     * max over all sites.
     */
    uint16_t maxHistoryTap() const;

  private:
    struct AlwaysModel {
        bool taken;
    };
    struct LoopModel {
        uint32_t period;
        double tripJitter;
        uint32_t pos;
        uint32_t curPeriod;
    };
    struct PatternModel {
        std::vector<bool> outcomes;
        size_t pos;
    };
    struct BiasedModel {
        double pTaken;
    };
    struct MarkovModel {
        double pStayTaken;
        double pStayNotTaken;
        bool state;
    };
    struct CorrelatedModel {
        std::vector<uint16_t> taps;
        bool invert;
        double noise;
    };

    using Model = std::variant<AlwaysModel, LoopModel, PatternModel,
                               BiasedModel, MarkovModel, CorrelatedModel>;

    explicit BranchBehavior(Model m)
        : model_(std::move(m))
    {
    }

    Model model_;
};

} // namespace tagecon

#endif // TAGECON_TRACE_BEHAVIOR_HPP
