/**
 * @file
 * The unit of work consumed by every predictor in this repository: one
 * dynamic conditional branch, in the style of the CBP championship
 * traces (conditional branches only, with the count of non-branch
 * instructions preceding each so MPKI can be computed).
 */

#ifndef TAGECON_TRACE_BRANCH_RECORD_HPP
#define TAGECON_TRACE_BRANCH_RECORD_HPP

#include <cstdint>

namespace tagecon {

/**
 * One dynamic conditional branch. @c instructionsBefore counts the
 * non-branch instructions executed since the previous record, so the
 * total instruction count of a trace is
 * sum(instructionsBefore) + #branches.
 */
struct BranchRecord {
    /** Instruction address of the branch. */
    uint64_t pc = 0;

    /** Architectural outcome: true when taken. */
    bool taken = false;

    /** Non-branch instructions since the previous branch record. */
    uint32_t instructionsBefore = 0;
};

} // namespace tagecon

#endif // TAGECON_TRACE_BRANCH_RECORD_HPP
