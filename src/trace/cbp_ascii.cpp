#include "trace/cbp_ascii.hpp"

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/failpoint.hpp"
#include "util/logging.hpp"

#if TAGECON_HAVE_ZLIB
#include <zlib.h>
#endif

namespace tagecon {

/**
 * Line source over a plain or (with zlib) gzip-compressed file; the
 * non-fatal open lets both the reader and the registry probe share it.
 */
class CbpLineSource
{
  public:
    ~CbpLineSource() { close(); }

    bool
    open(const std::string& path, std::string& error)
    {
#if TAGECON_HAVE_ZLIB
        // gzopen reads uncompressed files transparently, so one code
        // path serves both.
        gz_ = gzopen(path.c_str(), "rb");
        if (!gz_) {
            error = "cannot open trace file '" + path + "'";
            return false;
        }
        return true;
#else
        if (isGzipFile(path)) {
            error = "'" + path +
                    "' is gzip-compressed but this build has no zlib; "
                    "decompress it first (gunzip) or rebuild with zlib";
            return false;
        }
        in_.open(path);
        if (!in_) {
            error = "cannot open trace file '" + path + "'";
            return false;
        }
        return true;
#endif
    }

    bool
    getline(std::string& line)
    {
#if TAGECON_HAVE_ZLIB
        line.clear();
        std::array<char, 4096> buf;
        bool got = false;
        for (;;) {
            if (!gzgets(static_cast<gzFile>(gz_), buf.data(),
                        static_cast<int>(buf.size())))
                return got;
            got = true;
            line += buf.data();
            if (!line.empty() && line.back() == '\n') {
                line.pop_back();
                return true;
            }
        }
#else
        return static_cast<bool>(std::getline(in_, line));
#endif
    }

    void
    rewind()
    {
#if TAGECON_HAVE_ZLIB
        gzrewind(static_cast<gzFile>(gz_));
#else
        in_.clear();
        in_.seekg(0);
#endif
    }

    void
    close()
    {
#if TAGECON_HAVE_ZLIB
        if (gz_) {
            gzclose(static_cast<gzFile>(gz_));
            gz_ = nullptr;
        }
#endif
    }

  private:
#if TAGECON_HAVE_ZLIB
    void* gz_ = nullptr;
#else
    std::ifstream in_;
#endif
};

namespace {

/**
 * Parse a trace-field number: decimal, or hex with an 0x prefix.
 * Deliberately NOT strtoull's base-0 autodetection, which would read
 * a zero-padded decimal field ("0123") as octal and silently remap
 * branch PCs.
 */
bool
parseTraceNumber(const std::string& text, uint64_t& out,
                 std::string& why)
{
    if (text.empty() || text.front() == '-' || text.front() == '+') {
        why = "not an unsigned number";
        return false;
    }
    const bool hex = text.size() > 2 && text[0] == '0' &&
                     (text[1] == 'x' || text[1] == 'X');
    const char* start = text.c_str() + (hex ? 2 : 0);
    errno = 0;
    char* end = nullptr;
    const uint64_t v = std::strtoull(start, &end, hex ? 16 : 10);
    if (end == start) {
        why = "not a number";
        return false;
    }
    if (*end != '\0') {
        why = std::string("trailing garbage '") + end + "'";
        return false;
    }
    if (errno == ERANGE) {
        why = "out of range";
        return false;
    }
    out = v;
    return true;
}

bool
isSkippableLine(const std::string& line)
{
    for (const char ch : line) {
        if (std::isspace(static_cast<unsigned char>(ch)))
            continue;
        return ch == '#';
    }
    return true; // all whitespace
}

} // namespace

bool
parseCbpAsciiLine(const std::string& line, BranchRecord& out,
                  std::string& why)
{
    std::istringstream is(line);
    std::string pc_text, taken_text, instr_text, extra;
    is >> pc_text >> taken_text;
    if (pc_text.empty() || taken_text.empty()) {
        why = "expected '<pc> <taken> [<instructions>]'";
        return false;
    }
    if (!parseTraceNumber(pc_text, out.pc, why)) {
        why = "bad pc '" + pc_text + "': " + why;
        return false;
    }
    if (taken_text == "1" || taken_text == "T" || taken_text == "t") {
        out.taken = true;
    } else if (taken_text == "0" || taken_text == "N" ||
               taken_text == "n") {
        out.taken = false;
    } else {
        why = "bad taken flag '" + taken_text + "' (want 1/0/T/N)";
        return false;
    }
    out.instructionsBefore = 0;
    if (is >> instr_text) {
        uint64_t instr = 0;
        if (!parseTraceNumber(instr_text, instr, why) ||
            instr > UINT32_MAX) {
            why = "bad instruction count '" + instr_text + "'";
            return false;
        }
        out.instructionsBefore = static_cast<uint32_t>(instr);
    }
    if (is >> extra) {
        why = "trailing garbage '" + extra + "'";
        return false;
    }
    return true;
}

bool
isGzipFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    unsigned char magic[2] = {0, 0};
    in.read(reinterpret_cast<char*>(magic), 2);
    return in.gcount() == 2 && magic[0] == 0x1f && magic[1] == 0x8b;
}

std::string
cbpAsciiTraceName(const std::string& path)
{
    std::string base = std::filesystem::path(path).filename().string();
    auto strip = [&](const std::string& ext) {
        if (base.size() > ext.size() &&
            base.compare(base.size() - ext.size(), ext.size(), ext) == 0)
            base.resize(base.size() - ext.size());
    };
    strip(".gz");
    const auto dot = base.rfind('.');
    if (dot != std::string::npos && dot > 0)
        base.resize(dot);
    return base;
}

bool
probeCbpAsciiFile(const std::string& path, std::string* error)
{
    CbpLineSource src;
    std::string err;
    if (!src.open(path, err)) {
        if (error)
            *error = err;
        return false;
    }
    std::string line;
    uint64_t line_no = 0;
    while (src.getline(line)) {
        ++line_no;
        if (isSkippableLine(line))
            continue;
        BranchRecord rec;
        std::string why;
        if (!parseCbpAsciiLine(line, rec, why)) {
            if (error)
                *error = "'" + path + "' line " +
                         std::to_string(line_no) +
                         " is not an ASCII trace record: " + why;
            return false;
        }
        return true; // first data line parses
    }
    return true; // empty / comment-only traces are valid
}

CbpAsciiReader::CbpAsciiReader(Opened, const std::string& path,
                               std::unique_ptr<CbpLineSource> in)
    : path_(path), name_(cbpAsciiTraceName(path)), in_(std::move(in))
{
}

CbpAsciiReader::CbpAsciiReader(const std::string& path)
    : path_(path), name_(cbpAsciiTraceName(path)),
      in_(std::make_unique<CbpLineSource>())
{
    std::string error;
    if (!in_->open(path, error))
        fatal(error);
}

Expected<std::unique_ptr<CbpAsciiReader>>
CbpAsciiReader::open(const std::string& path)
{
    auto src = std::make_unique<CbpLineSource>();
    std::string error;
    if (!src->open(path, error)) {
        // A file that won't open is NotFound; a gzip-without-zlib
        // refusal is an unsupported input, not a missing one.
        const ErrCode code = error.find("no zlib") != std::string::npos
                                 ? ErrCode::Unsupported
                                 : ErrCode::NotFound;
        return Err(code, "trace.open", std::move(error));
    }
    return std::unique_ptr<CbpAsciiReader>(
        new CbpAsciiReader(Opened{}, path, std::move(src)));
}

CbpAsciiReader::~CbpAsciiReader() = default;

bool
CbpAsciiReader::getLine(std::string& line)
{
    return in_->getline(line);
}

bool
CbpAsciiReader::next(BranchRecord& out)
{
    if (err_.failed())
        return false;
    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check("trace.read")) {
            err_ = std::move(*injected);
            return false;
        }
    }
    std::string line;
    while (getLine(line)) {
        ++lineNo_;
        if (isSkippableLine(line))
            continue;
        std::string why;
        if (!parseCbpAsciiLine(line, out, why)) {
            // Latch instead of fatal(): report through lastError() so
            // one bad trace quarantines one stream, not the process.
            err_ = Err(ErrCode::Parse, "trace.read",
                       "'" + path_ + "' line " +
                           std::to_string(lineNo_) +
                           " is not an ASCII trace record: " + why);
            return false;
        }
        ++produced_;
        return true;
    }
    return false;
}

void
CbpAsciiReader::reset()
{
    err_ = Err();
    in_->rewind();
    lineNo_ = 0;
    produced_ = 0;
}

} // namespace tagecon
