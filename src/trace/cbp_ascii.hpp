/**
 * @file
 * CBP-style ASCII trace reader: one dynamic conditional branch per
 * line, the interchange format championship traces are commonly
 * distributed or dumped in. Implements TraceSource, so an ASCII trace
 * is a drop-in replacement for a synthetic profile or a binary .tcbt
 * file anywhere a spec names a trace.
 *
 * Line format (whitespace-separated):
 *
 *   <pc> <taken> [<instructionsBefore>]
 *
 *   pc      branch address, decimal or hex with a 0x prefix
 *   taken   1 / 0 / T / N (case-insensitive)
 *   instructionsBefore
 *           optional count of non-branch instructions since the
 *           previous record (default 0)
 *
 * Blank lines and lines starting with '#' are skipped. When the
 * library is built with zlib (TAGECON_HAVE_ZLIB), gzip-compressed
 * files are read transparently — the reader is handed the file path
 * and detects compression itself; without zlib a gzipped input is
 * rejected with a clear message.
 */

#ifndef TAGECON_TRACE_CBP_ASCII_HPP
#define TAGECON_TRACE_CBP_ASCII_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace_source.hpp"
#include "util/errors.hpp"

namespace tagecon {

/** Internal line source over a plain or gzipped file (cbp_ascii.cpp). */
class CbpLineSource;

/**
 * Parse one ASCII trace line into @p out. Returns false with the
 * reason in @p why on a malformed line. Comment / blank lines are the
 * caller's job to skip; this expects a data line.
 */
bool parseCbpAsciiLine(const std::string& line, BranchRecord& out,
                       std::string& why);

/** True when the file at @p path starts with the gzip magic bytes. */
bool isGzipFile(const std::string& path);

/**
 * Validate @p path as an ASCII trace without fatal()ing: the file must
 * open (and decompress, when gzipped) and every line up to the first
 * data line must parse. Returns false with the reason in @p error
 * (when non-null). Used by the trace registry to reject bad specs
 * before a sweep starts.
 */
bool probeCbpAsciiFile(const std::string& path, std::string* error);

/**
 * Streaming reader for the ASCII format. name() is the file's
 * basename with any ".gz" and one trailing extension stripped
 * ("gcc.trace.gz" -> "gcc"), mirroring how CBP traces are referred to
 * by benchmark name.
 *
 * Library code opens readers through open(), which reports failures as
 * typed Err values; the fatal() constructor remains as a convenience
 * for tool boundaries. A malformed line after open (or an injected
 * "trace.read" fault) ends the stream and is reported through
 * lastError() instead of killing the process.
 */
class CbpAsciiReader : public TraceSource
{
  public:
    /**
     * Open @p path; fatal() on a missing file or (without zlib) a
     * gzipped one.
     */
    explicit CbpAsciiReader(const std::string& path);

    /** Open @p path without fatal()ing — the library path. */
    static Expected<std::unique_ptr<CbpAsciiReader>>
    open(const std::string& path);

    ~CbpAsciiReader() override;

    CbpAsciiReader(const CbpAsciiReader&) = delete;
    CbpAsciiReader& operator=(const CbpAsciiReader&) = delete;

    bool next(BranchRecord& out) override;
    void reset() override;
    std::string name() const override { return name_; }

    const Err*
    lastError() const override
    {
        return err_.ok() ? nullptr : &err_;
    }

    /** Records produced since open / the last reset(). */
    uint64_t produced() const { return produced_; }

  private:
    struct Opened {}; // tag for the already-validated constructor

    CbpAsciiReader(Opened, const std::string& path,
                   std::unique_ptr<CbpLineSource> in);

    std::string path_;
    std::string name_;
    uint64_t lineNo_ = 0;
    uint64_t produced_ = 0;

    std::unique_ptr<CbpLineSource> in_;
    Err err_;

    bool getLine(std::string& line);
};

/** Display name an ASCII reader derives from @p path (see class doc). */
std::string cbpAsciiTraceName(const std::string& path);

} // namespace tagecon

#endif // TAGECON_TRACE_CBP_ASCII_HPP
