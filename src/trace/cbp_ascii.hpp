/**
 * @file
 * CBP-style ASCII trace reader: one dynamic conditional branch per
 * line, the interchange format championship traces are commonly
 * distributed or dumped in. Implements TraceSource, so an ASCII trace
 * is a drop-in replacement for a synthetic profile or a binary .tcbt
 * file anywhere a spec names a trace.
 *
 * Line format (whitespace-separated):
 *
 *   <pc> <taken> [<instructionsBefore>]
 *
 *   pc      branch address, decimal or hex with a 0x prefix
 *   taken   1 / 0 / T / N (case-insensitive)
 *   instructionsBefore
 *           optional count of non-branch instructions since the
 *           previous record (default 0)
 *
 * Blank lines and lines starting with '#' are skipped. When the
 * library is built with zlib (TAGECON_HAVE_ZLIB), gzip-compressed
 * files are read transparently — the reader is handed the file path
 * and detects compression itself; without zlib a gzipped input is
 * rejected with a clear message.
 */

#ifndef TAGECON_TRACE_CBP_ASCII_HPP
#define TAGECON_TRACE_CBP_ASCII_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace_source.hpp"

namespace tagecon {

/** Internal line source over a plain or gzipped file (cbp_ascii.cpp). */
class CbpLineSource;

/**
 * Parse one ASCII trace line into @p out. Returns false with the
 * reason in @p why on a malformed line. Comment / blank lines are the
 * caller's job to skip; this expects a data line.
 */
bool parseCbpAsciiLine(const std::string& line, BranchRecord& out,
                       std::string& why);

/** True when the file at @p path starts with the gzip magic bytes. */
bool isGzipFile(const std::string& path);

/**
 * Validate @p path as an ASCII trace without fatal()ing: the file must
 * open (and decompress, when gzipped) and every line up to the first
 * data line must parse. Returns false with the reason in @p error
 * (when non-null). Used by the trace registry to reject bad specs
 * before a sweep starts.
 */
bool probeCbpAsciiFile(const std::string& path, std::string* error);

/**
 * Streaming reader for the ASCII format. name() is the file's
 * basename with any ".gz" and one trailing extension stripped
 * ("gcc.trace.gz" -> "gcc"), mirroring how CBP traces are referred to
 * by benchmark name.
 */
class CbpAsciiReader : public TraceSource
{
  public:
    /**
     * Open @p path; fatal() on a missing file or (without zlib) a
     * gzipped one. Malformed lines are fatal() at the line that fails,
     * naming path and line number.
     */
    explicit CbpAsciiReader(const std::string& path);

    ~CbpAsciiReader() override;

    CbpAsciiReader(const CbpAsciiReader&) = delete;
    CbpAsciiReader& operator=(const CbpAsciiReader&) = delete;

    bool next(BranchRecord& out) override;
    void reset() override;
    std::string name() const override { return name_; }

    /** Records produced since open / the last reset(). */
    uint64_t produced() const { return produced_; }

  private:
    std::string path_;
    std::string name_;
    uint64_t lineNo_ = 0;
    uint64_t produced_ = 0;

    std::unique_ptr<CbpLineSource> in_;

    bool getLine(std::string& line);
};

/** Display name an ASCII reader derives from @p path (see class doc). */
std::string cbpAsciiTraceName(const std::string& path);

} // namespace tagecon

#endif // TAGECON_TRACE_CBP_ASCII_HPP
