#include "trace/profiles.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tagecon {

namespace {

/** FNV-1a hash of the trace name: stable per-profile seed. */
uint64_t
nameSeed(const std::string& name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h | 1;
}

// --- Family bases --------------------------------------------------------
//
// Calibration note: the dynamic fraction of intrinsically random
// branches (biased + markov) dominates a trace's achievable accuracy;
// real programs sit between ~1% (FP) and ~20% (twolf-like). Keeping
// that fraction low also keeps the global history low-entropy, which
// is what lets the tagged components capture the predictable branches.

/** Loop-dominated, highly predictable, branch-sparse (CBP-1 FP). */
ProfileParams
fpBase()
{
    ProfileParams p;
    p.numFunctions = 12;
    p.minSitesPerFunction = 4;
    p.maxSitesPerFunction = 10;
    p.zipfSkew = 0.9;
    p.fracAlways = 0.50;
    p.fracLoop = 0.06; // loops dominate the *dynamic* stream anyway
    p.fracPattern = 0.08;
    p.fracBiased = 0.015;
    p.fracMarkov = 0.015;
    p.fracCorrelated = 0.05;
    p.loopPeriodMin = 6;
    p.loopPeriodMax = 40;
    p.loopTripJitter = 0.03;
    p.biasMin = 0.95;
    p.biasMax = 0.995;
    p.markovStayMin = 0.90;
    p.markovStayMax = 0.98;
    p.corrTapMin = 1;
    p.corrTapMax = 8;
    p.corrNoise = 0.01;
    p.instrPerBranchMin = 8;
    p.instrPerBranchMax = 14;
    return p;
}

/** Mixed integer code: moderate footprint, a few hard branches. */
ProfileParams
intBase()
{
    ProfileParams p;
    p.numFunctions = 48;
    p.minSitesPerFunction = 3;
    p.maxSitesPerFunction = 12;
    p.zipfSkew = 1.0;
    p.fracAlways = 0.46;
    p.fracLoop = 0.05;
    p.fracPattern = 0.10;
    p.fracBiased = 0.04;
    p.fracMarkov = 0.03;
    p.fracCorrelated = 0.14;
    p.loopPeriodMin = 3;
    p.loopPeriodMax = 40;
    p.loopTripJitter = 0.06;
    p.biasMin = 0.75;
    p.biasMax = 0.92;
    p.markovStayMin = 0.85;
    p.markovStayMax = 0.97;
    p.corrTapMin = 1;
    p.corrTapMax = 10;
    p.corrNoise = 0.01;
    p.instrPerBranchMin = 4;
    p.instrPerBranchMax = 7;
    p.numPhases = 2;
    p.phaseLength = 300000;
    p.phasedSiteFraction = 0.05;
    return p;
}

/** Multimedia: kernels plus data-dependent (unpredictable) branches. */
ProfileParams
mmBase()
{
    ProfileParams p;
    p.numFunctions = 32;
    p.minSitesPerFunction = 3;
    p.maxSitesPerFunction = 10;
    p.zipfSkew = 1.1;
    p.fracAlways = 0.40;
    p.fracLoop = 0.10;
    p.fracPattern = 0.12;
    p.fracBiased = 0.09;
    p.fracMarkov = 0.04;
    p.fracCorrelated = 0.08;
    p.loopPeriodMin = 4;
    p.loopPeriodMax = 24;
    p.loopTripJitter = 0.06;
    p.biasMin = 0.70;
    p.biasMax = 0.90;
    p.markovStayMin = 0.75;
    p.markovStayMax = 0.95;
    p.corrTapMin = 1;
    p.corrTapMax = 8;
    p.corrNoise = 0.01;
    p.instrPerBranchMin = 5;
    p.instrPerBranchMax = 9;
    return p;
}

/**
 * Server / OLTP: very large branch footprint of individually easy
 * branches, phased working sets — capacity pressure on small budgets.
 */
ProfileParams
servBase()
{
    ProfileParams p;
    p.numFunctions = 240;
    p.minSitesPerFunction = 3;
    p.maxSitesPerFunction = 8;
    p.zipfSkew = 0.6;
    p.hotFraction = 0.20;
    p.fracAlways = 0.52;
    p.fracLoop = 0.08;
    p.fracPattern = 0.12;
    p.fracBiased = 0.03;
    p.fracMarkov = 0.02;
    p.fracCorrelated = 0.10;
    p.loopPeriodMin = 3;
    p.loopPeriodMax = 8;
    p.loopTripJitter = 0.08;
    p.biasMin = 0.90;
    p.biasMax = 0.97;
    p.markovStayMin = 0.90;
    p.markovStayMax = 0.98;
    p.corrTapMin = 1;
    p.corrTapMax = 8;
    p.corrNoise = 0.01;
    p.instrPerBranchMin = 4;
    p.instrPerBranchMax = 6;
    p.numPhases = 3;
    p.phaseLength = 150000;
    p.phasedSiteFraction = 0.05;
    return p;
}

/** Java (JVM98): moderate-large footprint, mostly predictable. */
ProfileParams
javaBase()
{
    ProfileParams p;
    p.numFunctions = 128;
    p.minSitesPerFunction = 3;
    p.maxSitesPerFunction = 9;
    p.zipfSkew = 0.9;
    p.fracAlways = 0.46;
    p.fracLoop = 0.08;
    p.fracPattern = 0.12;
    p.fracBiased = 0.03;
    p.fracMarkov = 0.03;
    p.fracCorrelated = 0.18;
    p.loopPeriodMin = 3;
    p.loopPeriodMax = 16;
    p.loopTripJitter = 0.08;
    p.biasMin = 0.80;
    p.biasMax = 0.95;
    p.markovStayMin = 0.85;
    p.markovStayMax = 0.97;
    p.corrTapMin = 1;
    p.corrTapMax = 10;
    p.corrNoise = 0.01;
    p.instrPerBranchMin = 5;
    p.instrPerBranchMax = 8;
    p.numPhases = 2;
    p.phaseLength = 250000;
    p.phasedSiteFraction = 0.08;
    return p;
}

ProfileParams
unknownProfile(const std::string& name)
{
    fatal("unknown trace profile '" + name + "'");
}

ProfileParams
cbp1Profile(const std::string& name)
{
    // ---- FP ----
    if (name == "FP-1")
        return fpBase();
    if (name == "FP-2") {
        ProfileParams p = fpBase();
        p.fracPattern = 0.16;
        p.fracLoop = 0.05;
        p.patternLenMax = 16;
        return p;
    }
    if (name == "FP-3") {
        // Long loops: predictable only when the history window covers
        // the period — separates the three predictor sizes.
        ProfileParams p = fpBase();
        p.loopPeriodMin = 40;
        p.loopPeriodMax = 250;
        p.fracLoop = 0.05;
        p.fracAlways = 0.48;
        p.loopTripJitter = 0.02;
        return p;
    }
    if (name == "FP-4") {
        ProfileParams p = fpBase();
        p.fracBiased = 0.01;
        p.fracMarkov = 0.01;
        p.biasMin = 0.97;
        p.biasMax = 0.997;
        return p;
    }
    if (name == "FP-5") {
        ProfileParams p = fpBase();
        p.fracMarkov = 0.05;
        p.fracBiased = 0.04;
        p.biasMin = 0.88;
        p.biasMax = 0.97;
        return p;
    }

    // ---- INT ----
    if (name == "INT-1")
        return intBase();
    if (name == "INT-2") {
        ProfileParams p = intBase();
        p.fracBiased = 0.08;
        p.biasMin = 0.70;
        p.biasMax = 0.90;
        p.fracAlways = 0.32;
        return p;
    }
    if (name == "INT-3") {
        ProfileParams p = intBase();
        p.numFunctions = 96;
        p.fracBiased = 0.06;
        p.biasMin = 0.70;
        p.biasMax = 0.92;
        p.numPhases = 3;
        p.phasedSiteFraction = 0.06;
        return p;
    }
    if (name == "INT-4") {
        ProfileParams p = intBase();
        p.fracBiased = 0.03;
        p.fracCorrelated = 0.08;
        p.corrTapMin = 20;
        p.corrTapMax = 110;
        return p;
    }
    if (name == "INT-5") {
        // Tagged-component-dominated: small footprint of history-hungry
        // branches; the paper notes only ~6% BIM coverage here.
        ProfileParams p = intBase();
        p.numFunctions = 12;
        p.fracAlways = 0.04;
        p.fracLoop = 0.14;
        p.loopPeriodMin = 8;
        p.loopPeriodMax = 40;
        p.fracCorrelated = 0.28;
        p.fracPattern = 0.18;
        p.fracBiased = 0.06;
        p.fracMarkov = 0.06;
        p.numPhases = 1;
        return p;
    }

    // ---- MM ----
    if (name == "MM-1") {
        ProfileParams p = mmBase();
        p.fracBiased = 0.12;
        p.biasMin = 0.60;
        p.biasMax = 0.80;
        return p;
    }
    if (name == "MM-2") {
        ProfileParams p = mmBase();
        p.fracBiased = 0.10;
        p.fracMarkov = 0.08;
        p.markovStayMin = 0.60;
        p.markovStayMax = 0.85;
        return p;
    }
    if (name == "MM-3")
        return mmBase();
    if (name == "MM-4") {
        ProfileParams p = mmBase();
        p.fracBiased = 0.03;
        p.fracLoop = 0.12;
        p.biasMin = 0.90;
        p.biasMax = 0.98;
        return p;
    }
    if (name == "MM-5") {
        ProfileParams p = mmBase();
        p.numFunctions = 64;
        p.fracBiased = 0.13;
        p.biasMin = 0.60;
        p.biasMax = 0.80;
        p.numPhases = 3;
        p.phaseLength = 200000;
        p.phasedSiteFraction = 0.10;
        return p;
    }

    // ---- SERV ----
    if (name == "SERV-1")
        return servBase();
    if (name == "SERV-2") {
        ProfileParams p = servBase();
        p.numFunctions = 320;
        p.phasedSiteFraction = 0.08;
        return p;
    }
    if (name == "SERV-3") {
        ProfileParams p = servBase();
        p.numFunctions = 200;
        p.fracBiased = 0.05;
        p.biasMin = 0.85;
        p.biasMax = 0.95;
        return p;
    }
    if (name == "SERV-4") {
        ProfileParams p = servBase();
        p.numFunctions = 288;
        p.zipfSkew = 0.5;
        return p;
    }
    if (name == "SERV-5") {
        ProfileParams p = servBase();
        p.numPhases = 5;
        p.phaseLength = 120000;
        p.phasedSiteFraction = 0.06;
        return p;
    }

    return unknownProfile(name);
}

ProfileParams
cbp2Profile(const std::string& name)
{
    if (name == "164.gzip") {
        ProfileParams p = mmBase();
        p.numFunctions = 24;
        p.fracBiased = 0.12;
        p.biasMin = 0.68;
        p.biasMax = 0.88;
        p.fracLoop = 0.10;
        p.loopPeriodMin = 6;
        p.loopPeriodMax = 30;
        p.instrPerBranchMin = 4;
        p.instrPerBranchMax = 7;
        return p;
    }
    if (name == "175.vpr") {
        ProfileParams p = intBase();
        p.fracBiased = 0.09;
        p.biasMin = 0.68;
        p.biasMax = 0.85;
        p.fracMarkov = 0.06;
        p.markovStayMin = 0.70;
        p.markovStayMax = 0.90;
        return p;
    }
    if (name == "176.gcc") {
        ProfileParams p = servBase();
        p.numFunctions = 288;
        p.minSitesPerFunction = 3;
        p.maxSitesPerFunction = 8;
        p.numPhases = 4;
        p.phaseLength = 150000;
        p.phasedSiteFraction = 0.08;
        p.fracBiased = 0.04;
        p.biasMin = 0.80;
        p.biasMax = 0.95;
        p.instrPerBranchMin = 4;
        p.instrPerBranchMax = 6;
        return p;
    }
    if (name == "181.mcf") {
        ProfileParams p = intBase();
        p.fracBiased = 0.08;
        p.biasMin = 0.70;
        p.biasMax = 0.85;
        p.fracCorrelated = 0.14;
        p.numFunctions = 24;
        return p;
    }
    if (name == "186.crafty") {
        ProfileParams p = intBase();
        p.numFunctions = 128;
        p.fracBiased = 0.06;
        p.biasMin = 0.72;
        p.biasMax = 0.90;
        p.fracCorrelated = 0.08;
        p.corrTapMin = 16;
        p.corrTapMax = 120;
        return p;
    }
    if (name == "197.parser") {
        ProfileParams p = intBase();
        p.numFunctions = 96;
        p.fracBiased = 0.06;
        p.biasMin = 0.70;
        p.biasMax = 0.90;
        return p;
    }
    if (name == "201.compress") {
        ProfileParams p = intBase();
        p.numFunctions = 20;
        p.fracBiased = 0.06;
        p.biasMin = 0.75;
        p.biasMax = 0.90;
        p.fracMarkov = 0.06;
        return p;
    }
    if (name == "202.jess") {
        ProfileParams p = javaBase();
        p.numFunctions = 160;
        return p;
    }
    if (name == "205.raytrace") {
        ProfileParams p = javaBase();
        p.fracBiased = 0.02;
        p.fracLoop = 0.10;
        p.numFunctions = 96;
        return p;
    }
    if (name == "209.db") {
        ProfileParams p = javaBase();
        p.fracMarkov = 0.06;
        p.fracBiased = 0.05;
        p.biasMin = 0.72;
        p.biasMax = 0.90;
        return p;
    }
    if (name == "213.javac") {
        ProfileParams p = javaBase();
        p.numFunctions = 224;
        p.numPhases = 3;
        p.phasedSiteFraction = 0.06;
        return p;
    }
    if (name == "222.mpegaudio") {
        ProfileParams p = fpBase();
        p.numFunctions = 20;
        p.fracPattern = 0.16;
        p.fracLoop = 0.08;
        p.instrPerBranchMin = 6;
        p.instrPerBranchMax = 10;
        return p;
    }
    if (name == "227.mtrt") {
        ProfileParams p = javaBase();
        p.fracBiased = 0.03;
        p.fracLoop = 0.09;
        p.numFunctions = 96;
        return p;
    }
    if (name == "228.jack") {
        ProfileParams p = javaBase();
        p.numFunctions = 192;
        p.fracBiased = 0.05;
        return p;
    }
    if (name == "252.eon") {
        ProfileParams p = fpBase();
        p.numFunctions = 32;
        p.fracAlways = 0.42;
        p.fracBiased = 0.015;
        p.instrPerBranchMin = 6;
        p.instrPerBranchMax = 10;
        return p;
    }
    if (name == "253.perlbmk") {
        ProfileParams p = javaBase();
        p.numFunctions = 224;
        p.numPhases = 3;
        p.phasedSiteFraction = 0.08;
        p.fracBiased = 0.04;
        return p;
    }
    if (name == "254.gap") {
        ProfileParams p = intBase();
        p.fracBiased = 0.04;
        p.fracLoop = 0.10;
        p.numFunctions = 64;
        return p;
    }
    if (name == "255.vortex") {
        ProfileParams p = javaBase();
        p.numFunctions = 160;
        p.fracBiased = 0.025;
        p.fracAlways = 0.44;
        return p;
    }
    if (name == "256.bzip2") {
        ProfileParams p = intBase();
        p.numFunctions = 24;
        p.fracBiased = 0.09;
        p.biasMin = 0.70;
        p.biasMax = 0.90;
        return p;
    }
    if (name == "300.twolf") {
        // The paper's canonical hard trace: Stag at ~90 MKP with the
        // baseline automaton.
        ProfileParams p = mmBase();
        p.numFunctions = 40;
        p.fracBiased = 0.16;
        p.biasMin = 0.62;
        p.biasMax = 0.82;
        p.fracMarkov = 0.08;
        p.markovStayMin = 0.60;
        p.markovStayMax = 0.85;
        p.instrPerBranchMin = 4;
        p.instrPerBranchMax = 7;
        return p;
    }

    return unknownProfile(name);
}

} // namespace

std::string
benchmarkSetName(BenchmarkSet set)
{
    return set == BenchmarkSet::Cbp1 ? "CBP1" : "CBP2";
}

const std::vector<std::string>&
traceNames(BenchmarkSet set)
{
    static const std::vector<std::string> cbp1 = {
        "FP-1", "FP-2", "FP-3", "FP-4", "FP-5",
        "INT-1", "INT-2", "INT-3", "INT-4", "INT-5",
        "MM-1", "MM-2", "MM-3", "MM-4", "MM-5",
        "SERV-1", "SERV-2", "SERV-3", "SERV-4", "SERV-5",
    };
    static const std::vector<std::string> cbp2 = {
        "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
        "197.parser", "201.compress", "202.jess", "205.raytrace",
        "209.db", "213.javac", "222.mpegaudio", "227.mtrt", "228.jack",
        "252.eon", "253.perlbmk", "254.gap", "255.vortex", "256.bzip2",
        "300.twolf",
    };
    return set == BenchmarkSet::Cbp1 ? cbp1 : cbp2;
}

std::vector<std::string>
allTraceNames()
{
    std::vector<std::string> names = traceNames(BenchmarkSet::Cbp1);
    const auto& cbp2 = traceNames(BenchmarkSet::Cbp2);
    names.insert(names.end(), cbp2.begin(), cbp2.end());
    return names;
}

ProfileParams
profileByName(const std::string& name)
{
    const auto& cbp1 = traceNames(BenchmarkSet::Cbp1);
    ProfileParams p;
    if (std::find(cbp1.begin(), cbp1.end(), name) != cbp1.end())
        p = cbp1Profile(name);
    else
        p = cbp2Profile(name);
    p.name = name;
    p.seed = nameSeed(name);
    return p;
}

SyntheticTrace
makeTrace(const std::string& name, uint64_t num_branches,
          uint64_t seed_salt)
{
    ProfileParams p = profileByName(name);
    p.seed ^= seed_salt;
    if (p.seed == 0)
        p.seed = 1;
    return SyntheticTrace(std::move(p), num_branches);
}

} // namespace tagecon
