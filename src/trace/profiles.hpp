/**
 * @file
 * The 40 named synthetic workload profiles standing in for the two
 * championship trace sets the paper evaluates on (Sec. 4):
 *
 *  - CBP-1: FP-1..5, INT-1..5, MM-1..5, SERV-1..5
 *  - CBP-2: 164.gzip .. 300.twolf (SPEC INT / SPEC JVM98 mix)
 *
 * The real traces are not redistributable; each profile is tuned to
 * the qualitative behaviour the paper reports for its namesake (see
 * DESIGN.md): FP traces are loop-dominated and highly predictable,
 * SERV traces have very large branch footprints that thrash the small
 * predictor, MM/twolf/gzip carry a sizable fraction of intrinsically
 * unpredictable branches, and so on.
 */

#ifndef TAGECON_TRACE_PROFILES_HPP
#define TAGECON_TRACE_PROFILES_HPP

#include <string>
#include <vector>

#include "trace/workload.hpp"

namespace tagecon {

/** The two benchmark sets of the paper. */
enum class BenchmarkSet {
    Cbp1, ///< CBP-1 (2004): FP / INT / MM / SERV
    Cbp2, ///< CBP-2 (2006): SPEC INT + JVM98
};

/** Human-readable name of a benchmark set ("CBP1" / "CBP2"). */
std::string benchmarkSetName(BenchmarkSet set);

/** Trace names of a benchmark set, in the paper's figure order. */
const std::vector<std::string>& traceNames(BenchmarkSet set);

/** All 40 trace names, CBP-1 first. */
std::vector<std::string> allTraceNames();

/**
 * Generation parameters of a named trace. fatal() on unknown names;
 * every name in traceNames() is valid.
 */
ProfileParams profileByName(const std::string& name);

/**
 * Construct the synthetic trace for @p name producing @p num_branches
 * branches. @p seed_salt perturbs the profile's seed, letting tests
 * draw independent trace instances.
 */
SyntheticTrace makeTrace(const std::string& name, uint64_t num_branches,
                         uint64_t seed_salt = 0);

} // namespace tagecon

#endif // TAGECON_TRACE_PROFILES_HPP
