#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <filesystem>

#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace tagecon {

namespace {

constexpr std::array<char, 4> kMagic = {'T', 'C', 'B', 'T'};

template <typename T>
void
writeRaw(std::ofstream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool
readRaw(std::ifstream& in, T& v)
{
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    return in.good();
}

constexpr const char* kOpenSite = "trace.open";

/**
 * Parse and validate the header of an already-open stream. Returns the
 * typed reason (detail prefixed with the path) on failure.
 */
Err
readHeader(std::ifstream& in, const std::string& path,
           TraceFileInfo& info)
{
    std::array<char, 4> magic{};
    in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
    if (!in || magic != kMagic)
        return Err(ErrCode::Corrupt, kOpenSite,
                   "'" + path + "' is not a tagecon trace file");
    uint32_t version = 0;
    if (!readRaw(in, version) || version != kTraceFormatVersion) {
        return Err(
            ErrCode::BadVersion, kOpenSite,
            "'" + path + "' has unsupported trace format version " +
                (in ? std::to_string(version)
                    : std::string("(unreadable)")) +
                " (expected " + std::to_string(kTraceFormatVersion) +
                ")");
    }
    uint32_t name_len = 0;
    if (!readRaw(in, name_len) || name_len > 4096)
        return Err(ErrCode::Corrupt, kOpenSite,
                   "'" + path + "' has a malformed header");
    info.name.resize(name_len);
    in.read(info.name.data(), static_cast<std::streamsize>(name_len));
    if (!in || !readRaw(in, info.records))
        return Err(ErrCode::Truncated, kOpenSite,
                   "'" + path + "' has a truncated header");
    info.dataStart = static_cast<uint64_t>(in.tellg());

    // Fail fast on truncation: the header's record count must fit in
    // the bytes the file actually has, or next() would fail deep into
    // a simulation instead of at open time.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    info.fileBytes = ec ? 0 : static_cast<uint64_t>(size);
    if (!ec) {
        // Divide rather than multiply: records * kTraceRecordBytes can
        // wrap for a corrupt header, which would sneak a bogus record
        // count past this check.
        const uint64_t payload = info.fileBytes >= info.dataStart
                                     ? info.fileBytes - info.dataStart
                                     : 0;
        if (info.records > payload / kTraceRecordBytes) {
            return Err(ErrCode::Truncated, kOpenSite,
                       "'" + path + "' is truncated: header promises " +
                           std::to_string(info.records) +
                           " records but the file (" +
                           std::to_string(info.fileBytes) +
                           " bytes) has room for only " +
                           std::to_string(payload / kTraceRecordBytes));
        }
    }
    return {};
}

/** Open @p path and parse its header; the shared non-fatal front end. */
Err
openAndReadHeader(const std::string& path, std::ifstream& in,
                  TraceFileInfo& info)
{
    in.open(path, std::ios::binary);
    if (!in)
        return Err(ErrCode::NotFound, kOpenSite,
                   "cannot open trace file '" + path + "'");
    return readHeader(in, path, info);
}

} // namespace

Expected<TraceFileInfo>
probeTrace(const std::string& path)
{
    std::ifstream in;
    TraceFileInfo info;
    if (Err e = openAndReadHeader(path, in, info); e.failed())
        return e;
    return info;
}

bool
probeTraceFile(const std::string& path, TraceFileInfo* info,
               std::string* error)
{
    auto probed = probeTrace(path);
    if (!probed.ok()) {
        if (error)
            *error = probed.error().detail;
        return false;
    }
    if (info)
        *info = probed.take();
    return true;
}

TraceWriter::TraceWriter(const std::string& path,
                         const std::string& trace_name)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("cannot create trace file '" + path + "'");
    out_.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
    writeRaw(out_, kTraceFormatVersion);
    const auto name_len = static_cast<uint32_t>(trace_name.size());
    writeRaw(out_, name_len);
    out_.write(trace_name.data(), static_cast<std::streamsize>(name_len));
    countPos_ = out_.tellp();
    const uint64_t placeholder = 0;
    writeRaw(out_, placeholder);
    if (!out_)
        fatal("failed writing trace header to '" + path + "'");
    open_ = true;
}

TraceWriter::~TraceWriter()
{
    if (open_)
        close();
}

void
TraceWriter::write(const BranchRecord& rec)
{
    TAGECON_ASSERT(open_, "write() on a closed TraceWriter");
    writeRaw(out_, rec.pc);
    writeRaw(out_, rec.instructionsBefore);
    const uint8_t taken = rec.taken ? 1 : 0;
    writeRaw(out_, taken);
    if (!out_)
        fatal("failed writing record " + std::to_string(count_) +
              " to trace file '" + path_ + "' (disk full?)");
    ++count_;
}

void
TraceWriter::close()
{
    if (!open_)
        return;
    // Mark closed first so a fatal() below can't re-enter from the
    // destructor.
    open_ = false;
    out_.seekp(countPos_);
    writeRaw(out_, count_);
    out_.flush();
    if (!out_)
        fatal("failed back-patching record count into trace file '" +
              path_ + "' (disk full?)");
    out_.close();
    if (out_.fail())
        fatal("failed closing trace file '" + path_ + "'");
}

TraceReader::TraceReader(Opened, const std::string& path,
                         std::ifstream in, TraceFileInfo info)
    : path_(path), in_(std::move(in)), name_(std::move(info.name)),
      total_(info.records),
      dataStart_(static_cast<std::streampos>(info.dataStart))
{
}

TraceReader::TraceReader(const std::string& path)
    : path_(path)
{
    TraceFileInfo info;
    if (Err e = openAndReadHeader(path, in_, info); e.failed())
        fatal(e.detail);
    name_ = std::move(info.name);
    total_ = info.records;
    dataStart_ = static_cast<std::streampos>(info.dataStart);
}

Expected<std::unique_ptr<TraceReader>>
TraceReader::open(const std::string& path)
{
    std::ifstream in;
    TraceFileInfo info;
    if (Err e = openAndReadHeader(path, in, info); e.failed())
        return e;
    return std::unique_ptr<TraceReader>(
        new TraceReader(Opened{}, path, std::move(in), std::move(info)));
}

bool
TraceReader::next(BranchRecord& out)
{
    if (err_.failed() || read_ >= total_)
        return false;
    if (failpoints::anyArmed()) {
        if (auto injected = failpoints::check("trace.read")) {
            err_ = std::move(*injected);
            return false;
        }
    }
    uint8_t taken = 0;
    if (!readRaw(in_, out.pc) || !readRaw(in_, out.instructionsBefore) ||
        !readRaw(in_, taken)) {
        // Latch instead of fatal(): the file shrank under us (the open
        // time size check passed), so end this stream and let the
        // caller decide — the serving engine quarantines just the
        // affected stream.
        err_ = Err(ErrCode::Truncated, "trace.read",
                   "'" + path_ + "' is truncated (header promises " +
                       std::to_string(total_) + " records)");
        return false;
    }
    out.taken = taken != 0;
    ++read_;
    return true;
}

void
TraceReader::reset()
{
    err_ = Err();
    in_.clear();
    in_.seekg(dataStart_);
    read_ = 0;
}

uint64_t
writeTraceFile(const std::string& path, TraceSource& src)
{
    TraceWriter writer(path, src.name());
    BranchRecord rec;
    while (src.next(rec))
        writer.write(rec);
    writer.close();
    return writer.written();
}

} // namespace tagecon
