#include "trace/trace_io.hpp"

#include <array>
#include <cstring>

#include "util/logging.hpp"

namespace tagecon {

namespace {

constexpr std::array<char, 4> kMagic = {'T', 'C', 'B', 'T'};

template <typename T>
void
writeRaw(std::ofstream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool
readRaw(std::ifstream& in, T& v)
{
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    return in.good();
}

} // namespace

TraceWriter::TraceWriter(const std::string& path,
                         const std::string& trace_name)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("cannot create trace file '" + path + "'");
    out_.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
    writeRaw(out_, kTraceFormatVersion);
    const auto name_len = static_cast<uint32_t>(trace_name.size());
    writeRaw(out_, name_len);
    out_.write(trace_name.data(), static_cast<std::streamsize>(name_len));
    countPos_ = out_.tellp();
    const uint64_t placeholder = 0;
    writeRaw(out_, placeholder);
    open_ = true;
}

TraceWriter::~TraceWriter()
{
    if (open_)
        close();
}

void
TraceWriter::write(const BranchRecord& rec)
{
    TAGECON_ASSERT(open_, "write() on a closed TraceWriter");
    writeRaw(out_, rec.pc);
    writeRaw(out_, rec.instructionsBefore);
    const uint8_t taken = rec.taken ? 1 : 0;
    writeRaw(out_, taken);
    ++count_;
}

void
TraceWriter::close()
{
    if (!open_)
        return;
    out_.seekp(countPos_);
    writeRaw(out_, count_);
    out_.close();
    open_ = false;
}

TraceReader::TraceReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary)
{
    if (!in_)
        fatal("cannot open trace file '" + path + "'");
    std::array<char, 4> magic{};
    in_.read(magic.data(), static_cast<std::streamsize>(magic.size()));
    if (!in_ || magic != kMagic)
        fatal("'" + path + "' is not a tagecon trace file");
    uint32_t version = 0;
    if (!readRaw(in_, version) || version != kTraceFormatVersion)
        fatal("'" + path + "' has unsupported trace format version");
    uint32_t name_len = 0;
    if (!readRaw(in_, name_len) || name_len > 4096)
        fatal("'" + path + "' has a malformed header");
    name_.resize(name_len);
    in_.read(name_.data(), static_cast<std::streamsize>(name_len));
    if (!in_ || !readRaw(in_, total_))
        fatal("'" + path + "' has a truncated header");
    dataStart_ = in_.tellg();
}

bool
TraceReader::next(BranchRecord& out)
{
    if (read_ >= total_)
        return false;
    uint8_t taken = 0;
    if (!readRaw(in_, out.pc) || !readRaw(in_, out.instructionsBefore) ||
        !readRaw(in_, taken)) {
        fatal("'" + path_ + "' is truncated (header promises " +
              std::to_string(total_) + " records)");
    }
    out.taken = taken != 0;
    ++read_;
    return true;
}

void
TraceReader::reset()
{
    in_.clear();
    in_.seekg(dataStart_);
    read_ = 0;
}

uint64_t
writeTraceFile(const std::string& path, TraceSource& src)
{
    TraceWriter writer(path, src.name());
    BranchRecord rec;
    while (src.next(rec))
        writer.write(rec);
    writer.close();
    return writer.written();
}

} // namespace tagecon
