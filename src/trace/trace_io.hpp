/**
 * @file
 * Compact binary on-disk trace format, so synthetic workloads can be
 * materialized once and replayed exactly (the CBP traces played this
 * role in the paper).
 *
 * Format (little-endian):
 *   header:  magic "TCBT" (4 bytes) | version u32 | name length u32 |
 *            name bytes | record count u64
 *   records: pc u64 | instructionsBefore u32 | taken u8
 */

#ifndef TAGECON_TRACE_TRACE_IO_HPP
#define TAGECON_TRACE_TRACE_IO_HPP

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace_source.hpp"

namespace tagecon {

/** Current on-disk format version. */
inline constexpr uint32_t kTraceFormatVersion = 1;

/**
 * Streaming writer for the binary trace format. The record count is
 * back-patched on close(), so traces can be written without knowing
 * their length up front.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * fatal() when the file cannot be created.
     */
    TraceWriter(const std::string& path, const std::string& trace_name);

    /** Closes (and back-patches) if still open. */
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Append one record. */
    void write(const BranchRecord& rec);

    /** Finish: back-patch the record count and close the file. */
    void close();

    /** Records written so far. */
    uint64_t written() const { return count_; }

  private:
    std::ofstream out_;
    std::streampos countPos_;
    uint64_t count_ = 0;
    bool open_ = false;
};

/**
 * Reader for the binary trace format; implements TraceSource so a file
 * trace is a drop-in replacement for a synthetic one.
 */
class TraceReader : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing file or malformed header. */
    explicit TraceReader(const std::string& path);

    bool next(BranchRecord& out) override;
    void reset() override;
    std::string name() const override { return name_; }

    /** Total records the header promises. */
    uint64_t totalRecords() const { return total_; }

  private:
    std::string path_;
    std::ifstream in_;
    std::string name_;
    uint64_t total_ = 0;
    uint64_t read_ = 0;
    std::streampos dataStart_;
};

/**
 * Convenience: write all records of @p src (from its current position)
 * to @p path. Returns the number of records written.
 */
uint64_t writeTraceFile(const std::string& path, TraceSource& src);

} // namespace tagecon

#endif // TAGECON_TRACE_TRACE_IO_HPP
