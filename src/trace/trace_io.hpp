/**
 * @file
 * Compact binary on-disk trace format (".tcbt"), so workloads can be
 * materialized once and replayed exactly (the CBP traces played this
 * role in the paper).
 *
 * Format (little-endian):
 *   header:  magic "TCBT" (4 bytes) | version u32 | name length u32 |
 *            name bytes | record count u64
 *   records: pc u64 | instructionsBefore u32 | taken u8
 */

#ifndef TAGECON_TRACE_TRACE_IO_HPP
#define TAGECON_TRACE_TRACE_IO_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "trace/trace_source.hpp"
#include "util/errors.hpp"

namespace tagecon {

/** Current on-disk format version. */
inline constexpr uint32_t kTraceFormatVersion = 1;

/** On-disk size of one record: pc u64 + instructionsBefore u32 + taken u8. */
inline constexpr uint64_t kTraceRecordBytes = 13;

/**
 * Parsed header of a trace file, as returned by probeTraceFile().
 */
struct TraceFileInfo {
    /** Display name embedded in the header. */
    std::string name;

    /** Record count the header promises. */
    uint64_t records = 0;

    /** Byte offset of the first record. */
    uint64_t dataStart = 0;

    /** On-disk file size in bytes. */
    uint64_t fileBytes = 0;
};

/**
 * Validate @p path as a binary trace file without fatal()ing: checks
 * that the file opens, the magic/version/name header parses, and the
 * file size covers the promised record count. The Err taxonomy
 * distinguishes a missing file (NotFound), a foreign format (Corrupt),
 * an unsupported version (BadVersion) and a short file (Truncated).
 * This is the probe the trace registry uses to reject bad specs before
 * a sweep starts.
 */
Expected<TraceFileInfo> probeTrace(const std::string& path);

/** Legacy bool+string shim over probeTrace(). */
[[nodiscard]] bool probeTraceFile(const std::string& path, TraceFileInfo* info,
                    std::string* error);

/**
 * Streaming writer for the binary trace format. The record count is
 * back-patched on close(), so traces can be written without knowing
 * their length up front. Every write is checked: a failed record
 * write, back-patch or flush is fatal() (naming the path) rather than
 * silently producing a truncated file that still reports success.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * fatal() when the file cannot be created or the header write fails.
     */
    TraceWriter(const std::string& path, const std::string& trace_name);

    /** Closes (and back-patches) if still open. */
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Append one record; fatal() when the stream write fails. */
    void write(const BranchRecord& rec);

    /**
     * Finish: back-patch the record count, flush and close the file.
     * fatal() when any of those steps fails — a trace file either
     * closes clean or the process dies telling you which file is bad.
     */
    void close();

    /** Records written so far. */
    uint64_t written() const { return count_; }

  private:
    std::string path_;
    std::ofstream out_;
    std::streampos countPos_;
    uint64_t count_ = 0;
    bool open_ = false;
};

/**
 * Reader for the binary trace format; implements TraceSource so a file
 * trace is a drop-in replacement for a synthetic one. The header's
 * record count is validated against the actual file size at open time,
 * so a truncated file fails fast instead of mid-simulation.
 *
 * Library code opens readers through open(), which reports failures as
 * typed Err values; the fatal() constructor remains as a convenience
 * for tool boundaries. A read failure after open (a file shrinking
 * under the reader, or an injected "trace.read" fault) ends the stream
 * and is reported through lastError() instead of killing the process.
 */
class TraceReader : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing file or malformed header. */
    explicit TraceReader(const std::string& path);

    /**
     * Open @p path without fatal()ing — the library path. The returned
     * reader is positioned at the first record.
     */
    static Expected<std::unique_ptr<TraceReader>>
    open(const std::string& path);

    bool next(BranchRecord& out) override;
    void reset() override;
    std::string name() const override { return name_; }

    const Err*
    lastError() const override
    {
        return err_.ok() ? nullptr : &err_;
    }

    /** Total records the header promises. */
    uint64_t totalRecords() const { return total_; }

  private:
    struct Opened {}; // tag for the already-validated constructor

    TraceReader(Opened, const std::string& path, std::ifstream in,
                TraceFileInfo info);

    std::string path_;
    std::ifstream in_;
    std::string name_;
    uint64_t total_ = 0;
    uint64_t read_ = 0;
    std::streampos dataStart_;
    Err err_;
};

/**
 * Convenience: write all records of @p src (from its current position)
 * to @p path. Returns the number of records written.
 */
uint64_t writeTraceFile(const std::string& path, TraceSource& src);

} // namespace tagecon

#endif // TAGECON_TRACE_TRACE_IO_HPP
