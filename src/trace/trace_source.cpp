#include "trace/trace_source.hpp"

#include <algorithm>

namespace tagecon {

VectorTrace
materialize(TraceSource& src, size_t max_records)
{
    std::vector<BranchRecord> records;
    // max_records is a cap, not a promise: reserving the caller's raw
    // value would bad_alloc on e.g. SIZE_MAX before reading a single
    // record. Pre-reserve a bounded amount and let push_back grow.
    constexpr size_t kMaxReserve = size_t{1} << 20;
    records.reserve(std::min(max_records, kMaxReserve));
    BranchRecord rec;
    while (records.size() < max_records && src.next(rec))
        records.push_back(rec);
    return VectorTrace(src.name(), std::move(records));
}

} // namespace tagecon
