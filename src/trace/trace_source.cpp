#include "trace/trace_source.hpp"

namespace tagecon {

VectorTrace
materialize(TraceSource& src, size_t max_records)
{
    std::vector<BranchRecord> records;
    records.reserve(max_records);
    BranchRecord rec;
    while (records.size() < max_records && src.next(rec))
        records.push_back(rec);
    return VectorTrace(src.name(), std::move(records));
}

} // namespace tagecon
