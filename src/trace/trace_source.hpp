/**
 * @file
 * Abstract stream of dynamic branches plus an in-memory implementation.
 * Synthetic generators (synthetic_trace.hpp) and file readers
 * (trace_io.hpp) implement the same interface so the simulation driver
 * is agnostic to where branches come from.
 */

#ifndef TAGECON_TRACE_TRACE_SOURCE_HPP
#define TAGECON_TRACE_TRACE_SOURCE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/branch_record.hpp"
#include "util/errors.hpp"

namespace tagecon {

/**
 * A replayable stream of BranchRecords.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next branch.
     * @param out Filled with the next record when available.
     * @retval true A record was produced.
     * @retval false The trace is exhausted — or failed; a source that
     *         can fail mid-stream (file readers) reports the reason
     *         through lastError(), so consumers distinguish a clean
     *         end from a truncated or unreadable stream.
     */
    virtual bool next(BranchRecord& out) = 0;

    /**
     * The error that ended the stream, or nullptr when none: next()
     * returning false with a null lastError() is a clean exhaustion.
     * In-memory sources never fail; file readers latch truncation,
     * parse and injected-fault errors here instead of fatal()ing, so
     * the serving engine can quarantine the one affected stream.
     */
    virtual const Err* lastError() const { return nullptr; }

    /** Rewind to the beginning; the replay is bit-identical. */
    virtual void reset() = 0;

    /** Human-readable trace name (e.g. "FP-1", "164.gzip"). */
    virtual std::string name() const = 0;
};

/**
 * Trace backed by a vector of records; useful in tests and as the
 * materialized form of a synthetic trace.
 */
class VectorTrace : public TraceSource
{
  public:
    /** Wrap @p records under display name @p name. */
    VectorTrace(std::string name, std::vector<BranchRecord> records)
        : name_(std::move(name)), records_(std::move(records))
    {
    }

    bool
    next(BranchRecord& out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    std::string name() const override { return name_; }

    /** Underlying records (read-only). */
    const std::vector<BranchRecord>& records() const { return records_; }

    /** Number of records in the trace. */
    size_t size() const { return records_.size(); }

  private:
    std::string name_;
    std::vector<BranchRecord> records_;
    size_t pos_ = 0;
};

/**
 * Replays at most @p limit records of a wrapped source, then reports
 * exhaustion. reset() rewinds the inner source too, so the truncated
 * replay is repeatable. Used by the trace registry to cap file-backed
 * traces at a sweep's branches-per-cell without materializing them.
 */
class LimitedTrace : public TraceSource
{
  public:
    /** Own @p inner and replay at most @p limit of its records. */
    LimitedTrace(std::unique_ptr<TraceSource> inner, uint64_t limit)
        : inner_(std::move(inner)), limit_(limit)
    {
    }

    bool
    next(BranchRecord& out) override
    {
        if (emitted_ >= limit_ || !inner_->next(out))
            return false;
        ++emitted_;
        return true;
    }

    void
    reset() override
    {
        inner_->reset();
        emitted_ = 0;
    }

    std::string name() const override { return inner_->name(); }

    const Err* lastError() const override { return inner_->lastError(); }

  private:
    std::unique_ptr<TraceSource> inner_;
    uint64_t limit_;
    uint64_t emitted_ = 0;
};

/**
 * Drain up to @p max_records records of @p src into a VectorTrace.
 * Does not reset @p src first; drains from its current position.
 * @p max_records is a cap, not a size hint: arbitrarily large values
 * (e.g. SIZE_MAX for "everything") are safe and allocate only what the
 * source actually produces.
 */
VectorTrace materialize(TraceSource& src, size_t max_records);

} // namespace tagecon

#endif // TAGECON_TRACE_TRACE_SOURCE_HPP
