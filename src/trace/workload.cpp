#include "trace/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tagecon {

namespace {

/** History capacity: must cover the largest correlation tap. */
constexpr size_t kHistoryCapacity = 1024;

/** Base text address of the synthetic program. */
constexpr uint64_t kTextBase = 0x400000;

/** Address stride between consecutive sites of a function. */
constexpr uint64_t kSiteStride = 0x4;

/** Span of the synthetic text segment functions are placed in. */
constexpr uint64_t kTextSpan = uint64_t{1} << 24;

} // namespace

SyntheticTrace::SyntheticTrace(ProfileParams params, uint64_t num_branches)
    : params_(std::move(params)), limit_(num_branches),
      rng_(params_.seed), history_(kHistoryCapacity)
{
    validate();
    build();
}

void
SyntheticTrace::validate() const
{
    const ProfileParams& p = params_;
    if (p.numFunctions < 1)
        fatal("profile '" + p.name + "': numFunctions must be >= 1");
    if (p.minSitesPerFunction < 1 ||
        p.maxSitesPerFunction < p.minSitesPerFunction)
        fatal("profile '" + p.name + "': bad sitesPerFunction range");
    if (p.loopPeriodMin < 1 || p.loopPeriodMax < p.loopPeriodMin)
        fatal("profile '" + p.name + "': bad loopPeriod range");
    if (p.patternLenMin < 1 || p.patternLenMax < p.patternLenMin)
        fatal("profile '" + p.name + "': bad patternLen range");
    if (p.corrTapMin < 1 || p.corrTapMax < p.corrTapMin ||
        static_cast<size_t>(p.corrTapMax) >= kHistoryCapacity)
        fatal("profile '" + p.name + "': bad correlation tap range");
    if (p.corrNumTapsMin < 1 || p.corrNumTapsMax < p.corrNumTapsMin)
        fatal("profile '" + p.name + "': bad correlation tap count");
    if (p.instrPerBranchMax < p.instrPerBranchMin)
        fatal("profile '" + p.name + "': bad instrPerBranch range");
    if (p.numPhases < 1)
        fatal("profile '" + p.name + "': numPhases must be >= 1");
    if (p.numPhases > 1 && p.phaseLength == 0)
        fatal("profile '" + p.name + "': phaseLength must be > 0");
    const double mix = p.fracAlways + p.fracLoop + p.fracPattern +
                       p.fracBiased + p.fracMarkov + p.fracCorrelated;
    if (mix <= 0.0)
        fatal("profile '" + p.name + "': behaviour mixture is empty");
}

namespace {

BehaviorKind
drawWeighted(XorShift128Plus& rng, const double (&weights)[6])
{
    double total = 0.0;
    for (const double w : weights)
        total += w;
    double draw = rng.nextDouble() * total;
    for (int i = 0; i < 6; ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return static_cast<BehaviorKind>(i);
    }
    return BehaviorKind::Correlated;
}

} // namespace

BehaviorKind
SyntheticTrace::drawPlainKind(XorShift128Plus& rng) const
{
    // Straight-line sites execute once per function pass with variable
    // interleaving in between, so periodic behaviours (Pattern) are not
    // learnable there; their weight folds into Always. Loop placement
    // is handled structurally by build().
    const ProfileParams& p = params_;
    const double weights[6] = {
        p.fracAlways + p.fracPattern, 0.0, 0.0,
        p.fracBiased, p.fracMarkov, p.fracCorrelated,
    };
    return drawWeighted(rng, weights);
}

BehaviorKind
SyntheticTrace::drawBodyKind(XorShift128Plus& rng) const
{
    // Loop-body sites execute in per-iteration bursts: periodic and
    // history-correlated behaviours are adjacent in global history and
    // therefore learnable — this is where real programs' "pattern"
    // branches live. A slice of biased sites models loop-carried
    // data-dependent conditions.
    const ProfileParams& p = params_;
    const double weights[6] = {
        0.25, 0.0, 0.25 + p.fracPattern,
        0.15 * (p.fracBiased > 0.0 ? 1.0 : 0.0), 0.0, 0.25,
    };
    return drawWeighted(rng, weights);
}

BranchBehavior
SyntheticTrace::drawBehavior(BehaviorKind kind, XorShift128Plus& rng,
                             bool in_body) const
{
    const ProfileParams& p = params_;
    auto uniform_u32 = [&rng](uint32_t lo, uint32_t hi) {
        return lo + static_cast<uint32_t>(rng.nextBelow(hi - lo + 1));
    };
    auto uniform_d = [&rng](double lo, double hi) {
        return lo + (hi - lo) * rng.nextDouble();
    };

    switch (kind) {
      case BehaviorKind::Always:
        return BranchBehavior::always(rng.nextBool(0.6));
      case BehaviorKind::Loop:
        return BranchBehavior::loop(
            uniform_u32(p.loopPeriodMin, p.loopPeriodMax),
            p.loopTripJitter);
      case BehaviorKind::Pattern: {
        // Body patterns advance once per loop iteration; keep them
        // short so the burst exposes full periods.
        const uint32_t max_len =
            in_body ? std::min(p.patternLenMax, 6u) : p.patternLenMax;
        const uint32_t len = uniform_u32(
            std::min(p.patternLenMin, max_len), max_len);
        std::vector<bool> pat(len);
        bool any_taken = false;
        for (uint32_t i = 0; i < len; ++i) {
            pat[i] = rng.nextBool(0.5);
            any_taken = any_taken || pat[i];
        }
        if (!any_taken)
            pat[0] = true;
        return BranchBehavior::pattern(std::move(pat));
      }
      case BehaviorKind::Biased: {
        double bias = uniform_d(p.biasMin, p.biasMax);
        // Half the biased branches lean not-taken.
        if (rng.nextBool(0.5))
            bias = 1.0 - bias;
        return BranchBehavior::biased(bias);
      }
      case BehaviorKind::Markov:
        return BranchBehavior::markov(
            uniform_d(p.markovStayMin, p.markovStayMax),
            uniform_d(p.markovStayMin, p.markovStayMax));
      case BehaviorKind::Correlated: {
        // Correlation distances must stay short enough that the
        // referenced bits sit inside the current burst / function run;
        // longer taps are only learnable in very low-entropy contexts
        // (profiles opt in via corrTapMax).
        const auto tap_hi = static_cast<uint32_t>(
            in_body ? std::min(p.corrTapMax, 6) : p.corrTapMax);
        const auto tap_lo = std::min(
            static_cast<uint32_t>(p.corrTapMin), tap_hi);
        const int ntaps = static_cast<int>(rng.nextBelow(
            static_cast<uint64_t>(p.corrNumTapsMax - p.corrNumTapsMin +
                                  1))) + p.corrNumTapsMin;
        std::vector<uint16_t> taps;
        taps.reserve(static_cast<size_t>(ntaps));
        for (int i = 0; i < ntaps; ++i) {
            taps.push_back(
                static_cast<uint16_t>(uniform_u32(tap_lo, tap_hi)));
        }
        return BranchBehavior::correlated(std::move(taps),
                                          rng.nextBool(0.5), p.corrNoise);
      }
    }
    panic("unreachable behaviour kind");
}

void
SyntheticTrace::build()
{
    rng_ = XorShift128Plus(params_.seed);
    history_.clear();
    emitted_ = 0;
    curPhase_ = 0;
    curFunc_ = 0;
    curSite_ = 0;
    inFunction_ = false;
    loopStack_.clear();
    lastFunc_ = 0;
    haveLastFunc_ = false;

    functions_.clear();
    functions_.resize(static_cast<size_t>(params_.numFunctions));

    // Dedicated RNG for program construction so the *structure* of the
    // program does not depend on how many branches have been drawn.
    XorShift128Plus build_rng(params_.seed ^ 0xC0FFEE);

    for (auto& func : functions_) {
        // Scatter function bases across the text segment so branch
        // sites alias in the predictor tables the way real code does
        // (a fixed stride would fold every function onto the same
        // bimodal entries).
        const uint64_t func_base =
            kTextBase + (build_rng.next() & (kTextSpan - 1) & ~uint64_t{3});
        const auto nsites = static_cast<size_t>(
            params_.minSitesPerFunction +
            static_cast<int>(build_rng.nextBelow(static_cast<uint64_t>(
                params_.maxSitesPerFunction -
                params_.minSitesPerFunction + 1))));
        // Structural placement: a slot is either a loop head (whose
        // body consumes the following slots) or a straight-line site.
        // Loop-body sites draw from the burst-friendly behaviour mix.
        const double mix_total = params_.fracAlways + params_.fracLoop +
                                 params_.fracPattern + params_.fracBiased +
                                 params_.fracMarkov +
                                 params_.fracCorrelated;
        const double loop_share = params_.fracLoop / mix_total;

        func.sites.reserve(nsites);
        auto make_site = [&](size_t slot, BehaviorKind kind,
                             bool in_body) {
            return Site{
                func_base + static_cast<uint64_t>(slot) * kSiteStride,
                drawBehavior(kind, build_rng, in_body),
                params_.instrPerBranchMin,
                params_.instrPerBranchMax,
                build_rng.nextBool(params_.phasedSiteFraction),
                0,
                in_body,
            };
        };

        size_t s = 0;
        while (s < nsites) {
            if (build_rng.nextBool(loop_share)) {
                const auto remaining = nsites - s - 1;
                const auto body = static_cast<uint32_t>(std::min<uint64_t>(
                    build_rng.nextBelow(
                        static_cast<uint64_t>(params_.loopBodyMax) + 1),
                    remaining));
                Site head = make_site(s, BehaviorKind::Loop, false);
                head.loopBodyLen = body;
                func.sites.push_back(std::move(head));
                ++s;
                for (uint32_t b = 0; b < body; ++b, ++s) {
                    func.sites.push_back(
                        make_site(s, drawBodyKind(build_rng), true));
                }
            } else {
                func.sites.push_back(
                    make_site(s, drawPlainKind(build_rng), false));
                ++s;
            }
        }
    }

    buildCallGraph(build_rng);
    rebuildSelection();
}

void
SyntheticTrace::buildCallGraph(XorShift128Plus& build_rng)
{
    // Successors are drawn with regional locality so that phase
    // rotation keeps most call edges inside the active working set:
    // a cold function's successors live in its own phase region (or
    // the always-hot set); a hot function's successors stay hot.
    const size_t total = functions_.size();
    const size_t hot = std::max<size_t>(
        1, static_cast<size_t>(params_.hotFraction *
                               static_cast<double>(total)));
    const auto num_phases = static_cast<size_t>(params_.numPhases);

    auto pool_for = [&](size_t f) {
        std::vector<size_t> pool;
        for (size_t i = 0; i < hot && i < total; ++i)
            pool.push_back(i);
        if (num_phases <= 1) {
            for (size_t i = hot; i < total; ++i)
                pool.push_back(i);
        } else if (f >= hot) {
            const size_t cold = total - std::min(hot, total);
            const size_t per_phase = std::max<size_t>(1,
                                                      cold / num_phases);
            const size_t region =
                std::min((f - hot) / per_phase, num_phases - 1);
            const size_t begin = hot + region * per_phase;
            for (size_t i = begin;
                 i < std::min(begin + per_phase, total); ++i) {
                pool.push_back(i);
            }
        }
        return pool;
    };

    successors_.resize(total);
    for (size_t f = 0; f < total; ++f) {
        const auto pool = pool_for(f);
        for (auto& s : successors_[f])
            s = pool[build_rng.nextBelow(pool.size())];
    }
}

void
SyntheticTrace::rebuildSelection()
{
    activeFuncs_.clear();
    isActive_.assign(functions_.size(), 0);

    const auto total = functions_.size();
    const auto hot = std::max<size_t>(
        1, static_cast<size_t>(params_.hotFraction *
                               static_cast<double>(total)));

    // Hot functions are active in every phase.
    for (size_t i = 0; i < hot && i < total; ++i)
        activeFuncs_.push_back(i);

    // The cold remainder is partitioned across phases.
    if (params_.numPhases <= 1) {
        for (size_t i = hot; i < total; ++i)
            activeFuncs_.push_back(i);
    } else {
        const size_t cold = total - std::min(hot, total);
        const size_t per_phase = std::max<size_t>(
            1, cold / static_cast<size_t>(params_.numPhases));
        const size_t begin =
            hot + static_cast<size_t>(curPhase_) * per_phase;
        for (size_t i = begin; i < std::min(begin + per_phase, total); ++i)
            activeFuncs_.push_back(i);
    }

    for (const size_t f : activeFuncs_)
        isActive_[f] = 1;

    // Zipf-skewed popularity over the active set.
    selectCdf_.clear();
    selectCdf_.reserve(activeFuncs_.size());
    double acc = 0.0;
    for (size_t rank = 0; rank < activeFuncs_.size(); ++rank) {
        acc += 1.0 / std::pow(static_cast<double>(rank + 1),
                              params_.zipfSkew);
        selectCdf_.push_back(acc);
    }
}

void
SyntheticTrace::pickNextFunction()
{
    size_t choice = functions_.size(); // sentinel: no choice yet

    // Call-graph locality: usually continue along a successor edge.
    if (haveLastFunc_ && rng_.nextBool(params_.callLocality)) {
        const auto& succ = successors_[lastFunc_];
        const double u = rng_.nextDouble();
        const size_t cand = u < 0.7 ? succ[0]
                                    : (u < 0.9 ? succ[1] : succ[2]);
        if (isActive_[cand])
            choice = cand;
    }

    if (choice == functions_.size()) {
        // Fresh Zipf draw over the active working set.
        const double draw = rng_.nextDouble() * selectCdf_.back();
        const auto it =
            std::lower_bound(selectCdf_.begin(), selectCdf_.end(), draw);
        const auto idx = static_cast<size_t>(
            std::distance(selectCdf_.begin(), it));
        choice = activeFuncs_[std::min(idx, activeFuncs_.size() - 1)];
    }

    curFunc_ = choice;
    lastFunc_ = choice;
    haveLastFunc_ = true;
    curSite_ = 0;
    inFunction_ = true;
    loopStack_.clear();
}

void
SyntheticTrace::rotatePhase()
{
    curPhase_ = (curPhase_ + 1) % params_.numPhases;
    rebuildSelection();

    // Redraw the behaviour of phased sites: the program "moved on" and
    // these branches now behave differently, forcing the predictor to
    // re-learn them (warming bursts, Sec. 5.1.2 of the paper).
    XorShift128Plus phase_rng(params_.seed ^
                              (0xFACEu + static_cast<uint64_t>(curPhase_) +
                               emitted_));
    for (auto& func : functions_) {
        for (auto& site : func.sites) {
            if (site.phased) {
                site.behavior = drawBehavior(site.behavior.kind(),
                                             phase_rng, site.inBody);
            }
        }
    }
    inFunction_ = false;
    loopStack_.clear();
}

bool
SyntheticTrace::next(BranchRecord& out)
{
    if (emitted_ >= limit_)
        return false;

    if (params_.numPhases > 1 && emitted_ > 0 &&
        emitted_ % params_.phaseLength == 0) {
        rotatePhase();
    }

    if (!inFunction_ || curSite_ >= functions_[curFunc_].sites.size())
        pickNextFunction();

    Site& site = functions_[curFunc_].sites[curSite_];

    BehaviorContext ctx{rng_, history_};
    const bool taken = site.behavior.nextOutcome(ctx);
    history_.push(taken);
    lastKind_ = site.behavior.kind();
    lastInBody_ = site.inBody;

    out.pc = site.pc;
    out.taken = taken;
    out.instructionsBefore =
        site.instrMin +
        static_cast<uint32_t>(rng_.nextBelow(site.instrMax -
                                             site.instrMin + 1));
    ++emitted_;

    // --- Control flow: loops iterate in place -------------------------
    size_t next_site;
    if (site.behavior.kind() == BehaviorKind::Loop) {
        if (taken) {
            if (site.loopBodyLen == 0) {
                next_site = curSite_; // self-loop: re-execute the head
            } else {
                // Enter (or stay in) the loop body.
                if (loopStack_.empty() ||
                    loopStack_.back().headIdx != curSite_) {
                    loopStack_.push_back(
                        LoopFrame{curSite_,
                                  curSite_ + site.loopBodyLen});
                    // Fresh loop entry: body behaviours restart, so
                    // every run replays the same within-run sequence
                    // (e.g. re-scanning the same data) — which is what
                    // makes body patterns learnable from history.
                    auto& sites = functions_[curFunc_].sites;
                    for (size_t b = curSite_ + 1;
                         b <= curSite_ + site.loopBodyLen; ++b) {
                        sites[b].behavior.reset();
                    }
                }
                next_site = curSite_ + 1;
            }
        } else {
            // Loop exit: fall through past the body.
            if (!loopStack_.empty() &&
                loopStack_.back().headIdx == curSite_) {
                loopStack_.pop_back();
            }
            next_site = curSite_ + site.loopBodyLen + 1;
        }
    } else {
        next_site = curSite_ + 1;
    }

    // Reaching the end of the innermost loop body returns to its head.
    if (!loopStack_.empty() && next_site > loopStack_.back().bodyEnd)
        next_site = loopStack_.back().headIdx;

    curSite_ = next_site;
    if (curSite_ >= functions_[curFunc_].sites.size()) {
        inFunction_ = false;
        loopStack_.clear();
    }
    return true;
}

void
SyntheticTrace::reset()
{
    build();
}

size_t
SyntheticTrace::numSites() const
{
    size_t n = 0;
    for (const auto& f : functions_)
        n += f.sites.size();
    return n;
}

size_t
SyntheticTrace::countSites(BehaviorKind kind) const
{
    size_t n = 0;
    for (const auto& f : functions_) {
        for (const auto& s : f.sites) {
            if (s.behavior.kind() == kind)
                ++n;
        }
    }
    return n;
}

} // namespace tagecon
