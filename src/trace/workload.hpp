/**
 * @file
 * Synthetic program model and trace generator.
 *
 * A workload is a set of "functions"; each function is an ordered list
 * of static branch sites with an outcome behaviour each. Execution
 * repeatedly picks a function (Zipf-skewed popularity, optionally
 * rotating a working set across phases) and runs through its sites in
 * order. This gives the global history the recurring structure that
 * real programs have — which the TAGE tagged components need — while
 * exposing the knobs that drive the paper's effects:
 *
 *  - numFunctions / zipfSkew:   branch footprint -> capacity pressure
 *    (the CBP-1 SERV traces vs. the small 16Kbit predictor);
 *  - behaviour mixture:         fraction of intrinsically unpredictable
 *    branches (twolf/gzip-like) vs. loop/always branches (FP-like);
 *  - loopPeriod range:          long loops are predictable only by the
 *    configurations whose history window covers the period, separating
 *    the 16K/64K/256K predictors exactly like the paper's Table 1;
 *  - phases:                    working-set rotation and behaviour
 *    re-randomization produce the bursty bimodal mispredictions behind
 *    the medium-conf-bim class (Sec. 5.1.2).
 */

#ifndef TAGECON_TRACE_WORKLOAD_HPP
#define TAGECON_TRACE_WORKLOAD_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/behavior.hpp"
#include "trace/trace_source.hpp"
#include "util/global_history.hpp"
#include "util/random.hpp"

namespace tagecon {

/**
 * Generation parameters for one synthetic trace. The defaults describe
 * a bland mixed-integer workload; profiles.cpp derives the 40 named
 * CBP-1/CBP-2 stand-in profiles from this.
 */
struct ProfileParams {
    /** Display name of the trace (e.g. "FP-1", "300.twolf"). */
    std::string name = "synthetic";

    /** Master seed; every run with the same params is bit-identical. */
    uint64_t seed = 1;

    // --- Program shape -------------------------------------------------
    /** Number of functions (drives static branch footprint). */
    int numFunctions = 32;
    /** Minimum branch sites per function. */
    int minSitesPerFunction = 3;
    /** Maximum branch sites per function. */
    int maxSitesPerFunction = 12;
    /** Zipf popularity skew across functions; 0 = uniform. */
    double zipfSkew = 1.0;
    /** Fraction of functions that stay hot across all phases. */
    double hotFraction = 0.25;
    /**
     * Probability that the next function is taken from the current
     * function's successor list (call-graph locality) instead of a
     * fresh Zipf draw. Locality keeps the global history low-entropy
     * across function boundaries, which is what lets the long-history
     * TAGE components find recurring contexts — as in real programs.
     */
    double callLocality = 0.88;

    // --- Phasing --------------------------------------------------------
    /** Number of rotating working sets; 1 disables phasing. */
    int numPhases = 1;
    /** Branches per phase. */
    uint64_t phaseLength = 200000;
    /** Fraction of sites whose behaviour is redrawn at phase edges. */
    double phasedSiteFraction = 0.0;

    // --- Behaviour mixture (weights, normalized internally) -------------
    double fracAlways = 0.30;     ///< fixed-direction branches
    double fracLoop = 0.25;       ///< loop-closing branches
    double fracPattern = 0.10;    ///< short repeating patterns
    double fracBiased = 0.15;     ///< Bernoulli (unpredictable)
    double fracMarkov = 0.10;     ///< 2-state Markov
    double fracCorrelated = 0.10; ///< global-history parity

    // --- Behaviour parameter ranges --------------------------------------
    uint32_t loopPeriodMin = 3;
    uint32_t loopPeriodMax = 40;
    /** Max sites in a loop body (the sites a taken loop re-executes). */
    int loopBodyMax = 2;
    /** Probability that a loop run's trip count varies by +/-1. */
    double loopTripJitter = 0.08;
    uint32_t patternLenMin = 2;
    uint32_t patternLenMax = 12;
    /** P(taken) range for biased branches (symmetrized around 0.5). */
    double biasMin = 0.55;
    double biasMax = 0.98;
    double markovStayMin = 0.60;
    double markovStayMax = 0.95;
    int corrTapMin = 4;
    int corrTapMax = 60;
    int corrNumTapsMin = 1;
    int corrNumTapsMax = 3;
    double corrNoise = 0.02;

    // --- Instruction spacing ---------------------------------------------
    uint32_t instrPerBranchMin = 4;
    uint32_t instrPerBranchMax = 8;
};

/**
 * Synthetic trace source: deterministically generates the branch stream
 * of the program described by a ProfileParams. reset() replays the
 * identical stream.
 */
class SyntheticTrace : public TraceSource
{
  public:
    /**
     * @param params Program description; validated with fatal() on
     *               nonsensical values.
     * @param num_branches Number of records the stream will produce.
     */
    SyntheticTrace(ProfileParams params, uint64_t num_branches);

    bool next(BranchRecord& out) override;
    void reset() override;
    std::string name() const override { return params_.name; }

    /** Total records this source will produce. */
    uint64_t totalRecords() const { return limit_; }

    /** Number of functions in the built program (introspection). */
    size_t numFunctions() const { return functions_.size(); }

    /** Total static branch sites in the built program. */
    size_t numSites() const;

    /** Count of sites using the given behaviour kind. */
    size_t countSites(BehaviorKind kind) const;

    /** The generation parameters (read-only). */
    const ProfileParams& params() const { return params_; }

    /** Behaviour kind of the most recently emitted record. */
    BehaviorKind lastKind() const { return lastKind_; }

    /** Whether the most recent record came from a loop-body site. */
    bool lastInBody() const { return lastInBody_; }

  private:
    /** One static conditional branch site. */
    struct Site {
        uint64_t pc = 0;
        BranchBehavior behavior;
        uint32_t instrMin = 4;
        uint32_t instrMax = 8;
        bool phased = false;
        /**
         * For loop-closing sites: number of following sites forming
         * the loop body, re-executed while the loop branch is taken.
         * Loops iterate *in place*, so their outcomes are adjacent in
         * global history — the structure TAGE learns from.
         */
        uint32_t loopBodyLen = 0;
        /** True when this site lives inside a loop body. */
        bool inBody = false;
    };

    /** A straight-line sequence of sites executed in order. */
    struct WorkloadFunction {
        std::vector<Site> sites;
    };

    void validate() const;
    void build();
    void buildCallGraph(XorShift128Plus& build_rng);
    BranchBehavior drawBehavior(BehaviorKind kind, XorShift128Plus& rng,
                                bool in_body) const;

    /** Kind for a straight-line (non-loop-body) site. */
    BehaviorKind drawPlainKind(XorShift128Plus& rng) const;

    /** Kind for a site inside a loop body (executed in bursts). */
    BehaviorKind drawBodyKind(XorShift128Plus& rng) const;
    void rebuildSelection();
    void pickNextFunction();
    void rotatePhase();

    ProfileParams params_;
    uint64_t limit_;

    std::vector<WorkloadFunction> functions_;

    /** An active loop: head site index and last body site index. */
    struct LoopFrame {
        size_t headIdx;
        size_t bodyEnd;
    };

    // Dynamic replay state.
    XorShift128Plus rng_;
    GlobalHistory history_;
    uint64_t emitted_ = 0;
    int curPhase_ = 0;
    size_t curFunc_ = 0;
    size_t curSite_ = 0;
    bool inFunction_ = false;
    std::vector<LoopFrame> loopStack_;

    // Function-selection state for the current phase.
    std::vector<size_t> activeFuncs_;
    std::vector<double> selectCdf_;
    std::vector<char> isActive_;

    // Static call-graph: per function, its likely successors (ordered
    // by probability: 0.7 / 0.2 / 0.1).
    std::vector<std::array<size_t, 3>> successors_;
    size_t lastFunc_ = 0;
    bool haveLastFunc_ = false;
    BehaviorKind lastKind_ = BehaviorKind::Always;
    bool lastInBody_ = false;
};

} // namespace tagecon

#endif // TAGECON_TRACE_WORKLOAD_HPP
