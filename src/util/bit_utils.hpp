/**
 * @file
 * Small fixed-width bit manipulation helpers shared by the predictor
 * index/tag hash functions.
 */

#ifndef TAGECON_UTIL_BIT_UTILS_HPP
#define TAGECON_UTIL_BIT_UTILS_HPP

#include <cstdint>

namespace tagecon {

/** Bit mask with the low @p bits bits set; bits must be in [0, 64]. */
constexpr uint64_t
maskBits(int bits)
{
    if (bits <= 0)
        return 0;
    if (bits >= 64)
        return ~uint64_t{0};
    return (uint64_t{1} << bits) - 1;
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr int
floorLog2(uint64_t v)
{
    int r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr int
ceilLog2(uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/**
 * XOR-fold a 64-bit value down to @p bits bits. Used when mixing the PC
 * into index and tag hashes.
 */
constexpr uint64_t
xorFold(uint64_t v, int bits)
{
    if (bits <= 0)
        return 0;
    uint64_t r = 0;
    while (v != 0) {
        r ^= v & maskBits(bits);
        v >>= bits;
    }
    return r;
}

/** Rotate-left within the low @p width bits. */
constexpr uint64_t
rotateLeft(uint64_t v, int amount, int width)
{
    if (width <= 0)
        return 0;
    amount %= width;
    if (amount == 0)
        return v & maskBits(width);
    const uint64_t m = maskBits(width);
    v &= m;
    return ((v << amount) | (v >> (width - amount))) & m;
}

} // namespace tagecon

#endif // TAGECON_UTIL_BIT_UTILS_HPP
