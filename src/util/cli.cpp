#include "util/cli.hpp"

#include "util/logging.hpp"
#include "util/strict_parse.hpp"

namespace tagecon {

CliArgs::CliArgs(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
            continue;
        }
        // "--name value" form only when the next token is not a flag and
        // looks like a value; otherwise treat as boolean.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[arg] = argv[i + 1];
            ++i;
        } else {
            flags_[arg] = "";
        }
    }
}

bool
CliArgs::has(const std::string& name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string& name, const std::string& def) const
{
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

int64_t
CliArgs::getInt(const std::string& name, int64_t def) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    int64_t v = 0;
    std::string why;
    if (!parseInt64(it->second, v, why))
        fatal("flag --" + name + " expects an integer, got '" +
              it->second + "' (" + why + ")");
    return v;
}

uint64_t
CliArgs::getUint(const std::string& name, uint64_t def) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    uint64_t v = 0;
    std::string why;
    if (!parseUint64(it->second, v, why))
        fatal("flag --" + name + " expects an unsigned integer, got '" +
              it->second + "' (" + why + ")");
    return v;
}

uint64_t
CliArgs::getUintInRange(const std::string& name, uint64_t def,
                        uint64_t min, uint64_t max) const
{
    const uint64_t v = getUint(name, def);
    if (v < min || v > max)
        fatal("flag --" + name + " expects a value between " +
              std::to_string(min) + " and " + std::to_string(max) +
              ", got " + std::to_string(v));
    return v;
}

double
CliArgs::getDouble(const std::string& name, double def) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    double v = 0.0;
    std::string why;
    if (!parseFiniteDouble(it->second, v, why))
        fatal("flag --" + name + " expects a number, got '" +
              it->second + "' (" + why + ")");
    return v;
}

bool
CliArgs::getBool(const std::string& name, bool def) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    const std::string& v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::vector<std::string>
CliArgs::getList(const std::string& name,
                 const std::vector<std::string>& def) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    std::vector<std::string> items;
    std::string item;
    for (const char c : it->second) {
        if (c == ',') {
            if (!item.empty())
                items.push_back(std::move(item));
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty())
        items.push_back(std::move(item));
    if (items.empty())
        fatal("flag --" + name +
              " expects a non-empty comma-separated list");
    return items;
}

std::vector<std::string>
CliArgs::flagNames() const
{
    std::vector<std::string> names;
    names.reserve(flags_.size());
    for (const auto& [k, v] : flags_)
        names.push_back(k);
    return names;
}

} // namespace tagecon
