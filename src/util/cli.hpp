/**
 * @file
 * Minimal command-line flag parser for the experiment and example
 * binaries. Supports --name=value, --name value and boolean --name.
 */

#ifndef TAGECON_UTIL_CLI_HPP
#define TAGECON_UTIL_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tagecon {

/**
 * Parsed command line. Unknown flags are kept and can be rejected by the
 * caller; positional arguments are collected in order.
 */
class CliArgs
{
  public:
    /** Parse argv; flags start with "--". */
    CliArgs(int argc, const char* const* argv);

    /** True when --name was supplied (with or without a value). */
    bool has(const std::string& name) const;

    /** String value of --name, or @p def when absent. */
    std::string getString(const std::string& name,
                          const std::string& def) const;

    /** Integer value of --name, or @p def when absent; fatal() on junk. */
    int64_t getInt(const std::string& name, int64_t def) const;

    /** Unsigned value of --name, or @p def when absent. */
    uint64_t getUint(const std::string& name, uint64_t def) const;

    /**
     * Like getUint() but additionally fatal()s — naming the flag and
     * the accepted range — when the value falls outside
     * [@p min, @p max]. The range check runs on the full 64-bit value
     * before any caller-side narrowing, so e.g. "--jobs=4294967296"
     * can't silently wrap to 0 through a cast to unsigned.
     */
    uint64_t getUintInRange(const std::string& name, uint64_t def,
                            uint64_t min, uint64_t max) const;

    /** Double value of --name, or @p def when absent; fatal() on junk. */
    double getDouble(const std::string& name, double def) const;

    /** Boolean flag: present without value or with true/1/yes. */
    bool getBool(const std::string& name, bool def) const;

    /**
     * Comma-separated list value of --name, or @p def when absent.
     * Empty items are dropped ("a,,b" -> {a, b}); a flag that is
     * present but has no items (e.g. an unset shell variable expanding
     * to --name=) is fatal() rather than silently the default.
     */
    std::vector<std::string>
    getList(const std::string& name,
            const std::vector<std::string>& def = {}) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** All flag names that were supplied (for unknown-flag checks). */
    std::vector<std::string> flagNames() const;

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_CLI_HPP
