#include "util/errors.hpp"

namespace tagecon {

const char*
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::None:
        return "none";
      case ErrCode::NotFound:
        return "not-found";
      case ErrCode::Io:
        return "io";
      case ErrCode::Corrupt:
        return "corrupt";
      case ErrCode::Truncated:
        return "truncated";
      case ErrCode::BadVersion:
        return "bad-version";
      case ErrCode::Parse:
        return "parse";
      case ErrCode::BadSpec:
        return "bad-spec";
      case ErrCode::Mismatch:
        return "mismatch";
      case ErrCode::Unsupported:
        return "unsupported";
    }
    return "unknown";
}

bool
errCodeFromName(const std::string& name, ErrCode& out)
{
    for (const ErrCode c :
         {ErrCode::None, ErrCode::NotFound, ErrCode::Io, ErrCode::Corrupt,
          ErrCode::Truncated, ErrCode::BadVersion, ErrCode::Parse,
          ErrCode::BadSpec, ErrCode::Mismatch, ErrCode::Unsupported}) {
        if (name == errCodeName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

std::string
Err::message() const
{
    if (ok())
        return "ok";
    std::string out;
    if (!site.empty())
        out += site + ": ";
    out += detail.empty() ? "(no detail)" : detail;
    out += std::string(" [") + errCodeName(code) + "]";
    return out;
}

} // namespace tagecon
