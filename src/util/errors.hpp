/**
 * @file
 * Structured error taxonomy for the recoverable library paths: a small
 * closed set of error codes, an `Err` value carrying (code, site,
 * detail), and a lightweight `Expected<T>` for factory-style APIs.
 *
 * The taxonomy exists so callers can *dispatch* on failures instead of
 * string-matching messages: the serving engine retries `Io` errors,
 * treats `NotFound` checkpoints as cold starts, and quarantines a
 * stream on anything else; tools print `message()` and exit. `site` is
 * the failure-site name shared with the fault-injection framework
 * (util/failpoint.hpp) — "ckpt.read", "trace.open", ... — so an
 * injected fault and the real failure it models are indistinguishable
 * to the recovery code, which is the point.
 *
 * Convention: library functions on recoverable paths return `Err`
 * (empty = success) or `Expected<T>`; `fatal()` stays at tool
 * boundaries (tools and bench mains) and `panic()` for internal
 * bugs. Both result types are [[nodiscard]]: silently dropping a
 * failure is a compile-time warning everywhere and an error in the
 * -Werror CI builds.
 */

#ifndef TAGECON_UTIL_ERRORS_HPP
#define TAGECON_UTIL_ERRORS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tagecon {

/** Closed set of failure classes on recoverable library paths. */
enum class ErrCode : uint8_t {
    None = 0,    ///< success (the empty Err)
    NotFound,    ///< missing file / unknown name
    Io,          ///< open/read/write/flush failure — the retryable class
    Corrupt,     ///< digest mismatch or malformed framing
    Truncated,   ///< input shorter than its header promises
    BadVersion,  ///< recognized format, unsupported version
    Parse,       ///< text input does not parse
    BadSpec,     ///< malformed spec string (predictor/trace/fault)
    Mismatch,    ///< blob belongs to a different spec/stream
    Unsupported, ///< operation not implemented by this family
};

/** Stable lowercase name of @p code ("io", "not-found", ...). */
const char* errCodeName(ErrCode code);

/** Inverse of errCodeName(); false on an unknown name. */
bool errCodeFromName(const std::string& name, ErrCode& out);

/**
 * True for error classes worth retrying with backoff: transient I/O.
 * Corruption, truncation and version/spec mismatches are deterministic
 * — retrying re-reads the same bad bytes.
 */
inline bool
errIsRetryable(ErrCode code)
{
    return code == ErrCode::Io;
}

/**
 * One structured error: what class of failure (code), where it
 * happened (site — a failpoint-site name when one exists, else a
 * short component name), and the human detail.
 *
 * A default-constructed Err is success; functions returning Err use
 * that as their "no error" value.
 *
 * [[nodiscard]]: a returned Err must be checked (or explicitly
 * ignored with a cast) — dropping one on the floor is exactly the
 * error-discipline bug the taxonomy exists to prevent.
 */
struct [[nodiscard]] Err {
    ErrCode code = ErrCode::None;
    std::string site;
    std::string detail;

    Err() = default;

    Err(ErrCode c, std::string s, std::string d)
        : code(c), site(std::move(s)), detail(std::move(d))
    {
    }

    bool ok() const { return code == ErrCode::None; }
    bool failed() const { return code != ErrCode::None; }

    /** "site: detail [code]" — the display form tools print. */
    std::string message() const;
};

/**
 * Minimal either-a-value-or-an-Err result for factory-style APIs
 * (open a reader, decode a blob). Deliberately tiny: no monadic
 * combinators, just ok()/value()/error()/take().
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Err err) : err_(std::move(err))
    {
        // An Expected built from an error must actually carry one;
        // otherwise ok() would lie.
        if (err_.ok())
            err_ = Err(ErrCode::Io, "", "unspecified error");
    }

    bool ok() const { return value_.has_value(); }

    T& value() { return *value_; }
    const T& value() const { return *value_; }

    /** Move the value out (valid only when ok()). */
    T take() { return std::move(*value_); }

    const Err& error() const { return err_; }

  private:
    std::optional<T> value_;
    Err err_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_ERRORS_HPP
