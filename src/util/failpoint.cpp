#include "util/failpoint.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/mutex.hpp"
#include "util/strict_parse.hpp"

namespace tagecon {
namespace failpoints {

namespace detail {
std::atomic<int> g_armed{0};
} // namespace detail

namespace {

/** Per-(rule, key) trigger state. */
struct KeyState {
    uint64_t hits = 0;
    uint64_t fires = 0;
};

struct RuleState {
    FailRule rule;
    std::unordered_map<uint64_t, KeyState> perKey;
};

struct Registry {
    Mutex mutex;
    std::map<std::string, std::vector<RuleState>> bySite
        TAGECON_GUARDED_BY(mutex);
    std::map<std::string, SiteStats> siteStats
        TAGECON_GUARDED_BY(mutex);
};

Registry&
registry()
{
    static Registry r;
    return r;
}

thread_local uint64_t t_scopeKey = kNoKey;

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

uint64_t
fnv1a(const std::string& s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Pure trigger decision for one rate-based hit: a seeded hash of
 * (site, key, hit-index) compared against the rate threshold. No
 * shared RNG stream, so concurrent keys cannot perturb each other.
 */
bool
rateFires(const FailRule& rule, uint64_t key, uint64_t hit_index)
{
    if (rule.rate <= 0.0)
        return false;
    if (rule.rate >= 1.0)
        return true;
    const uint64_t h = splitmix64(rule.seed ^ fnv1a(rule.site) ^
                                  splitmix64(key) ^ hit_index);
    return static_cast<double>(h) <
           rule.rate * 18446744073709551616.0; // 2^64
}

bool
paramError(std::string& error, const std::string& rule_text,
           const std::string& why)
{
    error = "fault rule '" + rule_text + "': " + why;
    return false;
}

std::vector<std::string>
splitOn(const std::string& text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (;;) {
        const size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

const std::vector<std::string>&
knownSites()
{
    static const std::vector<std::string> sites = {
        "ckpt.decode", "ckpt.encode",       "ckpt.read", "ckpt.write",
        "trace.open",  "serve.worker.step", "trace.read"};
    static const std::vector<std::string> sorted = [] {
        auto s = sites;
        std::sort(s.begin(), s.end());
        return s;
    }();
    return sorted;
}

bool
parseFaultSpec(const std::string& spec, std::vector<FailRule>& out,
               std::string& error)
{
    out.clear();
    if (spec.empty())
        return true;
    for (const std::string& rule_text : splitOn(spec, ';')) {
        if (rule_text.empty()) {
            error = "fault spec has an empty rule (stray ';')";
            return false;
        }
        FailRule rule;
        const size_t colon = rule_text.find(':');
        rule.site = rule_text.substr(0, colon);
        const auto& sites = knownSites();
        if (std::find(sites.begin(), sites.end(), rule.site) ==
            sites.end()) {
            std::string all;
            for (const auto& s : sites)
                all += (all.empty() ? "" : " ") + s;
            error = "unknown failpoint site '" + rule.site +
                    "' (known: " + all + ")";
            return false;
        }
        if (colon != std::string::npos) {
            bool have_nth = false, have_rate = false;
            for (const std::string& param :
                 splitOn(rule_text.substr(colon + 1), ',')) {
                const size_t eq = param.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 == param.size())
                    return paramError(error, rule_text,
                                      "expected key=value, got '" +
                                          param + "'");
                const std::string key = param.substr(0, eq);
                const std::string value = param.substr(eq + 1);
                std::string why;
                if (key == "nth") {
                    if (!parseUint64(value, rule.nth, why) ||
                        rule.nth == 0)
                        return paramError(
                            error, rule_text,
                            "nth wants an integer >= 1" +
                                (why.empty() ? "" : " (" + why + ")"));
                    have_nth = true;
                } else if (key == "count") {
                    if (!parseUint64(value, rule.count, why) ||
                        rule.count == 0)
                        return paramError(
                            error, rule_text,
                            "count wants an integer >= 1" +
                                (why.empty() ? "" : " (" + why + ")"));
                } else if (key == "rate") {
                    if (!parseFiniteDouble(value, rule.rate, why) ||
                        rule.rate < 0.0 || rule.rate > 1.0)
                        return paramError(error, rule_text,
                                          "rate wants a number in "
                                          "[0,1]");
                    have_rate = true;
                } else if (key == "seed") {
                    if (!parseUint64(value, rule.seed, why))
                        return paramError(error, rule_text,
                                          "bad seed: " + why);
                } else if (key == "key") {
                    if (!parseUint64(value, rule.key, why))
                        return paramError(error, rule_text,
                                          "bad key: " + why);
                } else if (key == "err") {
                    if (!errCodeFromName(value, rule.code) ||
                        rule.code == ErrCode::None)
                        return paramError(error, rule_text,
                                          "unknown err code '" + value +
                                              "'");
                } else {
                    return paramError(error, rule_text,
                                      "unknown param '" + key + "'");
                }
            }
            if (have_nth && have_rate)
                return paramError(error, rule_text,
                                  "nth and rate are exclusive");
        }
        out.push_back(std::move(rule));
    }
    return true;
}

bool
arm(const std::string& spec, std::string* error)
{
    std::vector<FailRule> rules;
    std::string why;
    if (!parseFaultSpec(spec, rules, why)) {
        if (error)
            *error = why;
        return false;
    }
    armRules(std::move(rules));
    return true;
}

void
armRules(std::vector<FailRule> rules)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    r.bySite.clear();
    r.siteStats.clear();
    for (auto& rule : rules)
        r.bySite[rule.site].push_back(RuleState{std::move(rule), {}});
    detail::g_armed.store(r.bySite.empty() ? 0 : 1,
                          std::memory_order_relaxed);
}

void
disarm()
{
    armRules({});
}

std::optional<Err>
check(const char* site)
{
    if (!anyArmed())
        return std::nullopt;
    Registry& r = registry();
    MutexLock lock(r.mutex);
    const auto it = r.bySite.find(site);
    if (it == r.bySite.end())
        return std::nullopt;
    const uint64_t key = t_scopeKey;
    SiteStats& ss = r.siteStats[site];
    ++ss.hits;
    for (RuleState& rs : it->second) {
        const FailRule& rule = rs.rule;
        if (rule.key != kNoKey && rule.key != key)
            continue;
        KeyState& ks = rs.perKey[key];
        ++ks.hits;
        bool fires;
        if (rule.nth != 0)
            fires = ks.hits == rule.nth;
        else if (rule.rate >= 0.0)
            fires = rateFires(rule, key, ks.hits);
        else
            fires = true;
        if (!fires || ks.fires >= rule.count)
            continue;
        ++ks.fires;
        ++ss.fires;
        std::string detail = "injected fault (hit " +
                             std::to_string(ks.hits);
        if (key != kNoKey)
            detail += ", key " + std::to_string(key);
        detail += ")";
        return Err(rule.code, site, std::move(detail));
    }
    return std::nullopt;
}

KeyScope::KeyScope(uint64_t key) : prev_(t_scopeKey)
{
    t_scopeKey = key;
}

KeyScope::~KeyScope()
{
    t_scopeKey = prev_;
}

uint64_t
currentKey()
{
    return t_scopeKey;
}

SiteStats
stats(const std::string& site)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    const auto it = r.siteStats.find(site);
    return it == r.siteStats.end() ? SiteStats{} : it->second;
}

} // namespace failpoints
} // namespace tagecon
