/**
 * @file
 * Deterministic fault injection: named failure sites compiled into the
 * I/O and serving paths, armed at runtime from a spec string so
 * failure schedules are reproducible — bit-identical at any --jobs.
 *
 * Sites (the fixed, known set — parse rejects typos):
 *
 *   trace.open        opening/probing a trace source
 *   trace.read        reading one record from a file-backed trace
 *   ckpt.encode       snapshotting a predictor into a blob
 *   ckpt.decode       decoding a checkpoint blob
 *   ckpt.read         reading a checkpoint file
 *   ckpt.write        writing a checkpoint file (fires as a torn
 *                     write: a partial .tmp is left behind, the real
 *                     file is never replaced)
 *   serve.worker.step one serving scheduling turn of one stream
 *
 * Spec grammar (the --faults flag):
 *
 *   spec  := rule (';' rule)*
 *   rule  := SITE [':' param (',' param)*]
 *   param := 'nth='N      fail the Nth matching hit (1-based) within
 *                         each key scope (default: every hit)
 *          | 'count='M    fire at most M times per key scope
 *          | 'rate='P     fail each hit with probability P in [0,1],
 *                         decided by a seeded hash of
 *                         (site, key, hit-index) — not a shared RNG
 *          | 'seed='S     seed for rate hashing (default 0)
 *          | 'key='K      only hits whose scope key equals K
 *          | 'err='CODE   ErrCode to inject (errCodeName() names;
 *                         default "io", the retryable class)
 *
 *   e.g.  --faults=ckpt.read:key=3;trace.read:rate=0.01,seed=7
 *
 * Determinism: every trigger decision is a pure function of
 * (rule, scope key, per-key hit index). The scope key is set by the
 * execution layer (the serving engine scopes each stream's work to its
 * stream id via KeyScope), and one key's hits are sequential within
 * the worker that owns it, so schedules do not depend on thread
 * interleaving.
 *
 * Cost when unarmed: check() reads one relaxed atomic and branches —
 * no lock, no map lookup, no allocation (micro-bench: BM_Failpoint*
 * in bench_micro_predictor). Armed evaluation takes a mutex; fault
 * runs are diagnostics, not throughput runs.
 */

#ifndef TAGECON_UTIL_FAILPOINT_HPP
#define TAGECON_UTIL_FAILPOINT_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/errors.hpp"

namespace tagecon {
namespace failpoints {

/** Scope key meaning "no specific scope" (hits outside any KeyScope). */
inline constexpr uint64_t kNoKey = UINT64_MAX;

/** One armed injection rule; see the file comment for semantics. */
struct FailRule {
    std::string site;
    uint64_t key = kNoKey;         ///< kNoKey = match any scope key
    uint64_t nth = 0;              ///< 0 = any hit
    uint64_t count = UINT64_MAX;   ///< max fires per key scope
    double rate = -1.0;            ///< < 0 = not rate-based
    uint64_t seed = 0;
    ErrCode code = ErrCode::Io;
};

/** The site names parse accepts; sorted, for --help style listings. */
const std::vector<std::string>& knownSites();

/**
 * Parse a --faults spec into rules. Returns false with the reason in
 * @p error on an unknown site, unknown/duplicate param, out-of-range
 * value or malformed syntax. Does not arm anything.
 */
bool parseFaultSpec(const std::string& spec, std::vector<FailRule>& out,
                    std::string& error);

/**
 * Parse @p spec and arm it, replacing any previously armed rules and
 * resetting all hit counters. An empty spec disarms. Returns false
 * with the reason in @p error (when non-null) on a bad spec, leaving
 * the previous arming untouched.
 */
bool arm(const std::string& spec, std::string* error = nullptr);

/** Arm pre-parsed rules (tests), replacing state like arm(). */
void armRules(std::vector<FailRule> rules);

/** Disarm every rule and drop all counters. */
void disarm();

namespace detail {
extern std::atomic<int> g_armed;
} // namespace detail

/** True when any rule is armed. One relaxed load — the hot-path gate. */
inline bool
anyArmed()
{
    return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/**
 * Record a hit at @p site under the current thread's scope key and
 * return the injected Err when an armed rule decides this hit fails.
 * The unarmed fast path is a single relaxed atomic load.
 */
std::optional<Err> check(const char* site);

/**
 * RAII scope key: failpoint hits on this thread evaluate under @p key
 * until the scope dies (restoring the previous key). The serving
 * engine opens one per stream so rules can target streams and per-key
 * hit counters are interleaving-independent.
 */
class KeyScope
{
  public:
    explicit KeyScope(uint64_t key);
    ~KeyScope();

    KeyScope(const KeyScope&) = delete;
    KeyScope& operator=(const KeyScope&) = delete;

  private:
    uint64_t prev_;
};

/** The calling thread's current scope key (kNoKey outside any scope). */
uint64_t currentKey();

/** Cumulative counters of one site since the last (re-)arming. */
struct SiteStats {
    uint64_t hits = 0;  ///< evaluations while armed
    uint64_t fires = 0; ///< injected failures
};

/** Stats for @p site (zeros when never hit). */
SiteStats stats(const std::string& site);

/**
 * Test helper: arm on construction, disarm on destruction, so a
 * failing test cannot leak armed rules into the next one.
 */
class ScopedFaults
{
  public:
    explicit ScopedFaults(const std::string& spec, std::string* error = nullptr)
    {
        ok_ = arm(spec, error);
    }

    ~ScopedFaults() { disarm(); }

    ScopedFaults(const ScopedFaults&) = delete;
    ScopedFaults& operator=(const ScopedFaults&) = delete;

    bool ok() const { return ok_; }

  private:
    bool ok_ = false;
};

} // namespace failpoints
} // namespace tagecon

#endif // TAGECON_UTIL_FAILPOINT_HPP
