/**
 * @file
 * Global branch-outcome history, stored in a ring buffer so that very
 * long histories (the large TAGE configuration folds 300 bits) cost O(1)
 * per update.
 */

#ifndef TAGECON_UTIL_GLOBAL_HISTORY_HPP
#define TAGECON_UTIL_GLOBAL_HISTORY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace tagecon {

/**
 * Ring buffer of branch outcomes. Index 0 is the most recent outcome,
 * index i the outcome i branches ago. The capacity is rounded up to a
 * power of two so indexing is a mask.
 */
class GlobalHistory
{
  public:
    /**
     * @param capacity Minimum number of past outcomes that must remain
     *                 addressable (the predictor needs maxHist + 1).
     */
    explicit GlobalHistory(size_t capacity)
    {
        size_t cap = 1;
        while (cap < capacity + 1)
            cap <<= 1;
        buf_.assign(cap, 0);
        mask_ = cap - 1;
        head_ = 0;
    }

    /** Record a new outcome; it becomes index 0. */
    void
    push(bool taken)
    {
        head_ = (head_ + 1) & mask_;
        buf_[head_] = taken ? 1 : 0;
    }

    /** Outcome @p i branches ago (0 == most recent). */
    uint8_t
    operator[](size_t i) const
    {
        TAGECON_ASSERT(i <= mask_, "history index exceeds capacity");
        return buf_[(head_ - i) & mask_];
    }

    /** Number of addressable past outcomes. */
    size_t capacity() const { return mask_; }

    /** Clear all history to not-taken. */
    void
    clear()
    {
        std::fill(buf_.begin(), buf_.end(), 0);
        head_ = 0;
    }

  private:
    std::vector<uint8_t> buf_;
    size_t mask_;
    size_t head_;
};

/**
 * Incrementally folded view of the most recent @c origLength bits of a
 * GlobalHistory, compressed by XOR into @c compLength bits. This is the
 * classic TAGE/OGEHL circular-shift-register trick: each branch updates
 * the fold in O(1) instead of re-XOR-ing origLength bits.
 *
 * Usage: after every GlobalHistory::push(), call update() exactly once.
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /**
     * @param orig_length Number of history bits folded (the component's
     *                    geometric history length L(i)).
     * @param comp_length Width of the folded result in bits (the table's
     *                    log2(#entries) for indices, tag width for tags).
     */
    FoldedHistory(int orig_length, int comp_length)
        : origLength_(orig_length), compLength_(comp_length),
          outPoint_(orig_length % comp_length)
    {
        TAGECON_ASSERT(comp_length > 0 && comp_length < 32,
                       "folded width out of range");
        TAGECON_ASSERT(orig_length >= 0, "negative history length");
    }

    /**
     * Fold in the newest bit and fold out the bit that just left the
     * window. Must be called once per GlobalHistory::push(), after it.
     */
    void
    update(const GlobalHistory& h)
    {
        comp_ = (comp_ << 1) | h[0];
        // The bit that was at position origLength-1 before the push is
        // now at origLength; remove its contribution.
        comp_ ^= static_cast<uint32_t>(
            h[static_cast<size_t>(origLength_)]) << outPoint_;
        comp_ ^= comp_ >> compLength_;
        comp_ &= (1u << compLength_) - 1u;
    }

    /** Current folded value (compLength bits). */
    uint32_t value() const { return comp_; }

    /** Folded width in bits. */
    int compLength() const { return compLength_; }

    /** History length being folded. */
    int origLength() const { return origLength_; }

    /** Reset the fold (history cleared). */
    void clear() { comp_ = 0; }

    /**
     * Overwrite the fold register with a checkpointed value (masked).
     * Only meaningful together with restoring the GlobalHistory the
     * fold views.
     */
    void
    restore(uint32_t comp)
    {
        comp_ = comp & ((1u << compLength_) - 1u);
    }

    /**
     * Recompute the fold from scratch; O(origLength). Used by tests to
     * validate the incremental update and after GlobalHistory::clear().
     */
    void
    recompute(const GlobalHistory& h)
    {
        comp_ = 0;
        for (int i = origLength_ - 1; i >= 0; --i) {
            comp_ = (comp_ << 1) | h[static_cast<size_t>(i)];
            comp_ ^= comp_ >> compLength_;
            comp_ &= (1u << compLength_) - 1u;
        }
    }

  private:
    uint32_t comp_ = 0;
    int origLength_ = 0;
    int compLength_ = 1;
    int outPoint_ = 0;
};

/**
 * Three folded views of the same history window, fused into one
 * cache-line-friendly struct. A TAGE component needs exactly this
 * triple — an index fold (logEntries bits) plus two tag folds
 * (tagBits and tagBits-1) — all over the component's history length
 * L(i). Fusing them means one pair of ring-buffer reads per component
 * per branch instead of three, and one contiguous array for all
 * per-table fold state instead of three parallel vectors.
 *
 * Each component's fold step is bit-identical to FoldedHistory::update.
 */
class FoldedHistoryTriple
{
  public:
    FoldedHistoryTriple() = default;

    /**
     * @param orig_length History window folded by all three components.
     * @param len_a Folded width of component a (table index fold).
     * @param len_b Folded width of component b (tag fold).
     * @param len_c Folded width of component c (tag - 1 fold).
     */
    FoldedHistoryTriple(int orig_length, int len_a, int len_b, int len_c)
        : origLength_(orig_length), lenA_(static_cast<uint8_t>(len_a)),
          lenB_(static_cast<uint8_t>(len_b)),
          lenC_(static_cast<uint8_t>(len_c)),
          outA_(static_cast<uint8_t>(orig_length % len_a)),
          outB_(static_cast<uint8_t>(orig_length % len_b)),
          outC_(static_cast<uint8_t>(orig_length % len_c))
    {
        TAGECON_ASSERT(len_a > 0 && len_a < 32, "folded width out of range");
        TAGECON_ASSERT(len_b > 0 && len_b < 32, "folded width out of range");
        TAGECON_ASSERT(len_c > 0 && len_c < 32, "folded width out of range");
        TAGECON_ASSERT(orig_length >= 0, "negative history length");
    }

    /**
     * Fold the newest bit in and the bit leaving the window out of all
     * three components. Must be called once per GlobalHistory::push(),
     * after it. The two history reads are shared by the components.
     */
    void
    update(const GlobalHistory& h)
    {
        updateWithBits(h[0],
                       h[static_cast<size_t>(origLength_)]);
    }

    /**
     * One update step with the window bits supplied by the caller —
     * the batched TAGE path reads them from a block-local outcome
     * window instead of the GlobalHistory ring. Must see exactly the
     * bits update() would read: @p in_bit == h[0] and @p out_bit ==
     * h[origLength] after the corresponding push.
     */
    void
    updateWithBits(uint32_t in_bit, uint32_t out_bit)
    {
        a_ = foldStep(a_, in_bit, out_bit, lenA_, outA_);
        b_ = foldStep(b_, in_bit, out_bit, lenB_, outB_);
        c_ = foldStep(c_, in_bit, out_bit, lenC_, outC_);
    }

    /** Current index-fold value (len_a bits). */
    uint32_t a() const { return a_; }

    /** Current tag-fold value (len_b bits). */
    uint32_t b() const { return b_; }

    /** Current tag-1-fold value (len_c bits). */
    uint32_t c() const { return c_; }

    /** History length being folded. */
    int origLength() const { return origLength_; }

    /** Reset all three folds (history cleared). */
    void clear() { a_ = b_ = c_ = 0; }

    /**
     * Overwrite the three fold registers with checkpointed values
     * (masked to each component's width). Only meaningful together
     * with restoring the GlobalHistory the folds view.
     */
    void
    restore(uint32_t a, uint32_t b, uint32_t c)
    {
        a_ = a & ((1u << lenA_) - 1u);
        b_ = b & ((1u << lenB_) - 1u);
        c_ = c & ((1u << lenC_) - 1u);
    }

  private:
    /** One FoldedHistory::update step on a raw comp value. */
    static uint32_t
    foldStep(uint32_t comp, uint32_t in, uint32_t out, int len,
             int out_point)
    {
        comp = (comp << 1) | in;
        comp ^= out << out_point;
        comp ^= comp >> len;
        comp &= (1u << len) - 1u;
        return comp;
    }

    uint32_t a_ = 0;
    uint32_t b_ = 0;
    uint32_t c_ = 0;
    int32_t origLength_ = 0;
    uint8_t lenA_ = 1;
    uint8_t lenB_ = 1;
    uint8_t lenC_ = 1;
    uint8_t outA_ = 0;
    uint8_t outB_ = 0;
    uint8_t outC_ = 0;
};

/**
 * Path history: low-order PC bits of recent branches, as used by the
 * TAGE index hash to decorrelate branches that share global outcome
 * history.
 */
class PathHistory
{
  public:
    /** @param bits Width of the kept path history (<= 32). */
    explicit PathHistory(int bits = 16)
        : bits_(bits)
    {
        TAGECON_ASSERT(bits > 0 && bits <= 32, "path history width");
    }

    /** Shift in one PC bit (conventionally pc bit 0 after alignment). */
    void
    push(uint64_t pc)
    {
        path_ = ((path_ << 1) | (static_cast<uint32_t>(pc) & 1u)) &
                ((bits_ >= 32) ? ~0u : ((1u << bits_) - 1u));
    }

    /** Current path register value. */
    uint32_t value() const { return path_; }

    /** Overwrite the register with a checkpointed value (masked). */
    void
    restore(uint32_t v)
    {
        path_ = v & ((bits_ >= 32) ? ~0u : ((1u << bits_) - 1u));
    }

    /** Clear the register. */
    void clear() { path_ = 0; }

  private:
    uint32_t path_ = 0;
    int bits_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_GLOBAL_HISTORY_HPP
