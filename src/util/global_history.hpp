/**
 * @file
 * Global branch-outcome history, stored in a ring buffer so that very
 * long histories (the large TAGE configuration folds 300 bits) cost O(1)
 * per update.
 */

#ifndef TAGECON_UTIL_GLOBAL_HISTORY_HPP
#define TAGECON_UTIL_GLOBAL_HISTORY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace tagecon {

/**
 * Ring buffer of branch outcomes. Index 0 is the most recent outcome,
 * index i the outcome i branches ago. The capacity is rounded up to a
 * power of two so indexing is a mask.
 */
class GlobalHistory
{
  public:
    /**
     * @param capacity Minimum number of past outcomes that must remain
     *                 addressable (the predictor needs maxHist + 1).
     */
    explicit GlobalHistory(size_t capacity)
    {
        size_t cap = 1;
        while (cap < capacity + 1)
            cap <<= 1;
        buf_.assign(cap, 0);
        mask_ = cap - 1;
        head_ = 0;
    }

    /** Record a new outcome; it becomes index 0. */
    void
    push(bool taken)
    {
        head_ = (head_ + 1) & mask_;
        buf_[head_] = taken ? 1 : 0;
    }

    /** Outcome @p i branches ago (0 == most recent). */
    uint8_t
    operator[](size_t i) const
    {
        TAGECON_ASSERT(i <= mask_, "history index exceeds capacity");
        return buf_[(head_ - i) & mask_];
    }

    /** Number of addressable past outcomes. */
    size_t capacity() const { return mask_; }

    /** Clear all history to not-taken. */
    void
    clear()
    {
        std::fill(buf_.begin(), buf_.end(), 0);
        head_ = 0;
    }

  private:
    std::vector<uint8_t> buf_;
    size_t mask_;
    size_t head_;
};

/**
 * Incrementally folded view of the most recent @c origLength bits of a
 * GlobalHistory, compressed by XOR into @c compLength bits. This is the
 * classic TAGE/OGEHL circular-shift-register trick: each branch updates
 * the fold in O(1) instead of re-XOR-ing origLength bits.
 *
 * Usage: after every GlobalHistory::push(), call update() exactly once.
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /**
     * @param orig_length Number of history bits folded (the component's
     *                    geometric history length L(i)).
     * @param comp_length Width of the folded result in bits (the table's
     *                    log2(#entries) for indices, tag width for tags).
     */
    FoldedHistory(int orig_length, int comp_length)
        : origLength_(orig_length), compLength_(comp_length),
          outPoint_(orig_length % comp_length)
    {
        TAGECON_ASSERT(comp_length > 0 && comp_length < 32,
                       "folded width out of range");
        TAGECON_ASSERT(orig_length >= 0, "negative history length");
    }

    /**
     * Fold in the newest bit and fold out the bit that just left the
     * window. Must be called once per GlobalHistory::push(), after it.
     */
    void
    update(const GlobalHistory& h)
    {
        comp_ = (comp_ << 1) | h[0];
        // The bit that was at position origLength-1 before the push is
        // now at origLength; remove its contribution.
        comp_ ^= static_cast<uint32_t>(
            h[static_cast<size_t>(origLength_)]) << outPoint_;
        comp_ ^= comp_ >> compLength_;
        comp_ &= (1u << compLength_) - 1u;
    }

    /** Current folded value (compLength bits). */
    uint32_t value() const { return comp_; }

    /** Folded width in bits. */
    int compLength() const { return compLength_; }

    /** History length being folded. */
    int origLength() const { return origLength_; }

    /** Reset the fold (history cleared). */
    void clear() { comp_ = 0; }

    /**
     * Recompute the fold from scratch; O(origLength). Used by tests to
     * validate the incremental update and after GlobalHistory::clear().
     */
    void
    recompute(const GlobalHistory& h)
    {
        comp_ = 0;
        for (int i = origLength_ - 1; i >= 0; --i) {
            comp_ = (comp_ << 1) | h[static_cast<size_t>(i)];
            comp_ ^= comp_ >> compLength_;
            comp_ &= (1u << compLength_) - 1u;
        }
    }

  private:
    uint32_t comp_ = 0;
    int origLength_ = 0;
    int compLength_ = 1;
    int outPoint_ = 0;
};

/**
 * Path history: low-order PC bits of recent branches, as used by the
 * TAGE index hash to decorrelate branches that share global outcome
 * history.
 */
class PathHistory
{
  public:
    /** @param bits Width of the kept path history (<= 32). */
    explicit PathHistory(int bits = 16)
        : bits_(bits)
    {
        TAGECON_ASSERT(bits > 0 && bits <= 32, "path history width");
    }

    /** Shift in one PC bit (conventionally pc bit 0 after alignment). */
    void
    push(uint64_t pc)
    {
        path_ = ((path_ << 1) | (static_cast<uint32_t>(pc) & 1u)) &
                ((bits_ >= 32) ? ~0u : ((1u << bits_) - 1u));
    }

    /** Current path register value. */
    uint32_t value() const { return path_; }

    /** Clear the register. */
    void clear() { path_ = 0; }

  private:
    uint32_t path_ = 0;
    int bits_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_GLOBAL_HISTORY_HPP
