#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace tagecon {

namespace {

/**
 * One mutex serializes every log emission: concurrent sweep/serve
 * workers used to interleave warn()/--progress lines mid-line.
 * Function-local statics so static-initialization order can't bite.
 */
std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}

std::ostream*&
logSink()
{
    static std::ostream* sink = nullptr; // nullptr = stderr
    return sink;
}

std::ostream&
sinkOrStderr()
{
    std::ostream* s = logSink();
    return s ? *s : std::cerr;
}

} // namespace

std::ostream*
setLogStream(std::ostream* os)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::ostream* prev = logSink();
    logSink() = os;
    return prev;
}

void
panic(const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        sinkOrStderr() << "panic: " << msg << std::endl;
    }
    std::abort();
}

void
fatal(const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        sinkOrStderr() << "fatal: " << msg << std::endl;
    }
    std::exit(1);
}

void
warn(const std::string& msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    sinkOrStderr() << "warn: " << msg << std::endl;
}

void
logLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(logMutex());
    sinkOrStderr() << line << '\n' << std::flush;
}

} // namespace tagecon
