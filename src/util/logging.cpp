#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>

#include "util/mutex.hpp"

namespace tagecon {

namespace {

/**
 * One mutex serializes every log emission: concurrent sweep/serve
 * workers used to interleave warn()/--progress lines mid-line. The
 * sink pointer is guarded by the same mutex — setLogStream() races
 * warn() in the logging tests, and -Wthread-safety proves every
 * access goes through the lock. Function-local static so static-
 * initialization order can't bite.
 */
struct LogState {
    Mutex mutex;
    std::ostream* sink TAGECON_GUARDED_BY(mutex) = nullptr; // null = stderr
};

LogState&
logState()
{
    static LogState state;
    return state;
}

std::ostream&
sinkOrStderr(LogState& state) TAGECON_REQUIRES(state.mutex)
{
    return state.sink ? *state.sink : std::cerr;
}

} // namespace

std::ostream*
setLogStream(std::ostream* os)
{
    LogState& state = logState();
    MutexLock lock(state.mutex);
    std::ostream* prev = state.sink;
    state.sink = os;
    return prev;
}

void
panic(const std::string& msg)
{
    {
        LogState& state = logState();
        MutexLock lock(state.mutex);
        sinkOrStderr(state) << "panic: " << msg << std::endl;
    }
    std::abort();
}

void
fatal(const std::string& msg)
{
    {
        LogState& state = logState();
        MutexLock lock(state.mutex);
        sinkOrStderr(state) << "fatal: " << msg << std::endl;
    }
    std::exit(1);
}

void
warn(const std::string& msg)
{
    LogState& state = logState();
    MutexLock lock(state.mutex);
    sinkOrStderr(state) << "warn: " << msg << std::endl;
}

void
logLine(const std::string& line)
{
    LogState& state = logState();
    MutexLock lock(state.mutex);
    sinkOrStderr(state) << line << '\n' << std::flush;
}

} // namespace tagecon
