#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace tagecon {

void
panic(const std::string& msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string& msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string& msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

} // namespace tagecon
