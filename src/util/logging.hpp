/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations (bugs in this library), fatal() for user errors
 * (bad configuration, unusable inputs).
 */

#ifndef TAGECON_UTIL_LOGGING_HPP
#define TAGECON_UTIL_LOGGING_HPP

#include <iosfwd>
#include <string>

namespace tagecon {

/**
 * Abort with a message. Call when something happened that should never
 * happen regardless of what the user does, i.e. an internal bug.
 *
 * @param msg Human-readable description of the violated invariant.
 */
[[noreturn]] void panic(const std::string& msg);

/**
 * Exit with an error code and a message. Call when the simulation cannot
 * continue due to a user-level problem (bad configuration, invalid
 * arguments) rather than a library bug.
 *
 * @param msg Human-readable description of the problem.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Print a non-fatal warning to the log stream (stderr by default).
 * Line-atomic: concurrent warn()/logLine() calls from sweep or serve
 * workers never interleave mid-line.
 */
void warn(const std::string& msg);

/**
 * Write @p line (a newline is appended) to the log stream under the
 * same mutex as warn(), so progress reporting from parallel workers
 * stays line-atomic too.
 */
void logLine(const std::string& line);

/**
 * Redirect warn()/logLine() (and the message half of panic()/fatal())
 * to @p os; nullptr restores stderr. Returns the previous sink. A test
 * hook — the mutex keeps writes to the injected stream serialized.
 */
std::ostream* setLogStream(std::ostream* os);

/** Assert an invariant; panics with file/line context when violated. */
#define TAGECON_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::tagecon::panic(std::string(__FILE__) + ":" +                 \
                             std::to_string(__LINE__) + ": " + (msg));     \
        }                                                                  \
    } while (false)

} // namespace tagecon

#endif // TAGECON_UTIL_LOGGING_HPP
