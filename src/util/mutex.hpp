/**
 * @file
 * Capability-annotated mutex wrappers for library code.
 *
 * std::mutex and std::lock_guard carry no Clang thread-safety
 * annotations, so code using them is invisible to -Wthread-safety.
 * tagecon::Mutex is a zero-overhead std::mutex wrapper declared as a
 * capability, and tagecon::MutexLock the matching RAII guard, so
 * TAGECON_GUARDED_BY members are statically checked:
 *
 *   class Cache {
 *       mutable Mutex mutex_;
 *       std::map<K, V> entries_ TAGECON_GUARDED_BY(mutex_);
 *   };
 *
 *   MutexLock lock(mutex_);   // analysis knows mutex_ is now held
 *   entries_[k] = v;          // OK; without the lock: build error
 *
 * Library convention: every std::mutex in src/ is a tagecon::Mutex
 * (tools and tests may use either; only the library carries the
 * annotated invariants).
 */

#ifndef TAGECON_UTIL_MUTEX_HPP
#define TAGECON_UTIL_MUTEX_HPP

#include <mutex>

#include "util/thread_annotations.hpp"

namespace tagecon {

/** An annotated std::mutex: the capability -Wthread-safety tracks. */
class TAGECON_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() TAGECON_ACQUIRE() { impl_.lock(); }
    void unlock() TAGECON_RELEASE() { impl_.unlock(); }
    bool try_lock() TAGECON_TRY_ACQUIRE(true)
    {
        return impl_.try_lock();
    }

  private:
    std::mutex impl_;
};

/** RAII guard over Mutex; the annotated std::lock_guard equivalent. */
class TAGECON_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) TAGECON_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() TAGECON_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_MUTEX_HPP
