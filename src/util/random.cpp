#include "util/random.hpp"

namespace tagecon {

namespace {

/** splitmix64 step, used to expand the user seed into generator state. */
uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

XorShift128Plus::XorShift128Plus(uint64_t seed)
{
    uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

uint64_t
XorShift128Plus::next()
{
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

uint64_t
XorShift128Plus::nextBelow(uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias for large bounds.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % bound;
}

double
XorShift128Plus::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
XorShift128Plus::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Lfsr16::Lfsr16(uint16_t seed)
    : state_(seed == 0 ? 0xACE1u : seed)
{
}

uint16_t
Lfsr16::next()
{
    // Taps at bits 16, 15, 13, 4 (1-based), period 2^16 - 1.
    const uint16_t bit = static_cast<uint16_t>(
        ((state_ >> 0) ^ (state_ >> 2) ^ (state_ >> 3) ^ (state_ >> 5)) & 1u);
    state_ = static_cast<uint16_t>((state_ >> 1) | (bit << 15));
    return state_;
}

bool
Lfsr16::oneIn(unsigned log2_denominator)
{
    if (log2_denominator == 0)
        return true;
    const uint16_t draw = next();
    const uint16_t mask = static_cast<uint16_t>(
        (1u << (log2_denominator > 15 ? 15 : log2_denominator)) - 1u);
    return (draw & mask) == 0;
}

} // namespace tagecon
