/**
 * @file
 * Deterministic pseudo-random sources.
 *
 *  - XorShift128Plus: fast, seedable generator used by the synthetic
 *    workload generators and by test harnesses.
 *  - Lfsr16: a tiny 16-bit linear-feedback shift register modelling the
 *    kind of hardware RNG a real TAGE implementation would use for the
 *    probabilistic saturation automaton (Sec. 6) and for allocation
 *    tie-breaking.
 */

#ifndef TAGECON_UTIL_RANDOM_HPP
#define TAGECON_UTIL_RANDOM_HPP

#include <cstdint>

namespace tagecon {

/**
 * xorshift128+ pseudo-random generator. Deterministic for a given seed;
 * passes the statistical bar needed for workload synthesis while being a
 * couple of instructions per draw.
 */
class XorShift128Plus
{
  public:
    /** Seed the generator; any seed (including 0) is legal. */
    explicit XorShift128Plus(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform draw in [0, bound); bound must be non-zero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

  private:
    uint64_t s0_;
    uint64_t s1_;
};

/**
 * 16-bit Fibonacci LFSR (taps 16,15,13,4 — maximal length). Models the
 * cheap hardware random source used by the modified 3-bit counter
 * automaton: "the transition to saturated state is only performed
 * randomly with a small probability" (Sec. 6).
 */
class Lfsr16
{
  public:
    /** Seed must be non-zero; a zero seed is replaced by 0xACE1. */
    explicit Lfsr16(uint16_t seed = 0xACE1u);

    /** Advance one step and return the new register value. */
    uint16_t next();

    /** Current register value without advancing. */
    uint16_t value() const { return state_; }

    /**
     * Overwrite the register with a checkpointed value; zero (which an
     * LFSR can never reach) is replaced by the 0xACE1 seed convention.
     */
    void setState(uint16_t state) { state_ = state ? state : 0xACE1u; }

    /**
     * Advance and report a 1-in-2^log2Denominator event, i.e. true with
     * probability 1 / (1 << log2_denominator). log2_denominator == 0
     * always returns true (probability 1).
     */
    bool oneIn(unsigned log2_denominator);

  private:
    uint16_t state_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_RANDOM_HPP
