/**
 * @file
 * Saturating counter primitives used throughout the predictor code.
 *
 * Three layers are provided:
 *  - packed::*: static saturating-counter operations on raw storage
 *    bytes, parameterized by a table-level width. These are what the
 *    hot predictor tables use: a table stores one int8_t/uint8_t per
 *    counter (hardware stores 2-4 bits) and applies these ops with the
 *    width held once per table instead of once per entry.
 *  - SignedSatCounter: the width-parameterized two's-complement counter
 *    used for low-frequency architectural registers (USE_ALT_ON_NA).
 *    Its sign encodes the prediction; |2*ctr + 1| encodes the strength,
 *    which is the quantity the confidence classes of the paper (Sec. 5.2)
 *    are defined on.
 *  - UnsignedSatCounter: the classic [0, 2^bits - 1] counter.
 *
 * Both classes delegate to the packed:: ops, so every consumer —
 * packed tables and counter objects alike — shares one transition
 * function.
 */

#ifndef TAGECON_UTIL_SATURATING_COUNTER_HPP
#define TAGECON_UTIL_SATURATING_COUNTER_HPP

#include <cstdint>

#include "util/logging.hpp"

namespace tagecon {

/**
 * Static saturating-counter operations over raw packed values.
 *
 * Signed counters live in [-2^(bits-1), 2^(bits-1) - 1] and are stored
 * as plain int8_t (bits <= 8); unsigned counters live in
 * [0, 2^bits - 1] and are stored as plain uint8_t (bits <= 8) or wider
 * integers when the caller needs them (bits <= 16 for the counter
 * class). The width is passed per call so a table can hold it once.
 */
namespace packed {

/** Smallest representable signed value (e.g. -4 for 3 bits). */
constexpr int
signedMin(int bits)
{
    return -(1 << (bits - 1));
}

/** Largest representable signed value (e.g. +3 for 3 bits). */
constexpr int
signedMax(int bits)
{
    return (1 << (bits - 1)) - 1;
}

/** Clamp @p v into the signed range of @p bits. */
constexpr int
signedClamp(int v, int bits)
{
    const int lo = signedMin(bits);
    const int hi = signedMax(bits);
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Signed counter predicts taken when the sign bit is clear. */
constexpr bool
signedTaken(int v)
{
    return v >= 0;
}

/** Prediction strength |2*ctr + 1| (1 = weak, 2^bits - 1 = saturated). */
constexpr int
signedStrength(int v)
{
    const int s = 2 * v + 1;
    return s < 0 ? -s : s;
}

/** True when the signed counter is weak (strength 1). */
constexpr bool
signedWeak(int v)
{
    return v == 0 || v == -1;
}

/** True when the signed counter sits at either rail. */
constexpr bool
signedSaturated(int v, int bits)
{
    return v == signedMin(bits) || v == signedMax(bits);
}

/** Saturating update toward an outcome; returns the new value. */
constexpr int
signedUpdate(int v, int bits, bool outcome_taken)
{
    if (outcome_taken)
        return v < signedMax(bits) ? v + 1 : v;
    return v > signedMin(bits) ? v - 1 : v;
}

/**
 * True iff signedUpdate(v, bits, outcome_taken) would move the counter
 * into a saturated state from a non-saturated one (the transition the
 * Sec. 6 probabilistic automaton gates).
 */
constexpr bool
signedUpdateWouldSaturate(int v, int bits, bool outcome_taken)
{
    if (outcome_taken)
        return v == signedMax(bits) - 1;
    return v == signedMin(bits) + 1;
}

/** Largest representable unsigned value. */
constexpr unsigned
unsignedMax(int bits)
{
    return (1u << bits) - 1;
}

/** Clamp @p v into the unsigned range of @p bits. */
constexpr unsigned
unsignedClamp(unsigned v, int bits)
{
    return v > unsignedMax(bits) ? unsignedMax(bits) : v;
}

/** Unsigned counter predicts taken in the upper half of its range. */
constexpr bool
unsignedTaken(unsigned v, int bits)
{
    return v >= (1u << (bits - 1));
}

/** True at either of the two middle values (e.g. 1 or 2 for 2 bits). */
constexpr bool
unsignedWeak(unsigned v, int bits)
{
    const unsigned mid = 1u << (bits - 1);
    return v == mid || v == mid - 1;
}

/** True at either rail. */
constexpr bool
unsignedSaturated(unsigned v, int bits)
{
    return v == 0 || v == unsignedMax(bits);
}

/** Saturating increment; returns the new value. */
constexpr unsigned
unsignedInc(unsigned v, int bits)
{
    return v < unsignedMax(bits) ? v + 1 : v;
}

/** Saturating decrement; returns the new value. */
constexpr unsigned
unsignedDec(unsigned v)
{
    return v > 0 ? v - 1 : v;
}

/** Saturating update toward an outcome; returns the new value. */
constexpr unsigned
unsignedUpdate(unsigned v, int bits, bool outcome_taken)
{
    return outcome_taken ? unsignedInc(v, bits) : unsignedDec(v);
}

/**
 * ctru*: a TAGE tagged entry's signed prediction counter (ctr, low
 * ctr_bits bits) and unsigned useful counter (u, the bits above it)
 * packed into one storage byte. Requires ctr_bits + u_bits <= 8;
 * TageConfig::validate() enforces that. The packed byte is the unit
 * the tagged arena stores (3 B/entry together with the uint16_t tag),
 * and also the unit checkpoints serialize.
 */

/** Pack a ctr value and a u value into one byte. */
constexpr uint8_t
ctruPack(int ctr, unsigned u, int ctr_bits)
{
    return static_cast<uint8_t>(
        (u << ctr_bits) |
        (static_cast<unsigned>(ctr) & unsignedMax(ctr_bits)));
}

/** Sign-extended prediction counter field of a packed ctr+u byte. */
constexpr int
ctruCtr(uint8_t v, int ctr_bits)
{
    const unsigned raw = v & unsignedMax(ctr_bits);
    const unsigned sign = 1u << (ctr_bits - 1);
    return static_cast<int>(raw ^ sign) - static_cast<int>(sign);
}

/** Useful counter field of a packed ctr+u byte. */
constexpr unsigned
ctruU(uint8_t v, int ctr_bits)
{
    return static_cast<unsigned>(v) >> ctr_bits;
}

/** Replace the prediction counter field, leaving u untouched. */
constexpr uint8_t
ctruWithCtr(uint8_t v, int ctr, int ctr_bits)
{
    return static_cast<uint8_t>(
        (v & ~unsignedMax(ctr_bits)) |
        (static_cast<unsigned>(ctr) & unsignedMax(ctr_bits)));
}

/** Replace the useful counter field, leaving ctr untouched. */
constexpr uint8_t
ctruWithU(uint8_t v, unsigned u, int ctr_bits)
{
    return static_cast<uint8_t>((v & unsignedMax(ctr_bits)) |
                                (u << ctr_bits));
}

/** One-bit right shift of the useful field (graceful aging). */
constexpr uint8_t
ctruAgeU(uint8_t v, int ctr_bits)
{
    return ctruWithU(v, ctruU(v, ctr_bits) >> 1, ctr_bits);
}

} // namespace packed

/**
 * Width-parameterized signed saturating counter.
 *
 * The value saturates at [-2^(bits-1), 2^(bits-1) - 1]. The counter
 * "predicts taken" when its value is >= 0 (i.e. the sign bit is clear),
 * matching the TAGE convention where an entry's ctr sign provides the
 * prediction.
 */
class SignedSatCounter
{
  public:
    /**
     * @param bits Counter width in bits; must be in [1, 15].
     * @param initial Initial value, clamped to the representable range.
     */
    explicit SignedSatCounter(int bits = 3, int initial = 0)
        : bits_(bits)
    {
        TAGECON_ASSERT(bits >= 1 && bits <= 15,
                       "signed counter width out of range");
        set(initial);
    }

    /** Smallest representable value (e.g. -4 for 3 bits). */
    int min() const { return packed::signedMin(bits_); }

    /** Largest representable value (e.g. +3 for 3 bits). */
    int max() const { return packed::signedMax(bits_); }

    /** Current value. */
    int value() const { return value_; }

    /** Counter width in bits. */
    int bits() const { return bits_; }

    /** Set the value, clamping to the representable range. */
    void
    set(int v)
    {
        value_ = static_cast<int16_t>(packed::signedClamp(v, bits_));
    }

    /** True when the counter predicts taken (value >= 0). */
    bool taken() const { return packed::signedTaken(value_); }

    /**
     * Prediction strength |2*ctr + 1|: 1 for a weak counter, up to
     * 2^bits - 1 for a saturated counter. The paper's tagged-component
     * classes Wtag/NWtag/NStag/Stag correspond to strengths 1/3/5/7 of a
     * 3-bit counter.
     */
    int strength() const { return packed::signedStrength(value_); }

    /** True when the counter is weak, i.e. strength() == 1. */
    bool weak() const { return packed::signedWeak(value_); }

    /** True when the counter is saturated at either rail. */
    bool saturated() const { return packed::signedSaturated(value_, bits_); }

    /**
     * Standard saturating update toward an outcome: increments on taken,
     * decrements on not-taken.
     */
    void
    update(bool outcome_taken)
    {
        value_ = static_cast<int16_t>(
            packed::signedUpdate(value_, bits_, outcome_taken));
    }

    /**
     * True iff update(outcome_taken) would move the counter into a
     * saturated state from a non-saturated one. The probabilistic
     * automaton of Sec. 6 gates exactly this transition.
     */
    bool
    updateWouldSaturate(bool outcome_taken) const
    {
        return packed::signedUpdateWouldSaturate(value_, bits_,
                                                 outcome_taken);
    }

    bool operator==(const SignedSatCounter& o) const = default;

  private:
    int16_t value_ = 0;
    int bits_;
};

/**
 * Width-parameterized unsigned saturating counter in [0, 2^bits - 1].
 * Predicts taken when in the upper half of its range.
 */
class UnsignedSatCounter
{
  public:
    /**
     * @param bits Counter width in bits; must be in [1, 16].
     * @param initial Initial value, clamped to the representable range.
     */
    explicit UnsignedSatCounter(int bits = 2, unsigned initial = 0)
        : bits_(bits)
    {
        TAGECON_ASSERT(bits >= 1 && bits <= 16,
                       "unsigned counter width out of range");
        set(initial);
    }

    /** Largest representable value. */
    unsigned max() const { return packed::unsignedMax(bits_); }

    /** Current value. */
    unsigned value() const { return value_; }

    /** Counter width in bits. */
    int bits() const { return bits_; }

    /** Set the value, clamping to the representable range. */
    void
    set(unsigned v)
    {
        value_ = static_cast<uint16_t>(packed::unsignedClamp(v, bits_));
    }

    /** True when the counter predicts taken (upper half of the range). */
    bool taken() const { return packed::unsignedTaken(value_, bits_); }

    /**
     * True when the counter is weak: at either of the two middle values
     * (e.g. 1 or 2 for a 2-bit counter). The paper's low-conf-bim class
     * is exactly "bimodal provider and weak 2-bit counter".
     */
    bool weak() const { return packed::unsignedWeak(value_, bits_); }

    /** True when saturated at either rail. */
    bool
    saturated() const
    {
        return packed::unsignedSaturated(value_, bits_);
    }

    /** Saturating increment. */
    void
    increment()
    {
        value_ = static_cast<uint16_t>(packed::unsignedInc(value_, bits_));
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        value_ = static_cast<uint16_t>(packed::unsignedDec(value_));
    }

    /** Saturating update toward an outcome. */
    void
    update(bool outcome_taken)
    {
        value_ = static_cast<uint16_t>(
            packed::unsignedUpdate(value_, bits_, outcome_taken));
    }

    /** Reset to zero (used by JRS on a misprediction). */
    void reset() { value_ = 0; }

    /** Halve the value via a one-bit right shift (graceful aging). */
    void shiftDown() { value_ >>= 1; }

    bool operator==(const UnsignedSatCounter& o) const = default;

  private:
    uint16_t value_ = 0;
    int bits_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_SATURATING_COUNTER_HPP
