/**
 * @file
 * Saturating counter primitives used throughout the predictor code.
 *
 * Two flavours are provided:
 *  - SignedSatCounter: the width-parameterized two's-complement counter
 *    used by the tagged TAGE components (e.g. 3-bit, range [-4, 3]).
 *    Its sign encodes the prediction; |2*ctr + 1| encodes the strength,
 *    which is the quantity the confidence classes of the paper (Sec. 5.2)
 *    are defined on.
 *  - UnsignedSatCounter: the classic [0, 2^bits - 1] counter used by the
 *    bimodal base table and by the JRS confidence estimator baseline.
 */

#ifndef TAGECON_UTIL_SATURATING_COUNTER_HPP
#define TAGECON_UTIL_SATURATING_COUNTER_HPP

#include <cstdint>

#include "util/logging.hpp"

namespace tagecon {

/**
 * Width-parameterized signed saturating counter.
 *
 * The value saturates at [-2^(bits-1), 2^(bits-1) - 1]. The counter
 * "predicts taken" when its value is >= 0 (i.e. the sign bit is clear),
 * matching the TAGE convention where an entry's ctr sign provides the
 * prediction.
 */
class SignedSatCounter
{
  public:
    /**
     * @param bits Counter width in bits; must be in [1, 15].
     * @param initial Initial value, clamped to the representable range.
     */
    explicit SignedSatCounter(int bits = 3, int initial = 0)
        : bits_(bits)
    {
        TAGECON_ASSERT(bits >= 1 && bits <= 15,
                       "signed counter width out of range");
        set(initial);
    }

    /** Smallest representable value (e.g. -4 for 3 bits). */
    int min() const { return -(1 << (bits_ - 1)); }

    /** Largest representable value (e.g. +3 for 3 bits). */
    int max() const { return (1 << (bits_ - 1)) - 1; }

    /** Current value. */
    int value() const { return value_; }

    /** Counter width in bits. */
    int bits() const { return bits_; }

    /** Set the value, clamping to the representable range. */
    void
    set(int v)
    {
        value_ = static_cast<int16_t>(v < min() ? min()
                                                : (v > max() ? max() : v));
    }

    /** True when the counter predicts taken (value >= 0). */
    bool taken() const { return value_ >= 0; }

    /**
     * Prediction strength |2*ctr + 1|: 1 for a weak counter, up to
     * 2^bits - 1 for a saturated counter. The paper's tagged-component
     * classes Wtag/NWtag/NStag/Stag correspond to strengths 1/3/5/7 of a
     * 3-bit counter.
     */
    int
    strength() const
    {
        const int s = 2 * value_ + 1;
        return s < 0 ? -s : s;
    }

    /** True when the counter is weak, i.e. strength() == 1. */
    bool weak() const { return value_ == 0 || value_ == -1; }

    /** True when the counter is saturated at either rail. */
    bool saturated() const { return value_ == min() || value_ == max(); }

    /**
     * Standard saturating update toward an outcome: increments on taken,
     * decrements on not-taken.
     */
    void
    update(bool outcome_taken)
    {
        if (outcome_taken) {
            if (value_ < max())
                ++value_;
        } else {
            if (value_ > min())
                --value_;
        }
    }

    /**
     * True iff update(outcome_taken) would move the counter into a
     * saturated state from a non-saturated one. The probabilistic
     * automaton of Sec. 6 gates exactly this transition.
     */
    bool
    updateWouldSaturate(bool outcome_taken) const
    {
        if (outcome_taken)
            return value_ == max() - 1;
        return value_ == min() + 1;
    }

    bool operator==(const SignedSatCounter& o) const = default;

  private:
    int16_t value_ = 0;
    int bits_;
};

/**
 * Width-parameterized unsigned saturating counter in [0, 2^bits - 1].
 * Predicts taken when in the upper half of its range.
 */
class UnsignedSatCounter
{
  public:
    /**
     * @param bits Counter width in bits; must be in [1, 16].
     * @param initial Initial value, clamped to the representable range.
     */
    explicit UnsignedSatCounter(int bits = 2, unsigned initial = 0)
        : bits_(bits)
    {
        TAGECON_ASSERT(bits >= 1 && bits <= 16,
                       "unsigned counter width out of range");
        set(initial);
    }

    /** Largest representable value. */
    unsigned max() const { return (1u << bits_) - 1; }

    /** Current value. */
    unsigned value() const { return value_; }

    /** Counter width in bits. */
    int bits() const { return bits_; }

    /** Set the value, clamping to the representable range. */
    void
    set(unsigned v)
    {
        value_ = static_cast<uint16_t>(v > max() ? max() : v);
    }

    /** True when the counter predicts taken (upper half of the range). */
    bool taken() const { return value_ >= (1u << (bits_ - 1)); }

    /**
     * True when the counter is weak: at either of the two middle values
     * (e.g. 1 or 2 for a 2-bit counter). The paper's low-conf-bim class
     * is exactly "bimodal provider and weak 2-bit counter".
     */
    bool
    weak() const
    {
        const unsigned mid = 1u << (bits_ - 1);
        return value_ == mid || value_ == mid - 1;
    }

    /** True when saturated at either rail. */
    bool saturated() const { return value_ == 0 || value_ == max(); }

    /** Saturating increment. */
    void
    increment()
    {
        if (value_ < max())
            ++value_;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Saturating update toward an outcome. */
    void
    update(bool outcome_taken)
    {
        if (outcome_taken)
            increment();
        else
            decrement();
    }

    /** Reset to zero (used by JRS on a misprediction). */
    void reset() { value_ = 0; }

    /** Halve the value via a one-bit right shift (graceful aging). */
    void shiftDown() { value_ >>= 1; }

    bool operator==(const UnsignedSatCounter& o) const = default;

  private:
    uint16_t value_ = 0;
    int bits_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_SATURATING_COUNTER_HPP
