/**
 * @file
 * Minimal SIMD shim for the predictor hot paths.
 *
 * The only vector primitive the predictors need is a lane-wise 16-bit
 * equality scan (the TAGE candidate-tag match), so the shim exposes
 * exactly that plus a best-effort prefetch hint. SSE2 and NEON
 * backends are selected at compile time; defining TAGECON_NO_SIMD
 * (the CMake option of the same name) forces the scalar fallbacks,
 * which are bit-identical by construction and CI-gated.
 */

#ifndef TAGECON_UTIL_SIMD_HPP
#define TAGECON_UTIL_SIMD_HPP

#include <cstdint>

#if !defined(TAGECON_NO_SIMD)
#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define TAGECON_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define TAGECON_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace tagecon::simd {

/** True when a vector backend is compiled in. */
inline constexpr bool kEnabled =
#if defined(TAGECON_SIMD_SSE2) || defined(TAGECON_SIMD_NEON)
    true;
#else
    false;
#endif

/** Name of the active backend: "sse2", "neon" or "scalar". */
inline const char*
backendName()
{
#if defined(TAGECON_SIMD_SSE2)
    return "sse2";
#elif defined(TAGECON_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/**
 * 16-lane uint16_t equality bitmask: bit i of the result is set iff
 * stored[i] == want[i]. Both arrays must hold 16 readable elements —
 * pad unused lanes and mask the result (padding both arrays with the
 * same value reports a match in that lane).
 */
inline uint32_t
matchMask16(const uint16_t* stored, const uint16_t* want)
{
#if defined(TAGECON_SIMD_SSE2)
    const __m128i s0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(stored));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(stored + 8));
    const __m128i w0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(want));
    const __m128i w1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(want + 8));
    // Saturating-pack the two 0xFFFF/0x0000 lane masks into one vector
    // of 0x80/0x00 bytes, whose sign bits movemask collects: one
    // result bit per original 16-bit lane.
    const __m128i packed = _mm_packs_epi16(_mm_cmpeq_epi16(s0, w0),
                                           _mm_cmpeq_epi16(s1, w1));
    return static_cast<uint32_t>(_mm_movemask_epi8(packed));
#elif defined(TAGECON_SIMD_NEON)
    const uint16x8_t bits = {1, 2, 4, 8, 16, 32, 64, 128};
    const uint16x8_t eq0 = vceqq_u16(vld1q_u16(stored), vld1q_u16(want));
    const uint16x8_t eq1 =
        vceqq_u16(vld1q_u16(stored + 8), vld1q_u16(want + 8));
    const uint32_t lo = vaddvq_u16(vandq_u16(eq0, bits));
    const uint32_t hi = vaddvq_u16(vandq_u16(eq1, bits));
    return lo | (hi << 8);
#else
    uint32_t mask = 0;
    for (int i = 0; i < 16; ++i)
        mask |= (stored[i] == want[i] ? 1u : 0u) << i;
    return mask;
#endif
}

/** Best-effort read prefetch hint; a no-op where unsupported. */
inline void
prefetchRead(const void* p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0 /* read */, 1 /* low temporal locality */);
#else
    (void)p;
#endif
}

} // namespace tagecon::simd

#endif // TAGECON_UTIL_SIMD_HPP
