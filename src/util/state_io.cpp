#include "util/state_io.hpp"

namespace tagecon {

uint64_t
fnv1a64(const uint8_t* data, size_t size)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace tagecon
