/**
 * @file
 * Byte-exact little-endian state serialization, the substrate of
 * predictor checkpoint/restore (serve/checkpoint.hpp): StateWriter
 * appends fixed-width scalars, packed bit vectors and length-prefixed
 * byte ranges into a growing buffer; StateReader replays them with
 * bounds checking, latching the first failure so callers can decode a
 * whole record and test ok() once at the end.
 *
 * The encoding is deliberately dumb — no varints, no alignment, no
 * endianness surprises — so a blob written on any host decodes on any
 * other and the FNV digest over the bytes is a stable fingerprint of
 * the serialized state.
 */

#ifndef TAGECON_UTIL_STATE_IO_HPP
#define TAGECON_UTIL_STATE_IO_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tagecon {

/** FNV-1a 64-bit hash of a byte range (offset basis / prime of the
 *  golden state-hash tests, so digests are comparable across both). */
uint64_t fnv1a64(const uint8_t* data, size_t size);

/** Append-only little-endian encoder. */
class StateWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void
    u16(uint16_t v)
    {
        buf_.push_back(static_cast<uint8_t>(v));
        buf_.push_back(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    /** Two's-complement encode of a signed value. */
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** Raw bytes, no length prefix (caller knows the count). */
    void
    bytes(const uint8_t* data, size_t size)
    {
        buf_.insert(buf_.end(), data, data + size);
    }

    /** u64 length prefix + raw bytes. */
    void
    lengthPrefixedBytes(const uint8_t* data, size_t size)
    {
        u64(size);
        bytes(data, size);
    }

    /** u64 length prefix + UTF-8 bytes. */
    void
    str(const std::string& s)
    {
        lengthPrefixedBytes(reinterpret_cast<const uint8_t*>(s.data()),
                            s.size());
    }

    /**
     * Pack @p count booleans (given as a callable index -> bool) into
     * ceil(count / 8) bytes, LSB first — the history ring compressor.
     */
    template <typename BitAt>
    void
    packedBits(size_t count, BitAt bit_at)
    {
        uint8_t acc = 0;
        for (size_t i = 0; i < count; ++i) {
            if (bit_at(i))
                acc |= static_cast<uint8_t>(1u << (i & 7));
            if ((i & 7) == 7) {
                buf_.push_back(acc);
                acc = 0;
            }
        }
        if ((count & 7) != 0)
            buf_.push_back(acc);
    }

    /** The encoded bytes so far. */
    const std::vector<uint8_t>& data() const { return buf_; }

    /** Move the encoded bytes out (leaves the writer empty). */
    std::vector<uint8_t> take() { return std::move(buf_); }

    size_t size() const { return buf_.size(); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked decoder over a byte range it does not own. The first
 * out-of-bounds read latches ok() to false and every later read
 * returns zeros, so decode code can run straight through and check
 * once.
 */
class StateReader
{
  public:
    StateReader(const uint8_t* data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit StateReader(const std::vector<uint8_t>& buf)
        : StateReader(buf.data(), buf.size())
    {
    }

    uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return data_[pos_++];
    }

    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        const uint16_t hi = u8();
        return static_cast<uint16_t>(lo | (hi << 8));
    }

    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        const uint32_t hi = u16();
        return lo | (hi << 16);
    }

    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        const uint64_t hi = u32();
        return lo | (hi << 32);
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    /** Copy @p size raw bytes into @p out; zero-fills on underrun. */
    bool
    bytes(uint8_t* out, size_t size)
    {
        if (!take(size)) {
            for (size_t i = 0; i < size; ++i)
                out[i] = 0;
            return false;
        }
        for (size_t i = 0; i < size; ++i)
            out[i] = data_[pos_ + i];
        pos_ += size;
        return true;
    }

    /**
     * u64 length prefix + bytes into @p out. Lengths above @p max_size
     * are treated as corruption (latches the error) rather than
     * attempted, so a flipped length byte cannot trigger a huge
     * allocation.
     */
    bool
    lengthPrefixedBytes(std::vector<uint8_t>& out,
                        size_t max_size = size_t{1} << 32)
    {
        const uint64_t n = u64();
        if (!ok_ || n > max_size || n > remaining()) {
            ok_ = false;
            out.clear();
            return false;
        }
        out.assign(data_ + pos_, data_ + pos_ + n);
        pos_ += static_cast<size_t>(n);
        return true;
    }

    /** u64 length prefix + UTF-8 bytes. */
    std::string
    str(size_t max_size = size_t{1} << 20)
    {
        std::vector<uint8_t> raw;
        if (!lengthPrefixedBytes(raw, max_size))
            return {};
        return std::string(raw.begin(), raw.end());
    }

    /** Unpack @p count booleans written by StateWriter::packedBits. */
    template <typename SetBit>
    bool
    packedBits(size_t count, SetBit set_bit)
    {
        const size_t nbytes = (count + 7) / 8;
        if (!take(nbytes)) {
            for (size_t i = 0; i < count; ++i)
                set_bit(i, false);
            return false;
        }
        for (size_t i = 0; i < count; ++i) {
            const uint8_t byte = data_[pos_ + (i >> 3)];
            set_bit(i, ((byte >> (i & 7)) & 1u) != 0);
        }
        pos_ += nbytes;
        return true;
    }

    /** True while every read so far stayed in bounds. */
    bool ok() const { return ok_; }

    /** Bytes not yet consumed. */
    size_t remaining() const { return size_ - pos_; }

    /** True when every byte was consumed and no read failed. */
    bool exhausted() const { return ok_ && pos_ == size_; }

  private:
    /** Check @p n more bytes are available; latch the error if not. */
    bool
    take(size_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace tagecon

#endif // TAGECON_UTIL_STATE_IO_HPP
