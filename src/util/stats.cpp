#include "util/stats.hpp"

#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace tagecon {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::clear()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    sum_ = 0.0;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    TAGECON_ASSERT(hi > lo, "histogram range is empty");
    TAGECON_ASSERT(buckets >= 1, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<size_t>((x - lo_) / width_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

double
Histogram::bucketLow(size_t i) const
{
    return lo_ + static_cast<double>(i) * width_;
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    if (underflow_)
        os << "  < " << lo_ << ": " << underflow_ << "\n";
    for (size_t i = 0; i < counts_.size(); ++i) {
        os << "  [" << bucketLow(i) << ", " << bucketLow(i) + width_
           << "): " << counts_[i] << "\n";
    }
    if (overflow_)
        os << "  >= " << hi_ << ": " << overflow_ << "\n";
    return os.str();
}

} // namespace tagecon
