/**
 * @file
 * Generic statistics accumulators: running mean/variance (Welford),
 * simple ratio counters and fixed-bucket histograms. Predictor-specific
 * statistics (MPKI, per-class coverage) live in core/ and sim/ on top of
 * these.
 */

#ifndef TAGECON_UTIL_STATS_HPP
#define TAGECON_UTIL_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace tagecon {

/**
 * Numerically stable running mean / variance / min / max accumulator
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples folded in so far. */
    uint64_t count() const { return n_; }

    /** Mean of the samples; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than 2 samples. */
    double variance() const;

    /** Standard deviation (sqrt of population variance). */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void clear();

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Count of events out of a number of trials, with convenience rate
 * accessors in the units the paper uses (per-kilo).
 */
class RatioStat
{
  public:
    /** Record one trial, an event iff @p event. */
    void
    record(bool event)
    {
        ++trials_;
        if (event)
            ++events_;
    }

    /** Record @p t trials of which @p e were events. */
    void
    recordMany(uint64_t e, uint64_t t)
    {
        events_ += e;
        trials_ += t;
    }

    uint64_t events() const { return events_; }
    uint64_t trials() const { return trials_; }

    /** events / trials; 0 when no trials. */
    double
    rate() const
    {
        return trials_ ? static_cast<double>(events_) /
                             static_cast<double>(trials_)
                       : 0.0;
    }

    /** Rate in events per kilo-trial (the paper's MKP when the events
     *  are mispredictions and the trials predictions). */
    double perKilo() const { return rate() * 1000.0; }

    /** Reset to the empty state. */
    void
    clear()
    {
        events_ = 0;
        trials_ = 0;
    }

  private:
    uint64_t events_ = 0;
    uint64_t trials_ = 0;
};

/**
 * Fixed-bucket histogram over [lo, hi) with uniform bucket width plus
 * underflow/overflow buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the first bucket.
     * @param hi Upper bound of the last bucket; must exceed lo.
     * @param buckets Number of uniform buckets; must be >= 1.
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Fold a sample into the histogram. */
    void add(double x);

    /** Count in the i-th bucket. */
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }

    /** Count of samples below the range. */
    uint64_t underflow() const { return underflow_; }

    /** Count of samples at or above the range. */
    uint64_t overflow() const { return overflow_; }

    /** Total number of samples. */
    uint64_t total() const { return total_; }

    /** Number of uniform buckets. */
    size_t buckets() const { return counts_.size(); }

    /** Lower edge of bucket i. */
    double bucketLow(size_t i) const;

    /** Render a compact textual summary, one bucket per line. */
    std::string render() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace tagecon

#endif // TAGECON_UTIL_STATS_HPP
