#include "util/strict_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tagecon {

namespace {

/** Reject empty strings and surrounding whitespace up front: strtoull
 *  and friends silently skip leading whitespace, which lets values
 *  like " 5" or "5 " through depending on the side. */
bool
checkShape(const std::string& text, std::string& why)
{
    if (text.empty()) {
        why = "empty value";
        return false;
    }
    if (std::isspace(static_cast<unsigned char>(text.front())) ||
        std::isspace(static_cast<unsigned char>(text.back()))) {
        why = "surrounding whitespace";
        return false;
    }
    return true;
}

} // namespace

bool
parseUint64(const std::string& text, uint64_t& out, std::string& why)
{
    if (!checkShape(text, why))
        return false;
    // strtoull accepts a leading '-' and wraps the value; forbid signs.
    if (text.front() == '-' || text.front() == '+') {
        why = "sign on unsigned value";
        return false;
    }
    errno = 0;
    char* end = nullptr;
    const uint64_t v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str()) {
        why = "not a number";
        return false;
    }
    if (*end != '\0') {
        why = std::string("trailing garbage '") + end + "'";
        return false;
    }
    if (errno == ERANGE) {
        why = "out of range";
        return false;
    }
    out = v;
    return true;
}

bool
parseInt64(const std::string& text, int64_t& out, std::string& why)
{
    if (!checkShape(text, why))
        return false;
    errno = 0;
    char* end = nullptr;
    const int64_t v = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str()) {
        why = "not a number";
        return false;
    }
    if (*end != '\0') {
        why = std::string("trailing garbage '") + end + "'";
        return false;
    }
    if (errno == ERANGE) {
        why = "out of range";
        return false;
    }
    out = v;
    return true;
}

bool
parseFiniteDouble(const std::string& text, double& out, std::string& why)
{
    if (!checkShape(text, why))
        return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str()) {
        why = "not a number";
        return false;
    }
    if (*end != '\0') {
        why = std::string("trailing garbage '") + end + "'";
        return false;
    }
    if (errno == ERANGE || !std::isfinite(v)) {
        why = "out of range";
        return false;
    }
    out = v;
    return true;
}

} // namespace tagecon
