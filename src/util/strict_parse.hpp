/**
 * @file
 * Strict whole-string numeric parsing shared by the command-line
 * parser (util/cli.hpp) and the registry's spec-parameter grammar
 * (sim/spec_params.hpp). Unlike raw strtoull/strtod these reject
 * partial parses ("1e6" as an integer, "7x"), leading/trailing
 * whitespace, signs on unsigned values (strtoull silently wraps
 * "-1" to 2^64-1), and out-of-range magnitudes.
 */

#ifndef TAGECON_UTIL_STRICT_PARSE_HPP
#define TAGECON_UTIL_STRICT_PARSE_HPP

#include <cstdint>
#include <string>

namespace tagecon {

/**
 * Parse @p text as an unsigned 64-bit integer (decimal, or hex with a
 * 0x prefix). On failure returns false and describes the problem in
 * @p why ("trailing garbage", "out of range", ...).
 */
bool parseUint64(const std::string& text, uint64_t& out,
                 std::string& why);

/** Parse @p text as a signed 64-bit integer; see parseUint64(). */
bool parseInt64(const std::string& text, int64_t& out, std::string& why);

/** Parse @p text as a finite double; see parseUint64(). */
bool parseFiniteDouble(const std::string& text, double& out,
                       std::string& why);

} // namespace tagecon

#endif // TAGECON_UTIL_STRICT_PARSE_HPP
