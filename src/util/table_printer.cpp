#include "util/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <locale>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"

namespace tagecon {

void
TextTable::addColumn(std::string header, Align align)
{
    headers_.push_back(std::move(header));
    aligns_.push_back(align);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    TAGECON_ASSERT(cells.size() <= headers_.size(),
                   "row has more cells than declared columns");
    cells.resize(headers_.size());
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

size_t
TextTable::rows() const
{
    size_t n = 0;
    for (const auto& r : rows_) {
        if (!r.separator)
            ++n;
    }
    return n;
}

void
TextTable::render(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
        if (r.separator)
            continue;
        for (size_t c = 0; c < r.cells.size(); ++c)
            widths[c] = std::max(widths[c], r.cells[c].size());
    }

    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c]
                                                       : std::string{};
            os << (c == 0 ? "" : "  ");
            if (aligns_[c] == Align::Left) {
                os << cell
                   << std::string(widths[c] - cell.size(), ' ');
            } else {
                os << std::string(widths[c] - cell.size(), ' ')
                   << cell;
            }
        }
        os << "\n";
    };

    auto emit_separator = [&] {
        size_t total = 0;
        for (size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c == 0 ? 0 : 2);
        os << std::string(total, '-') << "\n";
    };

    emit_row(headers_);
    emit_separator();
    for (const auto& r : rows_) {
        if (r.separator)
            emit_separator();
        else
            emit_row(r.cells);
    }
}

void
TextTable::renderCsv(std::ostream& os) const
{
    // RFC 4180 quoting: cells containing the separator, quotes or
    // newlines (e.g. multi-parameter spec names like
    // "gshare:entries=16,hist=17+jrs") are wrapped in double quotes.
    auto quote = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (const char ch : cell) {
            if (ch == '"')
                quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << quote(cells[c]);
        os << "\n";
    };
    emit(headers_);
    for (const auto& r : rows_) {
        if (!r.separator)
            emit(r.cells);
    }
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    render(os);
    return os.str();
}

std::vector<std::vector<std::string>>
TextTable::dataRows() const
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(rows_.size());
    for (const auto& r : rows_) {
        if (!r.separator)
            rows.push_back(r.cells);
    }
    return rows;
}

std::string
TextTable::num(double v, int decimals)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
TextTable::frac(double v)
{
    return num(v, 3);
}

std::string
TextTable::integer(uint64_t v)
{
    return std::to_string(v);
}

} // namespace tagecon
