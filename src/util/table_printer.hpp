/**
 * @file
 * Plain-text and CSV table rendering used by the experiment harnesses to
 * print the paper's tables and figure data series.
 */

#ifndef TAGECON_UTIL_TABLE_PRINTER_HPP
#define TAGECON_UTIL_TABLE_PRINTER_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace tagecon {

/**
 * Column-aligned text table. Columns are declared up front; rows are
 * appended as vectors of pre-formatted cells. render() pads every column
 * to its widest cell.
 */
class TextTable
{
  public:
    /** Horizontal alignment of a column's cells. */
    enum class Align { Left, Right };

    /** Declare a column with a header and alignment. */
    void addColumn(std::string header, Align align = Align::Right);

    /**
     * Append a row. Rows shorter than the column list are padded with
     * empty cells; longer rows are a usage error.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Number of data rows (separators excluded). */
    size_t rows() const;

    /** Declared column headers, in order. */
    const std::vector<std::string>& headers() const { return headers_; }

    /**
     * The data rows (separators excluded), each padded to the column
     * count — the structured view the report emitters serialize.
     */
    std::vector<std::vector<std::string>> dataRows() const;

    /** Render with aligned columns into @p os. */
    void render(std::ostream& os) const;

    /** Render as CSV (no alignment padding, comma-separated). */
    void renderCsv(std::ostream& os) const;

    /** Convenience: render() into a string. */
    std::string toString() const;

    /**
     * Format a double with @p decimals fractional digits. The single
     * low-level float formatter of the repository: always the classic
     * "C" locale ('.' decimal point, no grouping), whatever the global
     * locale — table and report output never drifts with the host.
     */
    static std::string num(double v, int decimals = 2);

    /** Format a fraction (e.g. coverage) as 0.xxx with 3 digits. */
    static std::string frac(double v);

    /** Format an integer with thousands grouping removed (plain). */
    static std::string integer(uint64_t v);

  private:
    struct Row {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

} // namespace tagecon

#endif // TAGECON_UTIL_TABLE_PRINTER_HPP
