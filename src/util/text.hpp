/**
 * @file
 * Small shared string helpers for the spec/trace grammars.
 */

#ifndef TAGECON_UTIL_TEXT_HPP
#define TAGECON_UTIL_TEXT_HPP

#include <algorithm>
#include <cctype>
#include <string>

namespace tagecon {

/** ASCII-lowercase a copy of @p s (spec and trace names are ASCII). */
inline std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace tagecon

#endif // TAGECON_UTIL_TEXT_HPP
