/**
 * @file
 * Clang thread-safety analysis annotations, as no-op-off-Clang macros.
 *
 * The determinism contract of this repo (bit-identical sweeps and
 * serves at any --jobs) is only as strong as its locking discipline,
 * so every mutex-protected structure in the library is annotated and
 * the Clang CI build compiles with -Wthread-safety -Werror: an access
 * to a TAGECON_GUARDED_BY member without its mutex held, or a function
 * called without a declared TAGECON_REQUIRES capability, is a build
 * error — not a race TSan has to get lucky to schedule.
 *
 * Under GCC (the container toolchain) every macro expands to nothing;
 * the annotations carry zero runtime or codegen cost everywhere.
 *
 * Use util/mutex.hpp's tagecon::Mutex / tagecon::MutexLock rather than
 * std::mutex / std::lock_guard in library code: the std types carry no
 * capability annotations, so the analysis cannot see their lock and
 * unlock effects.
 */

#ifndef TAGECON_UTIL_THREAD_ANNOTATIONS_HPP
#define TAGECON_UTIL_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && defined(__has_attribute)
#define TAGECON_THREAD_ATTR__(x) __has_attribute(x)
#else
#define TAGECON_THREAD_ATTR__(x) 0
#endif

#if TAGECON_THREAD_ATTR__(capability)
#define TAGECON_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TAGECON_THREAD_ANNOTATION__(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define TAGECON_CAPABILITY(name) \
    TAGECON_THREAD_ANNOTATION__(capability(name))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define TAGECON_SCOPED_CAPABILITY \
    TAGECON_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define TAGECON_GUARDED_BY(x) TAGECON_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define TAGECON_PT_GUARDED_BY(x) \
    TAGECON_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function callable only with the listed capabilities held. */
#define TAGECON_REQUIRES(...) \
    TAGECON_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities. */
#define TAGECON_ACQUIRE(...) \
    TAGECON_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define TAGECON_RELEASE(...) \
    TAGECON_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function that acquires the capability when returning @p ret. */
#define TAGECON_TRY_ACQUIRE(...) \
    TAGECON_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/** Function callable only with the listed capabilities NOT held. */
#define TAGECON_EXCLUDES(...) \
    TAGECON_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Returns a reference to the capability guarding the callee. */
#define TAGECON_RETURN_CAPABILITY(x) \
    TAGECON_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch; use only with a comment explaining why it is safe. */
#define TAGECON_NO_THREAD_SAFETY_ANALYSIS \
    TAGECON_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // TAGECON_UTIL_THREAD_ANNOTATIONS_HPP
