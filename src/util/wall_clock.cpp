#include "util/wall_clock.hpp"

#include <chrono>
#include <thread>

namespace tagecon {
namespace wallclock {

// The one whitelisted clock read of the repo (tagecon_lint:
// no-wall-clock). Everything that needs elapsed time goes through
// monotonicNanos() so there is exactly one place nondeterministic
// readings can originate.
uint64_t
monotonicNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
secondsBetween(uint64_t start_ns, uint64_t end_ns)
{
    return static_cast<double>(end_ns - start_ns) * 1e-9;
}

double
nanosBetween(uint64_t start_ns, uint64_t end_ns)
{
    return static_cast<double>(end_ns - start_ns);
}

void
sleepNanos(uint64_t ns)
{
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<int64_t>(ns)));
}

} // namespace wallclock
} // namespace tagecon
