/**
 * @file
 * The repo's single wall-clock seam.
 *
 * Every deterministic output in this codebase (sweep grids, serve
 * CSVs, report tables, digests) must be a pure function of its inputs
 * — reading a clock anywhere near those paths is how nondeterminism
 * sneaks in. So clock reads are funneled through this one seam: the
 * only translation unit allowed to touch a std::chrono clock is
 * util/wall_clock.cpp (the `no-wall-clock` tagecon_lint rule enforces
 * it, and this file is the rule's one whitelisted site). Timing
 * consumers (ServeTiming, bench throughput numbers) take readings
 * here and keep them out of byte-diffed output by construction.
 */

#ifndef TAGECON_UTIL_WALL_CLOCK_HPP
#define TAGECON_UTIL_WALL_CLOCK_HPP

#include <cstdint>

namespace tagecon {
namespace wallclock {

/**
 * Monotonic nanoseconds since an arbitrary process-local epoch.
 * Readings are comparable within one process only; never serialize
 * them into deterministic output.
 */
uint64_t monotonicNanos();

/** Seconds elapsed from @p start_ns to @p end_ns (both readings). */
double secondsBetween(uint64_t start_ns, uint64_t end_ns);

/** Nanoseconds elapsed from @p start_ns to @p end_ns, as a double. */
double nanosBetween(uint64_t start_ns, uint64_t end_ns);

/**
 * Block the calling thread for at least @p ns nanoseconds. Sleeping is
 * as timing-dependent as reading the clock, so it lives behind the
 * same seam (the `no-raw-timing` lint rule bans direct
 * std::this_thread::sleep_for elsewhere).
 */
void sleepNanos(uint64_t ns);

} // namespace wallclock
} // namespace tagecon

#endif // TAGECON_UTIL_WALL_CLOCK_HPP
