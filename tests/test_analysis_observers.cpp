/**
 * @file
 * Tests for the run-analysis observer subsystem: interval boundary
 * handling, histogram/ClassStats consistency, per-branch top-N
 * tie-breaking determinism, warmup detection, the analysis spec
 * grammar and the custom-observer registry, and the zero-observer
 * equivalence of the observer-enabled runTrace loop.
 */

#include <gtest/gtest.h>

#include "analysis/analysis_config.hpp"
#include "analysis/observers.hpp"
#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "trace/profiles.hpp"

namespace tagecon {
namespace {

/** Feed a synthetic ObservedPrediction directly to an observer. */
ObservedPrediction
observed(uint64_t pc, PredictionClass cls, bool mispredicted,
         uint64_t index = 0, bool taken = true)
{
    ObservedPrediction o;
    o.pc = pc;
    o.prediction.taken = taken;
    o.prediction.cls = cls;
    o.prediction.confidence = confidenceLevel(cls);
    o.taken = mispredicted ? !taken : taken;
    o.mispredicted = mispredicted;
    o.instructions = 1;
    o.index = index;
    return o;
}

TEST(IntervalObserver, SplitsStreamAtExactBoundaries)
{
    IntervalObserver obs(10);
    for (uint64_t i = 0; i < 30; ++i)
        obs.onPrediction(observed(0x100 + i % 4,
                                  PredictionClass::HighConfBim,
                                  i % 5 == 0, i));
    RunAnalysis bag;
    obs.finish(bag);
    ASSERT_TRUE(bag.intervals.has_value());
    const IntervalAnalysis& ia = *bag.intervals;
    EXPECT_EQ(ia.intervalLength, 10u);
    EXPECT_EQ(ia.completeIntervals, 3u);
    EXPECT_FALSE(ia.hasPartialTail());
    ASSERT_EQ(ia.intervals.size(), 3u);
    for (const ClassStats& s : ia.intervals)
        EXPECT_EQ(s.totalPredictions(), 10u);
    // 30 records, every 5th mispredicted: 6 in total, 2 per interval.
    for (const ClassStats& s : ia.intervals)
        EXPECT_EQ(s.totalMispredictions(), 2u);
}

TEST(IntervalObserver, AppendsPartialTailAfterCompleteIntervals)
{
    IntervalObserver obs(8);
    for (uint64_t i = 0; i < 21; ++i)
        obs.onPrediction(
            observed(0x40, PredictionClass::Stag, false, i));
    RunAnalysis bag;
    obs.finish(bag);
    const IntervalAnalysis& ia = *bag.intervals;
    EXPECT_EQ(ia.completeIntervals, 2u);
    ASSERT_EQ(ia.intervals.size(), 3u);
    EXPECT_TRUE(ia.hasPartialTail());
    EXPECT_EQ(ia.intervals.back().totalPredictions(), 5u);
}

TEST(IntervalObserver, LengthOneMakesEveryPredictionAnInterval)
{
    IntervalObserver obs(1);
    for (uint64_t i = 0; i < 4; ++i)
        obs.onPrediction(
            observed(0x40, PredictionClass::Wtag, i == 2, i));
    RunAnalysis bag;
    obs.finish(bag);
    ASSERT_EQ(bag.intervals->intervals.size(), 4u);
    EXPECT_EQ(bag.intervals->completeIntervals, 4u);
    EXPECT_EQ(bag.intervals->intervals[2].totalMispredictions(), 1u);
}

// The acceptance property of the histogram: totals must equal the
// run's ClassStats, class by class and level by level, on a real run.
TEST(ConfidenceHistogramObserver, TotalsMatchClassStatsOnRealRun)
{
    SyntheticTrace trace = makeTrace("SERV-1", 20000);
    auto predictor = makePredictor("tage16k+sfc");
    AnalysisConfig cfg;
    cfg.histogram = true;
    const RunResult rr = runTrace(trace, *predictor, cfg);

    ASSERT_TRUE(rr.analysis.histogram.has_value());
    const ConfidenceHistogram& h = *rr.analysis.histogram;
    EXPECT_EQ(h.totalPredictions(), rr.stats.totalPredictions());
    EXPECT_EQ(h.totalMispredictions(), rr.stats.totalMispredictions());
    for (const auto c : kAllPredictionClasses) {
        EXPECT_EQ(h.predictions[classIndex(c)], rr.stats.predictions(c));
        EXPECT_EQ(h.mispredictions[classIndex(c)],
                  rr.stats.mispredictions(c));
        // The taken split partitions each class's counts.
        EXPECT_LE(h.takenPredictions[classIndex(c)],
                  h.predictions[classIndex(c)]);
        EXPECT_LE(h.takenMispredictions[classIndex(c)],
                  h.mispredictions[classIndex(c)]);
    }
    for (const auto l : kAllConfidenceLevels) {
        EXPECT_EQ(h.levelPredictions[levelIndex(l)],
                  rr.stats.predictions(l));
        EXPECT_EQ(h.levelMispredictions[levelIndex(l)],
                  rr.stats.mispredictions(l));
    }
}

TEST(PerBranchObserver, TopTableOrderedAndBounded)
{
    PerBranchObserver obs(2);
    // pc 0xA: 4 predictions, 3 misses; 0xB: 2/2; 0xC: 10/1.
    for (int i = 0; i < 4; ++i)
        obs.onPrediction(
            observed(0xA, PredictionClass::Wtag, i < 3));
    for (int i = 0; i < 2; ++i)
        obs.onPrediction(observed(0xB, PredictionClass::Wtag, true));
    for (int i = 0; i < 10; ++i)
        obs.onPrediction(
            observed(0xC, PredictionClass::Wtag, i == 0));
    RunAnalysis bag;
    obs.finish(bag);
    ASSERT_TRUE(bag.perBranch.has_value());
    const PerBranchAnalysis& pa = *bag.perBranch;
    EXPECT_EQ(pa.distinctBranches, 3u);
    EXPECT_EQ(pa.requestedTopN, 2u);
    ASSERT_EQ(pa.top.size(), 2u);
    EXPECT_EQ(pa.top[0].pc, 0xAu); // 3 misses beats 2 and 1
    EXPECT_EQ(pa.top[1].pc, 0xBu);
    EXPECT_DOUBLE_EQ(pa.top[0].mprateMkp(), 750.0);
}

TEST(PerBranchObserver, TieBreaksDeterministically)
{
    // Same misprediction count everywhere: fewer predictions (higher
    // rate) wins; identical profiles fall back to ascending pc.
    PerBranchObserver obs(3);
    for (const uint64_t pc : {0x30, 0x10, 0x20}) {
        obs.onPrediction(observed(pc, PredictionClass::Wtag, true));
        obs.onPrediction(observed(pc, PredictionClass::Wtag, false));
    }
    obs.onPrediction(observed(0x40, PredictionClass::Wtag, true));
    RunAnalysis bag;
    obs.finish(bag);
    const auto& top = bag.perBranch->top;
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].pc, 0x40u); // 1 miss / 1 pred: highest rate
    EXPECT_EQ(top[1].pc, 0x10u); // then ascending pc among equals
    EXPECT_EQ(top[2].pc, 0x20u);
}

TEST(WarmupObserver, DetectsFirstIntervalBelowThreshold)
{
    // Interval length 10, threshold 150 MKP: intervals with 3, 2 and
    // 1 misses run at 300, 200 and 100 MKP — converges at interval 2.
    WarmupObserver obs(10, 150.0);
    uint64_t index = 0;
    for (const int misses : {3, 2, 1, 0}) {
        for (int i = 0; i < 10; ++i)
            obs.onPrediction(observed(0x100,
                                      PredictionClass::HighConfBim,
                                      i < misses, index++));
    }
    RunAnalysis bag;
    obs.finish(bag);
    ASSERT_TRUE(bag.warmup.has_value());
    const WarmupAnalysis& wa = *bag.warmup;
    EXPECT_TRUE(wa.converged);
    EXPECT_EQ(wa.warmupIntervals, 2u);
    EXPECT_EQ(wa.warmupBranches, 20u);
    EXPECT_DOUBLE_EQ(wa.firstIntervalMkp, 300.0);
    EXPECT_DOUBLE_EQ(wa.convergedIntervalMkp, 100.0);
}

TEST(WarmupObserver, ReportsNonConvergenceAndIgnoresPartialTail)
{
    WarmupObserver obs(10, 50.0);
    // One complete interval at 100 MKP, then a hot partial tail.
    for (uint64_t i = 0; i < 14; ++i)
        obs.onPrediction(observed(0x100,
                                  PredictionClass::HighConfBim,
                                  i % 10 == 0, i));
    RunAnalysis bag;
    obs.finish(bag);
    EXPECT_FALSE(bag.warmup->converged);
    EXPECT_EQ(bag.warmup->warmupIntervals, 0u);
    EXPECT_DOUBLE_EQ(bag.warmup->firstIntervalMkp, 100.0);
}

TEST(BurstObserver, BucketsBimDistanceSinceLastBimMiss)
{
    BurstObserver obs(4);
    const auto bim = PredictionClass::HighConfBim;

    // Pre-miss predictions land in the capped ">= max" bucket.
    obs.onPrediction(observed(0x100, bim, true));          // d=4, miss
    obs.onPrediction(observed(0x100, bim, false));         // d=0
    obs.onPrediction(observed(0x100, bim, false));         // d=1
    obs.onPrediction(observed(0x100, bim, true));          // d=2, miss
    // Tagged-provided predictions are invisible to the burst clock.
    obs.onPrediction(observed(0x100, PredictionClass::Stag, true));
    obs.onPrediction(observed(0x100, bim, false));         // d=0
    obs.onPrediction(observed(0x100, bim, false));         // d=1
    obs.onPrediction(observed(0x100, bim, false));         // d=2
    obs.onPrediction(observed(0x100, bim, false));         // d=3
    obs.onPrediction(observed(0x100, bim, false));         // d=4 (cap)

    RunAnalysis bag;
    obs.finish(bag);
    ASSERT_TRUE(bag.burst.has_value());
    const BurstAnalysis& ba = *bag.burst;
    EXPECT_EQ(ba.maxDistance, 4u);
    ASSERT_EQ(ba.predictions.size(), 5u);
    EXPECT_EQ(ba.predictions, (std::vector<uint64_t>{2, 2, 2, 1, 2}));
    EXPECT_EQ(ba.mispredictions,
              (std::vector<uint64_t>{0, 0, 1, 0, 1}));
    EXPECT_EQ(ba.totalPredictions(), 9u);
}

TEST(BurstObserver, MergePoolsElementWise)
{
    BurstObserver a(4), b(4);
    a.onPrediction(observed(0x100, PredictionClass::HighConfBim, true));
    b.onPrediction(observed(0x200, PredictionClass::LowConfBim, true));
    b.onPrediction(observed(0x200, PredictionClass::LowConfBim, false));

    RunAnalysis bag_a, bag_b;
    a.finish(bag_a);
    b.finish(bag_b);

    BurstAnalysis pooled; // merging into empty adopts the geometry
    pooled.merge(*bag_a.burst);
    pooled.merge(*bag_b.burst);
    EXPECT_EQ(pooled.maxDistance, 4u);
    EXPECT_EQ(pooled.totalPredictions(), 3u);
    EXPECT_EQ(pooled.predictions[4],
              bag_a.burst->predictions[4] + bag_b.burst->predictions[4]);
    EXPECT_EQ(pooled.predictions[0], bag_b.burst->predictions[0]);
}

TEST(BurstObserver, TotalsMatchBimClassStatsOnRealRun)
{
    SyntheticTrace trace = makeTrace("SERV-1", 20000);
    auto predictor = makePredictor("tage16k+sfc");
    AnalysisConfig cfg;
    cfg.burst = true;
    cfg.burstMaxDistance = 8;
    const RunResult rr = runTrace(trace, *predictor, cfg);

    ASSERT_TRUE(rr.analysis.burst.has_value());
    const BurstAnalysis& ba = *rr.analysis.burst;
    const uint64_t bim_preds =
        rr.stats.predictions(PredictionClass::HighConfBim) +
        rr.stats.predictions(PredictionClass::LowConfBim) +
        rr.stats.predictions(PredictionClass::MediumConfBim);
    const uint64_t bim_misses =
        rr.stats.mispredictions(PredictionClass::HighConfBim) +
        rr.stats.mispredictions(PredictionClass::LowConfBim) +
        rr.stats.mispredictions(PredictionClass::MediumConfBim);
    EXPECT_EQ(ba.totalPredictions(), bim_preds);
    uint64_t miss_sum = 0;
    for (const uint64_t m : ba.mispredictions)
        miss_sum += m;
    EXPECT_EQ(miss_sum, bim_misses);
}

TEST(AnalysisConfig, ParsesBurstSpec)
{
    AnalysisConfig cfg;
    std::string error;
    ASSERT_TRUE(parseAnalysisSpecs({"burst:max=4"}, cfg, error))
        << error;
    EXPECT_TRUE(cfg.burst);
    EXPECT_EQ(cfg.burstMaxDistance, 4u);
    EXPECT_EQ(buildObservers(cfg).size(), 1u);

    EXPECT_FALSE(parseAnalysisSpecs({"burst:max=0"}, cfg, error));
    EXPECT_FALSE(parseAnalysisSpecs({"burst:nope=1"}, cfg, error));
}

TEST(AnalysisConfig, ParsesSpecListWithParameters)
{
    AnalysisConfig cfg;
    std::string error;
    ASSERT_TRUE(parseAnalysisSpecs(
        {"Intervals:len=5000", "histogram", "perbranch:top=8",
         "warmup:len=2000,mkp=30"},
        cfg, error))
        << error;
    EXPECT_TRUE(cfg.intervals);
    EXPECT_EQ(cfg.intervalLength, 5000u);
    EXPECT_TRUE(cfg.histogram);
    EXPECT_TRUE(cfg.perBranch);
    EXPECT_EQ(cfg.perBranchTopN, 8u);
    EXPECT_TRUE(cfg.warmup);
    EXPECT_EQ(cfg.warmupIntervalLength, 2000u);
    EXPECT_DOUBLE_EQ(cfg.warmupThresholdMkp, 30.0);

    const ObserverList observers = buildObservers(cfg);
    EXPECT_EQ(observers.size(), 4u);
}

TEST(AnalysisConfig, RejectsUnknownObserversKeysAndBadValues)
{
    AnalysisConfig cfg;
    std::string error;
    EXPECT_FALSE(parseAnalysisSpecs({"nope"}, cfg, error));
    EXPECT_NE(error.find("unknown analysis observer"),
              std::string::npos);

    EXPECT_FALSE(parseAnalysisSpecs({"intervals:nope=3"}, cfg, error));
    EXPECT_NE(error.find("unknown parameter"), std::string::npos);

    EXPECT_FALSE(parseAnalysisSpecs({"intervals:len=0"}, cfg, error));
    EXPECT_FALSE(
        parseAnalysisSpecs({"perbranch:top=banana"}, cfg, error));
    EXPECT_FALSE(parseAnalysisSpecs({"warmup:mkp=0"}, cfg, error));
}

/** Toy registered observer: counts predictions into the custom bag. */
class CountingObserver : public RunObserver
{
  public:
    explicit CountingObserver(int64_t scale) : scale_(scale) {}
    std::string name() const override { return "counting"; }

    void
    onPrediction(const ObservedPrediction&) override
    {
        ++count_;
    }

    void
    finish(RunAnalysis& out) override
    {
        out.custom["counting/scaled"] =
            static_cast<double>(count_ * scale_);
    }

  private:
    int64_t scale_;
    uint64_t count_ = 0;
};

TEST(AnalysisConfig, RegisteredObserverFlowsThroughPipeline)
{
    registerRunObserver(
        "counting",
        [](const SpecParams& params,
           std::string& error) -> std::unique_ptr<RunObserver> {
            const int64_t scale = params.getInt("scale", 1, 1, 100);
            if (!params.error().empty()) {
                error = params.error();
                return nullptr;
            }
            return std::make_unique<CountingObserver>(scale);
        });

    AnalysisConfig cfg;
    std::string error;
    ASSERT_TRUE(
        parseAnalysisSpecs({"counting:scale=3"}, cfg, error))
        << error;
    ASSERT_EQ(cfg.custom.size(), 1u);

    SyntheticTrace trace = makeTrace("FP-1", 5000);
    auto predictor = makePredictor("bimodal");
    const RunResult rr = runTrace(trace, *predictor, cfg);
    ASSERT_EQ(rr.analysis.custom.count("counting/scaled"), 1u);
    EXPECT_DOUBLE_EQ(rr.analysis.custom.at("counting/scaled"),
                     15000.0);

    // A bad parameter for the registered observer is caught at parse.
    AnalysisConfig bad;
    EXPECT_FALSE(
        parseAnalysisSpecs({"counting:scale=0"}, bad, error));
}

TEST(RunTraceObservers, EmptyPipelineMatchesPlainLoopExactly)
{
    SyntheticTrace t1 = makeTrace("MM-2", 15000);
    auto p1 = makePredictor("tage16k+sfc");
    const RunResult plain = runTrace(t1, *p1);

    SyntheticTrace t2 = makeTrace("MM-2", 15000);
    auto p2 = makePredictor("tage16k+sfc");
    const RunResult empty_cfg = runTrace(t2, *p2, AnalysisConfig{});

    EXPECT_TRUE(empty_cfg.analysis.empty());
    EXPECT_EQ(plain.stats.totalPredictions(),
              empty_cfg.stats.totalPredictions());
    EXPECT_EQ(plain.stats.totalMispredictions(),
              empty_cfg.stats.totalMispredictions());
    EXPECT_EQ(plain.allocations, empty_cfg.allocations);
}

TEST(RunTraceObservers, AttachedObserversDoNotPerturbTheRun)
{
    SyntheticTrace t1 = makeTrace("SERV-3", 15000);
    auto p1 = makePredictor("tage64k+prob7+sfc");
    const RunResult plain = runTrace(t1, *p1);

    AnalysisConfig cfg;
    cfg.intervals = true;
    cfg.intervalLength = 3000;
    cfg.histogram = true;
    cfg.perBranch = true;
    cfg.warmup = true;
    cfg.warmupIntervalLength = 1000;
    SyntheticTrace t2 = makeTrace("SERV-3", 15000);
    auto p2 = makePredictor("tage64k+prob7+sfc");
    const RunResult with = runTrace(t2, *p2, cfg);

    EXPECT_EQ(plain.stats.totalPredictions(),
              with.stats.totalPredictions());
    EXPECT_EQ(plain.stats.totalMispredictions(),
              with.stats.totalMispredictions());
    EXPECT_EQ(plain.stats.instructions(), with.stats.instructions());
    EXPECT_EQ(plain.allocations, with.allocations);
    EXPECT_EQ(plain.finalLog2Prob, with.finalLog2Prob);

    // And all four slots were filled, consistently with the stats.
    ASSERT_TRUE(with.analysis.intervals.has_value());
    EXPECT_EQ(with.analysis.intervals->completeIntervals, 5u);
    ClassStats pooled;
    for (const auto& s : with.analysis.intervals->intervals)
        pooled.merge(s);
    EXPECT_EQ(pooled.totalPredictions(),
              with.stats.totalPredictions());
    EXPECT_EQ(pooled.totalMispredictions(),
              with.stats.totalMispredictions());
    ASSERT_TRUE(with.analysis.histogram.has_value());
    ASSERT_TRUE(with.analysis.perBranch.has_value());
    EXPECT_GT(with.analysis.perBranch->distinctBranches, 0u);
    ASSERT_TRUE(with.analysis.warmup.has_value());
}

} // namespace
} // namespace tagecon
