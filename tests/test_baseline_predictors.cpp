/**
 * @file
 * Tests for the related-work baseline predictors and the JRS
 * storage-based confidence estimator.
 */

#include <gtest/gtest.h>

#include "baseline/bimodal_predictor.hpp"
#include "baseline/gshare_predictor.hpp"
#include "baseline/jrs_estimator.hpp"
#include "baseline/perceptron_predictor.hpp"
#include "util/random.hpp"

namespace tagecon {
namespace {

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(10);
    for (int i = 0; i < 10; ++i)
        p.update(0x40, true);
    EXPECT_TRUE(p.predict(0x40));
    for (int i = 0; i < 10; ++i)
        p.update(0x80, false);
    EXPECT_FALSE(p.predict(0x80));
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor p(10);
    int misses = 0;
    for (int i = 0; i < 1000; ++i) {
        const bool taken = i % 2 == 0;
        if (p.predict(0x40) != taken && i > 100)
            ++misses;
        p.update(0x40, taken);
    }
    // A 2-bit counter mispredicts alternation about half the time.
    EXPECT_GT(misses, 300);
}

TEST(Bimodal, SmithSelfConfidence)
{
    BimodalPredictor p(10);
    // Fresh counter is weak -> low confidence.
    EXPECT_FALSE(p.highConfidence(0x40));
    for (int i = 0; i < 4; ++i)
        p.update(0x40, true);
    EXPECT_TRUE(p.highConfidence(0x40));
    EXPECT_TRUE(p.counterFor(0x40).saturated());
}

TEST(Bimodal, StorageBits)
{
    EXPECT_EQ(BimodalPredictor(10, 2).storageBits(), 2048u);
    EXPECT_EQ(BimodalPredictor(12, 3).storageBits(), 12288u);
}

TEST(Bimodal, AliasingSharesCounters)
{
    BimodalPredictor p(4); // 16 entries: 0x10 aliases with 0x00... etc.
    for (int i = 0; i < 8; ++i)
        p.update(0x0, true);
    EXPECT_TRUE(p.predict(0x10)); // same entry
}

TEST(Gshare, LearnsAlternationThroughHistory)
{
    GsharePredictor p(12, 8);
    int late_misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = i % 2 == 0;
        if (p.predict(0x40) != taken && i > 1000)
            ++late_misses;
        p.update(0x40, taken);
    }
    EXPECT_EQ(late_misses, 0);
}

TEST(Gshare, HistoryChangesIndex)
{
    GsharePredictor p(12, 8);
    const uint32_t idx0 = p.indexFor(0x40);
    p.update(0x40, true); // shifts a 1 into the history
    EXPECT_NE(p.indexFor(0x40), idx0);
}

TEST(Gshare, StorageBits)
{
    EXPECT_EQ(GsharePredictor(12, 12).storageBits(), 8192u);
}

TEST(Jrs, HighConfidenceRequiresThresholdStreak)
{
    JrsConfidenceEstimator::Config cfg;
    cfg.logEntries = 10;
    cfg.ctrBits = 4;
    cfg.threshold = 15;
    cfg.historyBits = 4;
    JrsConfidenceEstimator jrs(cfg);

    // Repeat the same (pc, history) by always resolving taken.
    // 14 correct predictions: still low confidence.
    // Keep history constant by using taken=true each time... history
    // changes; instead drive with history ignored: use historyBits=4
    // and constant outcome so history saturates at 0b1111 quickly.
    for (int i = 0; i < 4; ++i)
        jrs.record(0x40, true, true, true); // warm history to 1111
    for (int i = 0; i < 14; ++i) {
        jrs.record(0x40, true, true, true);
    }
    EXPECT_FALSE(jrs.query(0x40, true));
    jrs.record(0x40, true, true, true); // 15th consecutive correct
    EXPECT_TRUE(jrs.query(0x40, true));
}

TEST(Jrs, MispredictionResetsCounter)
{
    JrsConfidenceEstimator::Config cfg;
    cfg.logEntries = 10;
    cfg.historyBits = 2;
    JrsConfidenceEstimator jrs(cfg);
    for (int i = 0; i < 30; ++i)
        jrs.record(0x40, true, true, true);
    EXPECT_TRUE(jrs.query(0x40, true));
    jrs.record(0x40, true, /*correct=*/false, true);
    EXPECT_FALSE(jrs.query(0x40, true));
    EXPECT_EQ(jrs.counterValue(0x40, true), 0u);
}

TEST(Jrs, PredictionIndexedVariantSeparatesDirections)
{
    JrsConfidenceEstimator::Config cfg;
    cfg.logEntries = 12;
    cfg.historyBits = 2;
    cfg.indexWithPrediction = true;
    JrsConfidenceEstimator jrs(cfg);
    // Build confidence for predicted-taken only.
    for (int i = 0; i < 40; ++i)
        jrs.record(0x40, true, true, true);
    EXPECT_TRUE(jrs.query(0x40, true));
    EXPECT_FALSE(jrs.query(0x40, false));
}

TEST(Jrs, DefaultConfigIsClassic)
{
    JrsConfidenceEstimator jrs;
    EXPECT_EQ(jrs.config().ctrBits, 4);
    EXPECT_EQ(jrs.config().threshold, 15u);
}

TEST(Jrs, StorageBits)
{
    JrsConfidenceEstimator::Config cfg;
    cfg.logEntries = 12;
    cfg.ctrBits = 4;
    EXPECT_EQ(JrsConfidenceEstimator(cfg).storageBits(), 16384u);
}

TEST(Jrs, RejectsBadConfig)
{
    JrsConfidenceEstimator::Config bad;
    bad.threshold = 99; // exceeds 4-bit range
    EXPECT_EXIT(JrsConfidenceEstimator{bad},
                ::testing::ExitedWithCode(1), "threshold");
}

TEST(Perceptron, LearnsBias)
{
    PerceptronPredictor p(8, 16);
    for (int i = 0; i < 200; ++i)
        p.update(0x40, true);
    EXPECT_TRUE(p.predict(0x40));
}

TEST(Perceptron, LearnsHistoryCorrelation)
{
    // Outcome equals the outcome two branches ago: linearly separable
    // in the history bits, so a perceptron must learn it.
    PerceptronPredictor p(8, 16);
    bool h1 = false;
    bool h2 = false;
    int late_misses = 0;
    XorShift128Plus rng(3);
    for (int i = 0; i < 4000; ++i) {
        const bool taken = h2;
        if (p.predict(0x40) != taken && i > 2000)
            ++late_misses;
        p.update(0x40, taken);
        h2 = h1;
        h1 = taken;
    }
    EXPECT_LT(late_misses, 50);
}

TEST(Perceptron, SelfConfidenceGrowsWithTraining)
{
    PerceptronPredictor p(8, 12);
    p.predict(0x40);
    EXPECT_FALSE(p.lastHighConfidence()); // untrained: |sum| = 0
    for (int i = 0; i < 500; ++i)
        p.update(0x40, true);
    p.predict(0x40);
    EXPECT_TRUE(p.lastHighConfidence());
}

TEST(Perceptron, ThetaFormula)
{
    PerceptronPredictor p(8, 20);
    EXPECT_EQ(p.theta(), static_cast<int>(1.93 * 20 + 14));
}

TEST(Perceptron, StorageBits)
{
    // 2^8 perceptrons x (16+1) weights x 8 bits.
    EXPECT_EQ(PerceptronPredictor(8, 16).storageBits(), 256u * 17 * 8);
}

} // namespace
} // namespace tagecon
