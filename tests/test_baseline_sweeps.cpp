/**
 * @file
 * Parameterized sweeps over the baseline estimators' configuration
 * spaces: JRS threshold/width trade-offs and O-GEHL geometries.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/jrs_estimator.hpp"
#include "baseline/ogehl_predictor.hpp"
#include "core/binary_metrics.hpp"
#include "core/confidence_observer.hpp"
#include "sim/experiment.hpp"
#include "tage/tage_predictor.hpp"

namespace tagecon {
namespace {

/** JRS attached to a 16K TAGE over one trace; returns quality. */
BinaryConfidenceMetrics
runJrs(const JrsConfidenceEstimator::Config& jcfg)
{
    TagePredictor predictor(TageConfig::small16K());
    JrsConfidenceEstimator jrs(jcfg);
    BinaryConfidenceMetrics m;
    SyntheticTrace trace = makeTrace("INT-2", 40000);
    BranchRecord rec;
    while (trace.next(rec)) {
        const TagePrediction p = predictor.predict(rec.pc);
        const bool correct = p.taken == rec.taken;
        m.record(jrs.query(rec.pc, p.taken), correct);
        jrs.record(rec.pc, p.taken, correct, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
    }
    return m;
}

class JrsThresholdSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(JrsThresholdSweep, QualityIsWellFormed)
{
    JrsConfidenceEstimator::Config cfg;
    cfg.logEntries = 12;
    cfg.ctrBits = 4;
    cfg.threshold = GetParam();
    const BinaryConfidenceMetrics m = runJrs(cfg);
    EXPECT_GT(m.total(), 0u);
    // All four metrics are probabilities.
    for (const double v : {m.sens(), m.pvp(), m.spec(), m.pvn()}) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    // Any sane threshold grades most correct predictions high on this
    // mostly-predictable stream.
    if (GetParam() <= 15) {
        EXPECT_GT(m.highCoverage(), 0.3);
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, JrsThresholdSweep,
                         ::testing::Values(1u, 3u, 7u, 11u, 15u));

TEST(JrsThresholdTradeoff, HigherThresholdIsMoreSelective)
{
    // Raising the threshold can only shrink high-confidence coverage
    // and raise (or hold) PVP — the classic trade-off.
    double prev_cov = 2.0;
    double prev_pvp = -1.0;
    for (const unsigned th : {1u, 7u, 15u}) {
        JrsConfidenceEstimator::Config cfg;
        cfg.threshold = th;
        const BinaryConfidenceMetrics m = runJrs(cfg);
        EXPECT_LT(m.highCoverage(), prev_cov);
        EXPECT_GE(m.pvp() + 1e-9, prev_pvp);
        prev_cov = m.highCoverage();
        prev_pvp = m.pvp();
    }
}

/** (tables, logEntries, maxHistory) */
using OgehlParam = std::tuple<int, int, int>;

class OgehlGeometrySweep : public ::testing::TestWithParam<OgehlParam>
{
};

TEST_P(OgehlGeometrySweep, LearnsEasyStream)
{
    OgehlPredictor::Config cfg;
    cfg.numTables = std::get<0>(GetParam());
    cfg.logEntries = std::get<1>(GetParam());
    cfg.maxHistory = std::get<2>(GetParam());
    OgehlPredictor p(cfg);

    int late_misses = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool taken = i % 8 != 7;
        if (p.predict(0x40) != taken && i > n / 2)
            ++late_misses;
        p.update(0x40, taken);
    }
    EXPECT_LT(late_misses, n / 2 / 20)
        << "tables=" << cfg.numTables << " log=" << cfg.logEntries
        << " hist=" << cfg.maxHistory;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OgehlGeometrySweep,
    ::testing::Values(std::make_tuple(4, 10, 50),
                      std::make_tuple(6, 10, 100),
                      std::make_tuple(8, 11, 200),
                      std::make_tuple(10, 9, 300),
                      std::make_tuple(12, 8, 120)));

} // namespace
} // namespace tagecon
