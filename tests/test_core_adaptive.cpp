/**
 * @file
 * Tests for the Sec. 6.2 adaptive saturation-probability controller.
 */

#include <gtest/gtest.h>

#include "core/adaptive_probability.hpp"

namespace tagecon {
namespace {

AdaptiveProbabilityController::Config
smallEpochConfig()
{
    AdaptiveProbabilityController::Config cfg;
    cfg.epochLength = 1000;
    cfg.initialLog2 = 7;
    cfg.minLog2 = 0;
    cfg.maxLog2 = 10;
    cfg.targetMkp = 10.0;
    return cfg;
}

/** Feed one epoch with the given high-class misprediction rate. */
void
feedEpoch(AdaptiveProbabilityController& c, double high_mkp,
          double high_share = 1.0)
{
    const auto n = c.config().epochLength;
    uint64_t high = 0;
    uint64_t high_miss = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const bool is_high =
            static_cast<double>(i % 100) < high_share * 100.0;
        if (is_high) {
            ++high;
            const bool miss =
                static_cast<double>(high_miss) * 1000.0 <
                high_mkp * static_cast<double>(high);
            if (miss)
                ++high_miss;
            c.record(ConfidenceLevel::High, miss);
        } else {
            c.record(ConfidenceLevel::Low, true);
        }
    }
}

TEST(AdaptiveController, StartsAtInitialProbability)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    EXPECT_EQ(c.log2Prob(), 7u);
    EXPECT_EQ(c.epochs(), 0u);
}

TEST(AdaptiveController, RaisesSelectivityWhenOverTarget)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    feedEpoch(c, /*high_mkp=*/50.0);
    EXPECT_EQ(c.epochs(), 1u);
    EXPECT_EQ(c.log2Prob(), 8u); // p halved
}

TEST(AdaptiveController, RelaxesWhenComfortablyUnderTarget)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    feedEpoch(c, /*high_mkp=*/1.0); // far under 10 MKP * 0.5
    EXPECT_EQ(c.log2Prob(), 6u); // p doubled
}

TEST(AdaptiveController, HoldsInsideHysteresisBand)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    feedEpoch(c, /*high_mkp=*/7.0); // between target/2 and target
    EXPECT_EQ(c.log2Prob(), 7u);
}

TEST(AdaptiveController, ClampsAtMax)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    for (int i = 0; i < 20; ++i)
        feedEpoch(c, 300.0);
    EXPECT_EQ(c.log2Prob(), 10u);
}

TEST(AdaptiveController, ClampsAtMin)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    for (int i = 0; i < 20; ++i)
        feedEpoch(c, 0.0);
    EXPECT_EQ(c.log2Prob(), 0u);
}

TEST(AdaptiveController, RecordSignalsEpochBoundary)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    for (uint64_t i = 0; i < c.config().epochLength - 1; ++i)
        EXPECT_FALSE(c.record(ConfidenceLevel::High, false));
    EXPECT_TRUE(c.record(ConfidenceLevel::High, false));
    EXPECT_EQ(c.epochs(), 1u);
}

TEST(AdaptiveController, EmptyHighClassHoldsProbability)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    for (uint64_t i = 0; i < c.config().epochLength; ++i)
        c.record(ConfidenceLevel::Low, true);
    EXPECT_EQ(c.epochs(), 1u);
    EXPECT_EQ(c.log2Prob(), 7u);
}

TEST(AdaptiveController, ConvergesFromBothSides)
{
    // Start very permissive, feed rates that depend on p: model a
    // world where rate = 40 MKP at p=1 and halves per log2 step.
    AdaptiveProbabilityController::Config cfg = smallEpochConfig();
    cfg.initialLog2 = 0;
    AdaptiveProbabilityController c(cfg);
    for (int i = 0; i < 30; ++i) {
        const double rate = 40.0 / (1 << std::min(c.log2Prob(), 5u));
        feedEpoch(c, rate);
    }
    // Equilibrium: rate(log2=2) = 10 (not over), rate(1) = 20 (over).
    EXPECT_GE(c.log2Prob(), 2u);
    EXPECT_LE(c.log2Prob(), 3u);
}

TEST(AdaptiveController, ResetRestoresInitialState)
{
    AdaptiveProbabilityController c(smallEpochConfig());
    feedEpoch(c, 100.0);
    EXPECT_NE(c.log2Prob(), 7u);
    c.reset();
    EXPECT_EQ(c.log2Prob(), 7u);
    EXPECT_EQ(c.epochs(), 0u);
    EXPECT_EQ(c.epochHighPredictions(), 0u);
}

TEST(AdaptiveController, RejectsBadConfig)
{
    AdaptiveProbabilityController::Config bad = smallEpochConfig();
    bad.minLog2 = 8;
    bad.maxLog2 = 4;
    EXPECT_EXIT(AdaptiveProbabilityController{bad},
                ::testing::ExitedWithCode(1), "minLog2");

    AdaptiveProbabilityController::Config bad2 = smallEpochConfig();
    bad2.epochLength = 0;
    EXPECT_EXIT(AdaptiveProbabilityController{bad2},
                ::testing::ExitedWithCode(1), "epochLength");

    AdaptiveProbabilityController::Config bad3 = smallEpochConfig();
    bad3.initialLog2 = 20;
    EXPECT_EXIT(AdaptiveProbabilityController{bad3},
                ::testing::ExitedWithCode(1), "initialLog2");

    AdaptiveProbabilityController::Config bad4 = smallEpochConfig();
    bad4.targetMkp = 0.0;
    EXPECT_EXIT(AdaptiveProbabilityController{bad4},
                ::testing::ExitedWithCode(1), "targetMkp");
}

} // namespace
} // namespace tagecon
