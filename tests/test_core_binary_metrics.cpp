/**
 * @file
 * Tests for the Grunwald et al. binary confidence metrics.
 */

#include <gtest/gtest.h>

#include "core/binary_metrics.hpp"

namespace tagecon {
namespace {

TEST(BinaryMetrics, EmptyIsZero)
{
    BinaryConfidenceMetrics m;
    EXPECT_EQ(m.total(), 0u);
    EXPECT_EQ(m.sens(), 0.0);
    EXPECT_EQ(m.pvp(), 0.0);
    EXPECT_EQ(m.spec(), 0.0);
    EXPECT_EQ(m.pvn(), 0.0);
}

TEST(BinaryMetrics, DefinitionsOnCraftedConfusion)
{
    BinaryConfidenceMetrics m;
    // 60 high-correct, 10 high-wrong, 10 low-correct, 20 low-wrong.
    for (int i = 0; i < 60; ++i)
        m.record(true, true);
    for (int i = 0; i < 10; ++i)
        m.record(true, false);
    for (int i = 0; i < 10; ++i)
        m.record(false, true);
    for (int i = 0; i < 20; ++i)
        m.record(false, false);

    // SENS: correct predictions classified high = 60 / 70.
    EXPECT_NEAR(m.sens(), 60.0 / 70.0, 1e-12);
    // PVP: high-confidence predictions that are correct = 60 / 70.
    EXPECT_NEAR(m.pvp(), 60.0 / 70.0, 1e-12);
    // SPEC: incorrect predictions classified low = 20 / 30.
    EXPECT_NEAR(m.spec(), 20.0 / 30.0, 1e-12);
    // PVN: low-confidence predictions that are incorrect = 20 / 30.
    EXPECT_NEAR(m.pvn(), 20.0 / 30.0, 1e-12);
    EXPECT_NEAR(m.highCoverage(), 70.0 / 100.0, 1e-12);
    EXPECT_EQ(m.total(), 100u);
}

TEST(BinaryMetrics, PerfectEstimator)
{
    BinaryConfidenceMetrics m;
    for (int i = 0; i < 90; ++i)
        m.record(true, true);
    for (int i = 0; i < 10; ++i)
        m.record(false, false);
    EXPECT_EQ(m.sens(), 1.0);
    EXPECT_EQ(m.pvp(), 1.0);
    EXPECT_EQ(m.spec(), 1.0);
    EXPECT_EQ(m.pvn(), 1.0);
}

TEST(BinaryMetrics, MergeAccumulates)
{
    BinaryConfidenceMetrics a;
    BinaryConfidenceMetrics b;
    a.record(true, true);
    b.record(false, false);
    b.record(true, false);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.highCorrect(), 1u);
    EXPECT_EQ(a.highWrong(), 1u);
    EXPECT_EQ(a.lowWrong(), 1u);
}

TEST(BinaryMetrics, AllHighDegenerate)
{
    BinaryConfidenceMetrics m;
    m.record(true, true);
    m.record(true, false);
    EXPECT_EQ(m.pvn(), 0.0);  // no low predictions
    EXPECT_EQ(m.spec(), 0.0); // no incorrect graded low
    EXPECT_EQ(m.highCoverage(), 1.0);
}

} // namespace
} // namespace tagecon
