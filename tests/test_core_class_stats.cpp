/**
 * @file
 * Tests for the Pcov / MPcov / MPrate / MPKI accumulator.
 */

#include <gtest/gtest.h>

#include "core/class_stats.hpp"
#include "util/random.hpp"

namespace tagecon {
namespace {

TEST(ClassStats, EmptyIsAllZero)
{
    ClassStats s;
    EXPECT_EQ(s.totalPredictions(), 0u);
    EXPECT_EQ(s.totalMispredictions(), 0u);
    EXPECT_EQ(s.instructions(), 0u);
    for (const auto c : kAllPredictionClasses) {
        EXPECT_EQ(s.pcov(c), 0.0);
        EXPECT_EQ(s.mpcov(c), 0.0);
        EXPECT_EQ(s.mprateMkp(c), 0.0);
    }
    EXPECT_EQ(s.mpki(), 0.0);
    EXPECT_EQ(s.totalMkp(), 0.0);
}

TEST(ClassStats, SingleClassMath)
{
    ClassStats s;
    for (int i = 0; i < 1000; ++i)
        s.record(PredictionClass::Stag, i < 50, 6);
    EXPECT_EQ(s.totalPredictions(), 1000u);
    EXPECT_EQ(s.totalMispredictions(), 50u);
    EXPECT_EQ(s.instructions(), 6000u);
    EXPECT_DOUBLE_EQ(s.pcov(PredictionClass::Stag), 1.0);
    EXPECT_DOUBLE_EQ(s.mpcov(PredictionClass::Stag), 1.0);
    EXPECT_DOUBLE_EQ(s.mprateMkp(PredictionClass::Stag), 50.0);
    EXPECT_NEAR(s.mpki(), 50.0 / 6.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.totalMkp(), 50.0);
}

TEST(ClassStats, TwoClassCoverage)
{
    ClassStats s;
    for (int i = 0; i < 750; ++i)
        s.record(PredictionClass::HighConfBim, false, 1);
    for (int i = 0; i < 250; ++i)
        s.record(PredictionClass::Wtag, i < 100, 1);
    EXPECT_DOUBLE_EQ(s.pcov(PredictionClass::HighConfBim), 0.75);
    EXPECT_DOUBLE_EQ(s.pcov(PredictionClass::Wtag), 0.25);
    EXPECT_DOUBLE_EQ(s.mpcov(PredictionClass::Wtag), 1.0);
    EXPECT_DOUBLE_EQ(s.mprateMkp(PredictionClass::Wtag), 400.0);
}

TEST(ClassStats, LevelAggregation)
{
    ClassStats s;
    s.record(PredictionClass::HighConfBim, false, 1);
    s.record(PredictionClass::Stag, true, 1);
    s.record(PredictionClass::NStag, true, 1);
    s.record(PredictionClass::MediumConfBim, false, 1);
    s.record(PredictionClass::Wtag, true, 1);
    s.record(PredictionClass::NWtag, false, 1);
    s.record(PredictionClass::LowConfBim, false, 1);

    EXPECT_EQ(s.predictions(ConfidenceLevel::High), 2u);
    EXPECT_EQ(s.mispredictions(ConfidenceLevel::High), 1u);
    EXPECT_EQ(s.predictions(ConfidenceLevel::Medium), 2u);
    EXPECT_EQ(s.mispredictions(ConfidenceLevel::Medium), 1u);
    EXPECT_EQ(s.predictions(ConfidenceLevel::Low), 3u);
    EXPECT_EQ(s.mispredictions(ConfidenceLevel::Low), 1u);

    // Level coverages partition the stream.
    EXPECT_DOUBLE_EQ(s.pcov(ConfidenceLevel::High) +
                         s.pcov(ConfidenceLevel::Medium) +
                         s.pcov(ConfidenceLevel::Low),
                     1.0);
}

TEST(ClassStats, MergeAddsComponentwise)
{
    ClassStats a;
    ClassStats b;
    a.record(PredictionClass::Stag, true, 5);
    a.record(PredictionClass::Wtag, false, 5);
    b.record(PredictionClass::Stag, false, 7);
    a.merge(b);
    EXPECT_EQ(a.totalPredictions(), 3u);
    EXPECT_EQ(a.predictions(PredictionClass::Stag), 2u);
    EXPECT_EQ(a.mispredictions(PredictionClass::Stag), 1u);
    EXPECT_EQ(a.instructions(), 17u);
}

TEST(ClassStats, MpkiContributionsSumToMpki)
{
    ClassStats s;
    XorShift128Plus rng(4);
    for (int i = 0; i < 5000; ++i) {
        const auto c = kAllPredictionClasses[rng.next() % 7];
        s.record(c, rng.nextBool(0.1), 1 + rng.next() % 9);
    }
    double sum = 0.0;
    for (const auto c : kAllPredictionClasses)
        sum += s.mpkiContribution(c);
    EXPECT_NEAR(sum, s.mpki(), 1e-9);
}

TEST(ClassStats, PcovSumsToOne)
{
    ClassStats s;
    XorShift128Plus rng(6);
    for (int i = 0; i < 3000; ++i) {
        s.record(kAllPredictionClasses[rng.next() % 7],
                 rng.nextBool(0.2), 1);
    }
    double sum = 0.0;
    for (const auto c : kAllPredictionClasses)
        sum += s.pcov(c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

} // namespace
} // namespace tagecon
