/**
 * @file
 * Tests for the 7-class grading (ConfidenceObserver) and the 3-level
 * mapping — the paper's contribution, so every classification rule of
 * Sec. 5 / 6.1 is pinned down here.
 */

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/confidence_observer.hpp"

namespace tagecon {
namespace {

/** A tagged-provider prediction with a given counter value (3-bit). */
TagePrediction
taggedPrediction(int ctr)
{
    TagePrediction p;
    p.providerIsTagged = true;
    p.providerTable = 3;
    p.providerCtr = ctr;
    const int s = 2 * ctr + 1;
    p.providerStrength = s < 0 ? -s : s;
    p.providerSaturated = ctr == 3 || ctr == -4;
    p.providerWeak = ctr == 0 || ctr == -1;
    p.providerPredTaken = ctr >= 0;
    p.taken = ctr >= 0;
    return p;
}

/** A bimodal-provider prediction. */
TagePrediction
bimodalPrediction(bool weak, bool taken = true)
{
    TagePrediction p;
    p.providerIsTagged = false;
    p.providerTable = 0;
    p.bimodalWeak = weak;
    p.bimodalTaken = taken;
    p.taken = taken;
    return p;
}

TEST(ConfidenceLevelMapping, MatchesSection61)
{
    EXPECT_EQ(confidenceLevel(PredictionClass::HighConfBim),
              ConfidenceLevel::High);
    EXPECT_EQ(confidenceLevel(PredictionClass::Stag),
              ConfidenceLevel::High);
    EXPECT_EQ(confidenceLevel(PredictionClass::MediumConfBim),
              ConfidenceLevel::Medium);
    EXPECT_EQ(confidenceLevel(PredictionClass::NStag),
              ConfidenceLevel::Medium);
    EXPECT_EQ(confidenceLevel(PredictionClass::LowConfBim),
              ConfidenceLevel::Low);
    EXPECT_EQ(confidenceLevel(PredictionClass::NWtag),
              ConfidenceLevel::Low);
    EXPECT_EQ(confidenceLevel(PredictionClass::Wtag),
              ConfidenceLevel::Low);
}

TEST(PredictionClassNames, MatchPaperLegend)
{
    EXPECT_EQ(predictionClassName(PredictionClass::HighConfBim),
              "high-conf-bim");
    EXPECT_EQ(predictionClassName(PredictionClass::LowConfBim),
              "low-conf-bim");
    EXPECT_EQ(predictionClassName(PredictionClass::MediumConfBim),
              "medium-conf-bim");
    EXPECT_EQ(predictionClassName(PredictionClass::Stag), "Stag");
    EXPECT_EQ(predictionClassName(PredictionClass::NStag), "NStag");
    EXPECT_EQ(predictionClassName(PredictionClass::NWtag), "NWtag");
    EXPECT_EQ(predictionClassName(PredictionClass::Wtag), "Wtag");
    EXPECT_EQ(confidenceLevelName(ConfidenceLevel::High), "high");
    EXPECT_EQ(confidenceLevelName(ConfidenceLevel::Medium), "medium");
    EXPECT_EQ(confidenceLevelName(ConfidenceLevel::Low), "low");
}

TEST(ConfidenceObserver, TaggedClassesBy2CtrPlus1)
{
    // Sec. 5.2: |2*ctr+1| = 1 -> Wtag, 3 -> NWtag, 5 -> NStag,
    // 7 -> Stag, over the whole 3-bit counter range.
    ConfidenceObserver obs;
    const std::pair<int, PredictionClass> cases[] = {
        {0, PredictionClass::Wtag},   {-1, PredictionClass::Wtag},
        {1, PredictionClass::NWtag},  {-2, PredictionClass::NWtag},
        {2, PredictionClass::NStag},  {-3, PredictionClass::NStag},
        {3, PredictionClass::Stag},   {-4, PredictionClass::Stag},
    };
    for (const auto& [ctr, expected] : cases) {
        EXPECT_EQ(obs.classify(taggedPrediction(ctr)), expected)
            << "ctr=" << ctr;
    }
}

TEST(ConfidenceObserver, WiderCountersClassifyByMargin)
{
    // 4-bit counter ablation: only the true saturated values are
    // Stag; in-between strengths are NStag.
    ConfidenceObserver obs;
    TagePrediction p;
    p.providerIsTagged = true;
    p.providerStrength = 9; // 4-bit ctr = 4: neither weak nor saturated
    p.providerSaturated = false;
    EXPECT_EQ(obs.classify(p), PredictionClass::NStag);
    p.providerStrength = 15;
    p.providerSaturated = true;
    EXPECT_EQ(obs.classify(p), PredictionClass::Stag);
}

TEST(ConfidenceObserver, BimodalWeakIsLowConf)
{
    ConfidenceObserver obs;
    EXPECT_EQ(obs.classify(bimodalPrediction(/*weak=*/true)),
              PredictionClass::LowConfBim);
}

TEST(ConfidenceObserver, BimodalStrongIsHighConfInitially)
{
    ConfidenceObserver obs;
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::HighConfBim);
}

TEST(ConfidenceObserver, BimMispredictionOpensBurstWindow)
{
    ConfidenceObserver obs(/*bim_window=*/8);
    // A BIM misprediction...
    TagePrediction p = bimodalPrediction(false, /*taken=*/true);
    obs.onResolve(p, /*actual=*/false);
    // ...grades the next 8 BIM predictions medium confidence.
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(obs.classify(bimodalPrediction(false)),
                  PredictionClass::MediumConfBim)
            << "i=" << i;
        obs.onResolve(bimodalPrediction(false, true), true);
    }
    // The 9th is high confidence again.
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::HighConfBim);
}

TEST(ConfidenceObserver, WeakCounterTakesPriorityInsideWindow)
{
    // Inside the burst window, a weak bimodal counter still grades
    // low confidence (low-conf-bim subsumes medium-conf-bim).
    ConfidenceObserver obs;
    obs.onResolve(bimodalPrediction(false, true), false); // BIM miss
    EXPECT_EQ(obs.classify(bimodalPrediction(/*weak=*/true)),
              PredictionClass::LowConfBim);
}

TEST(ConfidenceObserver, TaggedPredictionsDoNotAdvanceWindow)
{
    ConfidenceObserver obs(8);
    obs.onResolve(bimodalPrediction(false, true), false); // BIM miss
    // Interleave many *tagged* resolutions: they must neither close
    // nor advance the BIM burst window.
    for (int i = 0; i < 50; ++i)
        obs.onResolve(taggedPrediction(3), true);
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::MediumConfBim);
}

TEST(ConfidenceObserver, CorrectBimPredictionsCloseWindowGradually)
{
    ConfidenceObserver obs(3);
    obs.onResolve(bimodalPrediction(false, true), false); // miss
    EXPECT_EQ(obs.sinceBimMiss(), 0);
    obs.onResolve(bimodalPrediction(false, true), true);
    obs.onResolve(bimodalPrediction(false, true), true);
    EXPECT_EQ(obs.sinceBimMiss(), 2);
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::MediumConfBim);
    obs.onResolve(bimodalPrediction(false, true), true);
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::HighConfBim);
}

TEST(ConfidenceObserver, RepeatedMissesKeepWindowOpen)
{
    ConfidenceObserver obs(4);
    obs.onResolve(bimodalPrediction(false, true), false);
    obs.onResolve(bimodalPrediction(false, true), true);
    obs.onResolve(bimodalPrediction(false, true), false); // miss again
    EXPECT_EQ(obs.sinceBimMiss(), 0);
}

TEST(ConfidenceObserver, StartsOutsideWindow)
{
    ConfidenceObserver obs(8);
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::HighConfBim);
}

TEST(ConfidenceObserver, ResetForgetsBurst)
{
    ConfidenceObserver obs(8);
    obs.onResolve(bimodalPrediction(false, true), false);
    obs.reset();
    EXPECT_EQ(obs.classify(bimodalPrediction(false)),
              PredictionClass::HighConfBim);
}

TEST(ConfidenceObserver, ClassifyLevelComposes)
{
    ConfidenceObserver obs;
    EXPECT_EQ(obs.classifyLevel(taggedPrediction(3)),
              ConfidenceLevel::High);
    EXPECT_EQ(obs.classifyLevel(taggedPrediction(0)),
              ConfidenceLevel::Low);
    EXPECT_EQ(obs.classifyLevel(taggedPrediction(2)),
              ConfidenceLevel::Medium);
}

TEST(PredictionClassList, CoversAllSeven)
{
    EXPECT_EQ(kAllPredictionClasses.size(), kNumPredictionClasses);
    std::set<PredictionClass> seen(kAllPredictionClasses.begin(),
                                   kAllPredictionClasses.end());
    EXPECT_EQ(seen.size(), 7u);
}

} // namespace
} // namespace tagecon
