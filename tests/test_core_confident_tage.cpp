/**
 * @file
 * Tests for the ConfidentTagePredictor facade.
 */

#include <gtest/gtest.h>

#include "core/confident_tage.hpp"
#include "trace/profiles.hpp"

namespace tagecon {
namespace {

TEST(ConfidentTage, GradesMatchManualPipeline)
{
    // The facade must produce exactly the same predictions, classes
    // and statistics as manually wiring the three components.
    const TageConfig cfg =
        TageConfig::small16K().withProbabilisticSaturation(7);
    ConfidentTagePredictor facade(cfg);
    TagePredictor predictor(cfg);
    ConfidenceObserver observer;
    ClassStats manual;

    SyntheticTrace trace = makeTrace("MM-2", 30000);
    BranchRecord rec;
    while (trace.next(rec)) {
        const GradedPrediction g = facade.predict(rec.pc);
        const TagePrediction p = predictor.predict(rec.pc);
        ASSERT_EQ(g.taken, p.taken);
        ASSERT_EQ(g.cls, observer.classify(p));
        ASSERT_EQ(g.level, confidenceLevel(g.cls));

        const uint64_t instr = uint64_t{rec.instructionsBefore} + 1;
        manual.record(g.cls, p.taken != rec.taken, instr);
        observer.onResolve(p, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
        facade.update(rec.pc, g, rec.taken, instr);
    }

    EXPECT_EQ(facade.stats().totalPredictions(),
              manual.totalPredictions());
    EXPECT_EQ(facade.stats().totalMispredictions(),
              manual.totalMispredictions());
    for (const auto c : kAllPredictionClasses) {
        EXPECT_EQ(facade.stats().predictions(c), manual.predictions(c));
        EXPECT_EQ(facade.stats().mispredictions(c),
                  manual.mispredictions(c));
    }
}

TEST(ConfidentTage, AdaptiveRequiresProbabilisticConfig)
{
    ConfidentTagePredictor ctp(TageConfig::small16K());
    EXPECT_EXIT(ctp.enableAdaptiveProbability(),
                ::testing::ExitedWithCode(1),
                "probabilisticSaturation");
}

TEST(ConfidentTage, AdaptiveControllerDrivesPredictor)
{
    ConfidentTagePredictor ctp(
        TageConfig::small16K().withProbabilisticSaturation(7));
    AdaptiveProbabilityController::Config acfg;
    acfg.epochLength = 8192;
    ctp.enableAdaptiveProbability(acfg);
    ASSERT_TRUE(ctp.controller().has_value());

    SyntheticTrace trace = makeTrace("300.twolf", 120000);
    BranchRecord rec;
    while (trace.next(rec)) {
        const GradedPrediction g = ctp.predict(rec.pc);
        ctp.update(rec.pc, g, rec.taken);
    }
    // Controller ran epochs and predictor follows its probability.
    EXPECT_GT(ctp.controller()->epochs(), 0u);
    EXPECT_EQ(ctp.predictor().satLog2Prob(),
              ctp.controller()->log2Prob());
}

TEST(ConfidentTage, StorageIsPredictorOnly)
{
    const TageConfig cfg = TageConfig::medium64K();
    ConfidentTagePredictor ctp(cfg);
    EXPECT_EQ(ctp.storageBits(), cfg.storageBits());
}

TEST(ConfidentTage, ResetClearsEverything)
{
    ConfidentTagePredictor ctp(
        TageConfig::small16K().withProbabilisticSaturation(7));
    SyntheticTrace trace = makeTrace("FP-1", 5000);
    BranchRecord rec;
    while (trace.next(rec)) {
        const GradedPrediction g = ctp.predict(rec.pc);
        ctp.update(rec.pc, g, rec.taken);
    }
    EXPECT_GT(ctp.stats().totalPredictions(), 0u);
    ctp.reset();
    EXPECT_EQ(ctp.stats().totalPredictions(), 0u);
    EXPECT_EQ(ctp.predictor().updates(), 0u);
}

TEST(ConfidentTage, ReplayIsDeterministic)
{
    auto run = [] {
        ConfidentTagePredictor ctp(
            TageConfig::small16K().withProbabilisticSaturation(7));
        SyntheticTrace trace = makeTrace("INT-2", 20000);
        BranchRecord rec;
        while (trace.next(rec)) {
            const GradedPrediction g = ctp.predict(rec.pc);
            ctp.update(rec.pc, g, rec.taken);
        }
        return ctp.stats().totalMispredictions();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace tagecon
