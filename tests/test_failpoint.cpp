/**
 * @file
 * Fault-injection framework tests: the spec grammar (accepted and
 * rejected forms), deterministic trigger schedules (nth / count /
 * rate / key are pure functions of per-key hit indices, independent of
 * re-arming order), scope-key plumbing, and the "unarmed means zero
 * effect" guarantee the production paths rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/errors.hpp"
#include "util/failpoint.hpp"

namespace tagecon {
namespace failpoints {
namespace {

/** Disarm around every test so armed rules can't leak between them. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { disarm(); }
    void TearDown() override { disarm(); }
};

TEST_F(FailpointTest, GrammarAcceptsTheDocumentedForms)
{
    std::vector<FailRule> rules;
    std::string error;

    ASSERT_TRUE(parseFaultSpec("trace.read", rules, error)) << error;
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].site, "trace.read");
    EXPECT_EQ(rules[0].key, kNoKey);
    EXPECT_EQ(rules[0].nth, 0u);
    EXPECT_EQ(rules[0].code, ErrCode::Io);

    ASSERT_TRUE(parseFaultSpec(
        "ckpt.read:nth=3;trace.read:rate=0.01,seed=7,err=corrupt",
        rules, error))
        << error;
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].site, "ckpt.read");
    EXPECT_EQ(rules[0].nth, 3u);
    EXPECT_EQ(rules[1].site, "trace.read");
    EXPECT_DOUBLE_EQ(rules[1].rate, 0.01);
    EXPECT_EQ(rules[1].seed, 7u);
    EXPECT_EQ(rules[1].code, ErrCode::Corrupt);

    ASSERT_TRUE(parseFaultSpec("ckpt.write:key=12,count=2", rules,
                               error))
        << error;
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].key, 12u);
    EXPECT_EQ(rules[0].count, 2u);
}

TEST_F(FailpointTest, GrammarRejectsBadSpecs)
{
    std::vector<FailRule> rules;
    std::string error;

    // Unknown site (typo protection is the point of the closed set).
    EXPECT_FALSE(parseFaultSpec("ckpt.raed", rules, error));
    EXPECT_NE(error.find("ckpt.raed"), std::string::npos);

    // (An empty spec is not an error: arm("") disarms.)
    EXPECT_FALSE(parseFaultSpec("trace.read:", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:nth=0", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:count=0", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:rate=1.5", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:rate=-0.1", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:bogus=1", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:err=nope", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:err=none", rules, error));
    EXPECT_FALSE(parseFaultSpec("trace.read:nth", rules, error));
    // nth and rate are mutually exclusive trigger modes.
    EXPECT_FALSE(
        parseFaultSpec("trace.read:nth=2,rate=0.5", rules, error));

    // arm() leaves previous arming untouched on a bad spec.
    ASSERT_TRUE(arm("trace.read:key=1", &error)) << error;
    EXPECT_FALSE(arm("trace.raed", &error));
    EXPECT_TRUE(anyArmed());
}

TEST_F(FailpointTest, UnarmedChecksHaveZeroEffect)
{
    EXPECT_FALSE(anyArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(check("trace.read").has_value());
    // Unarmed hits are not even counted.
    EXPECT_EQ(stats("trace.read").hits, 0u);
    EXPECT_EQ(stats("trace.read").fires, 0u);
}

TEST_F(FailpointTest, NthTriggersOnExactlyTheNthHitPerKey)
{
    ASSERT_TRUE(arm("ckpt.read:nth=3"));
    KeyScope scope(42);
    EXPECT_FALSE(check("ckpt.read").has_value());
    EXPECT_FALSE(check("ckpt.read").has_value());
    auto fired = check("ckpt.read");
    ASSERT_TRUE(fired.has_value());
    EXPECT_EQ(fired->code, ErrCode::Io);
    EXPECT_EQ(fired->site, "ckpt.read");
    EXPECT_NE(fired->detail.find("hit 3"), std::string::npos);
    // nth fires once, not "from the 3rd hit on".
    EXPECT_FALSE(check("ckpt.read").has_value());

    // A different site is unaffected.
    EXPECT_FALSE(check("ckpt.write").has_value());

    EXPECT_EQ(stats("ckpt.read").hits, 4u);
    EXPECT_EQ(stats("ckpt.read").fires, 1u);
}

TEST_F(FailpointTest, HitCountersAreIndependentPerKey)
{
    ASSERT_TRUE(arm("trace.read:nth=2"));
    {
        KeyScope a(1);
        EXPECT_FALSE(check("trace.read").has_value());
    }
    {
        // Key 2's first hit must not see key 1's count.
        KeyScope b(2);
        EXPECT_FALSE(check("trace.read").has_value());
        EXPECT_TRUE(check("trace.read").has_value());
    }
    {
        KeyScope a(1);
        EXPECT_TRUE(check("trace.read").has_value());
    }
}

TEST_F(FailpointTest, KeyParamTargetsOneScopeOnly)
{
    ASSERT_TRUE(arm("serve.worker.step:key=7,err=truncated"));
    {
        KeyScope other(3);
        EXPECT_FALSE(check("serve.worker.step").has_value());
    }
    // Outside any scope the key is kNoKey, which never equals 7.
    EXPECT_FALSE(check("serve.worker.step").has_value());
    {
        KeyScope target(7);
        auto fired = check("serve.worker.step");
        ASSERT_TRUE(fired.has_value());
        EXPECT_EQ(fired->code, ErrCode::Truncated);
        EXPECT_NE(fired->detail.find("key 7"), std::string::npos);
    }
}

TEST_F(FailpointTest, CountCapsFiresPerKey)
{
    ASSERT_TRUE(arm("ckpt.write:count=2"));
    KeyScope scope(5);
    EXPECT_TRUE(check("ckpt.write").has_value());
    EXPECT_TRUE(check("ckpt.write").has_value());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(check("ckpt.write").has_value());
    EXPECT_EQ(stats("ckpt.write").fires, 2u);
}

TEST_F(FailpointTest, RateScheduleIsSeededAndReproducible)
{
    auto schedule = [](uint64_t seed) {
        std::string spec =
            "trace.read:rate=0.25,seed=" + std::to_string(seed);
        EXPECT_TRUE(arm(spec));
        KeyScope scope(9);
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(check("trace.read").has_value());
        return fires;
    };

    const auto a = schedule(7);
    const auto b = schedule(7);
    EXPECT_EQ(a, b); // re-arming resets counters: same schedule

    const auto c = schedule(8);
    EXPECT_NE(a, c); // a different seed is a different schedule

    // rate=0.25 should fire sometimes and not always.
    const auto fired =
        static_cast<size_t>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, a.size());

    // Degenerate rates are exact, not approximate.
    EXPECT_TRUE(arm("trace.read:rate=1"));
    {
        KeyScope scope(9);
        for (int i = 0; i < 20; ++i)
            EXPECT_TRUE(check("trace.read").has_value());
    }
    EXPECT_TRUE(arm("trace.read:rate=0"));
    {
        KeyScope scope(9);
        for (int i = 0; i < 20; ++i)
            EXPECT_FALSE(check("trace.read").has_value());
    }
}

TEST_F(FailpointTest, RateScheduleIsPerKeyNotPerThreadOrder)
{
    // The fire decision for (key, hit-index) must not depend on how
    // hits of different keys interleave — serve determinism at any
    // --jobs hangs off this.
    ASSERT_TRUE(arm("trace.read:rate=0.5,seed=3"));
    std::vector<bool> interleaved_a, interleaved_b;
    for (int i = 0; i < 50; ++i) {
        {
            KeyScope sa(1);
            interleaved_a.push_back(check("trace.read").has_value());
        }
        {
            KeyScope sb(2);
            interleaved_b.push_back(check("trace.read").has_value());
        }
    }

    ASSERT_TRUE(arm("trace.read:rate=0.5,seed=3"));
    std::vector<bool> sequential_a, sequential_b;
    {
        KeyScope sa(1);
        for (int i = 0; i < 50; ++i)
            sequential_a.push_back(check("trace.read").has_value());
    }
    {
        KeyScope sb(2);
        for (int i = 0; i < 50; ++i)
            sequential_b.push_back(check("trace.read").has_value());
    }

    EXPECT_EQ(interleaved_a, sequential_a);
    EXPECT_EQ(interleaved_b, sequential_b);
}

TEST_F(FailpointTest, KeyScopesNestAndRestore)
{
    EXPECT_EQ(currentKey(), kNoKey);
    {
        KeyScope outer(10);
        EXPECT_EQ(currentKey(), 10u);
        {
            KeyScope inner(11);
            EXPECT_EQ(currentKey(), 11u);
        }
        EXPECT_EQ(currentKey(), 10u);
    }
    EXPECT_EQ(currentKey(), kNoKey);
}

TEST_F(FailpointTest, ScopedFaultsDisarmOnDestruction)
{
    {
        ScopedFaults faults("trace.read");
        EXPECT_TRUE(faults.ok());
        EXPECT_TRUE(anyArmed());
    }
    EXPECT_FALSE(anyArmed());

    std::string error;
    ScopedFaults bad("no.such.site", &error);
    EXPECT_FALSE(bad.ok());
    EXPECT_FALSE(error.empty());
}

TEST_F(FailpointTest, KnownSitesAreSortedAndIncludeTheWiredOnes)
{
    const auto& sites = knownSites();
    EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
    for (const char* site :
         {"trace.open", "trace.read", "ckpt.encode", "ckpt.decode",
          "ckpt.read", "ckpt.write", "serve.worker.step"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), site),
                  sites.end())
            << site;
    }
}

} // namespace
} // namespace failpoints
} // namespace tagecon
