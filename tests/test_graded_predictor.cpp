/**
 * @file
 * Tests for the GradedPredictor API: adapter equivalence with the
 * hand-wired seed pipeline, estimator decoration, and the contract
 * checks (payload routing, reset determinism).
 */

#include <gtest/gtest.h>

#include "baseline/graded_baselines.hpp"
#include "core/confidence_observer.hpp"
#include "core/estimators.hpp"
#include "sim/experiment.hpp"
#include "tage/graded_tage.hpp"
#include "tage/tage_predictor.hpp"

namespace tagecon {
namespace {

TEST(GradedTage, MatchesHandWiredPipeline)
{
    const TageConfig cfg =
        TageConfig::small16K().withProbabilisticSaturation(7);

    // Hand-wired: the way every seed bench drove the paper's pipeline.
    TagePredictor predictor(cfg);
    ConfidenceObserver observer;
    ClassStats manual;
    SyntheticTrace t1 = makeTrace("MM-2", 20000);
    BranchRecord rec;
    while (t1.next(rec)) {
        const TagePrediction p = predictor.predict(rec.pc);
        const PredictionClass cls = observer.classify(p);
        manual.record(cls, p.taken != rec.taken,
                      uint64_t{rec.instructionsBefore} + 1);
        observer.onResolve(p, rec.taken);
        predictor.update(rec.pc, p, rec.taken);
    }

    // The adapter behind the unified API.
    GradedTage graded(cfg);
    SyntheticTrace t2 = makeTrace("MM-2", 20000);
    const RunResult r = runTrace(t2, graded);

    EXPECT_EQ(r.stats.totalPredictions(), manual.totalPredictions());
    EXPECT_EQ(r.stats.totalMispredictions(),
              manual.totalMispredictions());
    for (const auto c : kAllPredictionClasses) {
        EXPECT_EQ(r.stats.predictions(c), manual.predictions(c));
        EXPECT_EQ(r.stats.mispredictions(c), manual.mispredictions(c));
    }
}

TEST(GradedTage, LegacyRunConfigAndSpecRunsAgree)
{
    RunConfig rc;
    rc.predictor = TageConfig::small16K();
    const RunResult legacy = runNamedTrace("SERV-2", rc, 15000);
    const RunResult spec = runNamedTrace("SERV-2", "tage16k+sfc", 15000);
    EXPECT_EQ(legacy.stats.totalMispredictions(),
              spec.stats.totalMispredictions());
    for (const auto c : kAllPredictionClasses)
        EXPECT_EQ(legacy.stats.predictions(c), spec.stats.predictions(c));
}

TEST(GradedTage, StalePredictionIsFatal)
{
    GradedTage graded(TageConfig::small16K());
    const Prediction p1 = graded.predict(100);
    graded.update(100, p1, true);
    const Prediction p2 = graded.predict(100);
    (void)p2;
    EXPECT_EXIT(graded.update(100, p1, true),
                ::testing::ExitedWithCode(1), "immediately preceding");
}

TEST(GradedTage, ResetRestoresDeterminism)
{
    GradedTage graded(TageConfig::small16K());
    SyntheticTrace t1 = makeTrace("INT-3", 10000);
    const RunResult a = runTrace(t1, graded);
    graded.reset();
    SyntheticTrace t2 = makeTrace("INT-3", 10000);
    const RunResult b = runTrace(t2, graded);
    EXPECT_EQ(a.stats.totalMispredictions(),
              b.stats.totalMispredictions());
    EXPECT_EQ(a.confusion.highCorrect(), b.confusion.highCorrect());
}

TEST(GradedLTage, RunsAndGradesLoopBranches)
{
    GradedLTage graded(TageConfig::small16K());
    SyntheticTrace t = makeTrace("FP-2", 20000);
    const RunResult r = runTrace(t, graded);
    EXPECT_EQ(r.stats.totalPredictions(), 20000u);
    EXPECT_GT(graded.storageBits(),
              TageConfig::small16K().storageBits());
}

TEST(EstimatedPredictor, JrsOverridesIntrinsicGrade)
{
    auto host = std::make_unique<GradedTage>(TageConfig::small16K());
    EstimatedPredictor est(std::move(host),
                           std::make_unique<JrsEstimator>());

    // Freshly-reset JRS counters are all zero, far below the
    // threshold, so the first grade must be Low regardless of what
    // TAGE's intrinsic grade says.
    const Prediction p = est.predict(0x1234);
    EXPECT_EQ(p.confidence, ConfidenceLevel::Low);
    EXPECT_EQ(p.cls, representativeClass(ConfidenceLevel::Low));
    est.update(0x1234, p, p.taken);
}

TEST(EstimatedPredictor, ClassStaysConsistentWithLevel)
{
    auto p = makeTrace("164.gzip", 5000);
    EstimatedPredictor est(std::make_unique<GradedTage>(
                               TageConfig::small16K()),
                           std::make_unique<JrsEstimator>());
    BranchRecord rec;
    while (p.next(rec)) {
        const Prediction pred = est.predict(rec.pc);
        EXPECT_EQ(confidenceLevel(pred.cls), pred.confidence);
        est.update(rec.pc, pred, rec.taken);
    }
}

TEST(GradedBimodal, GradesWithSmithSelfConfidence)
{
    GradedBimodal bimodal(10);
    // A fresh 2-bit counter starts weak: low confidence.
    Prediction p = bimodal.predict(64);
    EXPECT_EQ(p.confidence, ConfidenceLevel::Low);
    bimodal.update(64, p, true);
    // Train the counter strong; confidence must rise.
    for (int i = 0; i < 4; ++i) {
        p = bimodal.predict(64);
        bimodal.update(64, p, true);
    }
    p = bimodal.predict(64);
    EXPECT_EQ(p.confidence, ConfidenceLevel::High);
    EXPECT_TRUE(p.taken);
    bimodal.update(64, p, true);
}

TEST(GradedGshare, IsConfidenceBlind)
{
    GradedGshare gshare(10, 10);
    EXPECT_FALSE(gshare.hasIntrinsicConfidence());
    const Prediction p = gshare.predict(4);
    EXPECT_EQ(p.confidence, ConfidenceLevel::High);
}

TEST(GradedPerceptron, SelfConfidenceTracksTheta)
{
    GradedPerceptron perceptron(6, 12);
    // An untrained perceptron's |sum| is 0 < theta: low confidence.
    const Prediction p = perceptron.predict(8);
    EXPECT_EQ(p.confidence, ConfidenceLevel::Low);
    EXPECT_TRUE(perceptron.hasIntrinsicConfidence());
}

TEST(GenericRunTrace, FillsConfusionAndIdentity)
{
    GradedOgehl ogehl;
    SyntheticTrace t = makeTrace("181.mcf", 8000);
    const RunResult r = runTrace(t, ogehl);
    EXPECT_EQ(r.configName, "ogehl");
    EXPECT_EQ(r.traceName, "181.mcf");
    EXPECT_EQ(r.confusion.total(), 8000u);
    EXPECT_EQ(r.confusion.highCorrect() + r.confusion.lowCorrect(),
              r.stats.totalPredictions() -
                  r.stats.totalMispredictions());
    EXPECT_EQ(r.storageBits, ogehl.storageBits());
}

TEST(GenericRunTrace, SpecSetRunMatchesLegacySetRun)
{
    RunConfig rc;
    rc.predictor = TageConfig::small16K();
    const SetResult legacy =
        runBenchmarkSet(BenchmarkSet::Cbp1, rc, 2000);
    const SetResult spec =
        runBenchmarkSet(BenchmarkSet::Cbp1, "tage16k+sfc", 2000);
    ASSERT_EQ(legacy.perTrace.size(), spec.perTrace.size());
    EXPECT_EQ(legacy.aggregate.totalMispredictions(),
              spec.aggregate.totalMispredictions());
    EXPECT_NEAR(legacy.meanMpki, spec.meanMpki, 1e-12);
    EXPECT_EQ(spec.confusion.total(),
              spec.aggregate.totalPredictions());
}

} // namespace
} // namespace tagecon
