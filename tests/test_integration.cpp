/**
 * @file
 * End-to-end property tests pinning the paper's claims on real
 * simulated workloads: class rate ordering (Sec. 5), the effect of the
 * modified automaton (Sec. 6), the three-level split quality
 * (Sec. 6.1, Table 2) and the adaptive controller target (Sec. 6.2,
 * Table 3).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace tagecon {
namespace {

constexpr uint64_t kBranches = 150000;

/** A moderately hard trace where all classes are populated. */
const RunResult&
baselineGzip64K()
{
    static const RunResult r = [] {
        RunConfig rc;
        rc.predictor = TageConfig::medium64K();
        return runNamedTrace("164.gzip", rc, kBranches);
    }();
    return r;
}

const RunResult&
modifiedGzip64K()
{
    static const RunResult r = [] {
        RunConfig rc;
        rc.predictor =
            TageConfig::medium64K().withProbabilisticSaturation(7);
        return runNamedTrace("164.gzip", rc, kBranches);
    }();
    return r;
}

TEST(Integration, ClassCoveragesPartitionTheStream)
{
    const ClassStats& s = baselineGzip64K().stats;
    uint64_t sum = 0;
    for (const auto c : kAllPredictionClasses)
        sum += s.predictions(c);
    EXPECT_EQ(sum, s.totalPredictions());
    uint64_t msum = 0;
    for (const auto c : kAllPredictionClasses)
        msum += s.mispredictions(c);
    EXPECT_EQ(msum, s.totalMispredictions());
}

TEST(Integration, WeakClassesAreLowConfidence)
{
    // Sec. 5: Wtag and low-conf-bim mispredict in the ~30% range;
    // both must be far above the stream average.
    const ClassStats& s = baselineGzip64K().stats;
    EXPECT_GT(s.mprateMkp(PredictionClass::Wtag), 250.0);
    EXPECT_GT(s.mprateMkp(PredictionClass::LowConfBim), 200.0);
    EXPECT_GT(s.mprateMkp(PredictionClass::Wtag), 2 * s.totalMkp());
}

TEST(Integration, TaggedRatesDecreaseWithCounterStrength)
{
    // Sec. 5.2: Wtag >= NWtag >= NStag >> Stag.
    const ClassStats& s = baselineGzip64K().stats;
    const double wtag = s.mprateMkp(PredictionClass::Wtag);
    const double nwtag = s.mprateMkp(PredictionClass::NWtag);
    const double nstag = s.mprateMkp(PredictionClass::NStag);
    const double stag = s.mprateMkp(PredictionClass::Stag);
    EXPECT_GE(wtag * 1.25, nwtag); // allow mild noise in the ordering
    EXPECT_GT(nwtag, nstag);
    EXPECT_GT(nstag, 3 * stag);
}

TEST(Integration, HighConfBimIsTheCleanestClass)
{
    const ClassStats& s = baselineGzip64K().stats;
    const double high_bim = s.mprateMkp(PredictionClass::HighConfBim);
    EXPECT_LT(high_bim, s.totalMkp());
    EXPECT_LT(high_bim, 25.0);
}

TEST(Integration, MediumConfBimSitsBetweenHighAndLow)
{
    const ClassStats& s = baselineGzip64K().stats;
    EXPECT_GT(s.mprateMkp(PredictionClass::MediumConfBim),
              s.mprateMkp(PredictionClass::HighConfBim));
    EXPECT_LT(s.mprateMkp(PredictionClass::MediumConfBim),
              s.mprateMkp(PredictionClass::LowConfBim));
}

TEST(Integration, ModifiedAutomatonCleansStag)
{
    // Sec. 6: with p = 1/128, MPrate(Stag) drops to the 1-5 MKP range
    // (we allow up to 10 on this single trace).
    const double base_stag =
        baselineGzip64K().stats.mprateMkp(PredictionClass::Stag);
    const double mod_stag =
        modifiedGzip64K().stats.mprateMkp(PredictionClass::Stag);
    EXPECT_LT(mod_stag, 10.0);
    EXPECT_LT(mod_stag, base_stag);
}

TEST(Integration, ModifiedAutomatonGrowsNStag)
{
    // Sec. 6: the NStag class is enlarged and its rate drops.
    const ClassStats& base = baselineGzip64K().stats;
    const ClassStats& mod = modifiedGzip64K().stats;
    EXPECT_GT(mod.pcov(PredictionClass::NStag),
              base.pcov(PredictionClass::NStag));
    EXPECT_LT(mod.mprateMkp(PredictionClass::NStag),
              base.mprateMkp(PredictionClass::NStag));
}

TEST(Integration, ModifiedAutomatonAccuracyCostIsMarginal)
{
    // Sec. 6: "less than 0.02 misp/KI in average" — allow 0.1 on a
    // single hard trace.
    const double base_mpki = baselineGzip64K().stats.mpki();
    const double mod_mpki = modifiedGzip64K().stats.mpki();
    EXPECT_LT(mod_mpki - base_mpki, 0.1);
}

TEST(Integration, ThreeLevelSplitMatchesPaperShape)
{
    // Table 2 shape on the aggregate CBP-1 set, 64K modified:
    //  - high covers the majority of predictions at < 15 MKP;
    //  - medium and low together cover the vast majority of
    //    mispredictions;
    //  - MPrate(low) > 150 MKP.
    RunConfig rc;
    rc.predictor =
        TageConfig::medium64K().withProbabilisticSaturation(7);
    const SetResult r = runBenchmarkSet(BenchmarkSet::Cbp1, rc, 60000);
    const ClassStats& s = r.aggregate;

    EXPECT_GT(s.pcov(ConfidenceLevel::High), 0.5);
    EXPECT_LT(s.mprateMkp(ConfidenceLevel::High), 15.0);
    EXPECT_GT(s.mpcov(ConfidenceLevel::Medium) +
                  s.mpcov(ConfidenceLevel::Low),
              0.75);
    EXPECT_GT(s.mprateMkp(ConfidenceLevel::Low), 150.0);
    EXPECT_GT(s.mprateMkp(ConfidenceLevel::Low),
              2 * s.mprateMkp(ConfidenceLevel::Medium));
    EXPECT_GT(s.mprateMkp(ConfidenceLevel::Medium),
              2 * s.mprateMkp(ConfidenceLevel::High));
}

TEST(Integration, AdaptiveControllerHoldsTarget)
{
    // Table 3: the controller keeps the measured high-confidence rate
    // near the 10 MKP target while maximizing coverage.
    RunConfig fixed;
    fixed.predictor =
        TageConfig::small16K().withProbabilisticSaturation(7);
    const SetResult r_fixed =
        runBenchmarkSet(BenchmarkSet::Cbp1, fixed, 60000);

    RunConfig adaptive = fixed;
    adaptive.adaptive = true;
    adaptive.adaptiveConfig.targetMkp = 10.0;
    adaptive.adaptiveConfig.epochLength = 16384;
    const SetResult r_adapt =
        runBenchmarkSet(BenchmarkSet::Cbp1, adaptive, 60000);

    // Held near the target (50% slack for measurement noise).
    EXPECT_LT(r_adapt.aggregate.mprateMkp(ConfidenceLevel::High), 15.0);
    // Coverage at least that of the fixed 1/128 configuration.
    EXPECT_GE(r_adapt.aggregate.pcov(ConfidenceLevel::High),
              r_fixed.aggregate.pcov(ConfidenceLevel::High) * 0.98);
}

TEST(Integration, LargerPredictorsAreMoreAccurate)
{
    // Table 1 shape.
    RunConfig rc;
    rc.predictor = TageConfig::small16K();
    const double small =
        runBenchmarkSet(BenchmarkSet::Cbp1, rc, 60000).meanMpki;
    rc.predictor = TageConfig::large256K();
    const double large =
        runBenchmarkSet(BenchmarkSet::Cbp1, rc, 60000).meanMpki;
    EXPECT_LT(large, small);
}

TEST(Integration, BimClassesVanishOnLargePredictor)
{
    // Sec. 5.1: "the medium confidence and low confidence predictions
    // provided by the bimodal component nearly vanish on the large
    // predictor" — compare 16K vs 256K coverage.
    RunConfig rc;
    rc.predictor = TageConfig::small16K();
    const SetResult small =
        runBenchmarkSet(BenchmarkSet::Cbp1, rc, 60000);
    rc.predictor = TageConfig::large256K();
    const SetResult large =
        runBenchmarkSet(BenchmarkSet::Cbp1, rc, 60000);

    const double small_mlb =
        small.aggregate.pcov(PredictionClass::MediumConfBim) +
        small.aggregate.pcov(PredictionClass::LowConfBim);
    const double large_mlb =
        large.aggregate.pcov(PredictionClass::MediumConfBim) +
        large.aggregate.pcov(PredictionClass::LowConfBim);
    // Capacity-driven BIM bursts shrink with predictor size; the
    // behaviour-change component of the synthetic workloads does not,
    // so the contraction here is milder than the paper's.
    EXPECT_LT(large_mlb, small_mlb * 0.8);
}

} // namespace
} // namespace tagecon
