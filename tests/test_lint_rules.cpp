/**
 * @file
 * tagecon_lint rule-engine tests: per rule, a clean fixture is
 * accepted, a fixture with one seeded violation is rejected at the
 * right line, and both allowlist entries and inline
 * `tagecon-lint: allow(...)` suppressions clear the finding. Plus the
 * allowlist parser's failure modes and the scrubber's blind spots
 * (comments, strings, raw strings must never trip a rule).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"

namespace tagecon {
namespace lint {
namespace {

std::vector<Diagnostic>
lint(const std::string& rel_path, const std::string& contents)
{
    Allowlist empty;
    return lintFileContents(rel_path, contents, empty);
}

/** All diagnostics of one rule. */
std::vector<Diagnostic>
lintRule(const std::string& rel_path, const std::string& contents,
         const std::string& rule)
{
    std::vector<Diagnostic> out;
    for (auto& d : lint(rel_path, contents))
        if (d.rule == rule)
            out.push_back(std::move(d));
    return out;
}

TEST(LintCatalog, EightRulesSortedAndKnown)
{
    const auto& catalog = ruleCatalog();
    ASSERT_EQ(catalog.size(), 8u);
    for (size_t i = 1; i < catalog.size(); ++i)
        EXPECT_LT(catalog[i - 1].name, catalog[i].name);
    for (const auto& rule : catalog)
        EXPECT_TRUE(isKnownRule(rule.name));
    EXPECT_FALSE(isKnownRule("no-such-rule"));
}

// ----------------------------------------------------- no-raw-random

TEST(LintNoRawRandom, RejectsSeededViolation)
{
    const auto diags = lintRule("src/core/foo.cpp",
                                "int pick() {\n"
                                "    return rand() % 4;\n"
                                "}\n",
                                "no-raw-random");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2u);
    EXPECT_EQ(diags[0].file, "src/core/foo.cpp");
}

TEST(LintNoRawRandom, RejectsRandomDeviceEverywhere)
{
    // The rule has no path restriction — tools are not exempt.
    const auto diags =
        lintRule("tools/foo.cpp", "std::random_device rd;\n",
                 "no-raw-random");
    ASSERT_EQ(diags.size(), 1u);
}

TEST(LintNoRawRandom, AcceptsCleanAndLookalikes)
{
    // XorShift128Plus-style identifiers contain no bare 'rand' token.
    EXPECT_TRUE(lintRule("src/core/foo.cpp",
                         "XorShift128Plus rng(seed);\n"
                         "uint64_t x = rng.next();\n"
                         "int operand = 3; // operand, not rand\n",
                         "no-raw-random")
                    .empty());
}

// ------------------------------------------------------ no-wall-clock

TEST(LintNoWallClock, RejectsSteadyClock)
{
    const auto diags = lintRule(
        "src/serve/foo.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n",
        "no-wall-clock");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 1u);
}

TEST(LintNoWallClock, RejectsLibcTimeCall)
{
    const auto diags = lintRule("src/sim/foo.cpp",
                                "long now = time(nullptr);\n",
                                "no-wall-clock");
    ASSERT_EQ(diags.size(), 1u);
}

TEST(LintNoWallClock, AcceptsMemberNamedTimeAndTimingWords)
{
    EXPECT_TRUE(lintRule("src/sim/foo.cpp",
                         "double s = result.timing.wallSeconds;\n"
                         "uint64_t t = obj.time(3);\n"
                         "int timeout = 5;\n",
                         "no-wall-clock")
                    .empty());
}

// ------------------------------------------------------ no-raw-timing

TEST(LintNoRawTiming, RejectsChronoAndSleeps)
{
    const auto diags = lintRule(
        "src/serve/foo.cpp",
        "#include <chrono>\n"
        "void f() {\n"
        "    std::this_thread::sleep_for(std::chrono::seconds(1));\n"
        "}\n",
        "no-raw-timing");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].line, 1u);
    EXPECT_EQ(diags[1].line, 3u);
}

TEST(LintNoRawTiming, RejectsLibcSleepCallEverywhere)
{
    // Unlike no-fatal-in-library this rule patrols tools and bench too.
    const auto diags = lintRule("bench/foo.cpp", "usleep(100);\n",
                                "no-raw-timing");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(lintRule("tools/foo.cpp", "sleep(1);\n", "no-raw-timing")
                  .size(),
              1u);
}

TEST(LintNoRawTiming, AcceptsBuiltInSeamSites)
{
    const std::string body =
        "#include <chrono>\n"
        "std::this_thread::sleep_for(std::chrono::nanoseconds(n));\n";
    // The wall-clock seam and the obs layer are the rule's built-in
    // allowed sites; no allowlist entry involved.
    EXPECT_TRUE(
        lintRule("src/util/wall_clock.cpp", body, "no-raw-timing")
            .empty());
    EXPECT_TRUE(
        lintRule("src/obs/metrics.cpp", body, "no-raw-timing").empty());
    // A neighboring util file is not exempt.
    EXPECT_EQ(
        lintRule("src/util/mutex.hpp", body, "no-raw-timing").size(),
        2u);
}

TEST(LintNoRawTiming, AcceptsWallclockSeamUsersAndLookalikes)
{
    EXPECT_TRUE(lintRule("src/serve/foo.cpp",
                         "wallclock::sleepNanos(delay);\n"
                         "uint64_t t0 = wallclock::monotonicNanos();\n"
                         "int chronology = 3; // not chrono\n"
                         "obj.sleep(5); // member, not libc\n",
                         "no-raw-timing")
                    .empty());
}

// --------------------------------------------------- no-unordered-iter

TEST(LintNoUnorderedIter, RejectsRangeForOverUnorderedMap)
{
    const auto diags = lintRule(
        "src/sim/foo.cpp",
        "std::unordered_map<std::string, int> counts;\n"
        "void dump() {\n"
        "    for (const auto& [k, v] : counts)\n"
        "        use(k, v);\n"
        "}\n",
        "no-unordered-iter");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(LintNoUnorderedIter, RejectsExplicitBegin)
{
    const auto diags = lintRule(
        "src/sim/foo.cpp",
        "std::unordered_set<int> seen;\n"
        "auto it = seen.begin();\n",
        "no-unordered-iter");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2u);
}

TEST(LintNoUnorderedIter, AcceptsLookupsAndOrderedIteration)
{
    EXPECT_TRUE(lintRule("src/sim/foo.cpp",
                         "std::unordered_map<std::string, int> m;\n"
                         "std::vector<int> v;\n"
                         "int f() { return m.count(key) + m.at(key); }\n"
                         "void g() { for (int x : v) use(x); }\n",
                         "no-unordered-iter")
                    .empty());
}

// ------------------------------------------------- no-fatal-in-library

TEST(LintNoFatalInLibrary, RejectsFatalUnderSrc)
{
    const auto diags = lintRule("src/core/foo.cpp",
                                "void f(int n) {\n"
                                "    if (n < 0)\n"
                                "        fatal(\"bad n\");\n"
                                "}\n",
                                "no-fatal-in-library");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(LintNoFatalInLibrary, AcceptsFatalInToolsAndBench)
{
    const std::string body = "int main() { fatal(\"usage\"); }\n";
    EXPECT_TRUE(
        lintRule("tools/foo.cpp", body, "no-fatal-in-library").empty());
    EXPECT_TRUE(
        lintRule("bench/foo.cpp", body, "no-fatal-in-library").empty());
}

TEST(LintNoFatalInLibrary, AcceptsNonCallMentions)
{
    EXPECT_TRUE(lintRule("src/core/foo.cpp",
                         "// fatal() is for tool boundaries\n"
                         "bool is_fatal = level > 3;\n"
                         "handler.fatal(msg); // member, not ours\n",
                         "no-fatal-in-library")
                    .empty());
}

// ------------------------------------------------------ no-raw-stderr

TEST(LintNoRawStderr, RejectsCerrAndFprintfStderr)
{
    const auto diags = lintRule(
        "src/sim/foo.cpp",
        "void f() {\n"
        "    std::cerr << \"oops\\n\";\n"
        "    fprintf(stderr, \"oops\\n\");\n"
        "}\n",
        "no-raw-stderr");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].line, 2u);
    EXPECT_EQ(diags[1].line, 3u);
}

TEST(LintNoRawStderr, AcceptsLogLine)
{
    EXPECT_TRUE(lintRule("src/sim/foo.cpp",
                         "logLine(\"progress 3/4\");\n",
                         "no-raw-stderr")
                    .empty());
}

// -------------------------------------------------- ordered-reduction

TEST(LintOrderedReduction, RejectsUntaggedDoubleAccumulation)
{
    const auto diags = lintRule(
        "src/sim/foo.cpp",
        "double mpki_sum = 0.0;\n"
        "for (const auto& r : results)\n"
        "    mpki_sum += r.mpki;\n",
        "ordered-reduction");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(LintOrderedReduction, AcceptsTaggedAccumulation)
{
    EXPECT_TRUE(lintRule("src/sim/foo.cpp",
                         "double mpki_sum = 0.0;\n"
                         "// ordered-reduction: serial fold in plan "
                         "order\n"
                         "for (const auto& r : results)\n"
                         "    mpki_sum += r.mpki;\n",
                         "ordered-reduction")
                    .empty());
}

TEST(LintOrderedReduction, IgnoresIntegersAndOtherDirs)
{
    // Integer accumulators are exact; order cannot matter.
    EXPECT_TRUE(lintRule("src/sim/foo.cpp",
                         "uint64_t total = 0;\n"
                         "total += r.branches;\n",
                         "ordered-reduction")
                    .empty());
    // The rule only patrols the sim/serve aggregation paths.
    EXPECT_TRUE(lintRule("src/core/foo.cpp",
                         "double sum = 0.0;\n"
                         "sum += x;\n",
                         "ordered-reduction")
                    .empty());
}

// -------------------------------------------- nodiscard-result-types

TEST(LintNodiscardResultTypes, RejectsPlainErrDefinition)
{
    const auto diags = lintRule("src/util/foo.hpp",
                                "struct Err {\n"
                                "    int code = 0;\n"
                                "};\n",
                                "nodiscard-result-types");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 1u);
}

TEST(LintNodiscardResultTypes, AcceptsAnnotatedAndForwardDecls)
{
    EXPECT_TRUE(lintRule("src/util/foo.hpp",
                         "struct [[nodiscard]] Err {\n"
                         "    int code = 0;\n"
                         "};\n"
                         "template <typename T>\n"
                         "class [[nodiscard]] Expected\n"
                         "{\n"
                         "};\n"
                         "struct Err;\n"      // forward declaration
                         "class Expected;\n"  // forward declaration
                         "struct ErrSite {};\n",
                         "nodiscard-result-types")
                    .empty());
}

// ------------------------------------------------- scrubber behavior

TEST(LintScrubber, CommentsAndStringsNeverTripRules)
{
    EXPECT_TRUE(lint("src/core/foo.cpp",
                     "// rand() and std::cerr and fatal() in prose\n"
                     "/* steady_clock::now() in a block comment */\n"
                     "const char* msg = \"call rand() then fatal()\";\n"
                     "const char* raw = R\"(cerr stderr time( )\";\n"
                     "char c = 'a';\n")
                    .empty());
}

TEST(LintScrubber, CodeAfterBlockCommentStillScanned)
{
    const auto diags = lintRule("src/core/foo.cpp",
                                "/* benign */ int x = rand();\n",
                                "no-raw-random");
    ASSERT_EQ(diags.size(), 1u);
}

// --------------------------------------- suppression and allowlisting

TEST(LintSuppression, InlineAllowClearsOnlyThatRule)
{
    // Same-line suppression.
    EXPECT_TRUE(
        lintRule("src/core/foo.cpp",
                 "int x = rand(); // tagecon-lint: allow(no-raw-random)\n",
                 "no-raw-random")
            .empty());
    // Line-above suppression.
    EXPECT_TRUE(
        lintRule("src/core/foo.cpp",
                 "// tagecon-lint: allow(no-raw-random)\n"
                 "int x = rand();\n",
                 "no-raw-random")
            .empty());
    // A different rule's tag does not suppress.
    EXPECT_EQ(
        lintRule("src/core/foo.cpp",
                 "int x = rand(); // tagecon-lint: allow(no-wall-clock)\n",
                 "no-raw-random")
            .size(),
        1u);
}

TEST(LintAllowlist, FileAndDirectoryPrefixesOverride)
{
    Allowlist allow;
    allow.add("no-raw-random", "src/legacy");
    allow.add("no-fatal-in-library", "src/core/foo.cpp");

    const std::string rng = "int x = rand();\n";
    EXPECT_TRUE(
        lintFileContents("src/legacy/gen.cpp", rng, allow).empty());
    EXPECT_FALSE(
        lintFileContents("src/legacyish/gen.cpp", rng, allow).empty());

    const std::string die = "void f() { fatal(\"x\"); }\n";
    EXPECT_TRUE(
        lintFileContents("src/core/foo.cpp", die, allow).empty());
    EXPECT_FALSE(
        lintFileContents("src/core/bar.cpp", die, allow).empty());
}

TEST(LintAllowlist, ParserRejectsUnknownRulesAndMalformedLines)
{
    Allowlist out;
    std::string error;

    EXPECT_TRUE(Allowlist::parse("# comment\n"
                                 "\n"
                                 "no-raw-random src/legacy # trailing\n",
                                 out, error));
    EXPECT_EQ(out.size(), 1u);

    EXPECT_FALSE(Allowlist::parse("no-such-rule src/foo\n", out, error));
    EXPECT_NE(error.find("unknown rule"), std::string::npos);

    EXPECT_FALSE(
        Allowlist::parse("no-raw-random src/a src/b\n", out, error));
    EXPECT_FALSE(Allowlist::parse("no-raw-random\n", out, error));
}

TEST(LintFormat, DiagnosticDisplayForm)
{
    Diagnostic d;
    d.file = "src/a.cpp";
    d.line = 12;
    d.rule = "no-raw-random";
    d.message = "boom";
    EXPECT_EQ(formatDiagnostic(d), "src/a.cpp:12: [no-raw-random] boom");
}

TEST(LintOrdering, DiagnosticsSortedByLineThenRule)
{
    const auto diags = lint("src/sim/foo.cpp",
                            "std::cerr << 1;\n"
                            "int x = rand();\n"
                            "auto t = std::chrono::steady_clock::now();"
                            " srand(0);\n");
    ASSERT_GE(diags.size(), 4u);
    for (size_t i = 1; i < diags.size(); ++i) {
        EXPECT_TRUE(diags[i - 1].line < diags[i].line ||
                    (diags[i - 1].line == diags[i].line &&
                     diags[i - 1].rule <= diags[i].rule));
    }
}

} // namespace
} // namespace lint
} // namespace tagecon
